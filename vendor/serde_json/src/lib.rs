//! Offline stand-in for `serde_json`: JSON text encoding/decoding for
//! the [`serde::Value`] data model of the sibling `serde` stand-in.

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// Error from JSON parsing or value decoding.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Serializes a value to a JSON byte vector.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    Ok(to_string(value)?.into_bytes())
}

/// Serializes a value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value to an indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Deserializes a value from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error(e.to_string()))?;
    from_str(s)
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // Match serde_json: floats always carry a decimal point
                // or exponent so they round-trip as floats.
                let s = format!("{x}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_json_string(s, out),
        Value::Arr(xs) => write_seq(out, indent, depth, '[', ']', xs.iter(), |x, out, d| {
            write_value(x, out, indent, d)
        }),
        Value::Obj(fields) => write_seq(
            out,
            indent,
            depth,
            '{',
            '}',
            fields.iter(),
            |(k, x), out, d| {
                write_json_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(x, out, indent, d);
            },
        ),
    }
}

fn write_seq<I: ExactSizeIterator>(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    items: I,
    mut write_item: impl FnMut(I::Item, &mut String, usize),
) {
    out.push(open);
    let n = items.len();
    for (i, item) in items.enumerate() {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        write_item(item, out, depth + 1);
        if i + 1 < n {
            out.push(',');
        }
    }
    if n > 0 {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * depth));
        }
    }
    out.push(close);
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(Error(format!("expected `{lit}` at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.eat_lit("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat_lit("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_lit("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => {
                self.eat(b'[')?;
                let mut xs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Arr(xs));
                }
                loop {
                    xs.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Arr(xs));
                        }
                        _ => return Err(Error(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.eat(b'{')?;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let k = self.string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    let v = self.value()?;
                    fields.push((k, v));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Obj(fields));
                        }
                        _ => return Err(Error(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            other => Err(Error(format!("unexpected {other:?} at byte {}", self.pos))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| Error(e.to_string()))?,
                                16,
                            )
                            .map_err(|e| Error(e.to_string()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error(format!("bad codepoint {code}")))?,
                            );
                            self.pos += 4;
                        }
                        other => return Err(Error(format!("bad escape {other:?}"))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|e| Error(e.to_string()))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| Error(e.to_string()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|e| Error(e.to_string()))
        } else if let Ok(n) = text.parse::<u64>() {
            Ok(Value::U64(n))
        } else if let Ok(n) = text.parse::<i64>() {
            Ok(Value::I64(n))
        } else {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|e| Error(e.to_string()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(from_str::<i32>("-7").unwrap(), -7);
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(
            to_string(&"a\"b\\c\n".to_string()).unwrap(),
            r#""a\"b\\c\n""#
        );
        assert_eq!(from_str::<String>(r#""a\"b\\c\n""#).unwrap(), "a\"b\\c\n");
    }

    #[test]
    fn roundtrip_collections() {
        let v: Vec<u32> = vec![1, 2, 3];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,2,3]");
        assert_eq!(from_str::<Vec<u32>>(&s).unwrap(), v);
        let empty: Vec<u32> = vec![];
        assert_eq!(to_string(&empty).unwrap(), "[]");
        assert_eq!(from_str::<Vec<u32>>("[]").unwrap(), empty);
    }

    #[test]
    fn pretty_output_indents() {
        let v: Vec<Vec<u32>> = vec![vec![1], vec![2, 3]];
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<u32>>>(&s).unwrap(), v);
    }
}
