//! Offline stand-in for `proptest`.
//!
//! Random-generation property testing with the macro surface this
//! workspace uses (`proptest!`, `prop_assert!`, `prop_assert_eq!`,
//! `prop_oneof!`, `any`, `Just`, `prop::collection::vec`, tuple
//! strategies, `prop_map`, `ProptestConfig::with_cases`). Two
//! deliberate simplifications versus the real crate:
//!
//! * **No shrinking** — a failing case panics with the case number and
//!   the failure message; rerun with `PROPTEST_SEED` to reproduce.
//! * **Fixed default seed** — deterministic runs by default; set the
//!   `PROPTEST_SEED` environment variable to explore other streams.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Builds the per-test RNG; called from `proptest!` expansions (which
/// cannot name the `rand` crate from consumer crates).
pub fn new_test_rng(seed: u64) -> TestRng {
    StdRng::seed_from_u64(seed)
}
use std::rc::Rc;

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed property within a test case.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The seed for a test run: `PROPTEST_SEED` env var, else fixed.
pub fn run_seed() -> u64 {
    std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x9E37_79B9_7F4A_7C15)
}

// ---------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------

/// A recipe for generating random values of one type.
pub trait Strategy: Sized {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F> {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (needed by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
    }
}

/// A type-erased strategy.
#[derive(Clone)]
pub struct BoxedStrategy<V>(Rc<dyn Fn(&mut TestRng) -> V>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between type-erased alternatives (`prop_oneof!`).
pub struct Union<V>(pub Vec<BoxedStrategy<V>>);

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.gen_range(0..self.0.len());
        self.0[i].generate(rng)
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for ::core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for ::core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategies {
    ($(($($n:tt $s:ident),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategies! {
    (0 A, 1 B);
    (0 A, 1 B, 2 C);
    (0 A, 1 B, 2 C, 3 D);
    (0 A, 1 B, 2 C, 3 D, 4 E);
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F);
}

/// Full-domain generation for primitives (the `any::<T>()` entry).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over the whole domain of `T`.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` strategy constructor.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection and sizing strategies under the `prop::` path.
pub mod prop {
    /// Strategies for `Option<T>`.
    pub mod option {
        use crate::{Strategy, TestRng};

        /// Strategy yielding `Some` of the inner value or `None`.
        pub struct OptionStrategy<S>(S);

        /// `prop::option::of(element)`: `None` a quarter of the time.
        pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
            OptionStrategy(element)
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
                use rand::Rng;
                if rng.gen_range(0u32..4) == 0 {
                    None
                } else {
                    Some(self.0.generate(rng))
                }
            }
        }
    }

    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use rand::Rng;

        /// Anything usable as a collection size specification.
        pub trait SizeRange {
            /// Draws a size.
            fn pick(&self, rng: &mut TestRng) -> usize;
        }

        impl SizeRange for usize {
            fn pick(&self, _rng: &mut TestRng) -> usize {
                *self
            }
        }

        impl SizeRange for ::core::ops::Range<usize> {
            fn pick(&self, rng: &mut TestRng) -> usize {
                rng.gen_range(self.clone())
            }
        }

        impl SizeRange for ::core::ops::RangeInclusive<usize> {
            fn pick(&self, rng: &mut TestRng) -> usize {
                rng.gen_range(self.clone())
            }
        }

        /// Strategy for vectors of strategy-generated elements.
        pub struct VecStrategy<S, R> {
            element: S,
            size: R,
        }

        /// `prop::collection::vec(element, size)`.
        pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
            VecStrategy { element, size }
        }

        impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.size.pick(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

/// Declares property tests: each `fn name(arg in strategy, ...)` body
/// runs for `cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal muncher for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng: $crate::TestRng = $crate::new_test_rng(
                $crate::run_seed() ^ (stringify!($name).len() as u64) << 32,
            );
            for __case in 0..__cfg.cases {
                let mut __inputs = String::new();
                $(
                    let __generated = $crate::Strategy::generate(&($strat), &mut __rng);
                    __inputs.push_str(&format!(
                        "{} = {:?}, ",
                        stringify!($arg),
                        &__generated
                    ));
                    let $arg = __generated;
                )+
                let __result: ::core::result::Result<(), $crate::TestCaseError> =
                    (|| { $body Ok(()) })();
                if let Err(e) = __result {
                    panic!(
                        "proptest {} failed at case {}/{}: {}\n  inputs: {}\n  (set PROPTEST_SEED to vary the stream)",
                        stringify!($name), __case + 1, __cfg.cases, e, __inputs,
                    );
                }
            }
        }
        $crate::__proptest_fns! { @cfg($cfg) $($rest)* }
    };
}

/// Asserts within a property body, reporting via `TestCaseError`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)
            )));
        }
    };
}

/// Equality assertion within a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), __a, __b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), format!($($fmt)+), __a, __b
            )));
        }
    }};
}

/// Inequality assertion within a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if __a == __b {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                __a
            )));
        }
    }};
}

/// Uniform choice between alternative strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respected(x in 3u32..10, y in 0u8..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn vec_sizes(v in prop::collection::vec(any::<u32>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn oneof_and_map(x in prop_oneof![
            (0u32..5).prop_map(|v| v * 2),
            (100u32..105).prop_map(|v| v),
        ]) {
            prop_assert!(x < 10 || (100..105).contains(&x), "x = {}", x);
        }
    }
}
