//! Offline stand-in for `rand`.
//!
//! Implements the slice of the rand 0.8 API this workspace uses:
//! [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`], the
//! [`Rng`] extension methods `gen_range`/`gen_bool`/`gen`, and
//! [`seq::SliceRandom`] (`shuffle`/`choose`). The generator is
//! xoshiro256++ seeded through splitmix64 — a fixed, documented
//! algorithm, so seeded simulations reproduce across machines and
//! toolchains (the actual streams differ from real rand's ChaCha12;
//! only determinism, not stream compatibility, is promised).

/// Core trait: a source of random 64-bit words plus derived helpers.
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform sample from `range` (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// True with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        // 53-bit uniform in [0, 1).
        let x = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        x < p
    }

    /// A uniform sample of the full domain of `T`.
    fn gen<T>(&mut self) -> T
    where
        T: distributions::Standard,
        Self: Sized,
    {
        T::sample_standard(self)
    }
}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Builds an RNG from a 64-bit seed (expanded via splitmix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named RNG types.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard seeded generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl StdRng {
        /// The raw xoshiro256++ state, for checkpoint/restore of
        /// deterministic simulations. Restoring via
        /// [`StdRng::from_state`] resumes the stream exactly where
        /// [`StdRng::state`] captured it.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a previously captured state.
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ by Blackman & Vigna (public domain).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sampling from ranges and type domains.
pub mod distributions {
    use super::Rng;

    /// A range that can produce uniform samples of `T`.
    pub trait SampleRange<T> {
        /// Draws one uniform sample.
        fn sample_from<R: Rng>(self, rng: &mut R) -> T;
    }

    /// Full-domain uniform sampling (the `Standard` distribution).
    pub trait Standard: Sized {
        /// Draws one sample covering the whole domain of `Self`.
        fn sample_standard<R: Rng>(rng: &mut R) -> Self;
    }

    /// Unbiased uniform integer in `[0, n)`: reject the low
    /// `2^64 mod n` values so `x % n` is exactly uniform.
    fn uniform_below<R: Rng>(rng: &mut R, n: u64) -> u64 {
        debug_assert!(n > 0);
        let threshold = n.wrapping_neg() % n;
        loop {
            let x = rng.next_u64();
            if x >= threshold {
                return x % n;
            }
        }
    }

    macro_rules! int_ranges {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for ::core::ops::Range<$t> {
                fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range: empty range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + uniform_below(rng, span) as i128) as $t
                }
            }
            impl SampleRange<$t> for ::core::ops::RangeInclusive<$t> {
                fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "gen_range: empty range");
                    let span = (hi as i128 - lo as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + uniform_below(rng, span + 1) as i128) as $t
                }
            }
            impl Standard for $t {
                fn sample_standard<R: Rng>(rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl SampleRange<f64> for ::core::ops::Range<f64> {
        fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + unit * (self.end - self.start)
        }
    }

    impl Standard for bool {
        fn sample_standard<R: Rng>(rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Standard for f64 {
        fn sample_standard<R: Rng>(rng: &mut R) -> f64 {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: u64 = rng.gen_range(5..=5);
            assert_eq!(y, 5);
            let z: usize = rng.gen_range(0..3);
            assert!(z < 3);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }
}
