//! Offline stand-in for `tokio-macros`.
//!
//! Rewrites `async fn` items into synchronous wrappers that drive the
//! body with `::tokio::block_on`. Attribute arguments (e.g.
//! `flavor = "multi_thread"`) are accepted and ignored — the stand-in
//! runtime is thread-per-task, so every flavor behaves the same.

use proc_macro::{TokenStream, TokenTree};

/// Rewrites `[attrs] [vis] async fn name() [-> Ret] { body }` into a
/// plain fn whose body is `::tokio::block_on(async { body })`.
fn rewrite(item: TokenStream, test_attr: &str) -> TokenStream {
    let toks: Vec<TokenTree> = item.into_iter().collect();
    let async_idx = toks
        .iter()
        .position(|t| matches!(t, TokenTree::Ident(i) if i.to_string() == "async"))
        .expect("tokio attribute macros require an `async fn`");
    let fn_idx = toks
        .iter()
        .position(|t| matches!(t, TokenTree::Ident(i) if i.to_string() == "fn"))
        .expect("expected `fn`");
    let name = match &toks[fn_idx + 1] {
        TokenTree::Ident(i) => i.to_string(),
        other => panic!("expected function name, found {other}"),
    };
    let body = match toks.last() {
        Some(TokenTree::Group(g)) => g.to_string(),
        _ => panic!("expected function body"),
    };
    // Anything between the argument parens and the body (a return
    // type) is kept so `-> Result<..>` tests still typecheck.
    let ret: String = toks[fn_idx + 2..toks.len() - 1]
        .iter()
        .skip(1) // the `(...)` argument group
        .map(|t| t.to_string())
        .collect::<Vec<_>>()
        .join(" ");
    // Attributes/visibility written before `async` pass through.
    let prefix: String = toks[..async_idx]
        .iter()
        .map(|t| t.to_string())
        .collect::<Vec<_>>()
        .join(" ");
    format!("{test_attr} {prefix} fn {name}() {ret} {{ ::tokio::block_on(async {body}) }}")
        .parse()
        .expect("generated wrapper parses")
}

/// `#[tokio::test]`: run the async body on the stand-in runtime under
/// the standard `#[test]` harness.
#[proc_macro_attribute]
pub fn test(_args: TokenStream, item: TokenStream) -> TokenStream {
    rewrite(item, "#[::core::prelude::v1::test]")
}

/// `#[tokio::main]`: run the async body on the stand-in runtime.
#[proc_macro_attribute]
pub fn main(_args: TokenStream, item: TokenStream) -> TokenStream {
    rewrite(item, "")
}
