//! Offline stand-in for `serde`.
//!
//! The real serde abstracts over data formats with visitor-based
//! `Serializer`/`Deserializer` traits. This workspace only ever talks
//! JSON, so the stand-in collapses the data model to a concrete
//! [`Value`] tree: `Serialize` renders into a `Value`, `Deserialize`
//! reads back out of one, and `serde_json` (the sibling stub) handles
//! text. The derive macros (re-exported from `serde_derive`) generate
//! impls for the same struct/enum shapes real serde would, with the
//! same externally-tagged JSON layout, so encodings stay compatible
//! with what the real crates would produce for these types.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// A JSON-shaped value tree — the single data model of this stand-in.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer (serialized without a decimal point).
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating point number.
    F64(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Arr(Vec<Value>),
    /// JSON object; insertion order is preserved for stable output.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Builds a single-key object (`{"key": value}`) — the
    /// externally-tagged encoding of non-unit enum variants.
    pub fn tagged(key: &str, value: Value) -> Value {
        Value::Obj(vec![(key.to_string(), value)])
    }

    /// Looks a key up in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Error produced when a [`Value`] does not match the expected shape.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    /// A shape-mismatch error.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialize error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Renders `self` into the [`Value`] data model.
pub trait Serialize {
    /// The value-tree encoding of `self`.
    fn to_value(&self) -> Value;
}

/// Reconstructs `Self` from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Parses `Self` out of a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::new(format!("{n} out of range for {}", stringify!($t)))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::new(format!("{n} out of range for {}", stringify!($t)))),
                    other => Err(DeError::new(format!("expected integer, got {other:?}"))),
                }
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_sint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::new(format!("{n} out of range for {}", stringify!($t)))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::new(format!("{n} out of range for {}", stringify!($t)))),
                    other => Err(DeError::new(format!("expected integer, got {other:?}"))),
                }
            }
        }
    )*};
}
ser_sint!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            other => Err(DeError::new(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Arr(xs) => xs.iter().map(T::from_value).collect(),
            other => Err(DeError::new(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+);)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Arr(xs) => Ok(($($t::from_value(
                        xs.get($n).ok_or_else(|| DeError::new("tuple too short"))?
                    )?,)+)),
                    other => Err(DeError::new(format!("expected tuple array, got {other:?}"))),
                }
            }
        }
    )*};
}
ser_tuple! {
    (0 A);
    (0 A, 1 B);
    (0 A, 1 B, 2 C);
    (0 A, 1 B, 2 C, 3 D);
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        // JSON object keys must be strings; encode non-string keys via
        // their serialized form's display, matching serde_json's
        // map-key behaviour for integer keys.
        Value::Obj(
            self.iter()
                .map(|(k, v)| {
                    let key = match k.to_value() {
                        Value::Str(s) => s,
                        Value::U64(n) => n.to_string(),
                        Value::I64(n) => n.to_string(),
                        other => format!("{other:?}"),
                    };
                    (key, v.to_value())
                })
                .collect(),
        )
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
