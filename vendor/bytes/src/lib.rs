//! Offline stand-in for `bytes`: a Vec-backed [`BytesMut`] with the
//! `Buf`/`BufMut` methods this workspace's codec uses.

use std::ops::{Deref, DerefMut};

/// Consuming side of a byte buffer.
pub trait Buf {
    /// Discards the first `n` readable bytes.
    fn advance(&mut self, n: usize);
}

/// Producing side of a byte buffer.
pub trait BufMut {
    /// Appends a big-endian u32.
    fn put_u32(&mut self, v: u32);
    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);
}

/// A growable byte buffer with O(1) front-consumption.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
    /// Read cursor: `data[start..]` is the live region.
    start: usize,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
            start: 0,
        }
    }

    /// Readable length.
    pub fn len(&self) -> usize {
        self.data.len() - self.start
    }

    /// True when nothing is readable.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Splits off and returns the first `n` readable bytes.
    pub fn split_to(&mut self, n: usize) -> BytesMut {
        assert!(n <= self.len(), "split_to out of bounds");
        let out = BytesMut {
            data: self.data[self.start..self.start + n].to_vec(),
            start: 0,
        };
        self.start += n;
        out
    }
}

impl Buf for BytesMut {
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance out of bounds");
        self.start += n;
    }
}

impl BufMut for BytesMut {
    fn put_u32(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..]
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        let s = self.start;
        &mut self.data[s..]
    }
}

impl From<&[u8]> for BytesMut {
    fn from(src: &[u8]) -> Self {
        BytesMut {
            data: src.to_vec(),
            start: 0,
        }
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_advance_split() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u32(0xDEAD_BEEF);
        b.put_slice(b"xyz");
        assert_eq!(b.len(), 7);
        assert_eq!(&b[..4], &[0xDE, 0xAD, 0xBE, 0xEF]);
        b.advance(4);
        assert_eq!(&b[..], b"xyz");
        let head = b.split_to(1);
        assert_eq!(&head[..], b"x");
        assert_eq!(&b[..], b"yz");
        assert!(!b.is_empty());
    }
}
