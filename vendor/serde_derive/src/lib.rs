//! Offline stand-in for `serde_derive`.
//!
//! Hand-rolled derive macros (no `syn`/`quote` available offline):
//! the input item is parsed directly from the `proc_macro` token
//! stream. Supported shapes — which cover every derived type in this
//! workspace — are non-generic structs with named fields, tuple
//! structs, and enums with unit / newtype / tuple / struct variants,
//! plus the `#[serde(default)]` field attribute.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------
// Input model
// ---------------------------------------------------------------------

struct Field {
    name: String,
    default: bool,
}

enum Body {
    /// Named-field struct.
    Struct(Vec<Field>),
    /// Tuple struct with the given arity.
    Tuple(usize),
    /// Enum of variants.
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    /// Tuple variant with arity.
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Input {
    name: String,
    body: Body,
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

struct Cursor {
    toks: Vec<TokenTree>,
    i: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Self {
        Cursor {
            toks: ts.into_iter().collect(),
            i: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.i)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.i).cloned();
        if t.is_some() {
            self.i += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.i >= self.toks.len()
    }

    /// Skips attributes (`#[...]`), returning true if any of them was
    /// `#[serde(default)]`.
    fn skip_attrs(&mut self) -> bool {
        let mut has_default = false;
        while let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() != '#' {
                break;
            }
            self.next(); // '#'
            if let Some(TokenTree::Group(g)) = self.next() {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                if let Some(TokenTree::Ident(id)) = inner.first() {
                    if id.to_string() == "serde" {
                        if let Some(TokenTree::Group(args)) = inner.get(1) {
                            for t in args.stream() {
                                if let TokenTree::Ident(a) = t {
                                    match a.to_string().as_str() {
                                        "default" => has_default = true,
                                        other => panic!(
                                            "serde stand-in derive: unsupported \
                                             #[serde({other})] attribute"
                                        ),
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        has_default
    }

    /// Skips a `pub` / `pub(...)` visibility marker.
    fn skip_vis(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.next();
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.next();
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self) -> String {
        match self.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde stand-in derive: expected identifier, got {other:?}"),
        }
    }

    /// Skips tokens of a type, stopping after the separating top-level
    /// comma (angle-bracket depth tracked so `Map<K, V>` stays whole).
    fn skip_type_and_comma(&mut self) {
        let mut angle: i32 = 0;
        while let Some(t) = self.next() {
            if let TokenTree::Punct(p) = &t {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => return,
                    _ => {}
                }
            }
        }
    }
}

/// Counts top-level comma-separated elements of a tuple body.
fn tuple_arity(group_stream: TokenStream) -> usize {
    let mut angle: i32 = 0;
    let mut count = 0;
    let mut saw_tokens = false;
    for t in group_stream {
        saw_tokens = true;
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => count += 1,
                _ => {}
            }
        }
    }
    if !saw_tokens {
        return 0;
    }
    // A trailing comma would double-count; the workspace writes none,
    // and `(T,)` vs `(T)` both mean arity 1 for our purposes.
    count + 1
}

fn parse_named_fields(group_stream: TokenStream) -> Vec<Field> {
    let mut c = Cursor::new(group_stream);
    let mut fields = Vec::new();
    while !c.at_end() {
        let default = c.skip_attrs();
        if c.at_end() {
            break;
        }
        c.skip_vis();
        let name = c.expect_ident();
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde stand-in derive: expected ':' after field, got {other:?}"),
        }
        c.skip_type_and_comma();
        fields.push(Field { name, default });
    }
    fields
}

fn parse_input(ts: TokenStream) -> Input {
    let mut c = Cursor::new(ts);
    c.skip_attrs();
    c.skip_vis();
    let kw = c.expect_ident();
    let name = c.expect_ident();
    if let Some(TokenTree::Punct(p)) = c.peek() {
        if p.as_char() == '<' {
            panic!("serde stand-in derive: generic types are not supported");
        }
    }
    match kw.as_str() {
        "struct" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Input {
                name,
                body: Body::Struct(parse_named_fields(g.stream())),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Input {
                name,
                body: Body::Tuple(tuple_arity(g.stream())),
            },
            other => panic!("serde stand-in derive: unsupported struct body {other:?}"),
        },
        "enum" => {
            let group = match c.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
                other => panic!("serde stand-in derive: expected enum body, got {other:?}"),
            };
            let mut vc = Cursor::new(group.stream());
            let mut variants = Vec::new();
            while !vc.at_end() {
                vc.skip_attrs();
                if vc.at_end() {
                    break;
                }
                let vname = vc.expect_ident();
                let shape = match vc.peek() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let arity = tuple_arity(g.stream());
                        vc.next();
                        VariantShape::Tuple(arity)
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let fields = parse_named_fields(g.stream());
                        vc.next();
                        VariantShape::Struct(fields)
                    }
                    _ => VariantShape::Unit,
                };
                // Consume the separating comma, if any.
                if let Some(TokenTree::Punct(p)) = vc.peek() {
                    if p.as_char() == ',' {
                        vc.next();
                    }
                }
                variants.push(Variant { name: vname, shape });
            }
            Input {
                name,
                body: Body::Enum(variants),
            }
        }
        other => panic!("serde stand-in derive: expected struct or enum, got `{other}`"),
    }
}

// ---------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------

fn gen_named_ser(path: &str, fields: &[Field]) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "({:?}.to_string(), serde::Serialize::to_value({path}{name})),",
                f.name,
                name = f.name
            )
        })
        .collect();
    format!("serde::Value::Obj(vec![{}])", entries.join(""))
}

fn gen_named_de(fields: &[Field], src: &str, ty: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            let missing = if f.default {
                "::core::default::Default::default()".to_string()
            } else {
                format!(
                    "return Err(serde::DeError::new(\"missing field `{}` in {}\"))",
                    f.name, ty
                )
            };
            format!(
                "{name}: match {src}.get({name:?}) {{ \
                    Some(__x) => serde::Deserialize::from_value(__x)?, \
                    None => {missing}, \
                 }},",
                name = f.name,
            )
        })
        .collect();
    entries.join("")
}

fn derive_parts(input: &Input) -> (String, String) {
    let name = &input.name;
    match &input.body {
        Body::Struct(fields) => {
            let ser = format!(
                "impl serde::Serialize for {name} {{ \
                     fn to_value(&self) -> serde::Value {{ {} }} \
                 }}",
                gen_named_ser("&self.", fields)
            );
            let de = format!(
                "impl serde::Deserialize for {name} {{ \
                     fn from_value(__v: &serde::Value) -> ::core::result::Result<Self, serde::DeError> {{ \
                         Ok(Self {{ {} }}) \
                     }} \
                 }}",
                gen_named_de(fields, "__v", name)
            );
            (ser, de)
        }
        Body::Tuple(1) => {
            let ser = format!(
                "impl serde::Serialize for {name} {{ \
                     fn to_value(&self) -> serde::Value {{ serde::Serialize::to_value(&self.0) }} \
                 }}"
            );
            let de = format!(
                "impl serde::Deserialize for {name} {{ \
                     fn from_value(__v: &serde::Value) -> ::core::result::Result<Self, serde::DeError> {{ \
                         Ok(Self(serde::Deserialize::from_value(__v)?)) \
                     }} \
                 }}"
            );
            (ser, de)
        }
        Body::Tuple(n) => {
            let sers: Vec<String> = (0..*n)
                .map(|i| format!("serde::Serialize::to_value(&self.{i}),"))
                .collect();
            let ser = format!(
                "impl serde::Serialize for {name} {{ \
                     fn to_value(&self) -> serde::Value {{ serde::Value::Arr(vec![{}]) }} \
                 }}",
                sers.join("")
            );
            let des: Vec<String> = (0..*n)
                .map(|i| {
                    format!(
                        "serde::Deserialize::from_value(__xs.get({i}).ok_or_else(|| \
                         serde::DeError::new(\"tuple struct {name} too short\"))?)?,"
                    )
                })
                .collect();
            let de = format!(
                "impl serde::Deserialize for {name} {{ \
                     fn from_value(__v: &serde::Value) -> ::core::result::Result<Self, serde::DeError> {{ \
                         match __v {{ \
                             serde::Value::Arr(__xs) => Ok(Self({})), \
                             __other => Err(serde::DeError::new(format!(\"expected array for {name}, got {{__other:?}}\"))), \
                         }} \
                     }} \
                 }}",
                des.join("")
            );
            (ser, de)
        }
        Body::Enum(variants) => {
            // Serialize: externally tagged, matching real serde's JSON.
            let mut ser_arms = Vec::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => ser_arms.push(format!(
                        "{name}::{vn} => serde::Value::Str({vn:?}.to_string()),"
                    )),
                    VariantShape::Tuple(1) => ser_arms.push(format!(
                        "{name}::{vn}(__f0) => \
                         serde::Value::tagged({vn:?}, serde::Serialize::to_value(__f0)),"
                    )),
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let vals: Vec<String> = (0..*n)
                            .map(|i| format!("serde::Serialize::to_value(__f{i}),"))
                            .collect();
                        ser_arms.push(format!(
                            "{name}::{vn}({}) => serde::Value::tagged({vn:?}, \
                             serde::Value::Arr(vec![{}])),",
                            binds.join(","),
                            vals.join("")
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "({:?}.to_string(), serde::Serialize::to_value({})),",
                                    f.name, f.name
                                )
                            })
                            .collect();
                        ser_arms.push(format!(
                            "{name}::{vn} {{ {} }} => serde::Value::tagged({vn:?}, \
                             serde::Value::Obj(vec![{}])),",
                            binds.join(","),
                            entries.join("")
                        ));
                    }
                }
            }
            let ser = format!(
                "impl serde::Serialize for {name} {{ \
                     fn to_value(&self) -> serde::Value {{ match self {{ {} }} }} \
                 }}",
                ser_arms.join("")
            );

            // Deserialize.
            let mut unit_arms = Vec::new();
            let mut tagged_arms = Vec::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => {
                        unit_arms.push(format!("{vn:?} => Ok({name}::{vn}),"));
                    }
                    VariantShape::Tuple(1) => tagged_arms.push(format!(
                        "{vn:?} => Ok({name}::{vn}(serde::Deserialize::from_value(__val)?)),"
                    )),
                    VariantShape::Tuple(n) => {
                        let des: Vec<String> = (0..*n)
                            .map(|i| {
                                format!(
                                    "serde::Deserialize::from_value(__xs.get({i}).ok_or_else(|| \
                                     serde::DeError::new(\"variant {name}::{vn} too short\"))?)?,"
                                )
                            })
                            .collect();
                        tagged_arms.push(format!(
                            "{vn:?} => match __val {{ \
                                 serde::Value::Arr(__xs) => Ok({name}::{vn}({})), \
                                 __o => Err(serde::DeError::new(format!(\
                                     \"expected array for {name}::{vn}, got {{__o:?}}\"))), \
                             }},",
                            des.join("")
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        tagged_arms.push(format!(
                            "{vn:?} => Ok({name}::{vn} {{ {} }}),",
                            gen_named_de(fields, "__val", &format!("{name}::{vn}"))
                        ));
                    }
                }
            }
            let de = format!(
                "impl serde::Deserialize for {name} {{ \
                     fn from_value(__v: &serde::Value) -> ::core::result::Result<Self, serde::DeError> {{ \
                         #[allow(unused_variables, unreachable_patterns)] \
                         match __v {{ \
                             serde::Value::Str(__s) => match __s.as_str() {{ \
                                 {} \
                                 __other => Err(serde::DeError::new(format!(\
                                     \"unknown unit variant {{__other}} of {name}\"))), \
                             }}, \
                             serde::Value::Obj(__fields) if __fields.len() == 1 => {{ \
                                 let (__tag, __val) = &__fields[0]; \
                                 match __tag.as_str() {{ \
                                     {} \
                                     __other => Err(serde::DeError::new(format!(\
                                         \"unknown variant {{__other}} of {name}\"))), \
                                 }} \
                             }} \
                             __other => Err(serde::DeError::new(format!(\
                                 \"expected variant encoding for {name}, got {{__other:?}}\"))), \
                         }} \
                     }} \
                 }}",
                unit_arms.join(""),
                tagged_arms.join("")
            );
            (ser, de)
        }
    }
}

/// Derives the stand-in `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(item: TokenStream) -> TokenStream {
    let input = parse_input(item);
    let (ser, _) = derive_parts(&input);
    format!("#[automatically_derived] {ser}").parse().unwrap()
}

/// Derives the stand-in `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(item: TokenStream) -> TokenStream {
    let input = parse_input(item);
    let (_, de) = derive_parts(&input);
    format!("#[automatically_derived] {de}").parse().unwrap()
}
