//! Offline stand-in for `tokio`: a thread-per-task async runtime.
//!
//! Every spawned task gets its own OS thread running a small
//! `block_on` executor (a parker-based [`std::task::Wake`]). That
//! makes blocking std I/O inside futures safe — a blocked task only
//! blocks its own thread — so the net and time primitives here are
//! thin wrappers over `std::net` and `std::thread::sleep`. The only
//! genuinely poll-driven primitives are the [`sync`] channels, because
//! `select!` must be able to wait on several of them at once from a
//! single thread.
//!
//! Surface implemented (what this workspace uses): `spawn` /
//! `task::JoinHandle`, `block_on`, `net::{TcpListener, TcpStream}`
//! with `into_split`, `io::{AsyncReadExt, AsyncWriteExt, duplex}`,
//! `sync::{mpsc, oneshot}`, `time::{sleep, interval}`, a two-branch
//! `select!`, and the `#[tokio::test]` / `#[tokio::main]` attributes.

use std::future::Future;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};
use std::thread::Thread;

pub use task::spawn;
pub use tokio_macros::{main, test};

/// Wakes a parked executor thread.
struct ThreadWaker {
    thread: Thread,
    notified: AtomicBool,
}

impl Wake for ThreadWaker {
    fn wake(self: Arc<Self>) {
        self.wake_by_ref();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.notified.store(true, Ordering::SeqCst);
        self.thread.unpark();
    }
}

/// Drives a future to completion on the current thread, parking
/// between polls. This is the whole runtime: `#[tokio::test]`,
/// `#[tokio::main]`, and every spawned task bottom out here.
pub fn block_on<F: Future>(fut: F) -> F::Output {
    let parker = Arc::new(ThreadWaker {
        thread: std::thread::current(),
        notified: AtomicBool::new(false),
    });
    let waker = Waker::from(parker.clone());
    let mut cx = Context::from_waker(&waker);
    let mut fut = std::pin::pin!(fut);
    loop {
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(v) => return v,
            Poll::Pending => {
                while !parker.notified.swap(false, Ordering::SeqCst) {
                    std::thread::park();
                }
            }
        }
    }
}

/// Task spawning.
pub mod task {
    use std::future::Future;
    use std::pin::Pin;
    use std::sync::{Arc, Mutex};
    use std::task::{Context, Poll, Waker};

    /// The spawned task panicked.
    #[derive(Debug)]
    pub struct JoinError(());

    impl std::fmt::Display for JoinError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "task panicked")
        }
    }

    impl std::error::Error for JoinError {}

    struct JoinState<T> {
        result: Option<std::thread::Result<T>>,
        waker: Option<Waker>,
    }

    /// Awaitable handle to a spawned task. Dropping it detaches the
    /// task (the thread keeps running), matching tokio.
    pub struct JoinHandle<T> {
        state: Arc<Mutex<JoinState<T>>>,
    }

    /// Spawns `fut` as its own OS thread driving `block_on`.
    pub fn spawn<F>(fut: F) -> JoinHandle<F::Output>
    where
        F: Future + Send + 'static,
        F::Output: Send + 'static,
    {
        let state = Arc::new(Mutex::new(JoinState {
            result: None,
            waker: None,
        }));
        let shared = state.clone();
        std::thread::spawn(move || {
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| crate::block_on(fut)));
            let mut s = shared.lock().unwrap();
            s.result = Some(r);
            if let Some(w) = s.waker.take() {
                w.wake();
            }
        });
        JoinHandle { state }
    }

    impl<T> Future for JoinHandle<T> {
        type Output = Result<T, JoinError>;

        fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
            let mut s = self.state.lock().unwrap();
            match s.result.take() {
                Some(r) => Poll::Ready(r.map_err(|_| JoinError(()))),
                None => {
                    s.waker = Some(cx.waker().clone());
                    Poll::Pending
                }
            }
        }
    }
}

/// TCP, wrapping `std::net` (blocking is fine: tasks own threads).
pub mod net {
    use std::io;
    use std::net::{Shutdown, SocketAddr, ToSocketAddrs};

    /// Async-flavored wrapper over [`std::net::TcpListener`].
    pub struct TcpListener {
        inner: std::net::TcpListener,
    }

    impl TcpListener {
        /// Binds to `addr`.
        pub async fn bind<A: ToSocketAddrs>(addr: A) -> io::Result<TcpListener> {
            Ok(TcpListener {
                inner: std::net::TcpListener::bind(addr)?,
            })
        }

        /// Accepts one connection (blocks this task's thread).
        pub async fn accept(&self) -> io::Result<(TcpStream, SocketAddr)> {
            let (sock, addr) = self.inner.accept()?;
            sock.set_nodelay(true).ok();
            Ok((TcpStream { inner: sock }, addr))
        }

        /// The bound local address.
        pub fn local_addr(&self) -> io::Result<SocketAddr> {
            self.inner.local_addr()
        }
    }

    /// Async-flavored wrapper over [`std::net::TcpStream`].
    pub struct TcpStream {
        inner: std::net::TcpStream,
    }

    impl TcpStream {
        /// Connects to `addr`.
        pub async fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<TcpStream> {
            let sock = std::net::TcpStream::connect(addr)?;
            sock.set_nodelay(true).ok();
            Ok(TcpStream { inner: sock })
        }

        /// Splits into independently owned read and write halves
        /// (via descriptor duplication).
        pub fn into_split(self) -> (OwnedReadHalf, OwnedWriteHalf) {
            let rd = self.inner.try_clone().expect("duplicate socket handle");
            (
                OwnedReadHalf { inner: rd },
                OwnedWriteHalf { inner: self.inner },
            )
        }
    }

    /// Owned read half of a split [`TcpStream`].
    pub struct OwnedReadHalf {
        pub(crate) inner: std::net::TcpStream,
    }

    /// Owned write half of a split [`TcpStream`].
    pub struct OwnedWriteHalf {
        pub(crate) inner: std::net::TcpStream,
    }

    impl Drop for OwnedWriteHalf {
        /// Half-closes the socket so the peer's pending reads see EOF
        /// — what tokio's write half does on drop, and what peer-death
        /// detection in the actor tests relies on.
        fn drop(&mut self) {
            let _ = self.inner.shutdown(Shutdown::Write);
        }
    }
}

/// Async read/write traits plus an in-memory duplex pipe.
pub mod io {
    use std::collections::VecDeque;
    use std::io::{Read, Write};
    use std::sync::{Arc, Condvar, Mutex};

    /// Async reads. Implementations may block the calling thread —
    /// every task owns one.
    #[allow(async_fn_in_trait)]
    pub trait AsyncReadExt {
        /// Fills `buf` completely or fails with `UnexpectedEof`.
        async fn read_exact(&mut self, buf: &mut [u8]) -> std::io::Result<usize>;
    }

    /// Async writes. Implementations may block the calling thread.
    #[allow(async_fn_in_trait)]
    pub trait AsyncWriteExt {
        /// Writes all of `buf`.
        async fn write_all(&mut self, buf: &[u8]) -> std::io::Result<()>;
    }

    impl AsyncReadExt for crate::net::OwnedReadHalf {
        async fn read_exact(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            self.inner.read_exact(buf)?;
            Ok(buf.len())
        }
    }

    impl AsyncWriteExt for crate::net::OwnedWriteHalf {
        async fn write_all(&mut self, buf: &[u8]) -> std::io::Result<()> {
            self.inner.write_all(buf)?;
            self.inner.flush()
        }
    }

    /// One direction of a duplex pipe.
    struct Pipe {
        state: Mutex<PipeState>,
        readable: Condvar,
    }

    struct PipeState {
        buf: VecDeque<u8>,
        closed: bool,
    }

    impl Pipe {
        fn new() -> Self {
            Pipe {
                state: Mutex::new(PipeState {
                    buf: VecDeque::new(),
                    closed: false,
                }),
                readable: Condvar::new(),
            }
        }

        fn close(&self) {
            self.state.lock().unwrap().closed = true;
            self.readable.notify_all();
        }
    }

    /// One endpoint of an in-memory, bidirectional byte stream.
    pub struct DuplexStream {
        read: Arc<Pipe>,
        write: Arc<Pipe>,
    }

    /// An in-memory connected pair, as `tokio::io::duplex`. The
    /// buffer size cap is accepted but not enforced (writes never
    /// block).
    pub fn duplex(_max_buf_size: usize) -> (DuplexStream, DuplexStream) {
        let ab = Arc::new(Pipe::new());
        let ba = Arc::new(Pipe::new());
        (
            DuplexStream {
                read: ba.clone(),
                write: ab.clone(),
            },
            DuplexStream {
                read: ab,
                write: ba,
            },
        )
    }

    impl Drop for DuplexStream {
        fn drop(&mut self) {
            self.write.close();
            self.read.close();
        }
    }

    impl AsyncReadExt for DuplexStream {
        async fn read_exact(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let mut filled = 0;
            let mut st = self.read.state.lock().unwrap();
            while filled < buf.len() {
                while let Some(b) = st.buf.pop_front() {
                    buf[filled] = b;
                    filled += 1;
                    if filled == buf.len() {
                        return Ok(filled);
                    }
                }
                if st.closed {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "duplex closed",
                    ));
                }
                st = self.read.readable.wait(st).unwrap();
            }
            Ok(filled)
        }
    }

    impl AsyncWriteExt for DuplexStream {
        async fn write_all(&mut self, buf: &[u8]) -> std::io::Result<()> {
            let mut st = self.write.state.lock().unwrap();
            if st.closed {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::BrokenPipe,
                    "duplex closed",
                ));
            }
            st.buf.extend(buf.iter().copied());
            self.write.readable.notify_all();
            Ok(())
        }
    }
}

/// Channels. These are genuinely waker-driven (not blocking) because
/// `select!` must wait on two of them from one thread.
pub mod sync {
    /// Multi-producer single-consumer bounded channel.
    pub mod mpsc {
        use std::collections::VecDeque;
        use std::future::poll_fn;
        use std::sync::{Arc, Mutex};
        use std::task::{Poll, Waker};

        struct Chan<T> {
            q: VecDeque<T>,
            cap: usize,
            senders: usize,
            rx_alive: bool,
            rx_wakers: Vec<Waker>,
            tx_wakers: Vec<Waker>,
        }

        /// The receiver dropped; the value comes back.
        #[derive(Debug)]
        pub struct SendError<T>(pub T);

        /// Sending side; clonable.
        pub struct Sender<T> {
            chan: Arc<Mutex<Chan<T>>>,
        }

        /// Receiving side.
        pub struct Receiver<T> {
            chan: Arc<Mutex<Chan<T>>>,
        }

        /// A bounded channel of capacity `cap`.
        pub fn channel<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
            assert!(cap > 0, "mpsc capacity must be positive");
            let chan = Arc::new(Mutex::new(Chan {
                q: VecDeque::new(),
                cap,
                senders: 1,
                rx_alive: true,
                rx_wakers: Vec::new(),
                tx_wakers: Vec::new(),
            }));
            (Sender { chan: chan.clone() }, Receiver { chan })
        }

        impl<T> Clone for Sender<T> {
            fn clone(&self) -> Self {
                self.chan.lock().unwrap().senders += 1;
                Sender {
                    chan: self.chan.clone(),
                }
            }
        }

        impl<T> Drop for Sender<T> {
            fn drop(&mut self) {
                let mut c = self.chan.lock().unwrap();
                c.senders -= 1;
                if c.senders == 0 {
                    for w in c.rx_wakers.drain(..) {
                        w.wake();
                    }
                }
            }
        }

        impl<T> Drop for Receiver<T> {
            fn drop(&mut self) {
                let mut c = self.chan.lock().unwrap();
                c.rx_alive = false;
                for w in c.tx_wakers.drain(..) {
                    w.wake();
                }
            }
        }

        impl<T> std::fmt::Debug for Sender<T> {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str("mpsc::Sender")
            }
        }

        impl<T> std::fmt::Debug for Receiver<T> {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str("mpsc::Receiver")
            }
        }

        impl<T> Sender<T> {
            /// Sends `value`, waiting for space; fails if the
            /// receiver is gone.
            pub async fn send(&self, value: T) -> Result<(), SendError<T>> {
                let mut item = Some(value);
                poll_fn(move |cx| {
                    let mut c = self.chan.lock().unwrap();
                    if !c.rx_alive {
                        return Poll::Ready(Err(SendError(
                            item.take().expect("send future polled after completion"),
                        )));
                    }
                    if c.q.len() < c.cap {
                        c.q.push_back(item.take().expect("send future polled after completion"));
                        for w in c.rx_wakers.drain(..) {
                            w.wake();
                        }
                        Poll::Ready(Ok(()))
                    } else {
                        c.tx_wakers.push(cx.waker().clone());
                        Poll::Pending
                    }
                })
                .await
            }
        }

        impl<T> Receiver<T> {
            /// Receives the next value; `None` once all senders are
            /// gone and the queue drained.
            pub async fn recv(&mut self) -> Option<T> {
                poll_fn(|cx| {
                    let mut c = self.chan.lock().unwrap();
                    if let Some(v) = c.q.pop_front() {
                        for w in c.tx_wakers.drain(..) {
                            w.wake();
                        }
                        return Poll::Ready(Some(v));
                    }
                    if c.senders == 0 {
                        return Poll::Ready(None);
                    }
                    c.rx_wakers.push(cx.waker().clone());
                    Poll::Pending
                })
                .await
            }
        }
    }

    /// Single-value channel.
    pub mod oneshot {
        use std::future::Future;
        use std::pin::Pin;
        use std::sync::{Arc, Mutex};
        use std::task::{Context, Poll, Waker};

        struct State<T> {
            value: Option<T>,
            tx_gone: bool,
            rx_gone: bool,
            waker: Option<Waker>,
        }

        /// The sender dropped without sending.
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        pub struct RecvError;

        impl std::fmt::Display for RecvError {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str("oneshot sender dropped")
            }
        }

        impl std::error::Error for RecvError {}

        /// Sending side; consumed by `send`.
        pub struct Sender<T> {
            state: Arc<Mutex<State<T>>>,
        }

        /// Receiving side; a future resolving to the sent value.
        pub struct Receiver<T> {
            state: Arc<Mutex<State<T>>>,
        }

        /// A fresh oneshot pair.
        pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
            let state = Arc::new(Mutex::new(State {
                value: None,
                tx_gone: false,
                rx_gone: false,
                waker: None,
            }));
            (
                Sender {
                    state: state.clone(),
                },
                Receiver { state },
            )
        }

        impl<T> std::fmt::Debug for Sender<T> {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str("oneshot::Sender")
            }
        }

        impl<T> Sender<T> {
            /// Delivers `value`, or hands it back if the receiver is
            /// gone.
            pub fn send(self, value: T) -> Result<(), T> {
                let mut s = self.state.lock().unwrap();
                if s.rx_gone {
                    return Err(value);
                }
                s.value = Some(value);
                if let Some(w) = s.waker.take() {
                    w.wake();
                }
                Ok(())
            }
        }

        impl<T> Drop for Sender<T> {
            fn drop(&mut self) {
                let mut s = self.state.lock().unwrap();
                s.tx_gone = true;
                if let Some(w) = s.waker.take() {
                    w.wake();
                }
            }
        }

        impl<T> Drop for Receiver<T> {
            fn drop(&mut self) {
                self.state.lock().unwrap().rx_gone = true;
            }
        }

        impl<T> Future for Receiver<T> {
            type Output = Result<T, RecvError>;

            fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
                let mut s = self.state.lock().unwrap();
                if let Some(v) = s.value.take() {
                    return Poll::Ready(Ok(v));
                }
                if s.tx_gone {
                    return Poll::Ready(Err(RecvError));
                }
                s.waker = Some(cx.waker().clone());
                Poll::Pending
            }
        }
    }
}

/// Timers. Blocking sleeps: a sleeping task only occupies its own
/// thread.
pub mod time {
    use std::time::{Duration, Instant};

    /// Suspends this task for `d`.
    pub async fn sleep(d: Duration) {
        std::thread::sleep(d);
    }

    /// A periodic ticker. The first tick fires immediately.
    pub struct Interval {
        next: Instant,
        period: Duration,
    }

    /// A ticker firing every `period`.
    pub fn interval(period: Duration) -> Interval {
        assert!(period > Duration::ZERO, "interval period must be positive");
        Interval {
            next: Instant::now(),
            period,
        }
    }

    impl Interval {
        /// Waits for the next tick.
        pub async fn tick(&mut self) -> Instant {
            let now = Instant::now();
            if let Some(wait) = self.next.checked_duration_since(now) {
                std::thread::sleep(wait);
            }
            let fired = self.next;
            self.next += self.period;
            if self.next < Instant::now() {
                // Fell behind; don't burst to catch up.
                self.next = Instant::now() + self.period;
            }
            fired
        }
    }
}

/// Support code for [`select!`]; not public API.
#[doc(hidden)]
pub mod macros_support {
    use std::future::Future;
    use std::pin::Pin;
    use std::task::Poll;

    /// Which branch of a two-way select won.
    pub enum Either2<A, B> {
        /// First branch completed with an accepted value.
        A(A),
        /// Second branch completed with an accepted value.
        B(B),
        /// Both branches completed with rejected values.
        Disabled,
    }

    /// Polls both futures until one yields a value its predicate
    /// accepts; a future whose value is rejected is disabled (never
    /// polled again), as in tokio's pattern-matching select arms.
    pub async fn select2<FA, FB>(
        mut a: Pin<&mut FA>,
        mut b: Pin<&mut FB>,
        accept_a: impl Fn(&FA::Output) -> bool,
        accept_b: impl Fn(&FB::Output) -> bool,
    ) -> Either2<FA::Output, FB::Output>
    where
        FA: Future,
        FB: Future,
    {
        let mut a_disabled = false;
        let mut b_disabled = false;
        std::future::poll_fn(move |cx| {
            if !a_disabled {
                if let Poll::Ready(v) = a.as_mut().poll(cx) {
                    if accept_a(&v) {
                        return Poll::Ready(Either2::A(v));
                    }
                    a_disabled = true;
                }
            }
            if !b_disabled {
                if let Poll::Ready(v) = b.as_mut().poll(cx) {
                    if accept_b(&v) {
                        return Poll::Ready(Either2::B(v));
                    }
                    b_disabled = true;
                }
            }
            if a_disabled && b_disabled {
                return Poll::Ready(Either2::Disabled);
            }
            Poll::Pending
        })
        .await
    }
}

/// Two pattern arms plus `else`, as in
/// `select! { Some(x) = rx.recv() => .., Some(y) = rx2.recv() => .., else => .. }`.
/// A branch whose completed value fails its pattern is disabled; when
/// both are disabled, the `else` arm runs.
#[macro_export]
macro_rules! select {
    ($p1:pat = $f1:expr => $e1:expr, $p2:pat = $f2:expr => $e2:expr, else => $else:expr $(,)?) => {{
        let mut __select_a = ::std::pin::pin!($f1);
        let mut __select_b = ::std::pin::pin!($f2);
        #[allow(unused_variables)]
        let __select_out = $crate::macros_support::select2(
            __select_a.as_mut(),
            __select_b.as_mut(),
            |__v| matches!(__v, $p1),
            |__v| matches!(__v, $p2),
        )
        .await;
        match __select_out {
            $crate::macros_support::Either2::A($p1) => $e1,
            $crate::macros_support::Either2::B($p2) => $e2,
            _ => $else,
        }
    }};
}

#[cfg(test)]
mod tests {
    #[test]
    fn block_on_and_spawn() {
        let out = crate::block_on(async {
            let h = crate::spawn(async { 21 * 2 });
            h.await.unwrap()
        });
        assert_eq!(out, 42);
    }

    #[test]
    fn mpsc_roundtrip_and_close() {
        crate::block_on(async {
            let (tx, mut rx) = crate::sync::mpsc::channel::<u32>(4);
            let tx2 = tx.clone();
            let h = crate::spawn(async move {
                tx2.send(1).await.unwrap();
                tx2.send(2).await.unwrap();
            });
            assert_eq!(rx.recv().await, Some(1));
            assert_eq!(rx.recv().await, Some(2));
            let _ = h.await;
            drop(tx);
            assert_eq!(rx.recv().await, None);
        });
    }

    #[test]
    fn oneshot_delivery_and_drop() {
        crate::block_on(async {
            let (tx, rx) = crate::sync::oneshot::channel();
            tx.send(7u32).unwrap();
            assert_eq!(rx.await, Ok(7));

            let (tx, rx) = crate::sync::oneshot::channel::<u32>();
            drop(tx);
            assert!(rx.await.is_err());
        });
    }

    #[test]
    fn select_prefers_ready_branch_and_else() {
        crate::block_on(async {
            let (tx1, mut rx1) = crate::sync::mpsc::channel::<u32>(1);
            let (tx2, mut rx2) = crate::sync::mpsc::channel::<u32>(1);
            tx2.send(9).await.unwrap();
            let got = select! {
                Some(v) = rx1.recv() => v,
                Some(v) = rx2.recv() => v + 1,
                else => 0,
            };
            assert_eq!(got, 10);
            drop(tx1);
            drop(tx2);
            let got = select! {
                Some(v) = rx1.recv() => v,
                Some(v) = rx2.recv() => v,
                else => 99,
            };
            assert_eq!(got, 99);
        });
    }

    #[test]
    fn tcp_split_and_eof_on_write_drop() {
        use crate::io::{AsyncReadExt, AsyncWriteExt};
        crate::block_on(async {
            let listener = crate::net::TcpListener::bind("127.0.0.1:0").await.unwrap();
            let addr = listener.local_addr().unwrap();
            let server = crate::spawn(async move {
                let (sock, _) = listener.accept().await.unwrap();
                let (mut rd, wr) = sock.into_split();
                let mut buf = [0u8; 4];
                rd.read_exact(&mut buf).await.unwrap();
                drop(wr); // half-close: client read must see EOF
                buf
            });
            let sock = crate::net::TcpStream::connect(addr).await.unwrap();
            let (mut rd, mut wr) = sock.into_split();
            wr.write_all(b"ping").await.unwrap();
            let got = server.await.unwrap();
            assert_eq!(&got, b"ping");
            let mut buf = [0u8; 1];
            assert!(rd.read_exact(&mut buf).await.is_err());
        });
    }
}
