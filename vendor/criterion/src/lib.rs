//! Offline stand-in for `criterion`.
//!
//! Provides the harness surface this workspace's benches use
//! (`criterion_group!` / `criterion_main!`, `benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Bencher::iter`)
//! with a plain wall-clock measurement loop instead of criterion's
//! statistical machinery. Output is one line per benchmark:
//! median ns/iter over a fixed number of timed batches.
//!
//! `--test` on the command line (as passed by
//! `cargo bench -- --test`) switches to smoke mode: every benchmark
//! body runs exactly once and nothing is timed. All other arguments
//! (e.g. `--bench`, filters) are ignored.

use std::time::Instant;

/// Runs one benchmark body repeatedly.
pub struct Bencher {
    /// True when only checking that the body runs (`--test`).
    smoke: bool,
    /// Median nanoseconds per iteration, filled in by `iter`.
    result_ns: f64,
}

impl Bencher {
    /// Times `routine`, keeping its return value alive.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.smoke {
            std::hint::black_box(routine());
            return;
        }
        // Warm-up, then calibrate a batch size targeting ~5 ms.
        let t0 = Instant::now();
        let mut warm = 0u64;
        while t0.elapsed().as_millis() < 20 {
            std::hint::black_box(routine());
            warm += 1;
        }
        let per_iter = (t0.elapsed().as_nanos() as u64 / warm.max(1)).max(1);
        let batch = (5_000_000 / per_iter).max(1);
        let mut samples = Vec::with_capacity(11);
        for _ in 0..11 {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            samples.push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.result_ns = samples[samples.len() / 2];
    }
}

/// Identifies a benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new<P: std::fmt::Display>(name: &str, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter as the label.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the criterion-compatible sample count (ignored here).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmarks `f` with `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        self.criterion.run_one(&label, |b| f(b, input));
        self
    }

    /// Benchmarks `f`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        self.criterion.run_one(&label, |b| f(b));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The benchmark harness entry object.
pub struct Criterion {
    smoke: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let smoke = std::env::args().any(|a| a == "--test");
        Criterion { smoke }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    /// Benchmarks a single function.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(name, |b| f(b));
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, label: &str, mut f: F) {
        let mut b = Bencher {
            smoke: self.smoke,
            result_ns: 0.0,
        };
        f(&mut b);
        if self.smoke {
            println!("test {label} ... ok");
        } else if b.result_ns >= 1000.0 {
            println!("{label:<40} {:>12.3} us/iter", b.result_ns / 1000.0);
        } else {
            println!("{label:<40} {:>12.1} ns/iter", b.result_ns);
        }
    }
}

/// Opaque-to-the-optimizer identity, re-exported for convenience.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
