//! Property tests for routing over generated topologies.

use proptest::prelude::*;
use topology::{
    bfs, hierarchical, internet_like, policy_bfs, DomainId, HierSpec, InternetSpec, Rel,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// On any Internet-like graph: BFS distances satisfy the triangle
    /// property along edges, and valley-free distances are never
    /// shorter than unrestricted distances.
    #[test]
    fn distances_are_consistent(seed in 0u64..500, n in 30usize..120) {
        let g = internet_like(&InternetSpec {
            n, backbones: 4, attach: 2, extra_peerings: 3, seed,
        });
        let src = DomainId(seed as usize % n);
        let t = bfs(&g, src);
        let pd = policy_bfs(&g, src);
        for d in g.domains() {
            let dist = t.dist_to(d).expect("connected");
            // Edge relaxation: neighbors differ by at most 1.
            for &(nb, _) in g.neighbors(d) {
                let nd = t.dist_to(nb).unwrap();
                prop_assert!(nd + 1 >= dist && dist + 1 >= nd);
            }
            // Policy can only lengthen or forbid.
            if pd.dist[d.0] != u32::MAX {
                prop_assert!(pd.dist[d.0] >= dist);
            }
            // Path reconstruction has the right length.
            let path = t.path_to_src(d).unwrap();
            prop_assert_eq!(path.len() as u32, dist + 1);
            prop_assert_eq!(*path.last().unwrap(), src);
            prop_assert_eq!(path[0], d);
            // Consecutive path elements are adjacent.
            for w in path.windows(2) {
                prop_assert!(g.are_adjacent(w[0], w[1]));
            }
        }
    }

    /// The defining reach properties of valley-free routing: direct
    /// neighbors, the whole customer cone, and the provider chain are
    /// always reachable.
    #[test]
    fn valley_free_reach_includes_customer_cone_and_providers(seed in 0u64..200) {
        let g = internet_like(&InternetSpec {
            n: 80, backbones: 3, attach: 2, extra_peerings: 2, seed,
        });
        let src = DomainId(10);
        let pd = policy_bfs(&g, src);
        // Every direct neighbor is reachable (1 hop is always legal).
        for &(nb, _) in g.neighbors(src) {
            prop_assert!(pd.dist[nb.0] != u32::MAX);
            prop_assert_eq!(pd.dist[nb.0], 1);
        }
        // Everything in the customer cone is reachable (pure down).
        let mut stack = vec![src];
        let mut seen = std::collections::BTreeSet::new();
        while let Some(d) = stack.pop() {
            if !seen.insert(d) { continue; }
            prop_assert!(pd.dist[d.0] != u32::MAX, "customer-cone member unreachable");
            for &(nb, rel) in g.neighbors(d) {
                if rel == Rel::Customer {
                    stack.push(nb);
                }
            }
        }
        // Everything up the provider chain is reachable (pure up).
        let mut cur = src;
        let mut guard = 0;
        while let Some(p) = g.providers(cur).next() {
            prop_assert!(pd.dist[p.0] != u32::MAX, "provider chain unreachable");
            cur = p;
            guard += 1;
            if guard > 80 { break; }
        }
    }

    /// Hierarchies: the MASC-parent depth equals the construction
    /// level.
    #[test]
    fn hierarchy_depth_matches_levels(top in 2usize..5, fan in 2usize..4, depth in 2usize..4) {
        let mut fanouts = vec![top];
        fanouts.extend(std::iter::repeat_n(fan, depth - 1));
        let h = hierarchical(&HierSpec { fanouts, mesh_top: true });
        let m = topology::MascHierarchy::derive(&h.graph);
        for (lvl, ids) in h.levels.iter().enumerate() {
            for d in ids {
                prop_assert_eq!(m.depth_of(*d), lvl);
            }
        }
    }
}
