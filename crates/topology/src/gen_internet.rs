//! Internet-like topology generator for the figure-4 experiment.
//!
//! The paper's 3326-node topology came from 1998 BGP table dumps — a
//! sparse graph with a heavy-tailed degree distribution, a small
//! densely-meshed core of backbones, and most domains as low-degree
//! customers. We reproduce those structural properties with seeded
//! preferential attachment (Barabási–Albert) plus a peered backbone
//! clique; DESIGN.md records this substitution.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::graph::{DomainGraph, DomainId};

/// Specification for an Internet-like graph.
#[derive(Debug, Clone)]
pub struct InternetSpec {
    /// Total domains (paper: 3326).
    pub n: usize,
    /// Seed backbone clique size (peered among themselves).
    pub backbones: usize,
    /// Provider links each new domain attaches with (preferential).
    pub attach: usize,
    /// Extra peerings added between the highest-degree non-backbone
    /// domains (regional exchange points).
    pub extra_peerings: usize,
    /// RNG seed (the whole graph is deterministic in it).
    pub seed: u64,
}

impl InternetSpec {
    /// Default parameters matching the paper's scale.
    pub fn paper_fig4(seed: u64) -> Self {
        InternetSpec {
            n: 3326,
            backbones: 10,
            attach: 2,
            extra_peerings: 30,
            seed,
        }
    }
}

/// Generates an Internet-like [`DomainGraph`].
///
/// Construction: `backbones` fully-peered seed domains; each subsequent
/// domain picks `attach` distinct existing domains with probability
/// proportional to degree and becomes their customer; finally
/// `extra_peerings` peer links join high-degree domains that are not
/// already adjacent.
pub fn internet_like(spec: &InternetSpec) -> DomainGraph {
    assert!(spec.backbones >= 1, "need at least one backbone");
    assert!(spec.n >= spec.backbones);
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut g = DomainGraph::new();

    let backbones: Vec<DomainId> = (0..spec.backbones)
        .map(|i| g.add_domain(format!("BB{i}")))
        .collect();
    for i in 0..backbones.len() {
        for j in (i + 1)..backbones.len() {
            g.add_peering(backbones[i], backbones[j]);
        }
    }

    // Preferential attachment via the repeated-endpoints list: each
    // edge endpoint appears once, so sampling uniformly from the list
    // is degree-proportional.
    let mut endpoints: Vec<DomainId> = Vec::new();
    for d in g.domains() {
        for _ in 0..g.degree(d) {
            endpoints.push(d);
        }
    }
    // Seed clique of size 1 has no edges; make it attachable anyway.
    if endpoints.is_empty() {
        endpoints.push(backbones[0]);
    }

    for i in spec.backbones..spec.n {
        let d = g.add_domain(format!("AS{i}"));
        let want = spec.attach.min(i);
        let mut chosen: Vec<DomainId> = Vec::with_capacity(want);
        let mut guard = 0;
        while chosen.len() < want && guard < 1000 {
            guard += 1;
            let cand = endpoints[rng.gen_range(0..endpoints.len())];
            if cand != d && !chosen.contains(&cand) {
                chosen.push(cand);
            }
        }
        for p in chosen {
            g.add_provider_customer(p, d);
            endpoints.push(p);
            endpoints.push(d);
        }
    }

    // Peer the highest-degree non-backbone domains pairwise at random.
    let mut by_degree: Vec<DomainId> = g.domains().collect();
    by_degree.sort_by_key(|d| std::cmp::Reverse(g.degree(*d)));
    let pool: Vec<DomainId> = by_degree
        .into_iter()
        .filter(|d| d.0 >= spec.backbones)
        .take((spec.extra_peerings * 4).max(8))
        .collect();
    let mut added = 0;
    let mut guard = 0;
    while added < spec.extra_peerings && pool.len() >= 2 && guard < 10_000 {
        guard += 1;
        let a = pool[rng.gen_range(0..pool.len())];
        let b = pool[rng.gen_range(0..pool.len())];
        if a != b && !g.are_adjacent(a, b) {
            g.add_peering(a, b);
            added += 1;
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::bfs;

    #[test]
    fn paper_scale_graph_properties() {
        let g = internet_like(&InternetSpec::paper_fig4(7));
        assert_eq!(g.len(), 3326);
        // Connected.
        let t = bfs(&g, DomainId(0));
        assert!(
            g.domains().all(|d| t.dist_to(d).is_some()),
            "graph must be connected"
        );
        // Sparse: average degree in the real 1998 AS graph was ~3.5-4.
        let avg_deg = 2.0 * g.edge_count() as f64 / g.len() as f64;
        assert!(avg_deg > 2.0 && avg_deg < 8.0, "avg degree {avg_deg}");
        // Heavy tail: max degree far above average.
        let max_deg = g.domains().map(|d| g.degree(d)).max().unwrap();
        assert!(
            max_deg > 50,
            "max degree {max_deg} too small for preferential attachment"
        );
        // Small diameter from a backbone (sampled eccentricity).
        let ecc = g.domains().filter_map(|d| t.dist_to(d)).max().unwrap();
        assert!(ecc <= 12, "eccentricity {ecc} too large");
    }

    #[test]
    fn deterministic_in_seed() {
        let a = internet_like(&InternetSpec {
            n: 200,
            backbones: 5,
            attach: 2,
            extra_peerings: 5,
            seed: 3,
        });
        let b = internet_like(&InternetSpec {
            n: 200,
            backbones: 5,
            attach: 2,
            extra_peerings: 5,
            seed: 3,
        });
        assert_eq!(a.edge_count(), b.edge_count());
        for d in a.domains() {
            assert_eq!(a.neighbors(d), b.neighbors(d));
        }
        let c = internet_like(&InternetSpec {
            n: 200,
            backbones: 5,
            attach: 2,
            extra_peerings: 5,
            seed: 4,
        });
        // Overwhelmingly likely to differ somewhere.
        let same = a.domains().all(|d| a.neighbors(d) == c.neighbors(d));
        assert!(!same, "different seeds should give different graphs");
    }

    #[test]
    fn small_graphs_work() {
        let g = internet_like(&InternetSpec {
            n: 3,
            backbones: 1,
            attach: 2,
            extra_peerings: 0,
            seed: 1,
        });
        assert_eq!(g.len(), 3);
        let t = bfs(&g, DomainId(0));
        assert!(g.domains().all(|d| t.dist_to(d).is_some()));
    }

    #[test]
    fn backbones_are_top_level() {
        let g = internet_like(&InternetSpec {
            n: 100,
            backbones: 4,
            attach: 2,
            extra_peerings: 0,
            seed: 9,
        });
        for i in 0..4 {
            assert!(g.is_top_level(DomainId(i)));
        }
        // Non-backbones all have at least one provider.
        for i in 4..100 {
            assert!(g.providers(DomainId(i)).next().is_some());
        }
    }
}
