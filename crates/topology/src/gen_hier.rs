//! Hierarchical topology generator.
//!
//! Builds the regular provider trees used by the paper's MASC
//! simulation (§4.3.3: "50 top-level domains, each with 50 child
//! domains"; deeper variants for the aggregation ablation). Top-level
//! domains are meshed with peer links, mirroring backbone interconnects
//! at exchange points.

use crate::graph::{DomainGraph, DomainId};

/// Specification for a regular hierarchy.
#[derive(Debug, Clone)]
pub struct HierSpec {
    /// `fanouts[0]` top-level domains; each level-`i` domain has
    /// `fanouts[i+1]` children, and so on. E.g. `[50, 50]` is the
    /// paper's figure-2 topology.
    pub fanouts: Vec<usize>,
    /// Fully mesh the top level with peer links (default true).
    pub mesh_top: bool,
}

impl HierSpec {
    /// The paper's figure-2 topology: 50 top-level, 50 children each.
    pub fn paper_fig2() -> Self {
        HierSpec {
            fanouts: vec![50, 50],
            mesh_top: true,
        }
    }
}

/// A generated hierarchy: the graph plus structural indexes.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    /// The generated graph.
    pub graph: DomainGraph,
    /// Domains per level, level 0 = top.
    pub levels: Vec<Vec<DomainId>>,
    /// Provider-tree parent of each domain (`None` for top-level).
    pub parent: Vec<Option<DomainId>>,
}

impl Hierarchy {
    /// All non-top-level domains (in level order).
    pub fn child_domains(&self) -> impl Iterator<Item = DomainId> + '_ {
        self.levels.iter().skip(1).flatten().copied()
    }

    /// The children of `d` in the provider tree.
    pub fn children_of(&self, d: DomainId) -> Vec<DomainId> {
        self.parent
            .iter()
            .enumerate()
            .filter(|(_, p)| **p == Some(d))
            .map(|(i, _)| DomainId(i))
            .collect()
    }

    /// Siblings of `d`: other domains sharing its parent, or — for a
    /// top-level domain — the other top-level domains (§4.1: "its
    /// sibling domains correspond to the other top-level domains").
    pub fn siblings_of(&self, d: DomainId) -> Vec<DomainId> {
        match self.parent[d.0] {
            Some(p) => self
                .children_of(p)
                .into_iter()
                .filter(|s| *s != d)
                .collect(),
            None => self.levels[0].iter().copied().filter(|s| *s != d).collect(),
        }
    }
}

/// Generates a regular hierarchy per `spec`.
pub fn hierarchical(spec: &HierSpec) -> Hierarchy {
    let mut graph = DomainGraph::new();
    let mut levels: Vec<Vec<DomainId>> = Vec::new();
    let mut parent: Vec<Option<DomainId>> = Vec::new();

    let top: Vec<DomainId> = (0..spec.fanouts.first().copied().unwrap_or(0))
        .map(|i| {
            let id = graph.add_domain(format!("T{i}"));
            parent.push(None);
            id
        })
        .collect();
    if spec.mesh_top {
        for i in 0..top.len() {
            for j in (i + 1)..top.len() {
                graph.add_peering(top[i], top[j]);
            }
        }
    }
    levels.push(top);

    for (lvl, &fanout) in spec.fanouts.iter().enumerate().skip(1) {
        let prev = levels[lvl - 1].clone();
        let mut cur = Vec::new();
        for p in prev {
            for c in 0..fanout {
                let name = format!("{}.{}", graph.name(p), c);
                let id = graph.add_domain(name);
                parent.push(Some(p));
                graph.add_provider_customer(p, id);
                cur.push(id);
            }
        }
        levels.push(cur);
    }

    Hierarchy {
        graph,
        levels,
        parent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_fig2_shape() {
        let h = hierarchical(&HierSpec::paper_fig2());
        assert_eq!(h.levels[0].len(), 50);
        assert_eq!(h.levels[1].len(), 2500);
        assert_eq!(h.graph.len(), 2550);
        // Top mesh: C(50,2) peerings + 2500 provider links.
        assert_eq!(h.graph.edge_count(), 50 * 49 / 2 + 2500);
        let t0 = h.levels[0][0];
        assert!(h.graph.is_top_level(t0));
        assert_eq!(h.children_of(t0).len(), 50);
        assert_eq!(h.siblings_of(t0).len(), 49);
        let c = h.levels[1][0];
        assert_eq!(h.parent[c.0], Some(t0));
        assert_eq!(h.siblings_of(c).len(), 49);
        assert!(!h.graph.is_top_level(c));
    }

    #[test]
    fn three_level_hierarchy() {
        let h = hierarchical(&HierSpec {
            fanouts: vec![3, 4, 2],
            mesh_top: true,
        });
        assert_eq!(h.levels[0].len(), 3);
        assert_eq!(h.levels[1].len(), 12);
        assert_eq!(h.levels[2].len(), 24);
        let mid = h.levels[1][0];
        assert_eq!(h.children_of(mid).len(), 2);
        assert_eq!(h.child_domains().count(), 36);
    }

    #[test]
    fn unmeshed_top() {
        let h = hierarchical(&HierSpec {
            fanouts: vec![4, 1],
            mesh_top: false,
        });
        assert_eq!(h.graph.edge_count(), 4);
    }

    #[test]
    fn single_level() {
        let h = hierarchical(&HierSpec {
            fanouts: vec![5],
            mesh_top: true,
        });
        assert_eq!(h.graph.len(), 5);
        assert_eq!(h.levels.len(), 1);
        assert!(h.siblings_of(h.levels[0][2]).len() == 4);
    }
}
