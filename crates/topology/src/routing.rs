//! Inter-domain routing computations over a [`DomainGraph`].
//!
//! Two views are provided:
//!
//! * **hop routing** — plain BFS shortest paths by inter-domain hop
//!   count, the metric the paper's figure-4 simulation reports ("the
//!   path length ... is the number of inter-domain hops");
//! * **policy (valley-free) routing** — paths that respect
//!   provider–customer export rules (§2: a provider carries only
//!   traffic to/from its customers). Used by the policy ablation and by
//!   the BGP substrate tests; the paper itself notes unicast shortest
//!   paths are policy-constrained (§5.3 footnote).

use crate::graph::{DomainGraph, DomainId, Rel};

/// Distance table and parent pointers from a BFS.
#[derive(Debug, Clone)]
pub struct SpTree {
    /// Source of the computation.
    pub src: DomainId,
    /// `dist[d]` = hops from `src` to `d`, `u32::MAX` if unreachable.
    pub dist: Vec<u32>,
    /// Next hop *toward the source* from each domain (parent in the
    /// BFS tree), `None` at the source and unreachable nodes.
    pub toward_src: Vec<Option<DomainId>>,
}

impl SpTree {
    /// Hops from the source to `d`.
    pub fn dist_to(&self, d: DomainId) -> Option<u32> {
        let v = self.dist[d.0];
        (v != u32::MAX).then_some(v)
    }

    /// The path from `d` back to the source (inclusive of both ends).
    pub fn path_to_src(&self, d: DomainId) -> Option<Vec<DomainId>> {
        self.dist_to(d)?;
        let mut path = vec![d];
        let mut cur = d;
        while let Some(next) = self.toward_src[cur.0] {
            path.push(next);
            cur = next;
        }
        debug_assert_eq!(cur, self.src);
        Some(path)
    }
}

/// First hop out of `src` on the shortest path to every domain, in one
/// BFS pass (the `toward_src` parents point the *other* way, so walking
/// them per destination would cost O(n·depth)). `None` at `src` itself
/// and at unreachable domains. Deterministic: ties break in adjacency
/// order, exactly like [`bfs`].
///
/// This is the per-destination next-hop view a BIER BIFT is derived
/// from (each bit's forwarding neighbor is the unicast first hop toward
/// that bit's router).
pub fn bfs_first_hops(g: &DomainGraph, src: DomainId) -> Vec<Option<DomainId>> {
    let n = g.len();
    let mut dist = vec![u32::MAX; n];
    let mut first = vec![None; n];
    let mut queue = std::collections::VecDeque::new();
    dist[src.0] = 0;
    queue.push_back(src);
    while let Some(d) = queue.pop_front() {
        for &(nb, _) in g.neighbors(d) {
            if dist[nb.0] == u32::MAX {
                dist[nb.0] = dist[d.0] + 1;
                first[nb.0] = if d == src { Some(nb) } else { first[d.0] };
                queue.push_back(nb);
            }
        }
    }
    first
}

/// BFS shortest-path tree from `src` by hop count. Deterministic:
/// neighbors are visited in adjacency order, so ties break identically
/// across runs.
pub fn bfs(g: &DomainGraph, src: DomainId) -> SpTree {
    let n = g.len();
    let mut dist = vec![u32::MAX; n];
    let mut toward_src = vec![None; n];
    let mut queue = std::collections::VecDeque::new();
    dist[src.0] = 0;
    queue.push_back(src);
    while let Some(d) = queue.pop_front() {
        for &(nb, _) in g.neighbors(d) {
            if dist[nb.0] == u32::MAX {
                dist[nb.0] = dist[d.0] + 1;
                toward_src[nb.0] = Some(d);
                queue.push_back(nb);
            }
        }
    }
    SpTree {
        src,
        dist,
        toward_src,
    }
}

/// All-pairs hop-count helper for small graphs (tests, ablations).
pub fn hop_dist(g: &DomainGraph, a: DomainId, b: DomainId) -> Option<u32> {
    bfs(g, a).dist_to(b)
}

/// Phase of a valley-free path walk, ordered: once a path stops going
/// "up" (customer→provider) it may cross at most one peer link and
/// then only go "down" (provider→customer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Phase {
    Up = 0,
    Peered = 1,
    Down = 2,
}

/// Result of a valley-free shortest-path computation from one source.
#[derive(Debug, Clone)]
pub struct PolicyDists {
    /// Source domain.
    pub src: DomainId,
    /// `dist[d]` = hops on the shortest valley-free path, or
    /// `u32::MAX`.
    pub dist: Vec<u32>,
}

/// Shortest valley-free (policy-compliant) path lengths from `src` to
/// every domain. State space is (domain, phase); BFS over it yields
/// shortest compliant hop counts.
pub fn policy_bfs(g: &DomainGraph, src: DomainId) -> PolicyDists {
    let n = g.len();
    // dist_by_phase[phase][node]
    let mut dbp = [vec![u32::MAX; n], vec![u32::MAX; n], vec![u32::MAX; n]];
    let mut queue = std::collections::VecDeque::new();
    dbp[Phase::Up as usize][src.0] = 0;
    queue.push_back((src, Phase::Up));
    while let Some((d, phase)) = queue.pop_front() {
        let dd = dbp[phase as usize][d.0];
        for &(nb, rel) in g.neighbors(d) {
            // Which phase does traversing this edge put us in, if legal?
            let next_phase = match (phase, rel) {
                // Going to our provider = still climbing.
                (Phase::Up, Rel::Provider) => Some(Phase::Up),
                // Crossing a peer link: only once, only before descending.
                (Phase::Up, Rel::Peer) => Some(Phase::Peered),
                // Going to a customer: descend (from any phase).
                (_, Rel::Customer) => Some(Phase::Down),
                _ => None,
            };
            if let Some(np) = next_phase {
                if dbp[np as usize][nb.0] == u32::MAX {
                    dbp[np as usize][nb.0] = dd + 1;
                    queue.push_back((nb, np));
                }
            }
        }
    }
    let dist = (0..n)
        .map(|i| dbp.iter().map(|v| v[i]).min().unwrap_or(u32::MAX))
        .collect();
    PolicyDists { src, dist }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two customers under different providers that peer:
    ///   P1 -- peer -- P2
    ///   |             |
    ///   C1            C2
    /// plus a stub S under C1.
    fn peering_square() -> (DomainGraph, [DomainId; 5]) {
        let mut g = DomainGraph::new();
        let p1 = g.add_domain("P1");
        let p2 = g.add_domain("P2");
        let c1 = g.add_domain("C1");
        let c2 = g.add_domain("C2");
        let s = g.add_domain("S");
        g.add_peering(p1, p2);
        g.add_provider_customer(p1, c1);
        g.add_provider_customer(p2, c2);
        g.add_provider_customer(c1, s);
        (g, [p1, p2, c1, c2, s])
    }

    #[test]
    fn bfs_distances_and_paths() {
        let (g, [p1, p2, c1, c2, s]) = peering_square();
        let t = bfs(&g, s);
        assert_eq!(t.dist_to(s), Some(0));
        assert_eq!(t.dist_to(c1), Some(1));
        assert_eq!(t.dist_to(p1), Some(2));
        assert_eq!(t.dist_to(p2), Some(3));
        assert_eq!(t.dist_to(c2), Some(4));
        let path = t.path_to_src(c2).unwrap();
        assert_eq!(path, vec![c2, p2, p1, c1, s]);
    }

    #[test]
    fn first_hops_agree_with_parent_chains() {
        let (g, ids) = peering_square();
        for &src in &ids {
            let fh = bfs_first_hops(&g, src);
            let t = bfs(&g, src);
            for &d in &ids {
                if d == src {
                    assert_eq!(fh[d.0], None);
                    continue;
                }
                // Walk d's parent chain back to src; the last node
                // before src is the first hop out of src.
                let path = t.path_to_src(d).unwrap();
                let expect = path[path.len() - 2];
                assert_eq!(fh[d.0], Some(expect), "first hop to {d:?}");
            }
        }
    }

    #[test]
    fn bfs_unreachable() {
        let mut g = DomainGraph::new();
        let a = g.add_domain("a");
        let b = g.add_domain("b");
        let t = bfs(&g, a);
        assert_eq!(t.dist_to(b), None);
        assert!(t.path_to_src(b).is_none());
    }

    #[test]
    fn valley_free_matches_hops_here() {
        // In the square, C1→C2 via P1-P2 peer link is valley-free
        // (up, peer, down).
        let (g, [_p1, _p2, c1, c2, _s]) = peering_square();
        let pd = policy_bfs(&g, c1);
        assert_eq!(pd.dist[c2.0], 3);
    }

    #[test]
    fn valley_free_forbids_transit_through_customer() {
        // P1 and P2 both provide for C; P1 and P2 not otherwise
        // connected. A valley (P1 → C → P2) is illegal, so P1 cannot
        // reach P2.
        let mut g = DomainGraph::new();
        let p1 = g.add_domain("P1");
        let p2 = g.add_domain("P2");
        let c = g.add_domain("C");
        g.add_provider_customer(p1, c);
        g.add_provider_customer(p2, c);
        let pd = policy_bfs(&g, p1);
        assert_eq!(pd.dist[c.0], 1);
        assert_eq!(pd.dist[p2.0], u32::MAX, "valley path must be rejected");
        // Plain hop routing would find it.
        assert_eq!(hop_dist(&g, p1, p2), Some(2));
    }

    #[test]
    fn valley_free_forbids_peer_peer_chains() {
        // A - peer - B - peer - C: two peer crossings are illegal.
        let mut g = DomainGraph::new();
        let a = g.add_domain("A");
        let b = g.add_domain("B");
        let c = g.add_domain("C");
        g.add_peering(a, b);
        g.add_peering(b, c);
        let pd = policy_bfs(&g, a);
        assert_eq!(pd.dist[b.0], 1);
        assert_eq!(pd.dist[c.0], u32::MAX);
    }

    #[test]
    fn up_after_down_is_forbidden() {
        // P -> C (down), C -> P2 (up) would be a valley.
        let mut g = DomainGraph::new();
        let p = g.add_domain("P");
        let c = g.add_domain("C");
        let p2 = g.add_domain("P2");
        let c2 = g.add_domain("C2");
        g.add_provider_customer(p, c);
        g.add_provider_customer(p2, c);
        g.add_provider_customer(p2, c2);
        // From P: down to C legal; C→P2 would be up-after-down.
        let pd = policy_bfs(&g, p);
        assert_eq!(pd.dist[c2.0], u32::MAX);
    }
}
