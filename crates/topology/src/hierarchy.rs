//! MASC hierarchy selection over an arbitrary domain graph.
//!
//! §4 of the paper: "A domain that is a customer of other domains will
//! choose one or more of those provider domains to be its MASC parent
//! ... the hierarchy can be configured, or heuristics can be used to
//! select the parent." This module implements the heuristic — pick the
//! provider most likely to aggregate well (highest degree, i.e. the
//! "default route" provider) — and exposes the resulting parent/child/
//! sibling structure that the MASC protocol peers along.

use crate::graph::{DomainGraph, DomainId};

/// The MASC parent/child structure derived from (or configured onto) a
/// domain graph.
#[derive(Debug, Clone)]
pub struct MascHierarchy {
    /// MASC parent of each domain; `None` for top-level domains.
    pub parent: Vec<Option<DomainId>>,
    /// MASC children of each domain.
    pub children: Vec<Vec<DomainId>>,
    /// Top-level domains (no parent), in id order.
    pub top_level: Vec<DomainId>,
}

impl MascHierarchy {
    /// Derives a hierarchy by heuristic: each non-top-level domain's
    /// parent is its highest-degree provider (ties to the lowest id),
    /// approximating "look up who the default route points at" (§4).
    pub fn derive(g: &DomainGraph) -> Self {
        let mut parent = vec![None; g.len()];
        for d in g.domains() {
            parent[d.0] = g
                .providers(d)
                .max_by_key(|p| (g.degree(*p), std::cmp::Reverse(p.0)))
        }
        Self::from_parents(g, parent)
    }

    /// Builds the hierarchy from an explicit parent assignment
    /// (configured hierarchies, tests). Panics if a parent edge names a
    /// non-adjacent domain in debug builds.
    pub fn from_parents(g: &DomainGraph, parent: Vec<Option<DomainId>>) -> Self {
        assert_eq!(parent.len(), g.len());
        let mut children = vec![Vec::new(); g.len()];
        let mut top_level = Vec::new();
        for d in g.domains() {
            match parent[d.0] {
                Some(p) => {
                    debug_assert!(g.are_adjacent(d, p), "MASC parent must be a neighbor");
                    children[p.0].push(d);
                }
                None => top_level.push(d),
            }
        }
        MascHierarchy {
            parent,
            children,
            top_level,
        }
    }

    /// The MASC parent of `d`.
    pub fn parent_of(&self, d: DomainId) -> Option<DomainId> {
        self.parent[d.0]
    }

    /// The MASC children of `d`.
    pub fn children_of(&self, d: DomainId) -> &[DomainId] {
        &self.children[d.0]
    }

    /// Siblings of `d`: co-children of its parent, or the other
    /// top-level domains when `d` is top-level (§4.1).
    pub fn siblings_of(&self, d: DomainId) -> Vec<DomainId> {
        match self.parent[d.0] {
            Some(p) => self.children[p.0]
                .iter()
                .copied()
                .filter(|s| *s != d)
                .collect(),
            None => self.top_level.iter().copied().filter(|s| *s != d).collect(),
        }
    }

    /// Depth of `d` in the hierarchy (top-level = 0).
    pub fn depth_of(&self, d: DomainId) -> usize {
        let mut depth = 0;
        let mut cur = d;
        while let Some(p) = self.parent[cur.0] {
            depth += 1;
            cur = p;
            debug_assert!(depth <= self.parent.len(), "parent cycle");
        }
        depth
    }

    /// Domains ordered top-down (parents before children), for
    /// bootstrap sequencing.
    pub fn top_down(&self) -> Vec<DomainId> {
        let mut order: Vec<DomainId> = (0..self.parent.len()).map(DomainId).collect();
        order.sort_by_key(|d| self.depth_of(*d));
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen_hier::{hierarchical, HierSpec};
    use crate::gen_internet::{internet_like, InternetSpec};

    #[test]
    fn derive_on_regular_hierarchy_matches_tree() {
        let h = hierarchical(&HierSpec {
            fanouts: vec![3, 4],
            mesh_top: true,
        });
        let m = MascHierarchy::derive(&h.graph);
        assert_eq!(m.top_level.len(), 3);
        for d in h.graph.domains() {
            assert_eq!(m.parent_of(d), h.parent[d.0]);
        }
        let t0 = h.levels[0][0];
        assert_eq!(m.children_of(t0).len(), 4);
        assert_eq!(m.depth_of(h.levels[1][0]), 1);
        assert_eq!(m.depth_of(t0), 0);
    }

    #[test]
    fn derive_on_internet_graph_is_acyclic_and_complete() {
        let g = internet_like(&InternetSpec {
            n: 500,
            backbones: 6,
            attach: 2,
            extra_peerings: 10,
            seed: 5,
        });
        let m = MascHierarchy::derive(&g);
        // Every non-top-level domain got a parent that is a provider.
        for d in g.domains() {
            match m.parent_of(d) {
                Some(p) => assert!(g.providers(d).any(|x| x == p)),
                None => assert!(g.is_top_level(d)),
            }
            // depth_of terminates = no cycles (debug_assert inside).
            let _ = m.depth_of(d);
        }
        assert_eq!(m.top_level.len(), 6);
    }

    #[test]
    fn top_down_order_puts_parents_first() {
        let h = hierarchical(&HierSpec {
            fanouts: vec![2, 2, 2],
            mesh_top: false,
        });
        let m = MascHierarchy::derive(&h.graph);
        let order = m.top_down();
        let pos: std::collections::BTreeMap<DomainId, usize> =
            order.iter().enumerate().map(|(i, d)| (*d, i)).collect();
        for d in h.graph.domains() {
            if let Some(p) = m.parent_of(d) {
                assert!(pos[&p] < pos[&d]);
            }
        }
    }

    #[test]
    fn siblings_at_top_level() {
        let h = hierarchical(&HierSpec {
            fanouts: vec![4],
            mesh_top: true,
        });
        let m = MascHierarchy::derive(&h.graph);
        let sibs = m.siblings_of(h.levels[0][1]);
        assert_eq!(sibs.len(), 3);
        assert!(!sibs.contains(&h.levels[0][1]));
    }
}
