//! The inter-domain (AS-level) graph.
//!
//! Domains are the unit of the architecture (§1: "the set of networks
//! under administrative control of a single organization"). Edges carry
//! the commercial relationship that drives both BGP export policy and
//! the MASC hierarchy: provider–customer or settlement-free peering.

use serde::{Deserialize, Serialize};

/// Identifies a domain (autonomous system) in the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DomainId(pub usize);

/// The relationship of a neighbor *to* a domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Rel {
    /// The neighbor is this domain's provider (we are its customer).
    Provider,
    /// The neighbor is this domain's customer.
    Customer,
    /// Settlement-free peer.
    Peer,
}

impl Rel {
    /// The same edge seen from the other end.
    pub fn flip(self) -> Rel {
        match self {
            Rel::Provider => Rel::Customer,
            Rel::Customer => Rel::Provider,
            Rel::Peer => Rel::Peer,
        }
    }
}

/// An undirected inter-domain graph with typed edges.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DomainGraph {
    names: Vec<String>,
    adj: Vec<Vec<(DomainId, Rel)>>,
}

impl DomainGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a domain and returns its id.
    pub fn add_domain(&mut self, name: impl Into<String>) -> DomainId {
        let id = DomainId(self.adj.len());
        self.names.push(name.into());
        self.adj.push(Vec::new());
        id
    }

    /// Adds a provider→customer link.
    pub fn add_provider_customer(&mut self, provider: DomainId, customer: DomainId) {
        debug_assert!(provider != customer);
        debug_assert!(!self.are_adjacent(provider, customer));
        self.adj[provider.0].push((customer, Rel::Customer));
        self.adj[customer.0].push((provider, Rel::Provider));
    }

    /// Adds a settlement-free peering link.
    pub fn add_peering(&mut self, a: DomainId, b: DomainId) {
        debug_assert!(a != b);
        debug_assert!(!self.are_adjacent(a, b));
        self.adj[a.0].push((b, Rel::Peer));
        self.adj[b.0].push((a, Rel::Peer));
    }

    /// Number of domains.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Whether the graph has no domains.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// All domain ids.
    pub fn domains(&self) -> impl Iterator<Item = DomainId> {
        (0..self.adj.len()).map(DomainId)
    }

    /// The configured display name of a domain.
    pub fn name(&self, d: DomainId) -> &str {
        &self.names[d.0]
    }

    /// Neighbors of `d` with their relationship to `d`.
    pub fn neighbors(&self, d: DomainId) -> &[(DomainId, Rel)] {
        &self.adj[d.0]
    }

    /// Degree of `d`.
    pub fn degree(&self, d: DomainId) -> usize {
        self.adj[d.0].len()
    }

    /// Providers of `d`.
    pub fn providers(&self, d: DomainId) -> impl Iterator<Item = DomainId> + '_ {
        self.adj[d.0]
            .iter()
            .filter(|(_, r)| *r == Rel::Provider)
            .map(|(n, _)| *n)
    }

    /// Customers of `d`.
    pub fn customers(&self, d: DomainId) -> impl Iterator<Item = DomainId> + '_ {
        self.adj[d.0]
            .iter()
            .filter(|(_, r)| *r == Rel::Customer)
            .map(|(n, _)| *n)
    }

    /// Peers of `d`.
    pub fn peers(&self, d: DomainId) -> impl Iterator<Item = DomainId> + '_ {
        self.adj[d.0]
            .iter()
            .filter(|(_, r)| *r == Rel::Peer)
            .map(|(n, _)| *n)
    }

    /// A domain with no providers is *top-level* (§4: "backbone MASC
    /// domains that are not customers of other domains").
    pub fn is_top_level(&self, d: DomainId) -> bool {
        self.providers(d).next().is_none()
    }

    /// Are the two domains directly connected?
    pub fn are_adjacent(&self, a: DomainId, b: DomainId) -> bool {
        self.adj
            .get(a.0)
            .is_some_and(|v| v.iter().any(|(n, _)| *n == b))
    }

    /// The relationship of `b` to `a`, if adjacent.
    pub fn relation(&self, a: DomainId, b: DomainId) -> Option<Rel> {
        self.adj[a.0].iter().find(|(n, _)| *n == b).map(|(_, r)| *r)
    }

    /// Total undirected edge count.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(|v| v.len()).sum::<usize>() / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's figure-1 topology: backbones A, D, E; regionals
    /// B, C under A; F under B, G under C (plus the D/E backbone links).
    pub fn fig1() -> (DomainGraph, Vec<DomainId>) {
        let mut g = DomainGraph::new();
        let ids: Vec<DomainId> = ["A", "B", "C", "D", "E", "F", "G"]
            .iter()
            .map(|n| g.add_domain(*n))
            .collect();
        let (a, b, c, d, e, f, gg) = (ids[0], ids[1], ids[2], ids[3], ids[4], ids[5], ids[6]);
        g.add_peering(a, d);
        g.add_peering(a, e);
        g.add_provider_customer(a, b);
        g.add_provider_customer(a, c);
        g.add_provider_customer(b, f);
        g.add_provider_customer(c, gg);
        (g, ids)
    }

    #[test]
    fn fig1_relationships() {
        let (g, ids) = fig1();
        let (a, b, _c, d, _e, f, _gg) = (ids[0], ids[1], ids[2], ids[3], ids[4], ids[5], ids[6]);
        assert!(g.is_top_level(a));
        assert!(g.is_top_level(d));
        assert!(!g.is_top_level(b));
        assert_eq!(g.relation(a, b), Some(Rel::Customer));
        assert_eq!(g.relation(b, a), Some(Rel::Provider));
        assert_eq!(g.relation(a, d), Some(Rel::Peer));
        assert_eq!(g.providers(f).collect::<Vec<_>>(), vec![b]);
        assert_eq!(g.customers(a).collect::<Vec<_>>(), vec![b, ids[2]]);
        assert_eq!(g.edge_count(), 6);
        assert!(g.are_adjacent(a, d));
        assert!(!g.are_adjacent(b, d));
    }

    #[test]
    fn rel_flip() {
        assert_eq!(Rel::Provider.flip(), Rel::Customer);
        assert_eq!(Rel::Customer.flip(), Rel::Provider);
        assert_eq!(Rel::Peer.flip(), Rel::Peer);
    }

    #[test]
    fn names() {
        let (g, ids) = fig1();
        assert_eq!(g.name(ids[0]), "A");
        assert_eq!(g.name(ids[6]), "G");
        assert_eq!(g.len(), 7);
    }
}
