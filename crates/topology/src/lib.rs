//! Inter-domain (AS-level) topology substrate.
//!
//! * [`graph`] — the domain graph with provider/customer/peer edges;
//! * [`routing`] — hop-count BFS and valley-free policy routing;
//! * [`gen_hier`] — regular provider hierarchies (the paper's 50×50
//!   figure-2 topology and deeper variants);
//! * [`gen_internet`] — Internet-like graphs for the figure-4 tree
//!   quality study (substitute for the paper's 1998 BGP-dump topology,
//!   see DESIGN.md);
//! * [`hierarchy`] — MASC parent selection heuristics (§4).

pub mod gen_hier;
pub mod gen_internet;
pub mod graph;
pub mod hierarchy;
pub mod routing;

pub use gen_hier::{hierarchical, HierSpec, Hierarchy};
pub use gen_internet::{internet_like, InternetSpec};
pub use graph::{DomainGraph, DomainId, Rel};
pub use hierarchy::MascHierarchy;
pub use routing::{bfs, bfs_first_hops, hop_dist, policy_bfs, PolicyDists, SpTree};
