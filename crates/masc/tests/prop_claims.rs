//! Property tests for MASC claim bookkeeping and the claim algorithm's
//! free-space arithmetic.

use masc::claims::{KnownClaim, OuterSpace};
use mcast_addr::{McastAddr, Prefix};
use proptest::prelude::*;

fn arb_sub(rootlen: u8) -> impl Strategy<Value = Prefix> {
    ((rootlen + 1)..=30, any::<u32>()).prop_map(move |(len, bits)| {
        let root = Prefix::new(0xE000_0000, rootlen).unwrap();
        let host = bits & !root.mask();
        Prefix::containing(McastAddr(root.base_u32() | host), len).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Candidates returned by the claim algorithm are always free,
    /// inside the space, correctly sized, and mutually consistent with
    /// the recorded claims.
    #[test]
    fn candidates_are_free_and_sized(
        claims in prop::collection::vec(arb_sub(8), 0..14),
        want in 9u8..=30,
    ) {
        let root = Prefix::new(0xE000_0000, 8).unwrap();
        let mut s = OuterSpace::new();
        s.set_ranges(&[(root, 1_000_000)]);
        for (i, c) in claims.iter().enumerate() {
            s.insert_claim(KnownClaim { owner: i as u32 + 1, prefix: *c, expires: 500, at: 0 });
        }
        for cand in s.claim_candidates(want) {
            prop_assert!(root.covers(&cand));
            prop_assert_eq!(cand.len(), want, "unexpected candidate size {}", cand);
            prop_assert!(s.is_free(&cand), "candidate {cand} overlaps a claim");
        }
    }

    /// Inserting then expiring all claims restores the full space.
    #[test]
    fn expiry_restores_space(claims in prop::collection::vec(arb_sub(8), 1..14)) {
        let root = Prefix::new(0xE000_0000, 8).unwrap();
        let mut s = OuterSpace::new();
        s.set_ranges(&[(root, 1_000_000)]);
        for (i, c) in claims.iter().enumerate() {
            s.insert_claim(KnownClaim { owner: i as u32, prefix: *c, expires: 100 + i as u64, at: 0 });
        }
        let n = s.claims().len();
        prop_assert!(n >= 1);
        let expired = s.expire_claims(100 + claims.len() as u64);
        prop_assert_eq!(expired.len(), n);
        prop_assert!(s.claims().is_empty());
        // The whole first half of the root is claimable again.
        let cand = s.claim_candidates(root.len() + 1);
        prop_assert_eq!(cand, vec![root.split().unwrap().0]);
    }

    /// Doubling (expansion_of) is exactly "buddy free within a
    /// claimable range".
    #[test]
    fn expansion_matches_buddy_freeness(
        claims in prop::collection::vec(arb_sub(8), 1..10),
    ) {
        let root = Prefix::new(0xE000_0000, 8).unwrap();
        let mut s = OuterSpace::new();
        s.set_ranges(&[(root, 1_000_000)]);
        for (i, c) in claims.iter().enumerate() {
            s.insert_claim(KnownClaim { owner: i as u32, prefix: *c, expires: 500, at: 0 });
        }
        for c in &claims {
            let exp = s.expansion_of(c);
            let buddy = c.buddy().unwrap();
            let parent = c.parent().unwrap();
            let expected = root.covers(&parent) && s.is_free(&buddy);
            prop_assert_eq!(exp.is_some(), expected, "expansion_of({})", c);
            if let Some(e) = exp {
                prop_assert_eq!(e, parent);
            }
        }
    }
}
