//! Unit-level protocol tests for the MASC engine, driven without the
//! simulator: two or three nodes whose actions we shuttle by hand.

use masc::msg::{DomainAsn, MascAction, MascMsg};
use masc::node::BlockOutcome;
use masc::{MascConfig, MascNode};
use mcast_addr::{Prefix, Secs};

fn p(s: &str) -> Prefix {
    s.parse().unwrap()
}

fn cfg() -> MascConfig {
    MascConfig {
        wait_period: 100,
        range_lifetime: 100_000,
        renew_margin: 10_000,
        claim_retry_backoff: 50,
        min_claim_len: 28, // 16-address blocks for small tests
        ..MascConfig::default()
    }
}

/// Drives a node's deadline clock up to `until`, collecting actions.
fn drive(n: &mut MascNode, mut now: Secs, until: Secs) -> Vec<MascAction> {
    let mut out = Vec::new();
    for _ in 0..10_000 {
        match n.next_deadline() {
            Some(d) if d <= until => {
                now = d.max(now);
                out.extend(n.on_tick(now));
            }
            _ => break,
        }
    }
    out.extend(n.on_tick(until));
    out
}

/// A top-level node with one sibling, bootstrap space 224.0.0.0/16.
fn top(domain: DomainAsn, sibling: DomainAsn) -> MascNode {
    let mut n = MascNode::new(domain, None, vec![], vec![sibling], cfg(), 42);
    n.bootstrap_ranges(&[(p("224.0.0.0/16"), Secs::MAX)]);
    n
}

/// Extracts the Send actions.
fn sends(actions: &[MascAction]) -> Vec<(DomainAsn, MascMsg)> {
    actions
        .iter()
        .filter_map(|a| match a {
            MascAction::Send { to, msg } => Some((*to, msg.clone())),
            _ => None,
        })
        .collect()
}

#[test]
fn claim_waits_then_grants() {
    let mut n = top(1, 2);
    let mut actions = Vec::new();
    let out = n.request_block(0, 28, 1000, &mut actions);
    // No space yet: queued, claim announced to the sibling.
    assert!(matches!(out, BlockOutcome::Queued { .. }));
    let s = sends(&actions);
    assert_eq!(s.len(), 1);
    assert_eq!(s[0].0, 2);
    assert!(matches!(s[0].1, MascMsg::Claim { claimer: 1, .. }));
    assert!(n.claim_in_flight());
    assert_eq!(n.next_deadline(), Some(100));

    // Waiting period passes without collision: granted, block served.
    let actions = n.on_tick(100);
    assert!(actions
        .iter()
        .any(|a| matches!(a, MascAction::RangeGranted { .. })));
    assert!(actions
        .iter()
        .any(|a| matches!(a, MascAction::BlockReady { .. })));
    assert_eq!(n.granted_ranges().len(), 1);
    assert_eq!(n.pending_requests(), 0);
    // The range is now 100% occupied, so a preemptive doubling claim
    // goes straight back in flight ("MASC will keep ahead of the
    // demand", §4.1).
    assert!(n.claim_in_flight());
}

#[test]
fn immediate_alloc_once_space_granted() {
    let mut n = top(1, 2);
    let mut actions = Vec::new();
    n.request_block(0, 28, 1000, &mut actions);
    n.on_tick(100);
    // Second block: the range may need doubling, but the first /28 only
    // holds one /28 block... request a smaller /30 that fits? The claim
    // was sized to the demand (one /28), so it is full. Request queues
    // and a doubling claim goes out.
    let mut actions = Vec::new();
    let out = n.request_block(200, 28, 1000, &mut actions);
    assert!(matches!(out, BlockOutcome::Queued { .. }));
    assert!(n.claim_in_flight());
    let acts = n.on_tick(300);
    assert!(acts
        .iter()
        .any(|a| matches!(a, MascAction::BlockReady { .. })));
    // Doubling granted: still a single advertised range (the /27).
    assert_eq!(n.granted_ranges().len(), 1);
    assert_eq!(n.granted_ranges()[0].0.len(), 27);
}

#[test]
fn collision_loser_retries_different_prefix() {
    let mut a = top(1, 2);
    let mut b = top(2, 1);
    // Both claim at t=0. Tie broken by domain id: 1 wins.
    let mut a_acts = Vec::new();
    let mut b_acts = Vec::new();
    a.request_block(0, 28, 1000, &mut a_acts);
    b.request_block(0, 28, 1000, &mut b_acts);
    let a_claim = sends(&a_acts)[0].1.clone();
    let b_claim = sends(&b_acts)[0].1.clone();
    let (a_pfx, b_pfx) = match (&a_claim, &b_claim) {
        (MascMsg::Claim { prefix: ap, .. }, MascMsg::Claim { prefix: bp, .. }) => (*ap, *bp),
        _ => panic!(),
    };
    // Same single largest free block: both choose the same prefix.
    assert_eq!(a_pfx, b_pfx);

    // Deliver B's claim to A: A wins, sends a collision.
    let acts = a.on_message(1, 2, b_claim);
    let s = sends(&acts);
    assert!(s
        .iter()
        .any(|(to, m)| *to == 2 && matches!(m, MascMsg::Collision { .. })));
    assert!(a.claim_in_flight(), "winner keeps its claim");

    // Deliver A's claim to B: B loses, releases, and schedules a
    // jittered retry (immediate synchronized retries are what caused
    // collision storms).
    let acts = b.on_message(1, 1, a_claim);
    let s = sends(&acts);
    assert!(s.iter().any(|(_, m)| matches!(m, MascMsg::Release { .. })));
    assert!(!b.claim_in_flight(), "loser abandons its claim");
    assert_eq!(b.stats.collisions, 1);

    // At the retry deadline B claims a different, non-overlapping
    // prefix.
    let retry_at = b.next_deadline().expect("retry scheduled");
    let acts = b.on_tick(retry_at);
    let new_pfx = sends(&acts)
        .iter()
        .find_map(|(_, m)| match m {
            MascMsg::Claim { prefix, .. } => Some(*prefix),
            _ => None,
        })
        .expect("loser must re-claim: {acts:?}");
    assert_ne!(new_pfx, a_pfx, "retry must avoid the winner's prefix");
    assert!(!new_pfx.overlaps(&a_pfx));

    // Both waiting periods pass: disjoint grants.
    drive(&mut a, 1, 100_000.min(retry_at + 200));
    drive(&mut b, retry_at, retry_at + 200);
    let ga = a.granted_ranges();
    let gb = b.granted_ranges();
    assert!(!ga.is_empty());
    assert!(!gb.is_empty());
    for (pa, _) in &ga {
        for (pb, _) in &gb {
            assert!(!pa.overlaps(pb), "grants overlap: {pa} vs {pb}");
        }
    }
}

#[test]
fn established_range_beats_new_claim() {
    let mut a = top(1, 2);
    let mut b = top(2, 1);
    // A claims and is granted.
    let mut acts = Vec::new();
    a.request_block(0, 28, 1000, &mut acts);
    a.on_tick(100);
    let a_range = a.granted_ranges()[0].0;
    // B (who somehow missed the claim) claims the same space later.
    let claim = MascMsg::Claim {
        claimer: 2,
        prefix: a_range,
        expires: 5_000,
        at: 150,
    };
    let acts = a.on_message(150, 2, claim);
    let s = sends(&acts);
    let col = s
        .iter()
        .find(|(to, m)| *to == 2 && matches!(m, MascMsg::Collision { .. }));
    assert!(
        col.is_some(),
        "established holder must announce a collision"
    );
    // B, on receiving the collision, abandons (it was waiting) and
    // schedules a retry.
    let mut b_acts = Vec::new();
    b.request_block(140, 28, 1000, &mut b_acts); // b now has a waiting claim
    let b_pfx = match &sends(&b_acts)[0].1 {
        MascMsg::Claim { prefix, .. } => *prefix,
        _ => panic!(),
    };
    b.on_message(
        160,
        1,
        MascMsg::Collision {
            holder: 1,
            prefix: b_pfx,
        },
    );
    assert_eq!(b.stats.collisions, 1);
    assert!(!b.claim_in_flight());
    // The retry fires at its deadline.
    let retry_at = b.next_deadline().unwrap();
    let acts = b.on_tick(retry_at);
    assert!(
        sends(&acts)
            .iter()
            .any(|(_, m)| matches!(m, MascMsg::Claim { .. })),
        "{acts:?}"
    );
}

#[test]
fn parent_collides_out_of_range_child_claim() {
    let mut parent = MascNode::new(1, None, vec![10], vec![], cfg(), 7);
    parent.bootstrap_ranges(&[(p("224.0.0.0/16"), Secs::MAX)]);
    // Parent has no granted ranges yet; child claims anyway.
    let acts = parent.on_message(
        5,
        10,
        MascMsg::Claim {
            claimer: 10,
            prefix: p("224.0.0.0/28"),
            expires: 1000,
            at: 5,
        },
    );
    let s = sends(&acts);
    assert!(
        s.iter()
            .any(|(to, m)| *to == 10 && matches!(m, MascMsg::Collision { .. })),
        "claims outside the parent's granted space must be rejected: {s:?}"
    );
}

#[test]
fn child_claim_reserved_and_forwarded() {
    let mut parent = MascNode::new(1, None, vec![10, 11], vec![], cfg(), 7);
    parent.bootstrap_ranges(&[(p("224.0.0.0/16"), Secs::MAX)]);
    // Parent claims a /24 for the family.
    let mut acts = Vec::new();
    parent.start_expansion(0, 256, &mut acts);
    parent.on_tick(100);
    let range = parent.granted_ranges()[0].0;
    assert_eq!(range.len(), 24);
    // Child 10 claims a /28 inside it.
    let claim = MascMsg::Claim {
        claimer: 10,
        prefix: range.first_subprefix(28).unwrap(),
        expires: 10_000,
        at: 200,
    };
    let acts = parent.on_message(200, 10, claim);
    let s = sends(&acts);
    // Forwarded to the other child only.
    assert!(s
        .iter()
        .any(|(to, m)| *to == 11 && matches!(m, MascMsg::Claim { claimer: 10, .. })));
    assert!(!s.iter().any(|(to, _)| *to == 10));
    assert_eq!(parent.child_claim_count(), 1);
    // The child's claim counts as parent-space usage.
    assert_eq!(parent.used(), 16);
}

#[test]
fn parent_polices_its_own_blocks() {
    let mut parent = MascNode::new(1, None, vec![10], vec![], cfg(), 7);
    parent.bootstrap_ranges(&[(p("224.0.0.0/16"), Secs::MAX)]);
    let mut acts = Vec::new();
    parent.request_block(0, 28, 100_000, &mut acts);
    parent.on_tick(100); // claim granted, block allocated
    let range = parent.granted_ranges()[0].0;
    let block = range.first_subprefix(28).unwrap();
    // Child claims exactly the parent's allocated block.
    let acts = parent.on_message(
        200,
        10,
        MascMsg::Claim {
            claimer: 10,
            prefix: block,
            expires: 1000,
            at: 200,
        },
    );
    let s = sends(&acts);
    assert!(
        s.iter()
            .any(|(to, m)| *to == 10 && matches!(m, MascMsg::Collision { .. })),
        "parent must defend its own allocations: {s:?}"
    );
}

#[test]
fn drained_range_is_released() {
    let mut n = top(1, 2);
    let mut actions = Vec::new();
    n.request_block(0, 28, 1000, &mut actions);
    n.on_tick(100); // granted at t=100; block leased until t=1100
    let first = n.granted_ranges()[0].0;
    // Sibling takes the buddy so the next claim cannot double.
    let buddy = first.buddy().unwrap();
    n.on_message(
        120,
        2,
        MascMsg::Claim {
            claimer: 2,
            prefix: buddy,
            expires: 10_000_000,
            at: 120,
        },
    );
    // Second range with a long-lived block. (A preemptive claim may
    // already be in flight from the first grant; drive deadlines.)
    let mut actions = Vec::new();
    n.request_block(200, 28, 5_000_000, &mut actions);
    let mut acts = drive(&mut n, 200, 1_100);
    assert!(!n.granted_ranges().is_empty());
    // The first lease expired by t=1100.
    assert!(
        acts.iter()
            .any(|a| matches!(a, MascAction::BlockExpired { .. })),
        "lease must expire by t=1100: {acts:?}"
    );
    // Run deadline-driven checkpoints: the original /28 must stop
    // being advertised as its own prefix — either recycled once
    // drained, or subsumed by a preemptive doubling.
    acts.extend(drive(&mut n, 1_100, 10_000_000));
    let gone = acts
        .iter()
        .any(|a| matches!(a, MascAction::RangeLost { prefix } if first.covers(prefix)))
        || !n.granted_ranges().iter().any(|(p, _)| *p == first);
    assert!(gone, "an empty range must eventually be recycled");
    // And the node never leaks space: capacity covers usage.
    assert!(n.capacity() >= n.used());
}

#[test]
fn renewal_extends_active_range() {
    let mut n = top(1, 2);
    let mut actions = Vec::new();
    n.request_block(0, 28, 1_000_000, &mut actions); // long-lived block
    n.on_tick(100);
    let (_, exp0) = n.granted_ranges()[0];
    assert_eq!(exp0, 100_000);
    // At the renewal margin, the range is renewed and siblings told.
    let acts = drive(&mut n, 100, 95_000);
    let s = sends(&acts);
    assert!(
        s.iter().any(|(_, m)| matches!(m, MascMsg::Renew { .. })),
        "{s:?}"
    );
    let (_, exp1) = n
        .granted_ranges()
        .iter()
        .copied()
        .max_by_key(|(_, e)| *e)
        .unwrap();
    assert!(exp1 > exp0);
}

#[test]
fn lifetime_capped_by_parent_range() {
    let mut n = MascNode::new(1, None, vec![], vec![2], cfg(), 42);
    n.bootstrap_ranges(&[(p("224.0.0.0/16"), 50_000)]); // outer expires early
    let mut actions = Vec::new();
    n.request_block(0, 28, 1000, &mut actions);
    n.on_tick(100);
    let (_, exp) = n.granted_ranges()[0];
    assert_eq!(
        exp, 50_000,
        "claim lifetime must not exceed the parent range's"
    );
}

#[test]
fn sibling_claims_block_candidates_until_release_or_expiry() {
    let mut n = top(1, 2);
    // Sibling claims the entire /16 except nothing — the whole thing.
    let acts = n.on_message(
        0,
        2,
        MascMsg::Claim {
            claimer: 2,
            prefix: p("224.0.0.0/16"),
            expires: 500,
            at: 0,
        },
    );
    assert!(sends(&acts).is_empty());
    // Our claim now fails (no space) and backs off.
    let mut actions = Vec::new();
    let out = n.request_block(10, 28, 1000, &mut actions);
    assert!(matches!(out, BlockOutcome::Queued { .. }));
    assert!(actions
        .iter()
        .any(|a| matches!(a, MascAction::ClaimFailed { .. })));
    assert_eq!(n.stats.failures, 1);
    // After the sibling's claim expires, the retry succeeds: the
    // expiry and the (overdue) retry are both processed at t=500,
    // issuing a fresh claim.
    let acts = n.on_tick(500);
    assert!(
        n.claim_in_flight(),
        "retry must fire once space frees up: {acts:?}"
    );
    // The waiting period then completes and the queued block is served.
    let acts = n.on_tick(n.next_deadline().unwrap());
    assert!(acts
        .iter()
        .any(|a| matches!(a, MascAction::BlockReady { .. })));
    assert_eq!(n.pending_requests(), 0);
}

#[test]
fn release_message_frees_sibling_space() {
    let mut n = top(1, 2);
    n.on_message(
        0,
        2,
        MascMsg::Claim {
            claimer: 2,
            prefix: p("224.0.0.0/17"),
            expires: 100_000,
            at: 0,
        },
    );
    n.on_message(
        10,
        2,
        MascMsg::Release {
            claimer: 2,
            prefix: p("224.0.0.0/17"),
        },
    );
    assert_eq!(n.known_sibling_claims(), 0);
    // Renew on a claim we do not know is a no-op, not a crash.
    n.on_message(
        20,
        2,
        MascMsg::Renew {
            claimer: 2,
            prefix: p("224.0.0.0/17"),
            expires: 9,
        },
    );
}

#[test]
fn consolidation_after_two_active_prefixes() {
    // NOTE: preemptive doubling means intermediate states may differ;
    // the invariant under test is that queued demand is always served
    // and old space drains instead of leaking.
    let mut n = top(1, 2);
    // Force two active prefixes: claim, fill, claim again, fill.
    let mut acts = Vec::new();
    n.request_block(0, 28, 1_000_000, &mut acts);
    n.on_tick(100);
    // Sibling grabs our buddy (and its parent-buddy) so doubling is
    // impossible.
    let mine = n.granted_ranges()[0].0;
    let buddy = mine.buddy().unwrap();
    n.on_message(
        110,
        2,
        MascMsg::Claim {
            claimer: 2,
            prefix: buddy,
            expires: 10_000_000,
            at: 110,
        },
    );
    if let Some(b2) = mine.parent().and_then(|p| p.buddy()) {
        n.on_message(
            111,
            2,
            MascMsg::Claim {
                claimer: 2,
                prefix: b2,
                expires: 10_000_000,
                at: 111,
            },
        );
    }
    // Demand keeps arriving; the node claims new prefixes and, once
    // boxed in at two actives, consolidates.
    for (i, t) in [(0u64, 200u64), (1, 2200), (2, 4200), (3, 6200)] {
        let _ = i;
        let mut acts = Vec::new();
        n.request_block(t, 28, 1_000_000, &mut acts);
        drive(&mut n, t, t + 1_900);
    }
    assert_eq!(n.pending_requests(), 0, "all requests served");
    // The address space still in our hands covers everything leased.
    assert!(!n.granted_ranges().is_empty());
    assert!(n.capacity() >= n.used());
}

#[test]
fn non_multicast_claim_is_dropped() {
    // Regression: a claim naming space outside 224.0.0.0/4 (forged or
    // corrupted) must be ignored entirely — previously a parent would
    // answer it with a Collision, and a sibling branch would try to
    // record it.
    let mut parent = MascNode::new(1, None, vec![2], vec![], cfg(), 42);
    parent.bootstrap_ranges(&[(p("224.0.0.0/16"), Secs::MAX)]);
    let bogus = p("10.0.0.0/24");
    let acts = parent.on_message(
        10,
        2,
        MascMsg::Claim {
            claimer: 2,
            prefix: bogus,
            expires: 10_000,
            at: 10,
        },
    );
    assert!(
        acts.is_empty(),
        "bogus claim must not be answered: {acts:?}"
    );
    assert_eq!(parent.child_claim_count(), 0);

    // Control: the same claim inside multicast space but outside the
    // parent's ranges still draws the Collision refusal.
    let acts = parent.on_message(
        11,
        2,
        MascMsg::Claim {
            claimer: 2,
            prefix: p("225.0.0.0/24"),
            expires: 10_000,
            at: 11,
        },
    );
    assert!(
        sends(&acts)
            .iter()
            .any(|(_, m)| matches!(m, MascMsg::Collision { .. })),
        "out-of-range multicast claim is refused, not ignored: {acts:?}"
    );

    // A sibling node likewise never records a non-multicast claim.
    let mut sib = top(1, 2);
    let before = sib.known_sibling_claims();
    sib.on_message(
        12,
        2,
        MascMsg::Claim {
            claimer: 2,
            prefix: bogus,
            expires: 10_000,
            at: 12,
        },
    );
    assert_eq!(sib.known_sibling_claims(), before);
}
