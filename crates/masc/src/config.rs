//! Tunable parameters of the MASC engine, defaulting to the paper's
//! values.

use mcast_addr::Secs;

/// Configuration for a [`crate::node::MascNode`].
#[derive(Debug, Clone)]
pub struct MascConfig {
    /// Collision-detection waiting period before a claim is granted.
    /// Paper §4.1: "we believe 48 hours to be a realistic period".
    pub wait_period: Secs,
    /// Default lifetime requested for claimed ranges.
    pub range_lifetime: Secs,
    /// Renew a granted range this long before it expires.
    pub renew_margin: Secs,
    /// Target occupancy per domain (§4.3.3: "our target occupancy for
    /// a domain's address space is 75% or greater").
    pub target_occupancy: f64,
    /// Maximum number of active prefixes (§4.3.3: "we attempt to keep
    /// the number of prefixes per domain to no more than two").
    pub max_active_prefixes: usize,
    /// Smallest prefix worth claiming, as a mask length (a /24 = 256
    /// addresses, the simulation's block size).
    pub min_claim_len: u8,
    /// Back-off before retrying after a failed claim.
    pub claim_retry_backoff: Secs,
}

impl Default for MascConfig {
    fn default() -> Self {
        MascConfig {
            wait_period: 48 * 3600,
            range_lifetime: 60 * 86_400,
            renew_margin: 3 * 86_400,
            target_occupancy: 0.75,
            max_active_prefixes: 2,
            min_claim_len: 24,
            claim_retry_backoff: 6 * 3600,
        }
    }
}

impl MascConfig {
    /// A configuration with a short waiting period for fast tests.
    pub fn fast_test() -> Self {
        MascConfig {
            wait_period: 10,
            range_lifetime: 10_000,
            renew_margin: 1_000,
            claim_retry_backoff: 20,
            ..Default::default()
        }
    }
}

impl snapshot::Snapshot for MascConfig {
    fn encode(&self, enc: &mut snapshot::Enc) {
        enc.u64(self.wait_period);
        enc.u64(self.range_lifetime);
        enc.u64(self.renew_margin);
        enc.f64(self.target_occupancy);
        enc.usize(self.max_active_prefixes);
        enc.u8(self.min_claim_len);
        enc.u64(self.claim_retry_backoff);
    }
    fn decode(dec: &mut snapshot::Dec<'_>) -> Result<Self, snapshot::SnapError> {
        Ok(MascConfig {
            wait_period: dec.u64()?,
            range_lifetime: dec.u64()?,
            renew_margin: dec.u64()?,
            target_occupancy: dec.f64()?,
            max_active_prefixes: dec.usize()?,
            min_claim_len: dec.u8()?,
            claim_retry_backoff: dec.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = MascConfig::default();
        assert_eq!(c.wait_period, 48 * 3600);
        assert!((c.target_occupancy - 0.75).abs() < 1e-12);
        assert_eq!(c.max_active_prefixes, 2);
    }
}
