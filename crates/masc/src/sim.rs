//! Driving MASC nodes inside the discrete-event simulator, and the
//! figure-2 experiment harness (50 top-level domains × 50 children,
//! 800 days).

use std::collections::BTreeSet;

use mcast_addr::{Prefix, Secs};
use rand::Rng;
use simnet::{Ctx, Node, NodeId, SimDuration, SimEngine, SimTime};

use crate::config::MascConfig;
use crate::msg::{DomainAsn, MascAction, MascMsg};
use crate::node::MascNode;

/// Messages carried by the simulator between MASC actors.
#[derive(Debug, Clone)]
pub enum MascWire {
    /// A protocol message from another domain.
    Proto {
        /// Sending domain.
        from: DomainAsn,
        /// The message.
        msg: MascMsg,
    },
    /// Workload injection: request one block (used by tests that drive
    /// demand externally instead of via [`Workload`]).
    RequestBlock {
        /// Block mask length.
        len: u8,
        /// Lease lifetime in seconds.
        lifetime: Secs,
    },
}

/// Self-scheduling block-request workload (§4.3.3 simulation: "each
/// child domain's allocation server requests blocks of 256 addresses
/// with a lifetime of 30 days ... inter-request times chosen uniformly
/// at random between 1 and 95 hours").
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    /// Block size as a mask length (/24 = 256 addresses).
    pub block_len: u8,
    /// Block lease lifetime.
    pub block_lifetime: Secs,
    /// Minimum inter-request gap.
    pub min_gap: Secs,
    /// Maximum inter-request gap.
    pub max_gap: Secs,
}

impl Workload {
    /// The paper's figure-2 workload.
    pub fn paper_fig2() -> Self {
        Workload {
            block_len: 24,
            block_lifetime: 30 * 86_400,
            min_gap: 3_600,
            max_gap: 95 * 3_600,
        }
    }
}

const WORKLOAD_TIMER: u64 = u64::MAX;

/// Running counters kept by a [`MascActor`] for analysis.
#[derive(Debug, Clone, Copy, Default)]
pub struct ActorStats {
    /// Blocks currently leased (addresses).
    pub leased_addrs: u64,
    /// Blocks obtained in total.
    pub blocks_obtained: u64,
    /// Block requests still unsatisfied.
    pub blocks_pending: u64,
    /// Blocks lost to range expiry before their lease ended.
    pub blocks_lost: u64,
}

/// A simulator node hosting one domain's [`MascNode`].
pub struct MascActor {
    /// The protocol engine.
    pub node: MascNode,
    /// Optional self-scheduling workload.
    // lint:allow(snapshot-field-coverage) — scenario config; stays with the rebuilt instance
    pub workload: Option<Workload>,
    /// Counters.
    pub stats: ActorStats,
    /// Deadlines already scheduled as timers (dedupe).
    scheduled: BTreeSet<Secs>,
    /// Bootstrap ranges applied at start (top-level domains).
    // lint:allow(snapshot-field-coverage) — scenario config applied at start; stays with the rebuilt instance
    bootstrap: Vec<(Prefix, Secs)>,
}

impl MascActor {
    /// Creates an actor around a node. `bootstrap` is non-empty only
    /// for top-level domains.
    pub fn new(node: MascNode, workload: Option<Workload>, bootstrap: Vec<(Prefix, Secs)>) -> Self {
        MascActor {
            node,
            workload,
            stats: ActorStats::default(),
            scheduled: BTreeSet::new(),
            bootstrap,
        }
    }

    /// Maps a domain ASN to the simulator node id. The figure-2 style
    /// harness registers actor for ASN `a` at node index `a - 1`.
    fn node_of(asn: DomainAsn) -> NodeId {
        NodeId(asn as usize - 1)
    }

    fn apply_actions(&mut self, ctx: &mut Ctx<'_, MascWire>, actions: Vec<MascAction>) {
        let me = self.node.domain();
        for a in actions {
            match a {
                MascAction::Send { to, msg } => {
                    ctx.send(Self::node_of(to), MascWire::Proto { from: me, msg });
                }
                MascAction::RangeGranted { .. } | MascAction::RangeLost { .. } => {
                    // G-RIB accounting reads node state directly; the
                    // integrated architecture (crate `masc-bgmp-core`)
                    // wires these into BGP originations.
                }
                MascAction::BlockReady { block, .. } => {
                    self.stats.blocks_obtained += 1;
                    self.stats.blocks_pending = self.stats.blocks_pending.saturating_sub(1);
                    self.stats.leased_addrs += block.size();
                }
                MascAction::BlockExpired { block } => {
                    self.stats.leased_addrs = self.stats.leased_addrs.saturating_sub(block.size());
                }
                MascAction::ClaimFailed { .. } => {}
            }
        }
    }

    /// Runs due work and (re-)arms the deadline timer. The deadline is
    /// probed once per iteration (it is the hottest per-event call):
    /// a future deadline arms the timer and exits in the same breath.
    fn pump(&mut self, ctx: &mut Ctx<'_, MascWire>) {
        let now = ctx.now().as_secs();
        let mut guard = 0;
        loop {
            let Some(d) = self.node.next_deadline() else {
                return;
            };
            if d > now {
                self.schedule_at(ctx, d.max(now + 1));
                return;
            }
            guard += 1;
            if guard > 64 {
                debug_assert!(false, "masc deadline livelock at {now}");
                return;
            }
            let actions = self.node.on_tick(now);
            if actions.is_empty() {
                if self.node.next_deadline().is_some_and(|d| d <= now) {
                    // Deadline did not advance and nothing happened:
                    // the engine considers the work not yet actionable;
                    // check again next second.
                    self.schedule_at(ctx, now + 1);
                    return;
                }
                continue;
            }
            self.apply_actions(ctx, actions);
        }
    }

    fn schedule_at(&mut self, ctx: &mut Ctx<'_, MascWire>, at_secs: Secs) {
        if self.scheduled.insert(at_secs) {
            let now_ms = ctx.now().as_millis();
            let at_ms = at_secs * 1000;
            let delay = SimDuration::from_millis(at_ms.saturating_sub(now_ms).max(1));
            ctx.set_timer(delay, at_secs);
        }
    }

    fn do_request(&mut self, ctx: &mut Ctx<'_, MascWire>, len: u8, lifetime: Secs) {
        let now = ctx.now().as_secs();
        let mut actions = Vec::new();
        let outcome = self.node.request_block(now, len, lifetime, &mut actions);
        match outcome {
            crate::node::BlockOutcome::Ready { block, .. } => {
                self.stats.blocks_obtained += 1;
                self.stats.leased_addrs += block.size();
            }
            crate::node::BlockOutcome::Queued { .. } => {
                self.stats.blocks_pending += 1;
            }
        }
        self.apply_actions(ctx, actions);
        self.pump(ctx);
    }
}

impl Node<MascWire> for MascActor {
    fn on_start(&mut self, ctx: &mut Ctx<'_, MascWire>) {
        if !self.bootstrap.is_empty() {
            let ranges = self.bootstrap.clone();
            self.node.bootstrap_ranges(&ranges);
            // §4.4: top-level providers claim a small amount of space
            // at startup, growing as children issue claims.
            let mut actions = Vec::new();
            self.node
                .start_expansion(ctx.now().as_secs(), 1, &mut actions);
            self.apply_actions(ctx, actions);
        }
        if let Some(w) = self.workload {
            let gap = ctx.rng().gen_range(w.min_gap..=w.max_gap);
            ctx.set_timer(SimDuration::from_secs(gap), WORKLOAD_TIMER);
        }
        self.pump(ctx);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, MascWire>, _from: NodeId, msg: MascWire) {
        match msg {
            MascWire::Proto { from, msg } => {
                let now = ctx.now().as_secs();
                let actions = self.node.on_message(now, from, msg);
                self.apply_actions(ctx, actions);
                self.pump(ctx);
            }
            MascWire::RequestBlock { len, lifetime } => {
                self.do_request(ctx, len, lifetime);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, MascWire>, key: u64) {
        if key == WORKLOAD_TIMER {
            if let Some(w) = self.workload {
                self.do_request(ctx, w.block_len, w.block_lifetime);
                let gap = ctx.rng().gen_range(w.min_gap..=w.max_gap);
                ctx.set_timer(SimDuration::from_secs(gap), WORKLOAD_TIMER);
            }
            return;
        }
        self.scheduled.remove(&key);
        self.pump(ctx);
    }
}

/// Parameters of a hierarchy simulation (figure 2 defaults).
#[derive(Debug, Clone)]
pub struct HierarchySimParams {
    /// Top-level domain count.
    pub top_level: usize,
    /// Children per top-level domain.
    pub children_per: usize,
    /// Per-child workload.
    pub workload: Workload,
    /// Protocol configuration.
    pub config: MascConfig,
    /// RNG seed.
    pub seed: u64,
}

impl HierarchySimParams {
    /// The paper's figure-2 setup.
    pub fn paper_fig2(seed: u64) -> Self {
        HierarchySimParams {
            top_level: 50,
            children_per: 50,
            workload: Workload::paper_fig2(),
            config: MascConfig::default(),
            seed,
        }
    }
}

/// Per-sample metrics captured from a running hierarchy simulation.
#[derive(Debug, Clone, Copy)]
pub struct HierarchyMetrics {
    /// Simulated day.
    pub day: f64,
    /// Addresses leased to clients.
    pub leased: u64,
    /// Addresses claimed from 224/4 by top-level domains.
    pub claimed_top: u64,
    /// Utilization = leased / claimed (paper's definition).
    pub utilization: f64,
    /// Average G-RIB size across all domains.
    pub grib_avg: f64,
    /// Maximum G-RIB size across all domains.
    pub grib_max: usize,
    /// Globally advertised (top-level) prefix count.
    pub global_prefixes: usize,
    /// Outstanding (queued) block requests.
    pub pending: u64,
}

/// A running two-level MASC hierarchy simulation.
pub struct HierarchySim {
    /// The event engine (serial, or sharded via
    /// [`HierarchySim::new_sharded`]).
    pub engine: SimEngine<MascWire>,
    /// Node ids of top-level domains (ASN = index + 1).
    pub tops: Vec<NodeId>,
    /// Node ids of child domains.
    pub children: Vec<NodeId>,
    params: HierarchySimParams,
    shards: usize,
}

impl HierarchySim {
    /// Builds the hierarchy on the serial engine: ASNs 1..=T are
    /// top-level; children of top `t` are `T + (t-1)*C + 1 ..= T + t*C`.
    /// Node id = ASN - 1.
    pub fn new(params: HierarchySimParams) -> Self {
        Self::new_sharded(params, 0)
    }

    /// Builds the hierarchy on the sharded engine (`shards = 0` falls
    /// back to serial). Each top-level domain and all of its children
    /// land on the same shard — MASC traffic is overwhelmingly
    /// parent↔child and sibling↔sibling, so subtree placement keeps
    /// almost all chatter on-shard. Results are byte-identical across
    /// every `shards ≥ 1` count (and form a separate determinism
    /// family from `shards = 0`; see `simnet::shard`).
    pub fn new_sharded(params: HierarchySimParams, shards: usize) -> Self {
        let t = params.top_level;
        let c = params.children_per;
        let mut engine: SimEngine<MascWire> =
            SimEngine::with_shards(params.seed, SimDuration::from_millis(50), shards);
        // Subtree → shard: contiguous bands of top-level indices.
        let shard_of_top = |asn: DomainAsn| {
            if shards == 0 {
                0
            } else {
                (asn as usize - 1) * shards / t.max(1)
            }
        };
        let top_asns: Vec<DomainAsn> = (1..=t as u32).collect();
        let mut tops = Vec::new();
        let mut children = Vec::new();
        for &asn in &top_asns {
            let kids: Vec<DomainAsn> = (0..c as u32)
                .map(|j| t as u32 + (asn - 1) * c as u32 + j + 1)
                .collect();
            let siblings: Vec<DomainAsn> = top_asns.iter().copied().filter(|s| *s != asn).collect();
            let node = MascNode::new(
                asn,
                None,
                kids,
                siblings,
                params.config.clone(),
                params.seed,
            );
            let bootstrap = vec![(Prefix::MULTICAST, Secs::MAX)];
            let id = engine.add_node_in(
                shard_of_top(asn),
                Box::new(MascActor::new(node, None, bootstrap)),
            );
            tops.push(id);
        }
        for &asn in &top_asns {
            for j in 0..c as u32 {
                let child_asn = t as u32 + (asn - 1) * c as u32 + j + 1;
                let siblings: Vec<DomainAsn> = (0..c as u32)
                    .filter(|k| *k != j)
                    .map(|k| t as u32 + (asn - 1) * c as u32 + k + 1)
                    .collect();
                let node = MascNode::new(
                    child_asn,
                    Some(asn),
                    Vec::new(),
                    siblings,
                    params.config.clone(),
                    params.seed,
                );
                let id = engine.add_node_in(
                    shard_of_top(asn),
                    Box::new(MascActor::new(node, Some(params.workload), Vec::new())),
                );
                children.push(id);
            }
        }
        HierarchySim {
            engine,
            tops,
            children,
            params,
            shards,
        }
    }

    /// Advances the simulation to the given day.
    pub fn run_to_day(&mut self, day: u64) {
        self.engine
            .run_until(SimTime::ZERO + SimDuration::from_days(day));
    }

    /// Captures the paper's figure-2 metrics at the current instant.
    pub fn sample(&self) -> HierarchyMetrics {
        let mut leased = 0u64;
        let mut claimed_top = 0u64;
        let mut pending = 0u64;
        let mut global_prefixes = 0usize;
        for &id in &self.tops {
            let a = self.engine.node_as::<MascActor>(id).expect("actor");
            claimed_top += a
                .node
                .granted_ranges()
                .iter()
                .map(|(p, _)| p.size())
                .sum::<u64>();
            global_prefixes += a.node.advertised_prefixes().len();
            leased += a.stats.leased_addrs;
            pending += a.node.pending_requests() as u64;
        }
        for &id in &self.children {
            let a = self.engine.node_as::<MascActor>(id).expect("actor");
            leased += a.stats.leased_addrs;
            pending += a.node.pending_requests() as u64;
        }
        // G-RIB accounting per the paper: at a top-level domain it is
        // the globally advertised prefixes plus its children's
        // prefixes; at a child it is the global prefixes plus the
        // prefixes claimed by its siblings (plus its own).
        let mut sizes: Vec<usize> = Vec::with_capacity(self.tops.len() + self.children.len());
        for &id in &self.tops {
            let a = self.engine.node_as::<MascActor>(id).expect("actor");
            sizes.push(global_prefixes + a.node.child_claim_count());
        }
        for &id in &self.children {
            let a = self.engine.node_as::<MascActor>(id).expect("actor");
            sizes.push(
                global_prefixes
                    + a.node.known_sibling_claims()
                    + a.node.advertised_prefixes().len(),
            );
        }
        let grib_max = sizes.iter().copied().max().unwrap_or(0);
        let grib_avg = if sizes.is_empty() {
            0.0
        } else {
            sizes.iter().sum::<usize>() as f64 / sizes.len() as f64
        };
        HierarchyMetrics {
            day: self.engine.now().as_days_f64(),
            leased,
            claimed_top,
            utilization: if claimed_top == 0 {
                0.0
            } else {
                leased as f64 / claimed_top as f64
            },
            grib_avg,
            grib_max,
            global_prefixes,
            pending,
        }
    }

    /// The simulation parameters.
    pub fn params(&self) -> &HierarchySimParams {
        &self.params
    }

    /// The shard count the simulation was built with (0 = serial).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Serializes the whole simulation — parameters plus full engine
    /// state — so a later process can [`HierarchySim::resume`] it and
    /// produce byte-identical results to an uninterrupted run.
    ///
    /// Format v2 records whether the run is sharded; a sharded engine
    /// blob is itself shard-count-invariant, so resume may pick a
    /// *different* shard count than the checkpointing process used.
    pub fn checkpoint(&self) -> Result<Vec<u8>, snapshot::SnapError> {
        use snapshot::Snapshot;
        let mut enc = snapshot::Enc::with_header(SNAP_KIND_HIERARCHY);
        enc.usize(self.params.top_level);
        enc.usize(self.params.children_per);
        self.params.workload.encode(&mut enc);
        self.params.config.encode(&mut enc);
        enc.u64(self.params.seed);
        enc.bool(self.shards > 0);
        enc.bytes(&self.engine.checkpoint::<MascActor>()?);
        Ok(enc.finish())
    }

    /// Rebuilds a simulation from [`HierarchySim::checkpoint`] bytes:
    /// reconstructs the hierarchy from the encoded parameters, then
    /// restores every actor and the engine's clock/queue/RNG.
    ///
    /// Serial checkpoints (and every pre-sharding v1 blob) resume onto
    /// the serial engine. Sharded checkpoints resume onto a sharded
    /// engine with `shards` shards — any count ≥ 1 continues the same
    /// byte-deterministic execution.
    pub fn resume(bytes: &[u8]) -> Result<Self, snapshot::SnapError> {
        Self::resume_sharded(bytes, 1)
    }

    /// [`HierarchySim::resume`] with an explicit shard count for
    /// sharded blobs (ignored when the blob is serial).
    pub fn resume_sharded(bytes: &[u8], shards: usize) -> Result<Self, snapshot::SnapError> {
        use snapshot::Snapshot;
        let mut dec = snapshot::Dec::new(bytes);
        let version = dec.header(SNAP_KIND_HIERARCHY)?;
        let params = HierarchySimParams {
            top_level: dec.usize()?,
            children_per: dec.usize()?,
            workload: Workload::decode(&mut dec)?,
            config: MascConfig::decode(&mut dec)?,
            seed: dec.u64()?,
        };
        // v1 blobs predate sharding: always serial.
        let sharded = if version >= 2 { dec.bool()? } else { false };
        let engine_blob = dec.bytes()?.to_vec();
        dec.finish()?;
        let mut sim = if sharded {
            HierarchySim::new_sharded(params, shards.max(1))
        } else {
            HierarchySim::new(params)
        };
        sim.engine.resume::<MascActor>(&engine_blob)?;
        Ok(sim)
    }
}

/// Snapshot kind tag for [`HierarchySim::checkpoint`] blobs.
pub const SNAP_KIND_HIERARCHY: u16 = 2;

impl snapshot::Snapshot for MascWire {
    fn encode(&self, enc: &mut snapshot::Enc) {
        match self {
            MascWire::Proto { from, msg } => {
                enc.u8(0);
                enc.u32(*from);
                msg.encode(enc);
            }
            MascWire::RequestBlock { len, lifetime } => {
                enc.u8(1);
                enc.u8(*len);
                enc.u64(*lifetime);
            }
        }
    }
    fn decode(dec: &mut snapshot::Dec<'_>) -> Result<Self, snapshot::SnapError> {
        match dec.u8()? {
            0 => Ok(MascWire::Proto {
                from: dec.u32()?,
                msg: MascMsg::decode(dec)?,
            }),
            1 => Ok(MascWire::RequestBlock {
                len: dec.u8()?,
                lifetime: dec.u64()?,
            }),
            _ => Err(snapshot::SnapError::Invalid("MascWire tag")),
        }
    }
}

impl snapshot::Snapshot for Workload {
    fn encode(&self, enc: &mut snapshot::Enc) {
        enc.u8(self.block_len);
        enc.u64(self.block_lifetime);
        enc.u64(self.min_gap);
        enc.u64(self.max_gap);
    }
    fn decode(dec: &mut snapshot::Dec<'_>) -> Result<Self, snapshot::SnapError> {
        let w = Workload {
            block_len: dec.u8()?,
            block_lifetime: dec.u64()?,
            min_gap: dec.u64()?,
            max_gap: dec.u64()?,
        };
        if w.min_gap > w.max_gap {
            return Err(snapshot::SnapError::Invalid("workload gap range"));
        }
        Ok(w)
    }
}

impl snapshot::Snapshot for ActorStats {
    fn encode(&self, enc: &mut snapshot::Enc) {
        enc.u64(self.leased_addrs);
        enc.u64(self.blocks_obtained);
        enc.u64(self.blocks_pending);
        enc.u64(self.blocks_lost);
    }
    fn decode(dec: &mut snapshot::Dec<'_>) -> Result<Self, snapshot::SnapError> {
        Ok(ActorStats {
            leased_addrs: dec.u64()?,
            blocks_obtained: dec.u64()?,
            blocks_pending: dec.u64()?,
            blocks_lost: dec.u64()?,
        })
    }
}

impl snapshot::SnapshotState for MascActor {
    /// The protocol node, counters, and scheduled-deadline dedupe set.
    /// `workload` and `bootstrap` are construction-time configuration:
    /// the rebuilt actor already carries them, and `on_start` (which
    /// consumes `bootstrap`) is not replayed on resume.
    fn encode_state(&self, enc: &mut snapshot::Enc) {
        use snapshot::Snapshot;
        self.node.encode_state(enc);
        self.stats.encode(enc);
        self.scheduled.encode(enc);
    }

    fn restore_state(&mut self, dec: &mut snapshot::Dec<'_>) -> Result<(), snapshot::SnapError> {
        use snapshot::Snapshot;
        self.node.restore_state(dec)?;
        self.stats = ActorStats::decode(dec)?;
        self.scheduled = Snapshot::decode(dec)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature hierarchy (3 tops × 3 children) with fast timers,
    /// run for a few simulated days: claims must be granted, blocks
    /// leased, and no two domains may hold overlapping granted ranges.
    #[test]
    fn mini_hierarchy_allocates_disjoint_ranges() {
        let params = HierarchySimParams {
            top_level: 3,
            children_per: 3,
            workload: Workload {
                block_len: 28, // 16-address blocks
                block_lifetime: 2 * 86_400,
                min_gap: 3_600,
                max_gap: 10 * 3_600,
            },
            config: MascConfig {
                wait_period: 3_600, // 1 h wait for fast convergence
                range_lifetime: 5 * 86_400,
                renew_margin: 86_400,
                claim_retry_backoff: 1_800,
                min_claim_len: 28,
                ..MascConfig::default()
            },
            seed: 11,
        };
        let mut sim = HierarchySim::new(params);
        sim.run_to_day(6);
        let m = sim.sample();
        assert!(m.claimed_top > 0, "top-level domains must claim space");
        assert!(m.leased > 0, "blocks must be leased: {m:?}");
        assert!(m.utilization > 0.0 && m.utilization <= 1.0);

        // Granted ranges across ALL domains must be pairwise disjoint.
        let mut all: Vec<(DomainAsn, Prefix)> = Vec::new();
        for id in sim.tops.iter().chain(sim.children.iter()) {
            let a = sim.engine.node_as::<MascActor>(*id).unwrap();
            for (p, _) in a.node.granted_ranges() {
                all.push((a.node.domain(), p));
            }
        }
        for (i, (da, pa)) in all.iter().enumerate() {
            for (db, pb) in all.iter().skip(i + 1) {
                // A child's range nests inside its parent's range —
                // that is the hierarchy working. Overlap between
                // unrelated domains is a correctness failure.
                let related = is_ancestor(*da, *db, 3, 3) || is_ancestor(*db, *da, 3, 3);
                if !related {
                    assert!(
                        !pa.overlaps(pb),
                        "domains {da} and {db} hold overlapping ranges {pa} / {pb}"
                    );
                }
            }
        }
    }

    fn is_ancestor(parent: DomainAsn, child: DomainAsn, tops: u32, per: u32) -> bool {
        if parent <= tops && child > tops {
            let owner = (child - tops - 1) / per + 1;
            owner == parent
        } else {
            false
        }
    }

    #[test]
    fn checkpoint_resume_matches_uninterrupted_hierarchy() {
        let params = HierarchySimParams {
            top_level: 2,
            children_per: 3,
            workload: Workload {
                block_len: 28,
                block_lifetime: 86_400,
                min_gap: 3_600,
                max_gap: 7_200,
            },
            config: MascConfig {
                wait_period: 1_800,
                range_lifetime: 3 * 86_400,
                renew_margin: 43_200,
                claim_retry_backoff: 900,
                min_claim_len: 28,
                ..MascConfig::default()
            },
            seed: 23,
        };

        let mut monolithic = HierarchySim::new(params.clone());
        monolithic.run_to_day(5);

        let mut first = HierarchySim::new(params);
        first.run_to_day(2);
        let blob = first.checkpoint().expect("checkpoint");
        drop(first); // the original process "dies" here
        let mut resumed = HierarchySim::resume(&blob).expect("resume");
        resumed.run_to_day(5);

        let (a, b) = (monolithic.sample(), resumed.sample());
        assert_eq!(a.leased, b.leased);
        assert_eq!(a.claimed_top, b.claimed_top);
        assert_eq!(a.grib_max, b.grib_max);
        assert_eq!(a.global_prefixes, b.global_prefixes);
        assert_eq!(a.pending, b.pending);
        assert_eq!(
            monolithic.engine.stats().events,
            resumed.engine.stats().events
        );
        assert_eq!(monolithic.engine.now(), resumed.engine.now());
        assert!(a.leased > 0, "workload must have produced leases");
    }

    #[test]
    fn deterministic_across_runs() {
        let params = |seed| HierarchySimParams {
            top_level: 2,
            children_per: 2,
            workload: Workload {
                block_len: 28,
                block_lifetime: 86_400,
                min_gap: 3_600,
                max_gap: 7_200,
            },
            config: MascConfig {
                wait_period: 1_800,
                range_lifetime: 3 * 86_400,
                renew_margin: 43_200,
                claim_retry_backoff: 900,
                min_claim_len: 28,
                ..MascConfig::default()
            },
            seed,
        };
        let run = |seed| {
            let mut sim = HierarchySim::new(params(seed));
            sim.run_to_day(3);
            let m = sim.sample();
            (
                m.leased,
                m.claimed_top,
                m.grib_max,
                sim.engine.stats().events,
            )
        };
        assert_eq!(run(5), run(5));
    }
}
