//! The Multicast Address-Set Claim (MASC) protocol.
//!
//! MASC is one half of the paper's contribution: a hierarchical,
//! decentralized allocator of multicast address ranges. Domains form a
//! parent/child hierarchy along provider–customer lines and obtain
//! ranges with a *claim–collide* mechanism (§4.1): listen to the
//! parent's space, claim a sub-range, announce it to siblings, wait out
//! a collision-detection period (48 h), then inject the range into BGP
//! as a group route and hand it to the domain's address allocation
//! servers.
//!
//! * [`msg`] — protocol messages and engine actions;
//! * [`config`] — tunables (waiting period, 75 % occupancy target, …);
//! * [`claims`] — outer-space tracking and claim lifecycle state;
//! * [`node`] — the sans-io engine: claim algorithm (§4.3.3),
//!   collision resolution, lifetimes/renewal, MAAS block leasing;
//! * [`sim`] — discrete-event actors and the figure-2 hierarchy
//!   harness.

pub mod claims;
pub mod config;
pub mod msg;
pub mod node;
pub mod sim;

pub use config::MascConfig;
pub use msg::{DomainAsn, MascAction, MascMsg};
pub use node::{BlockOutcome, MascNode, MascStats};
pub use sim::{
    HierarchyMetrics, HierarchySim, HierarchySimParams, MascActor, MascWire, Workload,
    SNAP_KIND_HIERARCHY,
};
