//! Claim bookkeeping: the outer space a domain claims from, and the
//! states of its own claims.

use mcast_addr::{Prefix, Secs, SpaceTracker};

use crate::msg::DomainAsn;

/// A claim known to exist in the outer space (a sibling's, or our own).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KnownClaim {
    /// The claiming domain.
    pub owner: DomainAsn,
    /// The claimed range.
    pub prefix: Prefix,
    /// Absolute expiry.
    pub expires: Secs,
    /// When the claim was made (collision tiebreak).
    pub at: Secs,
}

/// The space a domain may claim from: the parent's advertised ranges
/// (or the bootstrap/exchange ranges for a top-level domain), minus
/// every known claim.
#[derive(Debug, Clone, Default)]
pub struct OuterSpace {
    /// One tracker per parent range; entries are known claims. The
    /// flag marks ranges new claims may be made from (parent-active).
    ranges: Vec<(Secs, bool, SpaceTracker)>,
    /// All known claims (including our own), sorted by (prefix,
    /// owner) — at most one entry per key, found by binary search.
    claims: Vec<KnownClaim>,
    /// Derived: the earliest expiry among `claims`, kept exact across
    /// every mutation so the per-event deadline probe is O(1) instead
    /// of a scan. Recomputed on decode; never serialized.
    // lint:allow(snapshot-field-coverage) — derived minimum, recomputed from claims on decode
    min_expiry: Option<Secs>,
}

impl OuterSpace {
    /// Creates an empty outer space.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replaces the set of parent ranges, keeping claims that still
    /// fall inside some range. All ranges are claimable; use
    /// [`OuterSpace::set_ranges_flagged`] to mark draining ranges.
    pub fn set_ranges(&mut self, ranges: &[(Prefix, Secs)]) {
        let flagged: Vec<(Prefix, Secs, bool)> =
            ranges.iter().map(|(p, e)| (*p, *e, true)).collect();
        self.set_ranges_flagged(&flagged);
    }

    /// Replaces the set of parent ranges with explicit claimable
    /// (active) flags, keeping claims that still fall inside some
    /// range.
    pub fn set_ranges_flagged(&mut self, ranges: &[(Prefix, Secs, bool)]) {
        // Fast path: same roots and flags, only expiries moved. The
        // trackers and claim placements depend on neither, so nothing
        // needs rebuilding. Parents re-advertise their ranges after
        // every grant, so this is the overwhelmingly common case.
        if self.ranges.len() == ranges.len()
            && self
                .ranges
                .iter()
                .zip(ranges)
                .all(|((_, act, t), (p, _, a))| t.root() == *p && act == a)
        {
            for (r, (_, exp, _)) in self.ranges.iter_mut().zip(ranges) {
                r.0 = *exp;
            }
            return;
        }
        let old_claims = std::mem::take(&mut self.claims);
        self.ranges = ranges
            .iter()
            .map(|(p, exp, act)| (*exp, *act, SpaceTracker::new(*p)))
            .collect();
        self.min_expiry = None;
        for c in old_claims {
            self.insert_claim(c);
        }
    }

    /// The parent ranges currently known.
    pub fn ranges(&self) -> impl Iterator<Item = (Prefix, Secs)> + '_ {
        self.ranges.iter().map(|(exp, _, t)| (t.root(), *exp))
    }

    /// Is `p` within some parent range?
    pub fn in_range(&self, p: &Prefix) -> bool {
        self.ranges.iter().any(|(_, _, t)| t.root().covers(p))
    }

    /// Is `p` within some *claimable* (active) parent range?
    pub fn in_claimable_range(&self, p: &Prefix) -> bool {
        self.ranges
            .iter()
            .any(|(_, act, t)| *act && t.root().covers(p))
    }

    /// Maintains the cached minimum after a claim with `expires` left
    /// the set (rescans only when the departed expiry was the minimum).
    fn note_removed_expiry(&mut self, expires: Secs) {
        if self.min_expiry == Some(expires) {
            self.min_expiry = self.claims.iter().map(|k| k.expires).min();
        }
    }

    /// Position of the claim keyed (prefix, owner), or the insertion
    /// point keeping `claims` sorted.
    fn claim_pos(&self, prefix: &Prefix, owner: DomainAsn) -> Result<usize, usize> {
        self.claims
            .binary_search_by(|k| (k.prefix, k.owner).cmp(&(*prefix, owner)))
    }

    /// Records a claim. Returns false if it falls outside every range
    /// (the caller may then send a collision per §4.4).
    pub fn insert_claim(&mut self, c: KnownClaim) -> bool {
        let mut placed = false;
        for (_, _, t) in &mut self.ranges {
            if t.root().covers(&c.prefix) {
                t.insert(c.prefix);
                placed = true;
                break;
            }
        }
        if placed {
            match self.claim_pos(&c.prefix, c.owner) {
                Ok(pos) => {
                    // Re-announcement: replace in place.
                    let old = self.claims[pos].expires;
                    self.claims[pos] = c;
                    self.note_removed_expiry(old);
                }
                Err(pos) => self.claims.insert(pos, c),
            }
            self.min_expiry = Some(self.min_expiry.map_or(c.expires, |m| m.min(c.expires)));
        }
        placed
    }

    /// Removes a claim by owner and prefix.
    pub fn remove_claim(&mut self, owner: DomainAsn, prefix: &Prefix) -> bool {
        let Ok(pos) = self.claim_pos(prefix, owner) else {
            return false;
        };
        let gone = self.claims.remove(pos);
        self.note_removed_expiry(gone.expires);
        // Only clear the tracker entry if no other claim holds the
        // exact same prefix (overlapping claims during waiting). Same-
        // prefix claims sort adjacently, so checking the neighbors of
        // the removed slot suffices.
        let same_prefix_survives = self.claims.get(pos).is_some_and(|k| k.prefix == *prefix)
            || pos
                .checked_sub(1)
                .is_some_and(|i| self.claims[i].prefix == *prefix);
        if !same_prefix_survives {
            for (_, _, t) in &mut self.ranges {
                t.remove(prefix);
            }
        }
        true
    }

    /// Updates the expiry of a claim (renewal).
    pub fn renew_claim(&mut self, owner: DomainAsn, prefix: &Prefix, expires: Secs) -> bool {
        let Ok(pos) = self.claim_pos(prefix, owner) else {
            return false;
        };
        let old = self.claims[pos].expires;
        self.claims[pos].expires = expires;
        if self.min_expiry == Some(old) {
            self.min_expiry = self.claims.iter().map(|k| k.expires).min();
        } else {
            self.min_expiry = self.min_expiry.map(|m| m.min(expires));
        }
        true
    }

    /// Removes all claims expired at `now`, returning them.
    pub fn expire_claims(&mut self, now: Secs) -> Vec<KnownClaim> {
        // Common case on every tick: nothing due — answered by the
        // cached minimum without walking the claims.
        match self.min_expiry {
            Some(first) if first <= now => {}
            _ => return Vec::new(),
        }
        let expired: Vec<KnownClaim> = self
            .claims
            .iter()
            .filter(|k| k.expires <= now)
            .copied()
            .collect();
        for e in &expired {
            self.remove_claim(e.owner, &e.prefix);
        }
        expired
    }

    /// Earliest claim expiry.
    pub fn next_claim_expiry(&self) -> Option<Secs> {
        self.min_expiry
    }

    /// All known claims.
    pub fn claims(&self) -> &[KnownClaim] {
        &self.claims
    }

    /// Claims overlapping `p`, excluding those owned by `except`.
    pub fn overlapping(&self, p: &Prefix, except: Option<DomainAsn>) -> Vec<KnownClaim> {
        self.claims
            .iter()
            .filter(|k| Some(k.owner) != except && k.prefix.overlaps(p))
            .copied()
            .collect()
    }

    /// Is `p` entirely free (inside a range, overlapping no claim)?
    pub fn is_free(&self, p: &Prefix) -> bool {
        self.ranges
            .iter()
            .any(|(_, _, t)| t.root().covers(p) && t.is_free(p))
    }

    /// Claim candidates of the requested mask length, per the paper's
    /// algorithm (§4.3.3): the first sub-prefix of the desired size in
    /// each of the globally-largest free blocks across all ranges.
    pub fn claim_candidates(&self, want_len: u8) -> Vec<Prefix> {
        // A claim must be strictly smaller than the range it is taken
        // from: claiming a parent's whole range would make two domains
        // originate the identical group route (and leave the parent
        // nothing to allocate from), so such candidates take the first
        // half instead.
        //
        // The trackers maintain their free blocks indexed by size
        // class, so the globally-largest blocks are found without
        // recomputing any range's free decomposition.
        let Some(min_len) = self
            .ranges
            .iter()
            .filter(|(_, act, _)| *act)
            .filter_map(|(_, _, t)| t.shortest_free_len())
            .filter(|l| *l <= want_len)
            .min()
        else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for (_, act, t) in &self.ranges {
            if !*act {
                continue;
            }
            let root = t.root();
            let effective = if want_len == root.len() {
                want_len + 1
            } else {
                want_len
            };
            out.extend(
                t.free_of_len(min_len)
                    .filter_map(|blk| blk.first_subprefix(effective.min(32))),
            );
        }
        out
    }

    /// If claiming `p.parent()` (doubling) is possible — buddy free and
    /// parent prefix inside a range — returns the doubled prefix.
    pub fn expansion_of(&self, p: &Prefix) -> Option<Prefix> {
        let buddy = p.buddy()?;
        let parent = p.parent()?;
        if !self.in_claimable_range(&parent) {
            return None;
        }
        if self.is_free(&buddy) {
            Some(parent)
        } else {
            None
        }
    }

    /// The expiry of the range containing `p`, capping claim lifetimes
    /// (§4.3.1: "it may only claim a range for a lifetime less than or
    /// equal to the lifetime of the parent's range").
    pub fn range_expiry_for(&self, p: &Prefix) -> Option<Secs> {
        self.ranges
            .iter()
            .find(|(_, _, t)| t.root().covers(p))
            .map(|(exp, _, _)| *exp)
    }
}

/// Lifecycle state of one of our own claims.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClaimPhase {
    /// In the collision-detection waiting period, granted at the time
    /// given.
    Waiting {
        /// When the waiting period ends.
        until: Secs,
    },
    /// Granted: the range is ours until expiry.
    Granted,
}

/// Why we made a claim — determines what happens on grant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClaimPurpose {
    /// A fresh range.
    New,
    /// Doubling `of` into its parent prefix.
    Double {
        /// The currently-held prefix being doubled.
        of: Prefix,
    },
    /// Consolidation: on grant, deactivate all other active prefixes.
    Consolidate,
}

/// One of our own claims, waiting or granted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OwnClaim {
    /// The range.
    pub prefix: Prefix,
    /// Current phase.
    pub phase: ClaimPhase,
    /// Why it was claimed.
    pub purpose: ClaimPurpose,
    /// Absolute expiry.
    pub expires: Secs,
    /// When the claim was made (tiebreak).
    pub at: Secs,
}

impl OwnClaim {
    /// Is the claim still in its waiting period?
    pub fn is_waiting(&self) -> bool {
        matches!(self.phase, ClaimPhase::Waiting { .. })
    }
}

impl snapshot::Snapshot for KnownClaim {
    fn encode(&self, enc: &mut snapshot::Enc) {
        enc.u32(self.owner);
        self.prefix.encode(enc);
        enc.u64(self.expires);
        enc.u64(self.at);
    }
    fn decode(dec: &mut snapshot::Dec<'_>) -> Result<Self, snapshot::SnapError> {
        Ok(KnownClaim {
            owner: dec.u32()?,
            prefix: Prefix::decode(dec)?,
            expires: dec.u64()?,
            at: dec.u64()?,
        })
    }
}

impl snapshot::Snapshot for ClaimPhase {
    fn encode(&self, enc: &mut snapshot::Enc) {
        match self {
            ClaimPhase::Waiting { until } => {
                enc.u8(0);
                enc.u64(*until);
            }
            ClaimPhase::Granted => enc.u8(1),
        }
    }
    fn decode(dec: &mut snapshot::Dec<'_>) -> Result<Self, snapshot::SnapError> {
        match dec.u8()? {
            0 => Ok(ClaimPhase::Waiting { until: dec.u64()? }),
            1 => Ok(ClaimPhase::Granted),
            _ => Err(snapshot::SnapError::Invalid("ClaimPhase tag")),
        }
    }
}

impl snapshot::Snapshot for ClaimPurpose {
    fn encode(&self, enc: &mut snapshot::Enc) {
        match self {
            ClaimPurpose::New => enc.u8(0),
            ClaimPurpose::Double { of } => {
                enc.u8(1);
                of.encode(enc);
            }
            ClaimPurpose::Consolidate => enc.u8(2),
        }
    }
    fn decode(dec: &mut snapshot::Dec<'_>) -> Result<Self, snapshot::SnapError> {
        match dec.u8()? {
            0 => Ok(ClaimPurpose::New),
            1 => Ok(ClaimPurpose::Double {
                of: Prefix::decode(dec)?,
            }),
            2 => Ok(ClaimPurpose::Consolidate),
            _ => Err(snapshot::SnapError::Invalid("ClaimPurpose tag")),
        }
    }
}

impl snapshot::Snapshot for OwnClaim {
    fn encode(&self, enc: &mut snapshot::Enc) {
        self.prefix.encode(enc);
        self.phase.encode(enc);
        self.purpose.encode(enc);
        enc.u64(self.expires);
        enc.u64(self.at);
    }
    fn decode(dec: &mut snapshot::Dec<'_>) -> Result<Self, snapshot::SnapError> {
        Ok(OwnClaim {
            prefix: Prefix::decode(dec)?,
            phase: ClaimPhase::decode(dec)?,
            purpose: ClaimPurpose::decode(dec)?,
            expires: dec.u64()?,
            at: dec.u64()?,
        })
    }
}

impl snapshot::Snapshot for OuterSpace {
    /// Both fields are encoded verbatim: `claims` is a `Vec` sorted by
    /// (prefix, owner), and each range's tracker holds the claim
    /// decomposition.
    fn encode(&self, enc: &mut snapshot::Enc) {
        self.ranges.encode(enc);
        self.claims.encode(enc);
    }
    fn decode(dec: &mut snapshot::Dec<'_>) -> Result<Self, snapshot::SnapError> {
        let ranges: Vec<(Secs, bool, SpaceTracker)> = snapshot::Snapshot::decode(dec)?;
        let claims: Vec<KnownClaim> = snapshot::Snapshot::decode(dec)?;
        if claims
            .windows(2)
            .any(|w| (w[0].prefix, w[0].owner) >= (w[1].prefix, w[1].owner))
        {
            return Err(snapshot::SnapError::Invalid("claims out of order"));
        }
        let min_expiry = claims.iter().map(|k| k.expires).min();
        Ok(OuterSpace {
            ranges,
            claims,
            min_expiry,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn claim(owner: DomainAsn, pfx: &str, expires: Secs) -> KnownClaim {
        KnownClaim {
            owner,
            prefix: p(pfx),
            expires,
            at: 0,
        }
    }

    #[test]
    fn insert_outside_ranges_rejected() {
        let mut s = OuterSpace::new();
        s.set_ranges(&[(p("224.0.0.0/16"), 1000)]);
        assert!(!s.insert_claim(claim(1, "225.0.0.0/24", 500)));
        assert!(s.insert_claim(claim(1, "224.0.1.0/24", 500)));
        assert!(s.in_range(&p("224.0.1.0/24")));
        assert!(!s.in_range(&p("225.0.0.0/24")));
    }

    #[test]
    fn candidates_follow_paper_rule() {
        let mut s = OuterSpace::new();
        s.set_ranges(&[(Prefix::MULTICAST, 10_000)]);
        s.insert_claim(claim(1, "224.0.1.0/24", 5000));
        s.insert_claim(claim(2, "239.0.0.0/8", 5000));
        assert_eq!(
            s.claim_candidates(22),
            vec![p("228.0.0.0/22"), p("232.0.0.0/22")]
        );
    }

    #[test]
    fn candidates_across_multiple_ranges() {
        let mut s = OuterSpace::new();
        s.set_ranges(&[(p("224.0.0.0/16"), 1000), (p("230.0.0.0/16"), 1000)]);
        // Both ranges entirely free: two /16 blocks, candidates in each.
        assert_eq!(s.claim_candidates(24).len(), 2);
        // Fill one range; only the other offers the largest free block.
        s.insert_claim(claim(1, "224.0.0.0/16", 500));
        assert_eq!(s.claim_candidates(24), vec![p("230.0.0.0/24")]);
    }

    #[test]
    fn expiry_frees_space() {
        let mut s = OuterSpace::new();
        s.set_ranges(&[(p("224.0.0.0/24"), 10_000)]);
        s.insert_claim(claim(1, "224.0.0.0/24", 100));
        assert!(s.claim_candidates(24).is_empty());
        let gone = s.expire_claims(100);
        assert_eq!(gone.len(), 1);
        // A claim never equals the whole range: the /24 range yields a
        // /25 candidate.
        assert_eq!(s.claim_candidates(24), vec![p("224.0.0.0/25")]);
        assert!(s.next_claim_expiry().is_none());
    }

    #[test]
    fn renew_extends() {
        let mut s = OuterSpace::new();
        s.set_ranges(&[(p("224.0.0.0/16"), 10_000)]);
        s.insert_claim(claim(1, "224.0.0.0/24", 100));
        assert!(s.renew_claim(1, &p("224.0.0.0/24"), 900));
        assert!(s.expire_claims(100).is_empty());
        assert_eq!(s.next_claim_expiry(), Some(900));
        assert!(!s.renew_claim(2, &p("224.0.0.0/24"), 999));
    }

    #[test]
    fn overlapping_claims_coexist() {
        // During waiting, two domains may claim the same prefix.
        let mut s = OuterSpace::new();
        s.set_ranges(&[(p("224.0.0.0/16"), 10_000)]);
        assert!(s.insert_claim(claim(1, "224.0.0.0/24", 100)));
        assert!(s.insert_claim(claim(2, "224.0.0.0/24", 100)));
        assert_eq!(s.overlapping(&p("224.0.0.0/25"), None).len(), 2);
        assert_eq!(s.overlapping(&p("224.0.0.0/25"), Some(1)).len(), 1);
        // Removing one keeps the space occupied by the other.
        s.remove_claim(1, &p("224.0.0.0/24"));
        assert!(!s.is_free(&p("224.0.0.0/24")));
        s.remove_claim(2, &p("224.0.0.0/24"));
        assert!(s.is_free(&p("224.0.0.0/24")));
    }

    #[test]
    fn expansion_requires_free_buddy() {
        let mut s = OuterSpace::new();
        s.set_ranges(&[(p("224.0.0.0/16"), 10_000)]);
        s.insert_claim(claim(1, "224.0.0.0/24", 100));
        assert_eq!(s.expansion_of(&p("224.0.0.0/24")), Some(p("224.0.0.0/23")));
        s.insert_claim(claim(2, "224.0.1.0/24", 100));
        assert_eq!(s.expansion_of(&p("224.0.0.0/24")), None);
    }

    #[test]
    fn range_expiry_caps() {
        let mut s = OuterSpace::new();
        s.set_ranges(&[(p("224.0.0.0/16"), 777)]);
        assert_eq!(s.range_expiry_for(&p("224.0.1.0/24")), Some(777));
        assert_eq!(s.range_expiry_for(&p("225.0.0.0/24")), None);
    }

    #[test]
    fn set_ranges_preserves_contained_claims() {
        let mut s = OuterSpace::new();
        s.set_ranges(&[(p("224.0.0.0/16"), 1000)]);
        s.insert_claim(claim(1, "224.0.0.0/24", 500));
        // Parent doubles its range: claim survives.
        s.set_ranges(&[(p("224.0.0.0/15"), 2000)]);
        assert_eq!(s.claims().len(), 1);
        assert!(!s.is_free(&p("224.0.0.0/24")));
        // Parent shrinks away from the claim: claim dropped.
        s.set_ranges(&[(p("230.0.0.0/16"), 2000)]);
        assert!(s.claims().is_empty());
    }
}
