//! The sans-io MASC protocol engine for one domain.
//!
//! A [`MascNode`] implements the claim–collide mechanism of §4.1 and
//! the claim algorithm of §4.3.3:
//!
//! * it listens to its parent's advertised ranges (or bootstrap
//!   exchange ranges if top-level), and to sibling claims;
//! * when its MAAS-side demand cannot be met (or occupancy crosses the
//!   75 % target), it selects a claim — doubling an active prefix when
//!   the post-doubling utilization stays ≥ 75 %, otherwise a small
//!   fresh prefix, otherwise a consolidating prefix sized to current
//!   usage — choosing randomly among the first-sub-prefix candidates of
//!   the largest free blocks;
//! * claims wait out the collision-detection period (48 h) before
//!   being granted; overlapping claims are resolved deterministically
//!   (earlier claim wins, ties to the lower domain id), and claims
//!   overlapping granted ranges always lose;
//! * granted ranges carry lifetimes, are renewed while in use, and are
//!   released (recycled) once drained (§4.3.1).
//!
//! The node also embeds the domain's MAAS duties: leasing blocks to
//! clients from granted ranges, queueing requests that must wait for a
//! claim, and reserving children's claims so the two never collide.
//! Divergence from the paper (documented in DESIGN.md): a parent's own
//! block allocations are authoritative within its ranges — they are
//! announced to children as granted claims, and a child claim that
//! collides with one is refused with a collision announcement (§4.4
//! gives the parent exactly this enforcement role).

use std::collections::VecDeque;

use mcast_addr::{BlockAllocator, LeaseTable, Prefix, Secs};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::claims::{ClaimPhase, ClaimPurpose, KnownClaim, OuterSpace, OwnClaim};
use crate::config::MascConfig;
use crate::msg::{DomainAsn, MascAction, MascMsg};

/// Counters for analysis and the collision ablation.
#[derive(Debug, Clone, Copy, Default)]
pub struct MascStats {
    /// Claims initiated (including retries).
    pub claims_made: u64,
    /// Claims abandoned due to collisions.
    pub collisions: u64,
    /// Claims granted.
    pub grants: u64,
    /// Claims that found no free space.
    pub failures: u64,
    /// Ranges released (recycled).
    pub releases: u64,
}

/// A queued MAAS block request.
#[derive(Debug, Clone, Copy)]
struct PendingReq {
    id: u64,
    len: u8,
    lifetime: Secs,
}

/// Result of a block request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockOutcome {
    /// Allocated immediately.
    Ready {
        /// The block.
        block: Prefix,
        /// Absolute lease expiry.
        expires: Secs,
    },
    /// Queued behind a claim; a [`MascAction::BlockReady`] with this id
    /// will follow.
    Queued {
        /// Request id.
        request: u64,
    },
}

/// The MASC engine for one domain. See module docs.
#[derive(Debug)]
pub struct MascNode {
    domain: DomainAsn, // lint:allow(snapshot-field-coverage) — identity; stays with the rebuilt instance
    cfg: MascConfig, // lint:allow(snapshot-field-coverage) — timer/sizing config; stays with the rebuilt instance
    parent: Option<DomainAsn>, // lint:allow(snapshot-field-coverage) — hierarchy wiring; re-established by the harness
    children: Vec<DomainAsn>, // lint:allow(snapshot-field-coverage) — hierarchy wiring; re-established by the harness
    siblings: Vec<DomainAsn>, // lint:allow(snapshot-field-coverage) — hierarchy wiring; re-established by the harness
    /// The space we claim from (parent ranges or bootstrap ranges).
    outer: OuterSpace,
    /// Our claims (waiting and granted).
    own: Vec<OwnClaim>,
    /// MAAS allocator over granted ranges (blocks + child claims).
    alloc: BlockAllocator,
    /// Child claims recorded within our ranges.
    child_claims: Vec<KnownClaim>,
    /// Derived: earliest expiry among `child_claims`, kept exact so
    /// the per-event deadline probe is O(1). Rebuilt on restore.
    // lint:allow(snapshot-field-coverage) — derived minimum, recomputed from child_claims on restore
    child_min_expiry: Option<Secs>,
    /// Block leases to local clients.
    leases: LeaseTable<Prefix>,
    /// Requests waiting for space.
    pending: VecDeque<PendingReq>,
    next_req_id: u64,
    /// Earliest time to retry after a failed or collided claim.
    retry_at: Option<Secs>,
    /// Demand (addresses) whose claim was deferred by a failure or a
    /// collision loss, to be retried at `retry_at`.
    deferred_demand: Option<u64>,
    /// Unmet demand signalled by starved children (`SpaceNeeded`),
    /// per child; summed into expansion sizing and cleared on grant.
    signalled: std::collections::BTreeMap<DomainAsn, u64>,
    /// Statistics.
    pub stats: MascStats,
    rng: StdRng,
}

impl MascNode {
    /// Creates a node for `domain`. `siblings` are the co-claimants in
    /// the outer space (co-children of the parent, or the other
    /// top-level domains).
    pub fn new(
        domain: DomainAsn,
        parent: Option<DomainAsn>,
        children: Vec<DomainAsn>,
        siblings: Vec<DomainAsn>,
        cfg: MascConfig,
        seed: u64,
    ) -> Self {
        MascNode {
            domain,
            cfg,
            parent,
            children,
            siblings,
            outer: OuterSpace::new(),
            own: Vec::new(),
            alloc: BlockAllocator::new(),
            child_claims: Vec::new(),
            child_min_expiry: None,
            leases: LeaseTable::new(),
            pending: VecDeque::new(),
            next_req_id: 0,
            retry_at: None,
            deferred_demand: None,
            signalled: std::collections::BTreeMap::new(),
            stats: MascStats::default(),
            rng: StdRng::seed_from_u64(seed ^ (domain as u64) << 17),
        }
    }

    /// This node's domain.
    pub fn domain(&self) -> DomainAsn {
        self.domain
    }

    /// Does this node sit at the top of the MASC hierarchy?
    pub fn is_top_level(&self) -> bool {
        self.parent.is_none()
    }

    /// Bootstraps the outer space directly (top-level domains pick the
    /// prefix of a nearby exchange, §4.4).
    pub fn bootstrap_ranges(&mut self, ranges: &[(Prefix, Secs)]) {
        self.outer.set_ranges(ranges);
    }

    /// Our granted ranges with expiry (what BGP should be originating).
    pub fn granted_ranges(&self) -> Vec<(Prefix, Secs)> {
        self.own
            .iter()
            .filter(|c| !c.is_waiting())
            .map(|c| (c.prefix, c.expires))
            .collect()
    }

    /// Addresses in use: local block leases plus child claims.
    pub fn used(&self) -> u64 {
        self.alloc.used()
    }

    /// Addresses leased to local clients only (excludes child claims).
    pub fn local_used(&self) -> u64 {
        let child: u64 = self.child_claims.iter().map(|c| c.prefix.size()).sum();
        self.alloc.used().saturating_sub(child)
    }

    /// Total capacity of granted ranges (active + inactive).
    pub fn capacity(&self) -> u64 {
        self.alloc.capacity()
    }

    /// Addresses in use within *active* prefixes only. Draining
    /// (inactive) usage is excluded: it neither justifies expansion nor
    /// counts toward active capacity.
    fn active_used(&self) -> u64 {
        self.alloc
            .owned()
            .iter()
            .filter(|o| o.active)
            .map(|o| o.used())
            .sum()
    }

    /// Occupancy of *active* capacity, counting queued demand.
    fn occupancy_with_queue(&self) -> f64 {
        let cap = self.alloc.active_capacity();
        if cap == 0 {
            return f64::INFINITY;
        }
        (self.active_used() + self.queued_demand()) as f64 / cap as f64
    }

    fn queued_demand(&self) -> u64 {
        self.pending
            .iter()
            .map(|r| 1u64 << (32 - r.len as u32))
            .sum()
    }

    /// Is a claim currently in its waiting period?
    pub fn claim_in_flight(&self) -> bool {
        self.own.iter().any(|c| c.is_waiting())
    }

    // ------------------------------------------------------------------
    // MAAS interface
    // ------------------------------------------------------------------

    /// Requests a block of `2^(32-len)` addresses for `lifetime`
    /// seconds. Returns the block immediately when space exists,
    /// otherwise queues the request and kicks off a claim.
    pub fn request_block(
        &mut self,
        now: Secs,
        len: u8,
        lifetime: Secs,
        actions: &mut Vec<MascAction>,
    ) -> BlockOutcome {
        if let Some(block) = self.alloc.alloc_block(len) {
            let expires = now + lifetime;
            self.leases.insert(block, expires);
            self.announce_local_use(now, block, expires, actions);
            // Keep ahead of demand (§4.1): claim more space once
            // occupancy crosses the target.
            if self.occupancy_with_queue() >= self.cfg.target_occupancy {
                let unit = 1u64 << (32 - self.cfg.min_claim_len as u32);
                self.start_expansion(now, unit, actions);
            }
            BlockOutcome::Ready { block, expires }
        } else {
            let id = self.next_req_id;
            self.next_req_id += 1;
            self.pending.push_back(PendingReq { id, len, lifetime });
            self.start_expansion(now, self.queued_demand(), actions);
            BlockOutcome::Queued { request: id }
        }
    }

    /// Returns a leased block early.
    pub fn release_block(&mut self, now: Secs, block: Prefix, actions: &mut Vec<MascAction>) {
        if self.leases.cancel(&block).is_some() {
            self.alloc.free_block(&block);
            self.announce_local_release(now, block, actions);
        }
    }

    /// Announce a local block allocation to children so their claims
    /// avoid it (parent-authoritative divergence, see module docs).
    fn announce_local_use(
        &mut self,
        now: Secs,
        block: Prefix,
        expires: Secs,
        actions: &mut Vec<MascAction>,
    ) {
        if self.children.is_empty() {
            return;
        }
        let msg = MascMsg::Claim {
            claimer: self.domain,
            prefix: block,
            expires,
            at: now,
        };
        for c in self.children.clone() {
            actions.push(MascAction::Send {
                to: c,
                msg: msg.clone(),
            });
        }
    }

    fn announce_local_release(&mut self, _now: Secs, block: Prefix, actions: &mut Vec<MascAction>) {
        if self.children.is_empty() {
            return;
        }
        let msg = MascMsg::Release {
            claimer: self.domain,
            prefix: block,
        };
        for c in self.children.clone() {
            actions.push(MascAction::Send {
                to: c,
                msg: msg.clone(),
            });
        }
    }

    // ------------------------------------------------------------------
    // Claim algorithm (§4.3.3)
    // ------------------------------------------------------------------

    /// Starts an expansion claim for `demand` more addresses, if none
    /// is in flight.
    pub fn start_expansion(&mut self, now: Secs, demand: u64, actions: &mut Vec<MascAction>) {
        if self.claim_in_flight() {
            // Remember the demand; it is re-examined when the claim
            // in flight is granted.
            return;
        }
        if self.retry_at.is_some_and(|t| t > now) {
            self.deferred_demand = Some(self.deferred_demand.unwrap_or(0).max(demand));
            return;
        }
        let signalled: u64 = self.signalled.values().sum();
        let demand = demand.max(signalled);
        let used_plus_demand = self.active_used() + self.queued_demand().max(demand);
        let active_cap = self.alloc.active_capacity();

        // 1. Doubling: smallest active prefix whose buddy is free and
        //    whose doubling keeps utilization at or above target.
        let mut actives: Vec<Prefix> = self
            .alloc
            .owned()
            .iter()
            .filter(|o| o.active)
            .map(|o| o.prefix)
            .collect();
        actives.sort_by_key(|p| p.size());
        for p in &actives {
            if let Some(doubled) = self.outer.expansion_of(p) {
                let new_cap = active_cap + p.size();
                // Double only when the doubled space both stays at the
                // occupancy target *and* actually covers the demand —
                // otherwise fall through to a right-sized claim
                // ("a single new prefix large enough to accommodate
                // the current usage", §4.3.3) instead of ratcheting up
                // one waiting period at a time.
                if used_plus_demand <= new_cap
                    && used_plus_demand as f64 / new_cap as f64 >= self.cfg.target_occupancy
                {
                    self.make_claim(now, doubled, ClaimPurpose::Double { of: *p }, actions);
                    return;
                }
            }
        }

        // 2. Fresh small prefix, just sufficient for the demand.
        if actives.len() < self.cfg.max_active_prefixes {
            let want = Prefix::len_for_size(demand.max(1)).min(self.cfg.min_claim_len);
            if self.try_claim_new(now, want, ClaimPurpose::New, actions) {
                return;
            }
        }

        // 3. Consolidation: one prefix large enough for everything;
        //    old prefixes deactivate on grant.
        let want = Prefix::len_for_size(used_plus_demand.max(1)).min(self.cfg.min_claim_len);
        if self.try_claim_new(now, want, ClaimPurpose::Consolidate, actions) {
            return;
        }

        // 4. Smaller-than-wanted fallback: take the biggest block that
        //    exists rather than nothing.
        for len in (want + 1)..=self.cfg.min_claim_len.max(want + 1).min(32) {
            if self.try_claim_new(now, len, ClaimPurpose::New, actions) {
                return;
            }
        }

        self.stats.failures += 1;
        // Jittered back-off: synchronized retries across siblings are
        // what §4.3.3's randomized candidate choice is defending
        // against; desynchronizing in time is the other half.
        let base = self.cfg.claim_retry_backoff;
        let jitter = self.rng.gen_range(base / 2..=base + base / 2);
        self.retry_at = Some(now + jitter.max(1));
        self.deferred_demand = Some(demand);
        // Starved: tell the parent so it can grow its range.
        if let Some(p) = self.parent {
            actions.push(MascAction::Send {
                to: p,
                msg: MascMsg::SpaceNeeded {
                    claimer: self.domain,
                    demand,
                },
            });
        }
        actions.push(MascAction::ClaimFailed { demand });
    }

    /// Shrink pressure (§4.3.1/§4.3.3: lifetimes exist so allocations
    /// "organize themselves based on the usage patterns"): when active
    /// occupancy is far below target, claim a right-sized consolidation
    /// prefix; the grant deactivates the oversized ranges, which then
    /// drain and recycle.
    ///
    /// NOT wired into the default renewal path: measured on the
    /// figure-2 workload it *worsens* both G-RIB size and utilization
    /// (consolidation churn forces children to migrate, costing leases
    /// and re-claims). Exposed for the ablation harness, which
    /// quantifies exactly that trade-off.
    pub fn maybe_shrink(&mut self, now: Secs, actions: &mut Vec<MascAction>) {
        if self.claim_in_flight() {
            return;
        }
        let used = self.active_used() + self.queued_demand();
        let cap = self.alloc.active_capacity();
        if cap == 0 || used == 0 {
            return; // empty ranges are handled by the release path
        }
        let occ = used as f64 / cap as f64;
        if occ >= self.cfg.target_occupancy / 2.0 {
            return;
        }
        let want_size = ((used as f64 / self.cfg.target_occupancy) as u64).max(1);
        let want_len = Prefix::len_for_size(want_size).min(self.cfg.min_claim_len);
        // Only worth the churn if it at least halves capacity.
        if (1u64 << (32 - want_len as u32)) * 2 > cap {
            return;
        }
        self.try_claim_new(now, want_len, ClaimPurpose::Consolidate, actions);
    }

    fn try_claim_new(
        &mut self,
        now: Secs,
        want_len: u8,
        purpose: ClaimPurpose,
        actions: &mut Vec<MascAction>,
    ) -> bool {
        let candidates = self.outer.claim_candidates(want_len);
        if candidates.is_empty() {
            return false;
        }
        // "Randomly chooses one of them" (§4.3.3) — randomization
        // lowers the chance that simultaneous claimers collide.
        let pick = candidates[self.rng.gen_range(0..candidates.len())];
        self.deferred_demand = None;
        self.make_claim(now, pick, purpose, actions);
        true
    }

    fn make_claim(
        &mut self,
        now: Secs,
        prefix: Prefix,
        purpose: ClaimPurpose,
        actions: &mut Vec<MascAction>,
    ) {
        // Candidates are carved out of parent ranges rooted in 224/4,
        // so this can only fail on a bookkeeping bug — but a claim for
        // unicast space must never reach the wire.
        let prefix = Prefix::new_multicast(prefix.base_u32(), prefix.len())
            .expect("MASC claims stay inside the class-D space");
        let cap = self.outer.range_expiry_for(&prefix).unwrap_or(Secs::MAX);
        let expires = (now + self.cfg.range_lifetime).min(cap);
        let claim = OwnClaim {
            prefix,
            phase: ClaimPhase::Waiting {
                until: now + self.cfg.wait_period,
            },
            purpose,
            expires,
            at: now,
        };
        self.own.push(claim);
        self.outer.insert_claim(KnownClaim {
            owner: self.domain,
            prefix,
            expires,
            at: now,
        });
        self.stats.claims_made += 1;
        let msg = MascMsg::Claim {
            claimer: self.domain,
            prefix,
            expires,
            at: now,
        };
        match self.parent {
            // Child: inform the parent; it propagates to our siblings.
            Some(p) => actions.push(MascAction::Send { to: p, msg }),
            // Top-level: inform all sibling top-level domains (§4.1).
            None => {
                for s in self.siblings.clone() {
                    actions.push(MascAction::Send {
                        to: s,
                        msg: msg.clone(),
                    });
                }
            }
        }
    }

    /// Abandons a waiting claim (lost a collision) and retries.
    fn abandon_claim(&mut self, now: Secs, prefix: Prefix, actions: &mut Vec<MascAction>) {
        let Some(idx) = self
            .own
            .iter()
            .position(|c| c.prefix == prefix && c.is_waiting())
        else {
            return;
        };
        self.own.remove(idx);
        self.outer.remove_claim(self.domain, &prefix);
        self.stats.collisions += 1;
        // Tell everyone who recorded the claim to forget it.
        self.broadcast_sibling(
            MascMsg::Release {
                claimer: self.domain,
                prefix,
            },
            actions,
        );
        // Retry with a different candidate after a short jittered
        // delay (§4.3.3: the nth claimer may need up to n rounds —
        // desynchronizing the rounds keeps them from ringing).
        let demand = self.queued_demand().max(prefix.size());
        self.deferred_demand = Some(self.deferred_demand.unwrap_or(0).max(demand));
        let jitter = self.rng.gen_range(60u64..=1_800);
        let at = now + jitter;
        self.retry_at = Some(self.retry_at.map_or(at, |t| t.min(at)));
    }

    fn broadcast_sibling(&self, msg: MascMsg, actions: &mut Vec<MascAction>) {
        match self.parent {
            Some(p) => actions.push(MascAction::Send { to: p, msg }),
            None => {
                for s in &self.siblings {
                    actions.push(MascAction::Send {
                        to: *s,
                        msg: msg.clone(),
                    });
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Message handling
    // ------------------------------------------------------------------

    /// Handles a MASC message from another domain.
    pub fn on_message(&mut self, now: Secs, from: DomainAsn, msg: MascMsg) -> Vec<MascAction> {
        let mut actions = Vec::new();
        match msg {
            MascMsg::ParentAdvertise { ranges } => {
                if Some(from) == self.parent {
                    self.outer.set_ranges_flagged(&ranges);
                    // Re-record our own claims (set_ranges keeps claims
                    // inside surviving ranges; re-insert to be safe).
                    for c in self.own.clone() {
                        self.outer.insert_claim(KnownClaim {
                            owner: self.domain,
                            prefix: c.prefix,
                            expires: c.expires,
                            at: c.at,
                        });
                    }
                    // New space may unblock queued demand.
                    if !self.pending.is_empty() {
                        let d = self.queued_demand();
                        self.retry_at = None;
                        self.start_expansion(now, d, &mut actions);
                    }
                }
            }
            MascMsg::Claim {
                claimer,
                prefix,
                expires,
                at,
            } => {
                self.handle_claim(now, from, claimer, prefix, expires, at, &mut actions);
            }
            MascMsg::Collision { holder, prefix } => {
                // A collision against our waiting claim: back off.
                let overlapping: Vec<Prefix> = self
                    .own
                    .iter()
                    .filter(|c| c.is_waiting() && c.prefix.overlaps(&prefix))
                    .map(|c| c.prefix)
                    .collect();
                for p in overlapping {
                    self.abandon_claim(now, p, &mut actions);
                }
                // A collision against a *granted* range: either parent
                // enforcement (§4.4/§7 — the parent always wins), or an
                // established-vs-established conflict after a network
                // partition longer than the waiting period. The latter
                // resolves deterministically: the lower domain id keeps
                // the range ("the winner may be based on domain IDs",
                // §4.1 footnote).
                let from_parent = Some(from) == self.parent;
                let granted: Vec<Prefix> = self
                    .own
                    .iter()
                    .filter(|c| !c.is_waiting() && c.prefix.overlaps(&prefix))
                    .map(|c| c.prefix)
                    .collect();
                for p in granted {
                    if from_parent || holder < self.domain {
                        self.lose_range(now, p, &mut actions);
                        // Re-acquire space for what was lost.
                        let demand = self.alloc.used().max(1);
                        self.deferred_demand = Some(self.deferred_demand.unwrap_or(0).max(demand));
                        let jitter = self.rng.gen_range(60u64..=1_800);
                        let at = now + jitter;
                        self.retry_at = Some(self.retry_at.map_or(at, |t| t.min(at)));
                    }
                    // Otherwise we outrank the sender; our own collision
                    // announcement (sent when we heard their claim or
                    // renewal) makes them back down.
                }
            }
            MascMsg::Renew {
                claimer,
                prefix,
                expires,
            } => {
                if self.children.contains(&claimer) {
                    let mut matched = false;
                    let mut touched_min = false;
                    for c in &mut self.child_claims {
                        if c.owner == claimer && c.prefix == prefix {
                            matched = true;
                            touched_min |= Some(c.expires) == self.child_min_expiry;
                            c.expires = expires;
                        }
                    }
                    if touched_min {
                        self.child_min_expiry = self.child_claims.iter().map(|c| c.expires).min();
                    } else if matched {
                        self.child_min_expiry = self.child_min_expiry.map(|m| m.min(expires));
                    }
                    self.forward_to_children_except(
                        claimer,
                        MascMsg::Renew {
                            claimer,
                            prefix,
                            expires,
                        },
                        &mut actions,
                    );
                } else {
                    if !self.outer.renew_claim(claimer, &prefix, expires)
                        && Prefix::new_multicast(prefix.base_u32(), prefix.len()).is_ok()
                    {
                        // A renewal for a claim we never heard (e.g.
                        // made across a partition): record it.
                        self.outer.insert_claim(crate::claims::KnownClaim {
                            owner: claimer,
                            prefix,
                            expires,
                            at: now,
                        });
                    }
                    // Partition-heal detection: a sibling renewing a
                    // range that overlaps our granted range means both
                    // sides finalized during a partition. Assert
                    // ourselves; the id tiebreak on the collision
                    // settles it.
                    let mine: Vec<Prefix> = self
                        .own
                        .iter()
                        .filter(|c| !c.is_waiting() && c.prefix.overlaps(&prefix))
                        .map(|c| c.prefix)
                        .collect();
                    for p in mine {
                        actions.push(MascAction::Send {
                            to: claimer,
                            msg: MascMsg::Collision {
                                holder: self.domain,
                                prefix: p,
                            },
                        });
                    }
                }
            }
            MascMsg::SpaceNeeded { claimer, demand } => {
                if self.children.contains(&claimer) {
                    // Remember each starved child's worst-case demand;
                    // the next expansion is sized to the sum so one
                    // claim can satisfy the whole brood rather than
                    // ratcheting up 48 h at a time.
                    let e = self.signalled.entry(claimer).or_insert(0);
                    *e = (*e).max(demand);
                    let total: u64 = self.signalled.values().sum();
                    self.start_expansion(now, total, &mut actions);
                }
            }
            MascMsg::Release { claimer, prefix } => {
                if self.children.contains(&claimer) {
                    self.remove_child_claim(claimer, &prefix);
                    self.forward_to_children_except(
                        claimer,
                        MascMsg::Release { claimer, prefix },
                        &mut actions,
                    );
                } else {
                    self.outer.remove_claim(claimer, &prefix);
                }
            }
        }
        actions
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_claim(
        &mut self,
        now: Secs,
        _from: DomainAsn,
        claimer: DomainAsn,
        prefix: Prefix,
        expires: Secs,
        at: Secs,
        actions: &mut Vec<MascAction>,
    ) {
        // A claim naming space outside 224.0.0.0/4 is a protocol
        // violation (or corruption); drop it before it can enter the
        // outer space or collide with legitimate claims.
        if Prefix::new_multicast(prefix.base_u32(), prefix.len()).is_err() {
            return;
        }
        if self.children.contains(&claimer) {
            // We are the parent: validate, record, propagate (§4.1).
            // Claims must land in *active* granted space; a claim into
            // a draining (inactive) or unknown range is refused.
            let in_our_ranges = self
                .alloc
                .owned()
                .iter()
                .any(|o| o.active && o.prefix.covers(&prefix));
            if !in_our_ranges {
                actions.push(MascAction::Send {
                    to: claimer,
                    msg: MascMsg::Collision {
                        holder: self.domain,
                        prefix,
                    },
                });
                return;
            }
            // Collision with our own allocated blocks: we are
            // authoritative in our range.
            if self.alloc.overlaps_allocation(&prefix)
                && !self
                    .child_claims
                    .iter()
                    .any(|c| c.prefix == prefix && c.owner == claimer)
            {
                // Distinguish "overlaps our local block" from "overlaps
                // another child's claim": only the former is ours to
                // police; the children resolve the latter themselves.
                let overlaps_other_child =
                    self.child_claims.iter().any(|c| c.prefix.overlaps(&prefix));
                if !overlaps_other_child {
                    actions.push(MascAction::Send {
                        to: claimer,
                        msg: MascMsg::Collision {
                            holder: self.domain,
                            prefix,
                        },
                    });
                    return;
                }
            }
            let reserved = self.alloc.reserve_block(prefix);
            let _ = reserved; // overlapping child claims: children resolve
            self.child_claims.push(KnownClaim {
                owner: claimer,
                prefix,
                expires,
                at,
            });
            self.child_min_expiry = Some(self.child_min_expiry.map_or(expires, |m| m.min(expires)));
            self.forward_to_children_except(
                claimer,
                MascMsg::Claim {
                    claimer,
                    prefix,
                    expires,
                    at,
                },
                actions,
            );
            // Children's demand drives our own expansion (§4.1: "A
            // claims more address space when the utilization exceeds a
            // given threshold").
            if self.occupancy_with_queue() >= self.cfg.target_occupancy {
                self.start_expansion(now, prefix.size(), actions);
            }
        } else {
            // A sibling's claim (possibly the parent's own local use).
            self.outer.insert_claim(KnownClaim {
                owner: claimer,
                prefix,
                expires,
                at,
            });
            // Does it overlap one of ours?
            let mine: Vec<OwnClaim> = self
                .own
                .iter()
                .filter(|c| c.prefix.overlaps(&prefix))
                .copied()
                .collect();
            for c in mine {
                if !c.is_waiting() {
                    // Established ranges always win (§4.1: "if two
                    // domains claim the same range, one will win").
                    actions.push(MascAction::Send {
                        to: claimer,
                        msg: MascMsg::Collision {
                            holder: self.domain,
                            prefix: c.prefix,
                        },
                    });
                } else {
                    // Both waiting: earlier claim wins, ties to lower
                    // domain id — a symmetric, deterministic rule.
                    let we_win = (c.at, self.domain) < (at, claimer);
                    if we_win {
                        actions.push(MascAction::Send {
                            to: claimer,
                            msg: MascMsg::Collision {
                                holder: self.domain,
                                prefix: c.prefix,
                            },
                        });
                    } else {
                        self.abandon_claim(now, c.prefix, actions);
                    }
                }
            }
        }
    }

    fn forward_to_children_except(
        &self,
        except: DomainAsn,
        msg: MascMsg,
        actions: &mut Vec<MascAction>,
    ) {
        for c in &self.children {
            if *c != except {
                actions.push(MascAction::Send {
                    to: *c,
                    msg: msg.clone(),
                });
            }
        }
    }

    fn remove_child_claim(&mut self, owner: DomainAsn, prefix: &Prefix) {
        let before = self.child_claims.len();
        let min = self.child_min_expiry;
        let mut removed_min = false;
        self.child_claims.retain(|c| {
            let hit = c.owner == owner && c.prefix == *prefix;
            removed_min |= hit && Some(c.expires) == min;
            !hit
        });
        if removed_min {
            self.child_min_expiry = self.child_claims.iter().map(|c| c.expires).min();
        }
        if self.child_claims.len() < before
            && !self.child_claims.iter().any(|c| c.prefix == *prefix)
        {
            self.alloc.free_block(prefix);
        }
    }

    // ------------------------------------------------------------------
    // Time-driven processing
    // ------------------------------------------------------------------

    /// The earliest time at which [`MascNode::on_tick`] has work.
    pub fn next_deadline(&self) -> Option<Secs> {
        let mut t: Option<Secs> = None;
        let mut consider = |v: Option<Secs>| {
            if let Some(v) = v {
                t = Some(t.map_or(v, |cur: Secs| cur.min(v)));
            }
        };
        for c in &self.own {
            match c.phase {
                ClaimPhase::Waiting { until } => consider(Some(until)),
                ClaimPhase::Granted => {
                    // Inactive (draining) ranges are never extended:
                    // their next event is hard expiry (release-on-drain
                    // is triggered by lease/child-claim expiries, which
                    // have their own deadlines). Active ranges renew at
                    // the margin when the outer range allows extension.
                    let inactive = self.alloc.owner_of(&c.prefix).is_some_and(|o| !o.active);
                    let cap = match self.outer.range_expiry_for(&c.prefix) {
                        Some(cap) => cap,
                        None if self.parent.is_none() => Secs::MAX,
                        None => c.expires,
                    };
                    if !inactive && cap > c.expires {
                        consider(Some(c.expires.saturating_sub(self.cfg.renew_margin)));
                    } else {
                        consider(Some(c.expires));
                    }
                }
            }
        }
        consider(self.outer.next_claim_expiry());
        consider(self.child_min_expiry);
        consider(self.leases.next_expiry());
        consider(self.retry_at);
        t
    }

    /// Processes everything due at or before `now`.
    pub fn on_tick(&mut self, now: Secs) -> Vec<MascAction> {
        let mut actions = Vec::new();

        // 1. Claims finishing their waiting period.
        let ready: Vec<Prefix> = self
            .own
            .iter()
            .filter(|c| matches!(c.phase, ClaimPhase::Waiting { until } if until <= now))
            .map(|c| c.prefix)
            .collect();
        for p in ready {
            self.grant_claim(now, p, &mut actions);
        }

        // 2. Lease expiries.
        for block in self.leases.expire(now) {
            self.alloc.free_block(&block);
            self.announce_local_release(now, block, &mut actions);
            actions.push(MascAction::BlockExpired { block });
        }

        // 3. Renewals / releases of our granted ranges.
        self.process_renewals(now, &mut actions);

        // 4. Expired sibling claims.
        self.outer.expire_claims(now);

        // 5. Expired child claims (O(1) probe in the common nothing-
        // due case).
        if self.child_min_expiry.is_some_and(|m| m <= now) {
            let expired: Vec<KnownClaim> = self
                .child_claims
                .iter()
                .filter(|c| c.expires <= now)
                .copied()
                .collect();
            for e in expired {
                self.remove_child_claim(e.owner, &e.prefix);
            }
        }

        // 6. Retry after a failed or collided claim.
        if self.retry_at.is_some_and(|t| t <= now) {
            self.retry_at = None;
            let deferred = self.deferred_demand.take();
            if deferred.is_some()
                || !self.pending.is_empty()
                || self.occupancy_with_queue() >= self.cfg.target_occupancy
            {
                let d = deferred.unwrap_or(0).max(self.queued_demand()).max(1);
                self.start_expansion(now, d, &mut actions);
            }
        }

        actions
    }

    fn grant_claim(&mut self, now: Secs, prefix: Prefix, actions: &mut Vec<MascAction>) {
        let Some(idx) = self
            .own
            .iter()
            .position(|c| c.prefix == prefix && c.is_waiting())
        else {
            return;
        };
        self.own[idx].phase = ClaimPhase::Granted;
        let purpose = self.own[idx].purpose;
        let expires = self.own[idx].expires;
        self.stats.grants += 1;

        match purpose {
            ClaimPurpose::New => {
                self.alloc.add_prefix(prefix);
                actions.push(MascAction::RangeGranted { prefix, expires });
            }
            ClaimPurpose::Double { of } => {
                if self.alloc.grow_prefix(of, prefix) {
                    // The old claim is subsumed: drop it everywhere.
                    self.own.retain(|c| c.prefix != of);
                    self.outer.remove_claim(self.domain, &of);
                    self.broadcast_sibling(
                        MascMsg::Release {
                            claimer: self.domain,
                            prefix: of,
                        },
                        actions,
                    );
                    actions.push(MascAction::RangeLost { prefix: of });
                } else {
                    // The base prefix vanished meanwhile; treat as new.
                    self.alloc.add_prefix(prefix);
                }
                actions.push(MascAction::RangeGranted { prefix, expires });
            }
            ClaimPurpose::Consolidate => {
                let old_actives: Vec<Prefix> = self
                    .alloc
                    .owned()
                    .iter()
                    .filter(|o| o.active)
                    .map(|o| o.prefix)
                    .collect();
                self.alloc.add_prefix(prefix);
                for p in old_actives {
                    self.alloc.deactivate(&p);
                }
                actions.push(MascAction::RangeGranted { prefix, expires });
            }
        }

        // Starved children will re-signal if the new space still
        // falls short.
        self.signalled.clear();
        // Serve queued requests from the new space.
        self.drain_pending(now, actions);
        // Keep children informed of our (possibly changed) ranges.
        self.advertise_to_children(actions);
        // Demand may have outgrown this grant while we waited: chain
        // the next expansion immediately instead of waiting for the
        // next external trigger.
        if self.occupancy_with_queue() >= self.cfg.target_occupancy
            || self.deferred_demand.is_some()
        {
            let unit = 1u64 << (32 - self.cfg.min_claim_len as u32);
            let d = self.deferred_demand.take().unwrap_or(unit);
            self.start_expansion(now, d.max(unit), actions);
        }
    }

    fn drain_pending(&mut self, now: Secs, actions: &mut Vec<MascAction>) {
        let mut still = VecDeque::new();
        while let Some(req) = self.pending.pop_front() {
            if let Some(block) = self.alloc.alloc_block(req.len) {
                let expires = now + req.lifetime;
                self.leases.insert(block, expires);
                self.announce_local_use(now, block, expires, actions);
                actions.push(MascAction::BlockReady {
                    request: req.id,
                    block,
                    expires,
                });
            } else {
                still.push_back(req);
            }
        }
        self.pending = still;
        if !self.pending.is_empty() {
            let d = self.queued_demand();
            self.start_expansion(now, d, actions);
        }
    }

    /// Sends the current set of granted ranges (with active flags) to
    /// all children. Children claim new space only from active ranges
    /// but keep renewing existing claims inside a draining range up to
    /// its fixed expiry — that is what lets an inactive prefix
    /// "timeout when the currently allocated addresses timeout"
    /// (§4.3.3).
    pub fn advertise_to_children(&self, actions: &mut Vec<MascAction>) {
        if self.children.is_empty() {
            return;
        }
        let ranges: Vec<(Prefix, Secs, bool)> = self
            .granted_ranges()
            .into_iter()
            .map(|(p, exp)| {
                let active = self
                    .alloc
                    .owner_of(&p)
                    .is_some_and(|o| o.active && o.prefix == p);
                (p, exp, active)
            })
            .collect();
        let msg = MascMsg::ParentAdvertise { ranges };
        for c in &self.children {
            actions.push(MascAction::Send {
                to: *c,
                msg: msg.clone(),
            });
        }
    }

    fn process_renewals(&mut self, now: Secs, actions: &mut Vec<MascAction>) {
        let mut ranges_changed = false;
        // Inactive ranges: release as soon as they drain (checked every
        // tick — lease and child-claim expiries drive the deadlines).
        let drained_inactive: Vec<Prefix> = self
            .alloc
            .owned()
            .iter()
            .filter(|o| !o.active && o.is_drained())
            .map(|o| o.prefix)
            .collect();
        for p in drained_inactive {
            self.release_range(now, p, actions);
            ranges_changed = true;
        }

        let due: Vec<OwnClaim> = self
            .own
            .iter()
            .filter(|c| !c.is_waiting() && c.expires.saturating_sub(self.cfg.renew_margin) <= now)
            .copied()
            .collect();
        for c in due {
            if c.expires <= now {
                // Hard expiry: the range and everything in it is gone
                // (§4.3.1: once the lifetime expires the range is
                // treated as unallocated by the parent).
                self.lose_range(now, c.prefix, actions);
                ranges_changed = true;
                continue;
            }
            let owned = self.alloc.owner_of(&c.prefix).cloned();
            let (active, used) = match &owned {
                Some(o) => (o.active, o.used()),
                None => (false, 0),
            };
            if !active {
                // Draining: never extended; rides to hard expiry (or
                // earlier release on drain, handled above).
                continue;
            }
            let only_active = self.alloc.active_count() <= 1;
            if used > 0 || only_active {
                // Renew, capped by the parent range's lifetime
                // (§4.3.1). A range whose covering parent range has
                // vanished cannot be renewed at all.
                let cap = match self.outer.range_expiry_for(&c.prefix) {
                    Some(cap) => cap,
                    None if self.parent.is_none() => Secs::MAX,
                    None => c.expires, // unrenewable: ride to expiry
                };
                let new_expires = (now + self.cfg.range_lifetime).min(cap).max(c.expires);
                if new_expires > c.expires {
                    for oc in &mut self.own {
                        if oc.prefix == c.prefix {
                            oc.expires = new_expires;
                        }
                    }
                    self.outer.renew_claim(self.domain, &c.prefix, new_expires);
                    self.broadcast_sibling(
                        MascMsg::Renew {
                            claimer: self.domain,
                            prefix: c.prefix,
                            expires: new_expires,
                        },
                        actions,
                    );
                    ranges_changed = true;
                }
            } else {
                // Empty and not our only active range: recycle it
                // (§4.3.1 "treated as unallocated ... can be claimed
                // by others").
                self.release_range(now, c.prefix, actions);
                ranges_changed = true;
            }
        }
        if ranges_changed {
            self.advertise_to_children(actions);
        }
    }

    /// Voluntarily releases a granted range.
    fn release_range(&mut self, _now: Secs, prefix: Prefix, actions: &mut Vec<MascAction>) {
        self.own.retain(|c| c.prefix != prefix);
        self.outer.remove_claim(self.domain, &prefix);
        self.alloc.remove_prefix(&prefix);
        self.stats.releases += 1;
        self.broadcast_sibling(
            MascMsg::Release {
                claimer: self.domain,
                prefix,
            },
            actions,
        );
        actions.push(MascAction::RangeLost { prefix });
    }

    /// Loses a granted range involuntarily (expiry or forced
    /// collision): any client blocks inside it are lost with it.
    fn lose_range(&mut self, _now: Secs, prefix: Prefix, actions: &mut Vec<MascAction>) {
        self.own.retain(|c| c.prefix != prefix);
        self.outer.remove_claim(self.domain, &prefix);
        if let Some(lost_blocks) = self.alloc.remove_prefix(&prefix) {
            for b in lost_blocks {
                if self.leases.cancel(&b).is_some() {
                    actions.push(MascAction::BlockExpired { block: b });
                }
            }
        }
        actions.push(MascAction::RangeLost { prefix });
    }

    // ------------------------------------------------------------------
    // Introspection for experiments
    // ------------------------------------------------------------------

    /// The prefixes this domain currently advertises (granted, for
    /// G-RIB accounting).
    pub fn advertised_prefixes(&self) -> Vec<Prefix> {
        self.granted_ranges().into_iter().map(|(p, _)| p).collect()
    }

    /// Pending (queued) request count.
    pub fn pending_requests(&self) -> usize {
        self.pending.len()
    }

    /// Known sibling claims (for G-RIB accounting at child domains).
    pub fn known_sibling_claims(&self) -> usize {
        self.outer
            .claims()
            .iter()
            .filter(|c| c.owner != self.domain)
            .count()
    }

    /// Recorded child claims (for G-RIB accounting at parents).
    pub fn child_claim_count(&self) -> usize {
        self.child_claims.len()
    }
}

impl snapshot::Snapshot for MascStats {
    fn encode(&self, enc: &mut snapshot::Enc) {
        enc.u64(self.claims_made);
        enc.u64(self.collisions);
        enc.u64(self.grants);
        enc.u64(self.failures);
        enc.u64(self.releases);
    }
    fn decode(dec: &mut snapshot::Dec<'_>) -> Result<Self, snapshot::SnapError> {
        Ok(MascStats {
            claims_made: dec.u64()?,
            collisions: dec.u64()?,
            grants: dec.u64()?,
            failures: dec.u64()?,
            releases: dec.u64()?,
        })
    }
}

impl snapshot::Snapshot for PendingReq {
    fn encode(&self, enc: &mut snapshot::Enc) {
        enc.u64(self.id);
        enc.u8(self.len);
        enc.u64(self.lifetime);
    }
    fn decode(dec: &mut snapshot::Dec<'_>) -> Result<Self, snapshot::SnapError> {
        Ok(PendingReq {
            id: dec.u64()?,
            len: dec.u8()?,
            lifetime: dec.u64()?,
        })
    }
}

impl snapshot::SnapshotState for MascNode {
    /// Everything that changes after construction: claim state, the
    /// MAAS allocator and leases, queued requests, retry/deferral
    /// bookkeeping, counters, and the node's RNG state (claim-size
    /// jitter must continue the same sequence after a resume).
    /// Identity and wiring (`domain`, `cfg`, `parent`, `children`,
    /// `siblings`) stay with the rebuilt instance.
    fn encode_state(&self, enc: &mut snapshot::Enc) {
        use snapshot::Snapshot;
        self.outer.encode(enc);
        self.own.encode(enc);
        self.alloc.encode(enc);
        self.child_claims.encode(enc);
        self.leases.encode(enc);
        self.pending.encode(enc);
        enc.u64(self.next_req_id);
        self.retry_at.encode(enc);
        self.deferred_demand.encode(enc);
        self.signalled.encode(enc);
        self.stats.encode(enc);
        self.rng.state().encode(enc);
    }

    fn restore_state(&mut self, dec: &mut snapshot::Dec<'_>) -> Result<(), snapshot::SnapError> {
        use snapshot::Snapshot;
        self.outer = Snapshot::decode(dec)?;
        self.own = Snapshot::decode(dec)?;
        self.alloc = Snapshot::decode(dec)?;
        self.child_claims = Snapshot::decode(dec)?;
        self.child_min_expiry = self.child_claims.iter().map(|c| c.expires).min();
        self.leases = Snapshot::decode(dec)?;
        self.pending = Snapshot::decode(dec)?;
        self.next_req_id = dec.u64()?;
        self.retry_at = Snapshot::decode(dec)?;
        self.deferred_demand = Snapshot::decode(dec)?;
        self.signalled = Snapshot::decode(dec)?;
        self.stats = Snapshot::decode(dec)?;
        self.rng = StdRng::from_state(Snapshot::decode(dec)?);
        Ok(())
    }
}
