//! MASC protocol messages and the actions a node emits.
//!
//! Messages travel between MASC nodes of different domains (parent,
//! children, siblings). Actions are everything else a node wants done —
//! transmissions, BGP originations, MAAS notifications — returned from
//! the sans-io engine for the host (simulator or actor runtime) to
//! execute.

use mcast_addr::{Prefix, Secs};
use serde::{Deserialize, Serialize};

/// Domain identity used at the MASC layer (the domain's ASN).
pub type DomainAsn = u32;

/// A MASC protocol message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum MascMsg {
    /// Parent → children: the parent's current address ranges with
    /// their expiry times (§4.1 "A advertises its address range ... to
    /// all its children"). The flag marks *active* ranges: children
    /// claim new space only from active ranges, but may keep renewing
    /// existing claims inside a draining (inactive) range up to that
    /// range's fixed expiry (§4.3.3: old prefixes "timeout when the
    /// currently allocated addresses timeout").
    ParentAdvertise {
        /// Ranges: (prefix, absolute expiry, active).
        ranges: Vec<(Prefix, Secs, bool)>,
    },
    /// A claim for a sub-range of the parent's space, sent to the
    /// parent and propagated to siblings (§4.1).
    Claim {
        /// The claiming domain.
        claimer: DomainAsn,
        /// The claimed range.
        prefix: Prefix,
        /// Absolute expiry the claimer wants.
        expires: Secs,
        /// When the claim was made — the collision tiebreak (earlier
        /// claim wins; ties break to the lower domain id).
        at: Secs,
    },
    /// A collision announcement: `holder` asserts `prefix` against the
    /// offending claim (§4.1).
    Collision {
        /// Domain asserting the range.
        holder: DomainAsn,
        /// The asserted range (overlapping the offender's claim).
        prefix: Prefix,
    },
    /// Renew a granted range to a new expiry.
    Renew {
        /// Renewing domain.
        claimer: DomainAsn,
        /// The renewed range.
        prefix: Prefix,
        /// New absolute expiry.
        expires: Secs,
    },
    /// A child tells its parent it could not find claimable space for
    /// `demand` addresses. The parent expands its own range in
    /// response ("A claims more address space when the utilization
    /// exceeds a given threshold", §4.1 — unmet child demand is the
    /// signal when free space is exhausted or fragmented).
    SpaceNeeded {
        /// The starved child.
        claimer: DomainAsn,
        /// Addresses it could not obtain.
        demand: u64,
    },
    /// Release a range before its lifetime ends.
    Release {
        /// Releasing domain.
        claimer: DomainAsn,
        /// The released range.
        prefix: Prefix,
    },
}

/// An effect requested by the MASC engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MascAction {
    /// Transmit `msg` to the MASC node of domain `to`.
    Send {
        /// Destination domain.
        to: DomainAsn,
        /// Payload.
        msg: MascMsg,
    },
    /// A claim completed its waiting period: the range is ours. The
    /// host injects it into BGP as a group route and hands it to the
    /// MAAS (§4.2).
    RangeGranted {
        /// The granted range.
        prefix: Prefix,
        /// Absolute expiry.
        expires: Secs,
    },
    /// A previously granted range was lost (lifetime expiry, release,
    /// or a forced collision from the parent). The host withdraws the
    /// group route.
    RangeLost {
        /// The lost range.
        prefix: Prefix,
    },
    /// A queued MAAS block request was satisfied.
    BlockReady {
        /// The request id given to `request_block`.
        request: u64,
        /// The allocated block.
        block: Prefix,
        /// Absolute expiry of the block lease.
        expires: Secs,
    },
    /// A block lease expired and was reclaimed.
    BlockExpired {
        /// The reclaimed block.
        block: Prefix,
    },
    /// No free space could satisfy a claim; the node backs off and
    /// retries at the returned deadline.
    ClaimFailed {
        /// Addresses that could not be obtained.
        demand: u64,
    },
}
