//! MASC protocol messages and the actions a node emits.
//!
//! Messages travel between MASC nodes of different domains (parent,
//! children, siblings). Actions are everything else a node wants done —
//! transmissions, BGP originations, MAAS notifications — returned from
//! the sans-io engine for the host (simulator or actor runtime) to
//! execute.

use mcast_addr::{Prefix, Secs};
use serde::{Deserialize, Serialize};

/// Domain identity used at the MASC layer (the domain's ASN).
pub type DomainAsn = u32;

/// A MASC protocol message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum MascMsg {
    /// Parent → children: the parent's current address ranges with
    /// their expiry times (§4.1 "A advertises its address range ... to
    /// all its children"). The flag marks *active* ranges: children
    /// claim new space only from active ranges, but may keep renewing
    /// existing claims inside a draining (inactive) range up to that
    /// range's fixed expiry (§4.3.3: old prefixes "timeout when the
    /// currently allocated addresses timeout").
    ParentAdvertise {
        /// Ranges: (prefix, absolute expiry, active).
        ranges: Vec<(Prefix, Secs, bool)>,
    },
    /// A claim for a sub-range of the parent's space, sent to the
    /// parent and propagated to siblings (§4.1).
    Claim {
        /// The claiming domain.
        claimer: DomainAsn,
        /// The claimed range.
        prefix: Prefix,
        /// Absolute expiry the claimer wants.
        expires: Secs,
        /// When the claim was made — the collision tiebreak (earlier
        /// claim wins; ties break to the lower domain id).
        at: Secs,
    },
    /// A collision announcement: `holder` asserts `prefix` against the
    /// offending claim (§4.1).
    Collision {
        /// Domain asserting the range.
        holder: DomainAsn,
        /// The asserted range (overlapping the offender's claim).
        prefix: Prefix,
    },
    /// Renew a granted range to a new expiry.
    Renew {
        /// Renewing domain.
        claimer: DomainAsn,
        /// The renewed range.
        prefix: Prefix,
        /// New absolute expiry.
        expires: Secs,
    },
    /// A child tells its parent it could not find claimable space for
    /// `demand` addresses. The parent expands its own range in
    /// response ("A claims more address space when the utilization
    /// exceeds a given threshold", §4.1 — unmet child demand is the
    /// signal when free space is exhausted or fragmented).
    SpaceNeeded {
        /// The starved child.
        claimer: DomainAsn,
        /// Addresses it could not obtain.
        demand: u64,
    },
    /// Release a range before its lifetime ends.
    Release {
        /// Releasing domain.
        claimer: DomainAsn,
        /// The released range.
        prefix: Prefix,
    },
}

impl snapshot::Snapshot for MascMsg {
    fn encode(&self, enc: &mut snapshot::Enc) {
        match self {
            MascMsg::ParentAdvertise { ranges } => {
                enc.u8(0);
                ranges.encode(enc);
            }
            MascMsg::Claim {
                claimer,
                prefix,
                expires,
                at,
            } => {
                enc.u8(1);
                enc.u32(*claimer);
                prefix.encode(enc);
                enc.u64(*expires);
                enc.u64(*at);
            }
            MascMsg::Collision { holder, prefix } => {
                enc.u8(2);
                enc.u32(*holder);
                prefix.encode(enc);
            }
            MascMsg::Renew {
                claimer,
                prefix,
                expires,
            } => {
                enc.u8(3);
                enc.u32(*claimer);
                prefix.encode(enc);
                enc.u64(*expires);
            }
            MascMsg::SpaceNeeded { claimer, demand } => {
                enc.u8(4);
                enc.u32(*claimer);
                enc.u64(*demand);
            }
            MascMsg::Release { claimer, prefix } => {
                enc.u8(5);
                enc.u32(*claimer);
                prefix.encode(enc);
            }
        }
    }
    fn decode(dec: &mut snapshot::Dec<'_>) -> Result<Self, snapshot::SnapError> {
        match dec.u8()? {
            0 => Ok(MascMsg::ParentAdvertise {
                ranges: snapshot::Snapshot::decode(dec)?,
            }),
            1 => Ok(MascMsg::Claim {
                claimer: dec.u32()?,
                prefix: Prefix::decode(dec)?,
                expires: dec.u64()?,
                at: dec.u64()?,
            }),
            2 => Ok(MascMsg::Collision {
                holder: dec.u32()?,
                prefix: Prefix::decode(dec)?,
            }),
            3 => Ok(MascMsg::Renew {
                claimer: dec.u32()?,
                prefix: Prefix::decode(dec)?,
                expires: dec.u64()?,
            }),
            4 => Ok(MascMsg::SpaceNeeded {
                claimer: dec.u32()?,
                demand: dec.u64()?,
            }),
            5 => Ok(MascMsg::Release {
                claimer: dec.u32()?,
                prefix: Prefix::decode(dec)?,
            }),
            _ => Err(snapshot::SnapError::Invalid("MascMsg tag")),
        }
    }
}

/// An effect requested by the MASC engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MascAction {
    /// Transmit `msg` to the MASC node of domain `to`.
    Send {
        /// Destination domain.
        to: DomainAsn,
        /// Payload.
        msg: MascMsg,
    },
    /// A claim completed its waiting period: the range is ours. The
    /// host injects it into BGP as a group route and hands it to the
    /// MAAS (§4.2).
    RangeGranted {
        /// The granted range.
        prefix: Prefix,
        /// Absolute expiry.
        expires: Secs,
    },
    /// A previously granted range was lost (lifetime expiry, release,
    /// or a forced collision from the parent). The host withdraws the
    /// group route.
    RangeLost {
        /// The lost range.
        prefix: Prefix,
    },
    /// A queued MAAS block request was satisfied.
    BlockReady {
        /// The request id given to `request_block`.
        request: u64,
        /// The allocated block.
        block: Prefix,
        /// Absolute expiry of the block lease.
        expires: Secs,
    },
    /// A block lease expired and was reclaimed.
    BlockExpired {
        /// The reclaimed block.
        block: Prefix,
    },
    /// No free space could satisfy a claim; the node backs off and
    /// retries at the returned deadline.
    ClaimFailed {
        /// Addresses that could not be obtained.
        demand: u64,
    },
}

impl snapshot::Snapshot for MascAction {
    fn encode(&self, enc: &mut snapshot::Enc) {
        match self {
            MascAction::Send { to, msg } => {
                enc.u8(0);
                enc.u32(*to);
                msg.encode(enc);
            }
            MascAction::RangeGranted { prefix, expires } => {
                enc.u8(1);
                prefix.encode(enc);
                enc.u64(*expires);
            }
            MascAction::RangeLost { prefix } => {
                enc.u8(2);
                prefix.encode(enc);
            }
            MascAction::BlockReady {
                request,
                block,
                expires,
            } => {
                enc.u8(3);
                enc.u64(*request);
                block.encode(enc);
                enc.u64(*expires);
            }
            MascAction::BlockExpired { block } => {
                enc.u8(4);
                block.encode(enc);
            }
            MascAction::ClaimFailed { demand } => {
                enc.u8(5);
                enc.u64(*demand);
            }
        }
    }
    fn decode(dec: &mut snapshot::Dec<'_>) -> Result<Self, snapshot::SnapError> {
        match dec.u8()? {
            0 => Ok(MascAction::Send {
                to: dec.u32()?,
                msg: MascMsg::decode(dec)?,
            }),
            1 => Ok(MascAction::RangeGranted {
                prefix: Prefix::decode(dec)?,
                expires: dec.u64()?,
            }),
            2 => Ok(MascAction::RangeLost {
                prefix: Prefix::decode(dec)?,
            }),
            3 => Ok(MascAction::BlockReady {
                request: dec.u64()?,
                block: Prefix::decode(dec)?,
                expires: dec.u64()?,
            }),
            4 => Ok(MascAction::BlockExpired {
                block: Prefix::decode(dec)?,
            }),
            5 => Ok(MascAction::ClaimFailed { demand: dec.u64()? }),
            _ => Err(snapshot::SnapError::Invalid("MascAction tag")),
        }
    }
}
