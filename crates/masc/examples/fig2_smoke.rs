//! Quick smoke run of the figure-2 hierarchy simulation.
use masc::sim::MascActor;
use masc::{HierarchySim, HierarchySimParams};

fn main() {
    let days: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60);
    let mut sim = HierarchySim::new(HierarchySimParams::paper_fig2(1));
    let mut last = simnet::EngineStats::default();
    for d in (10..=days).step_by(10) {
        sim.run_to_day(d);
        let m = sim.sample();
        let s = sim.engine.stats();
        let (mut claims, mut grants, mut fails, mut colls) = (0u64, 0u64, 0u64, 0u64);
        for id in sim.tops.iter().chain(sim.children.iter()) {
            let a = sim.engine.node_as::<MascActor>(*id).unwrap();
            claims += a.node.stats.claims_made;
            grants += a.node.stats.grants;
            fails += a.node.stats.failures;
            colls += a.node.stats.collisions;
        }
        println!(
            "day {:4.0} util {:5.3} leased {:9} claimed {:9} grib {:6.1}/{:4} glob {:4} pend {:6} | dEv {:9} dTmr {:9} dMsg {:9} | cl {} gr {} fail {} col {}",
            m.day, m.utilization, m.leased, m.claimed_top, m.grib_avg, m.grib_max, m.global_prefixes, m.pending,
            s.events - last.events, s.timers - last.timers, s.delivered - last.delivered,
            claims, grants, fails, colls
        );
        last = s;
    }
}
