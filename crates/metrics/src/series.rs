//! Named time series of (x, y) samples.

use serde::{Deserialize, Serialize};

/// One sample point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// X coordinate (time in days, receiver count, …).
    pub x: f64,
    /// Y value.
    pub y: f64,
}

/// A named series of samples, e.g. one curve of a figure.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Series {
    /// Curve label as it appears in the figure legend.
    pub name: String,
    /// Samples in x order.
    pub samples: Vec<Sample>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(name: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            samples: Vec::new(),
        }
    }

    /// Appends a sample.
    pub fn push(&mut self, x: f64, y: f64) {
        self.samples.push(Sample { x, y });
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The y values.
    pub fn ys(&self) -> impl Iterator<Item = f64> + '_ {
        self.samples.iter().map(|s| s.y)
    }

    /// Mean of y over samples with `x >= from` (steady-state summary).
    pub fn mean_y_from(&self, from: f64) -> Option<f64> {
        let v: Vec<f64> = self
            .samples
            .iter()
            .filter(|s| s.x >= from)
            .map(|s| s.y)
            .collect();
        if v.is_empty() {
            None
        } else {
            Some(v.iter().sum::<f64>() / v.len() as f64)
        }
    }

    /// Maximum y over all samples.
    pub fn max_y(&self) -> Option<f64> {
        self.ys()
            .fold(None, |acc, y| Some(acc.map_or(y, |a: f64| a.max(y))))
    }

    /// Renders a compact ASCII sparkline of the y values.
    pub fn sparkline(&self, width: usize) -> String {
        const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        if self.samples.is_empty() || width == 0 {
            return String::new();
        }
        let min = self.ys().fold(f64::INFINITY, f64::min);
        let max = self.ys().fold(f64::NEG_INFINITY, f64::max);
        let span = (max - min).max(f64::EPSILON);
        let n = self.samples.len();
        (0..width.min(n))
            .map(|i| {
                let idx = i * n / width.min(n);
                let y = self.samples[idx].y;
                let level = (((y - min) / span) * 7.0).round() as usize;
                BARS[level.min(7)]
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_summaries() {
        let mut s = Series::new("util");
        for (x, y) in [(0.0, 1.0), (1.0, 3.0), (2.0, 5.0)] {
            s.push(x, y);
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.max_y(), Some(5.0));
        assert_eq!(s.mean_y_from(1.0), Some(4.0));
        assert_eq!(s.mean_y_from(9.0), None);
    }

    #[test]
    fn sparkline_renders() {
        let mut s = Series::new("x");
        for i in 0..16 {
            s.push(i as f64, (i % 8) as f64);
        }
        let line = s.sparkline(8);
        assert_eq!(line.chars().count(), 8);
        assert!(Series::new("e").sparkline(8).is_empty());
    }
}
