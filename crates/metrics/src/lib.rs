//! Measurement utilities: time series, summary statistics, and
//! machine-readable emission for the experiment harnesses.

pub mod emit;
pub mod series;
pub mod stats;

pub use series::{Sample, Series};
pub use stats::Summary;
