//! Emission of experiment results as CSV and JSON.

use std::io::Write;

use crate::series::Series;

/// Writes a set of series as CSV: `x,name1,name2,...` with one row per
/// distinct x (series are assumed x-aligned, as all harnesses emit).
pub fn to_csv(series: &[Series]) -> String {
    let mut out = String::new();
    out.push('x');
    for s in series {
        out.push(',');
        out.push_str(&s.name);
    }
    out.push('\n');
    let rows = series.iter().map(|s| s.len()).max().unwrap_or(0);
    for i in 0..rows {
        let x = series
            .iter()
            .find_map(|s| s.samples.get(i).map(|p| p.x))
            .unwrap_or(i as f64);
        out.push_str(&format!("{x}"));
        for s in series {
            match s.samples.get(i) {
                Some(p) => out.push_str(&format!(",{}", p.y)),
                None => out.push(','),
            }
        }
        out.push('\n');
    }
    out
}

/// Serializes series to pretty JSON. Serialization failure surfaces as
/// an error for the caller to report, not a panic in the middle of an
/// hours-long sweep.
pub fn to_json(series: &[Series]) -> Result<String, serde_json::Error> {
    serde_json::to_string_pretty(series)
}

/// Writes both `<stem>.csv` and `<stem>.json` under `dir`, creating it.
pub fn write_results(dir: &std::path::Path, stem: &str, series: &[Series]) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let json = to_json(series)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    let mut f = std::fs::File::create(dir.join(format!("{stem}.csv")))?;
    f.write_all(to_csv(series).as_bytes())?;
    let mut f = std::fs::File::create(dir.join(format!("{stem}.json")))?;
    f.write_all(json.as_bytes())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_shape() {
        let mut a = Series::new("a");
        a.push(1.0, 10.0);
        a.push(2.0, 20.0);
        let mut b = Series::new("b");
        b.push(1.0, 1.5);
        let csv = to_csv(&[a, b]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "x,a,b");
        assert_eq!(lines[1], "1,10,1.5");
        assert_eq!(lines[2], "2,20,");
    }

    #[test]
    fn json_roundtrip() {
        let mut a = Series::new("a");
        a.push(1.0, 2.0);
        let j = to_json(&[a]).unwrap();
        let back: Vec<Series> = serde_json::from_str(&j).unwrap();
        assert_eq!(back[0].name, "a");
        assert_eq!(back[0].samples.len(), 1);
    }

    #[test]
    fn write_results_creates_files() {
        let dir = std::env::temp_dir().join("masc_bgmp_metrics_test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut a = Series::new("a");
        a.push(0.0, 1.0);
        write_results(&dir, "t", &[a]).unwrap();
        assert!(dir.join("t.csv").exists());
        assert!(dir.join("t.json").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
