//! Summary statistics.

use serde::{Deserialize, Serialize};

/// Summary of a set of observations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Observation count.
    pub n: usize,
    /// Mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (p50).
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Summary {
    /// Computes a summary; returns `None` for empty input.
    pub fn of(values: &[f64]) -> Option<Summary> {
        if values.is_empty() {
            return None;
        }
        let mut v: Vec<f64> = values.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in metrics"));
        let n = v.len();
        let pct = |p: f64| -> f64 {
            let idx = ((n as f64 - 1.0) * p).round() as usize;
            v[idx.min(n - 1)]
        };
        Some(Summary {
            n,
            mean: v.iter().sum::<f64>() / n as f64,
            min: v[0],
            max: v[n - 1],
            p50: pct(0.50),
            p90: pct(0.90),
            p99: pct(0.99),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_values() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = Summary::of(&v).unwrap();
        assert_eq!(s.n, 100);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!((s.mean - 50.5).abs() < 1e-9);
        assert!((s.p50 - 50.0).abs() <= 1.0);
        assert!((s.p90 - 90.0).abs() <= 1.0);
        assert!((s.p99 - 99.0).abs() <= 1.0);
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn single_value() {
        let s = Summary::of(&[7.0]).unwrap();
        assert_eq!((s.min, s.max, s.p50, s.p99), (7.0, 7.0, 7.0, 7.0));
    }
}
