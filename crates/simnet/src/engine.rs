//! The discrete-event engine tying nodes, links, and the queue together.

use std::any::Any;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::event::{Event, EventQueue};
use crate::link::LinkTable;
use crate::node::{Ctx, Node, NodeId};
use crate::time::{SimDuration, SimTime};

/// Running counters maintained by the engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineStats {
    /// Messages delivered to a node's `on_message`.
    pub delivered: u64,
    /// Messages dropped because the link was down at send time.
    pub dropped: u64,
    /// Timer firings dispatched.
    pub timers: u64,
    /// Events processed in total.
    pub events: u64,
}

/// A deterministic discrete-event simulator over message type `M`.
///
/// Typical use: register nodes, configure links (or rely on the default
/// latency), call [`Engine::start`], inject workload via
/// [`Engine::schedule_message`], then [`Engine::run_until`] /
/// [`Engine::run_until_idle`].
pub struct Engine<M> {
    nodes: Vec<Option<Box<dyn Node<M>>>>,
    queue: EventQueue<M>,
    links: LinkTable,
    now: SimTime,
    rng: StdRng,
    stats: EngineStats,
    started: bool,
}

impl<M: 'static> Engine<M> {
    /// Creates an engine with the given RNG seed and default link
    /// latency for unconfigured links.
    pub fn new(seed: u64, default_latency: SimDuration) -> Self {
        Engine {
            nodes: Vec::new(),
            queue: EventQueue::new(),
            links: LinkTable::new(default_latency),
            now: SimTime::ZERO,
            rng: StdRng::seed_from_u64(seed),
            stats: EngineStats::default(),
            started: false,
        }
    }

    /// Registers a node, returning its id.
    pub fn add_node(&mut self, node: Box<dyn Node<M>>) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Some(node));
        id
    }

    /// Registers a node built from its own id (for actors that must
    /// know their address at construction time).
    pub fn add_node_with(&mut self, f: impl FnOnce(NodeId) -> Box<dyn Node<M>>) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Some(f(id)));
        id
    }

    /// Number of registered nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Immutable access to a node downcast to its concrete type.
    pub fn node_as<T: 'static>(&self, id: NodeId) -> Option<&T> {
        let node = self.nodes.get(id.0)?.as_deref()?;
        (node as &dyn Any).downcast_ref::<T>()
    }

    /// Mutable access to a node downcast to its concrete type.
    pub fn node_as_mut<T: 'static>(&mut self, id: NodeId) -> Option<&mut T> {
        let node = self.nodes.get_mut(id.0)?.as_deref_mut()?;
        (node as &mut dyn Any).downcast_mut::<T>()
    }

    /// The link table, for configuration.
    pub fn links_mut(&mut self) -> &mut LinkTable {
        &mut self.links
    }

    /// The link table, read-only.
    pub fn links(&self) -> &LinkTable {
        &self.links
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Counters.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Injects a message from [`NodeId::EXTERNAL`] to `to` at absolute
    /// time `at` (must not be in the past).
    pub fn schedule_message(&mut self, at: SimTime, to: NodeId, msg: M) {
        debug_assert!(at >= self.now, "scheduling into the past");
        self.queue.push_message(at, NodeId::EXTERNAL, to, msg);
    }

    /// Injects a message with an explicit sender.
    pub fn schedule_message_from(&mut self, at: SimTime, from: NodeId, to: NodeId, msg: M) {
        debug_assert!(at >= self.now, "scheduling into the past");
        self.queue.push_message(at, from, to, msg);
    }

    /// Schedules a timer firing on `node` at absolute time `at`.
    pub fn schedule_timer(&mut self, at: SimTime, node: NodeId, key: u64) {
        debug_assert!(at >= self.now, "scheduling into the past");
        self.queue.push_timer(at, node, key);
    }

    /// Schedules the link between `a` and `b` to fail at `at` and
    /// recover at `until` (a network partition of one link).
    pub fn schedule_partition(&mut self, a: NodeId, b: NodeId, at: SimTime, until: SimTime) {
        debug_assert!(at >= self.now, "scheduling into the past");
        debug_assert!(until >= at, "partition heals before it starts");
        self.queue.push(at, Event::LinkDown(a, b));
        self.queue.push(until, Event::LinkUp(a, b));
    }

    /// Calls every node's `on_start` (idempotent; also invoked lazily
    /// by the first `step`).
    pub fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.nodes.len() {
            self.with_node(NodeId(i), |node, ctx| node.on_start(ctx));
        }
    }

    fn with_node(&mut self, id: NodeId, f: impl FnOnce(&mut dyn Node<M>, &mut Ctx<'_, M>)) {
        let Some(slot) = self.nodes.get_mut(id.0) else {
            return;
        };
        let Some(mut node) = slot.take() else {
            return; // re-entrant dispatch cannot happen; treat as gone
        };
        let mut ctx = Ctx {
            id,
            now: self.now,
            queue: &mut self.queue,
            links: &self.links,
            rng: &mut self.rng,
            dropped: &mut self.stats.dropped,
        };
        f(node.as_mut(), &mut ctx);
        self.nodes[id.0] = Some(node);
    }

    /// Advances the clock to `at` and dispatches one popped event.
    fn dispatch(&mut self, at: SimTime, event: Event<M>) {
        debug_assert!(at >= self.now);
        self.now = at;
        self.stats.events += 1;
        match event {
            Event::Message { from, to, msg } => {
                self.stats.delivered += 1;
                self.with_node(to, |node, ctx| node.on_message(ctx, from, msg));
            }
            Event::Timer { node, key } => {
                self.stats.timers += 1;
                self.with_node(node, |n, ctx| n.on_timer(ctx, key));
            }
            Event::LinkDown(a, b) => self.links.set_down(a, b),
            Event::LinkUp(a, b) => self.links.set_up(a, b),
        }
    }

    /// Processes the next event. Returns `false` when the queue is
    /// empty.
    pub fn step(&mut self) -> bool {
        self.start();
        let Some((at, event)) = self.queue.pop() else {
            return false;
        };
        self.dispatch(at, event);
        true
    }

    /// Runs all events scheduled up to and including `until`, then
    /// advances the clock to `until`.
    ///
    /// Fast path: `pop_le` locates and removes the next due event in
    /// one queue operation, so same-timestamp batches drain without a
    /// peek-then-pop double scan per event.
    pub fn run_until(&mut self, until: SimTime) {
        self.start();
        while let Some((at, event)) = self.queue.pop_le(until) {
            self.dispatch(at, event);
        }
        if until > self.now {
            self.now = until;
        }
    }

    /// Runs until no events remain or `max_events` have been processed
    /// (a guard against livelocked protocols). Returns the number of
    /// events processed.
    pub fn run_until_idle(&mut self, max_events: u64) -> u64 {
        self.start();
        let mut n = 0;
        while n < max_events && self.step() {
            n += 1;
        }
        n
    }

    /// Pending event count (diagnostics).
    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A node that counts pings and echoes pongs back.
    struct Echo {
        pings: u32,
    }

    #[derive(Debug, PartialEq)]
    enum Msg {
        Ping,
        Pong,
    }

    impl Node<Msg> for Echo {
        fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: Msg) {
            if msg == Msg::Ping {
                self.pings += 1;
                if from != NodeId::EXTERNAL {
                    ctx.send(from, Msg::Pong);
                }
            }
        }
    }

    /// A node that pings a peer on start and counts pongs.
    struct Pinger {
        peer: NodeId,
        pongs: u32,
    }

    impl Node<Msg> for Pinger {
        fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
            ctx.send(self.peer, Msg::Ping);
        }
        fn on_message(&mut self, _ctx: &mut Ctx<'_, Msg>, _from: NodeId, msg: Msg) {
            if msg == Msg::Pong {
                self.pongs += 1;
            }
        }
    }

    #[test]
    fn ping_pong_roundtrip_with_latency() {
        let mut eng: Engine<Msg> = Engine::new(1, SimDuration::from_millis(10));
        let echo = eng.add_node(Box::new(Echo { pings: 0 }));
        let pinger = eng.add_node_with(|_id| {
            Box::new(Pinger {
                peer: echo,
                pongs: 0,
            })
        });
        eng.run_until_idle(100);
        assert_eq!(eng.node_as::<Echo>(echo).unwrap().pings, 1);
        assert_eq!(eng.node_as::<Pinger>(pinger).unwrap().pongs, 1);
        // One RTT at 10 ms each way.
        assert_eq!(eng.now(), SimTime(20));
        assert_eq!(eng.stats().delivered, 2);
    }

    #[test]
    fn external_injection() {
        let mut eng: Engine<Msg> = Engine::new(1, SimDuration::from_millis(1));
        let echo = eng.add_node(Box::new(Echo { pings: 0 }));
        eng.schedule_message(SimTime(100), echo, Msg::Ping);
        eng.schedule_message(SimTime(200), echo, Msg::Ping);
        eng.run_until(SimTime(150));
        assert_eq!(eng.node_as::<Echo>(echo).unwrap().pings, 1);
        assert_eq!(eng.now(), SimTime(150));
        eng.run_until(SimTime(300));
        assert_eq!(eng.node_as::<Echo>(echo).unwrap().pings, 2);
    }

    #[test]
    fn partition_drops_messages() {
        let mut eng: Engine<Msg> = Engine::new(1, SimDuration::from_millis(10));
        let echo = eng.add_node(Box::new(Echo { pings: 0 }));
        let pinger = eng.add_node(Box::new(Pinger {
            peer: echo,
            pongs: 0,
        }));
        // Link down before start: the on_start ping is dropped.
        eng.links_mut().set_down(echo, pinger);
        eng.run_until_idle(100);
        assert_eq!(eng.node_as::<Echo>(echo).unwrap().pings, 0);
        assert_eq!(eng.stats().dropped, 1);
    }

    #[test]
    fn scheduled_partition_heals() {
        let mut eng: Engine<Msg> = Engine::new(1, SimDuration::from_millis(10));
        let echo = eng.add_node(Box::new(Echo { pings: 0 }));
        let ext_target = echo;
        eng.schedule_partition(NodeId::EXTERNAL, echo, SimTime(0), SimTime(50));
        // External sends bypass links only if the link is up; EXTERNAL
        // delivery is scheduled directly so it always arrives.
        eng.schedule_message(SimTime(10), ext_target, Msg::Ping);
        eng.run_until_idle(10);
        assert_eq!(eng.node_as::<Echo>(echo).unwrap().pings, 1);
        assert!(eng.links().is_up(NodeId::EXTERNAL, echo));
    }

    /// Timers fire in order and deterministically.
    struct TimerNode {
        fired: Vec<u64>,
    }
    impl Node<Msg> for TimerNode {
        fn on_message(&mut self, _: &mut Ctx<'_, Msg>, _: NodeId, _: Msg) {}
        fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
            ctx.set_timer(SimDuration::from_millis(30), 3);
            ctx.set_timer(SimDuration::from_millis(10), 1);
            ctx.set_timer(SimDuration::from_millis(20), 2);
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<'_, Msg>, key: u64) {
            self.fired.push(key);
        }
    }

    #[test]
    fn timers_fire_in_order() {
        let mut eng: Engine<Msg> = Engine::new(1, SimDuration::from_millis(1));
        let n = eng.add_node(Box::new(TimerNode { fired: vec![] }));
        eng.run_until_idle(10);
        assert_eq!(eng.node_as::<TimerNode>(n).unwrap().fired, vec![1, 2, 3]);
        assert_eq!(eng.stats().timers, 3);
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        fn run(seed: u64) -> (u64, SimTime) {
            let mut eng: Engine<Msg> = Engine::new(seed, SimDuration::from_millis(7));
            let echo = eng.add_node(Box::new(Echo { pings: 0 }));
            for i in 0..50 {
                eng.schedule_message(SimTime(i * 13), echo, Msg::Ping);
            }
            eng.run_until_idle(1000);
            (eng.stats().events, eng.now())
        }
        assert_eq!(run(42), run(42));
    }
}
