//! The discrete-event engine tying nodes, links, and the queue together.

use std::any::Any;

use rand::rngs::StdRng;
use rand::SeedableRng;
use snapshot::{SnapError, Snapshot, SnapshotState};

use crate::event::{Event, EventQueue};
use crate::fault::FaultPlane;
use crate::link::LinkTable;
use crate::node::{Ctx, Node, NodeId};
use crate::time::{SimDuration, SimTime};
use crate::trace::Trace;

/// Snapshot kind tag for an [`Engine`] checkpoint.
pub const SNAP_KIND_ENGINE: u16 = 1;

/// Mode byte distinguishing serial from sharded engine blobs inside a
/// v2 [`SNAP_KIND_ENGINE`] snapshot (v1 blobs predate the byte and are
/// always serial).
pub(crate) const ENGINE_MODE_SERIAL: u8 = 0;
/// See [`ENGINE_MODE_SERIAL`].
pub(crate) const ENGINE_MODE_SHARDED: u8 = 1;

/// A rejected fault-schedule request. Returned instead of silently
/// mis-scheduling: a release build used to accept a backwards window
/// (`until < at`) and enqueue a heal *before* its failure, leaving the
/// link down or the node crashed forever.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleError {
    /// The recovery time precedes the failure time.
    BackwardsWindow {
        /// Scheduled failure time.
        at: SimTime,
        /// Scheduled recovery time (earlier than `at`).
        until: SimTime,
    },
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::BackwardsWindow { at, until } => write!(
                f,
                "backwards fault window: recovery at {} precedes failure at {}",
                until.0, at.0
            ),
        }
    }
}

impl std::error::Error for ScheduleError {}

/// Running counters maintained by the engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineStats {
    /// Messages delivered to a node's `on_message`.
    pub delivered: u64,
    /// Messages dropped because the link was down at send time.
    pub dropped: u64,
    /// Timer firings dispatched.
    pub timers: u64,
    /// Events processed in total.
    pub events: u64,
}

/// A deterministic discrete-event simulator over message type `M`.
///
/// Typical use: register nodes, configure links (or rely on the default
/// latency), call [`Engine::start`], inject workload via
/// [`Engine::schedule_message`], then [`Engine::run_until`] /
/// [`Engine::run_until_idle`].
pub struct Engine<M> {
    nodes: Vec<Option<Box<dyn Node<M>>>>,
    queue: EventQueue<M>,
    links: LinkTable,
    now: SimTime,
    rng: StdRng,
    faults: FaultPlane<M>,
    stats: EngineStats,
    started: bool,
    /// Dispatch-level event trace; `None` (the default) costs nothing.
    trace: Option<Trace>,
}

impl<M: 'static> Engine<M> {
    /// Creates an engine with the given RNG seed and default link
    /// latency for unconfigured links.
    pub fn new(seed: u64, default_latency: SimDuration) -> Self {
        Engine {
            nodes: Vec::new(),
            queue: EventQueue::new(),
            links: LinkTable::new(default_latency),
            now: SimTime::ZERO,
            rng: StdRng::seed_from_u64(seed),
            faults: FaultPlane::new(),
            stats: EngineStats::default(),
            started: false,
            trace: None,
        }
    }

    /// Enables the dispatch-level event trace, retaining the last
    /// `cap` lines. Tracing only changes what is recorded, never the
    /// schedule, so enabling it cannot perturb a deterministic run.
    pub fn enable_trace(&mut self, cap: usize) {
        self.trace = Some(Trace::new(cap));
    }

    /// The dispatch trace, if enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Registers a node, returning its id.
    pub fn add_node(&mut self, node: Box<dyn Node<M>>) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Some(node));
        id
    }

    /// Registers a node built from its own id (for actors that must
    /// know their address at construction time).
    pub fn add_node_with(&mut self, f: impl FnOnce(NodeId) -> Box<dyn Node<M>>) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Some(f(id)));
        id
    }

    /// Number of registered nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Immutable access to a node downcast to its concrete type.
    pub fn node_as<T: 'static>(&self, id: NodeId) -> Option<&T> {
        let node = self.nodes.get(id.0)?.as_deref()?;
        (node as &dyn Any).downcast_ref::<T>()
    }

    /// Mutable access to a node downcast to its concrete type.
    pub fn node_as_mut<T: 'static>(&mut self, id: NodeId) -> Option<&mut T> {
        let node = self.nodes.get_mut(id.0)?.as_deref_mut()?;
        (node as &mut dyn Any).downcast_mut::<T>()
    }

    /// The link table, for configuration.
    pub fn links_mut(&mut self) -> &mut LinkTable {
        &mut self.links
    }

    /// The link table, read-only.
    pub fn links(&self) -> &LinkTable {
        &self.links
    }

    /// The fault-injection plane, for configuration.
    pub fn faults_mut(&mut self) -> &mut FaultPlane<M> {
        &mut self.faults
    }

    /// The fault-injection plane, read-only.
    pub fn faults(&self) -> &FaultPlane<M> {
        &self.faults
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Counters.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Injects a message from [`NodeId::EXTERNAL`] to `to` at absolute
    /// time `at` (must not be in the past).
    pub fn schedule_message(&mut self, at: SimTime, to: NodeId, msg: M) {
        debug_assert!(at >= self.now, "scheduling into the past");
        self.queue.push_message(at, NodeId::EXTERNAL, to, msg);
    }

    /// Injects a message with an explicit sender.
    pub fn schedule_message_from(&mut self, at: SimTime, from: NodeId, to: NodeId, msg: M) {
        debug_assert!(at >= self.now, "scheduling into the past");
        self.queue.push_message(at, from, to, msg);
    }

    /// Schedules a timer firing on `node` at absolute time `at`.
    pub fn schedule_timer(&mut self, at: SimTime, node: NodeId, key: u64) {
        debug_assert!(at >= self.now, "scheduling into the past");
        self.queue.push_timer(at, node, key);
    }

    /// Schedules the link between `a` and `b` to fail at `at` and
    /// recover at `until` (a network partition of one link).
    ///
    /// A backwards window (`until < at`) is rejected deterministically
    /// — nothing is enqueued — instead of silently scheduling a heal
    /// before its failure (which left the link down forever in release
    /// builds, where the old `debug_assert!` compiled out).
    pub fn schedule_partition(
        &mut self,
        a: NodeId,
        b: NodeId,
        at: SimTime,
        until: SimTime,
    ) -> Result<(), ScheduleError> {
        debug_assert!(at >= self.now, "scheduling into the past");
        if until < at {
            return Err(ScheduleError::BackwardsWindow { at, until });
        }
        self.queue.push(at, Event::LinkDown(a, b));
        self.queue.push(until, Event::LinkUp(a, b));
        Ok(())
    }

    /// Schedules `node` to crash (fail-stop) at `at` and restart at
    /// `until`. While down the node receives no messages or timers; on
    /// restart its [`Node::on_restart`] hook runs.
    ///
    /// Backwards windows are rejected like
    /// [`Engine::schedule_partition`]'s.
    pub fn schedule_crash(
        &mut self,
        node: NodeId,
        at: SimTime,
        until: SimTime,
    ) -> Result<(), ScheduleError> {
        debug_assert!(at >= self.now, "scheduling into the past");
        if until < at {
            return Err(ScheduleError::BackwardsWindow { at, until });
        }
        self.queue.push(at, Event::NodeDown(node));
        self.queue.push(until, Event::NodeUp(node));
        Ok(())
    }

    /// Calls every node's `on_start` (idempotent; also invoked lazily
    /// by the first `step`).
    pub fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.nodes.len() {
            self.with_node(NodeId(i), |node, ctx| node.on_start(ctx));
        }
    }

    fn with_node(&mut self, id: NodeId, f: impl FnOnce(&mut dyn Node<M>, &mut Ctx<'_, M>)) {
        let Some(slot) = self.nodes.get_mut(id.0) else {
            return;
        };
        let Some(mut node) = slot.take() else {
            return; // re-entrant dispatch cannot happen; treat as gone
        };
        let mut ctx = Ctx {
            id,
            now: self.now,
            queue: &mut self.queue,
            links: &self.links,
            rng: &mut self.rng,
            faults: &mut self.faults,
            dropped: &mut self.stats.dropped,
            route: None,
        };
        f(node.as_mut(), &mut ctx);
        self.nodes[id.0] = Some(node);
    }

    /// Advances the clock to `at` and dispatches one popped event.
    fn dispatch(&mut self, at: SimTime, event: Event<M>) {
        debug_assert!(at >= self.now);
        self.now = at;
        self.stats.events += 1;
        if let Some(trace) = &mut self.trace {
            let line = match &event {
                Event::Message { from, to, .. } => format!("msg {}->{}", from.0, to.0),
                Event::Timer { node, key } => format!("timer node={} key={key}", node.0),
                Event::LinkDown(a, b) => format!("link down {}-{}", a.0, b.0),
                Event::LinkUp(a, b) => format!("link up {}-{}", a.0, b.0),
                Event::NodeDown(n) => format!("node down {}", n.0),
                Event::NodeUp(n) => format!("node up {}", n.0),
            };
            trace.push(at, line);
        }
        match event {
            Event::Message { from, to, msg } => {
                if self.faults.is_down(to) {
                    self.faults.stats.dropped_at_down_node += 1;
                    return;
                }
                self.stats.delivered += 1;
                self.with_node(to, |node, ctx| node.on_message(ctx, from, msg));
            }
            Event::Timer { node, key } => {
                if self.faults.is_down(node) {
                    self.faults.stats.timers_suppressed += 1;
                    return;
                }
                self.stats.timers += 1;
                self.with_node(node, |n, ctx| n.on_timer(ctx, key));
            }
            Event::LinkDown(a, b) => self.links.set_down(a, b),
            Event::LinkUp(a, b) => self.links.set_up(a, b),
            Event::NodeDown(n) => self.faults.mark_down(n),
            Event::NodeUp(n) => {
                if self.faults.mark_up(n) {
                    self.with_node(n, |node, ctx| node.on_restart(ctx));
                }
            }
        }
    }

    /// Processes the next event. Returns `false` when the queue is
    /// empty.
    pub fn step(&mut self) -> bool {
        self.start();
        let Some((at, event)) = self.queue.pop() else {
            return false;
        };
        self.dispatch(at, event);
        true
    }

    /// Dispatches `first` to its target node, then drains the
    /// contiguous run of same-timestamp events for that same node
    /// without returning the node to its slot in between (one
    /// take/put-back per batch instead of per event). Pop order —
    /// and so every observable outcome — is identical to dispatching
    /// one event at a time: only the queue's global head is ever
    /// taken (see [`EventQueue::pop_if_for`]).
    ///
    /// [`EventQueue::pop_if_for`]: crate::event::EventQueue::pop_if_for
    fn dispatch_node_batch(&mut self, at: SimTime, first: Event<M>) {
        debug_assert!(at >= self.now);
        self.now = at;
        let id = match &first {
            Event::Message { to, .. } => *to,
            Event::Timer { node, .. } => *node,
            _ => unreachable!("batch dispatch is only for node-delivered events"),
        };
        let mut node = self.nodes.get_mut(id.0).and_then(|slot| slot.take());
        let mut ev = first;
        loop {
            self.stats.events += 1;
            if let Some(trace) = &mut self.trace {
                let line = match &ev {
                    Event::Message { from, to, .. } => format!("msg {}->{}", from.0, to.0),
                    Event::Timer { node, key } => format!("timer node={} key={key}", node.0),
                    _ => unreachable!(),
                };
                trace.push(at, line);
            }
            // Re-checked every iteration: a handler can only change
            // fault state through scheduled NodeDown/NodeUp events
            // (which end the batch), but stay defensive.
            let down = self.faults.is_down(id);
            match ev {
                Event::Message { from, msg, .. } => {
                    if down {
                        self.faults.stats.dropped_at_down_node += 1;
                    } else {
                        self.stats.delivered += 1;
                        if let Some(n) = node.as_mut() {
                            let mut ctx = Ctx {
                                id,
                                now: self.now,
                                queue: &mut self.queue,
                                links: &self.links,
                                rng: &mut self.rng,
                                faults: &mut self.faults,
                                dropped: &mut self.stats.dropped,
                                route: None,
                            };
                            n.on_message(&mut ctx, from, msg);
                        }
                    }
                }
                Event::Timer { key, .. } => {
                    if down {
                        self.faults.stats.timers_suppressed += 1;
                    } else {
                        self.stats.timers += 1;
                        if let Some(n) = node.as_mut() {
                            let mut ctx = Ctx {
                                id,
                                now: self.now,
                                queue: &mut self.queue,
                                links: &self.links,
                                rng: &mut self.rng,
                                faults: &mut self.faults,
                                dropped: &mut self.stats.dropped,
                                route: None,
                            };
                            n.on_timer(&mut ctx, key);
                        }
                    }
                }
                _ => unreachable!(),
            }
            match self.queue.pop_if_for(at, id) {
                Some(next) => ev = next,
                None => break,
            }
        }
        if let Some(n) = node {
            self.nodes[id.0] = Some(n);
        }
    }

    /// Runs all events scheduled up to and including `until`, then
    /// advances the clock to `until`.
    ///
    /// Fast path: `pop_le` locates and removes the next due event in
    /// one queue operation, so same-timestamp batches drain without a
    /// peek-then-pop double scan per event. `more_at` keeps the sparse
    /// case — one event per (timestamp, node), the bulk of timer-driven
    /// load — on the plain path: batching only engages when another
    /// same-tick event is actually pending, and consecutive same-tick
    /// events for one node are delivered in a single node borrow
    /// ([`Engine::dispatch_node_batch`]). (Returning the same-tick
    /// hint from the pop itself was tried and measured slower — see
    /// [`EventQueue::pop_le`]'s docs.)
    pub fn run_until(&mut self, until: SimTime) {
        self.start();
        while let Some((at, event)) = self.queue.pop_le(until) {
            match event {
                ev @ (Event::Message { .. } | Event::Timer { .. }) if self.queue.more_at(at) => {
                    self.dispatch_node_batch(at, ev)
                }
                other => self.dispatch(at, other),
            }
        }
        if until > self.now {
            self.now = until;
        }
    }

    /// Runs until no events remain or `max_events` have been processed
    /// (a guard against livelocked protocols). Returns the number of
    /// events processed.
    pub fn run_until_idle(&mut self, max_events: u64) -> u64 {
        self.start();
        let mut n = 0;
        while n < max_events && self.step() {
            n += 1;
        }
        n
    }

    /// Pending event count (diagnostics).
    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

impl<M: Snapshot + 'static> Engine<M> {
    /// Captures the engine's complete dynamic state — clock, RNG
    /// stream position, pending events, link table, fault plane,
    /// trace, counters, and every node's state — as one snapshot
    /// blob.
    ///
    /// `N` is the concrete node type (the engine stores `dyn Node<M>`,
    /// so capture requires a homogeneous node population, which every
    /// harness in this workspace has). Call only between events, never
    /// from inside a dispatch.
    ///
    /// Contract: `run(0→T2)` ≡ `checkpoint(T1)` + `resume(T1→T2)` —
    /// the resumed engine produces byte-identical state, stats, and
    /// fault counters to the uninterrupted run.
    pub fn checkpoint<N: Node<M> + SnapshotState>(&self) -> Result<Vec<u8>, SnapError> {
        let mut enc = snapshot::Enc::with_header(SNAP_KIND_ENGINE);
        enc.u8(ENGINE_MODE_SERIAL);
        enc.u64(self.now.0);
        self.rng.state().encode(&mut enc);
        self.stats.encode(&mut enc);
        enc.bool(self.started);
        self.queue.encode(&mut enc);
        self.links.encode(&mut enc);
        self.faults.encode_state(&mut enc);
        self.trace.encode(&mut enc);
        enc.seq(self.nodes.len());
        for slot in &self.nodes {
            let node = slot
                .as_deref()
                .ok_or(SnapError::Invalid("checkpoint during dispatch"))?;
            let node = (node as &dyn Any)
                .downcast_ref::<N>()
                .ok_or(SnapError::Invalid("node is not the expected type"))?;
            node.encode_state(&mut enc);
        }
        Ok(enc.finish())
    }

    /// Restores the dynamic state captured by [`Engine::checkpoint`]
    /// onto this engine, which must have been rebuilt exactly as at
    /// tick zero (same topology, node count, and construction order).
    ///
    /// The trace (if one was captured) records a `resume @ tick`
    /// marker, so failure reports show the restore boundary.
    pub fn resume<N: Node<M> + SnapshotState>(&mut self, bytes: &[u8]) -> Result<(), SnapError> {
        let mut dec = snapshot::Dec::new(bytes);
        let version = dec.header(SNAP_KIND_ENGINE)?;
        // Format v1 predates the engine-mode byte (all v1 blobs are
        // serial); v2 blobs carry it so a sharded checkpoint cannot be
        // mistaken for a serial one.
        if version >= 2 && dec.u8()? != ENGINE_MODE_SERIAL {
            return Err(SnapError::Invalid(
                "snapshot is from the sharded engine; resume it with `ShardedEngine::resume`",
            ));
        }
        let now = SimTime(dec.u64()?);
        let rng_state = <[u64; 4]>::decode(&mut dec)?;
        let stats = EngineStats::decode(&mut dec)?;
        let started = dec.bool()?;
        let queue = EventQueue::decode(&mut dec)?;
        let links = LinkTable::decode(&mut dec)?;
        self.faults.restore_state(&mut dec)?;
        let mut trace = Option::<Trace>::decode(&mut dec)?;
        let n = dec.seq()?;
        if n != self.nodes.len() {
            return Err(SnapError::Invalid("node count differs from snapshot"));
        }
        for slot in &mut self.nodes {
            let node = slot
                .as_deref_mut()
                .ok_or(SnapError::Invalid("resume during dispatch"))?;
            let node = (node as &mut dyn Any)
                .downcast_mut::<N>()
                .ok_or(SnapError::Invalid("node is not the expected type"))?;
            node.restore_state(&mut dec)?;
        }
        dec.finish()?;
        if let Some(trace) = &mut trace {
            trace.mark_resume(now);
        }
        self.now = now;
        self.rng = StdRng::from_state(rng_state);
        self.stats = stats;
        self.started = started;
        self.queue = queue;
        self.links = links;
        self.trace = trace;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultModel, FaultStats};

    /// A node that counts pings and echoes pongs back.
    struct Echo {
        pings: u32,
    }

    #[derive(Debug, Clone, PartialEq)]
    enum Msg {
        Ping,
        Pong,
    }

    impl Node<Msg> for Echo {
        fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: Msg) {
            if msg == Msg::Ping {
                self.pings += 1;
                if from != NodeId::EXTERNAL {
                    ctx.send(from, Msg::Pong);
                }
            }
        }
    }

    /// A node that pings a peer on start and counts pongs.
    struct Pinger {
        peer: NodeId,
        pongs: u32,
    }

    impl Node<Msg> for Pinger {
        fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
            ctx.send(self.peer, Msg::Ping);
        }
        fn on_message(&mut self, _ctx: &mut Ctx<'_, Msg>, _from: NodeId, msg: Msg) {
            if msg == Msg::Pong {
                self.pongs += 1;
            }
        }
    }

    #[test]
    fn ping_pong_roundtrip_with_latency() {
        let mut eng: Engine<Msg> = Engine::new(1, SimDuration::from_millis(10));
        let echo = eng.add_node(Box::new(Echo { pings: 0 }));
        let pinger = eng.add_node_with(|_id| {
            Box::new(Pinger {
                peer: echo,
                pongs: 0,
            })
        });
        eng.run_until_idle(100);
        assert_eq!(eng.node_as::<Echo>(echo).unwrap().pings, 1);
        assert_eq!(eng.node_as::<Pinger>(pinger).unwrap().pongs, 1);
        // One RTT at 10 ms each way.
        assert_eq!(eng.now(), SimTime(20));
        assert_eq!(eng.stats().delivered, 2);
    }

    #[test]
    fn external_injection() {
        let mut eng: Engine<Msg> = Engine::new(1, SimDuration::from_millis(1));
        let echo = eng.add_node(Box::new(Echo { pings: 0 }));
        eng.schedule_message(SimTime(100), echo, Msg::Ping);
        eng.schedule_message(SimTime(200), echo, Msg::Ping);
        eng.run_until(SimTime(150));
        assert_eq!(eng.node_as::<Echo>(echo).unwrap().pings, 1);
        assert_eq!(eng.now(), SimTime(150));
        eng.run_until(SimTime(300));
        assert_eq!(eng.node_as::<Echo>(echo).unwrap().pings, 2);
    }

    #[test]
    fn partition_drops_messages() {
        let mut eng: Engine<Msg> = Engine::new(1, SimDuration::from_millis(10));
        let echo = eng.add_node(Box::new(Echo { pings: 0 }));
        let pinger = eng.add_node(Box::new(Pinger {
            peer: echo,
            pongs: 0,
        }));
        // Link down before start: the on_start ping is dropped.
        eng.links_mut().set_down(echo, pinger);
        eng.run_until_idle(100);
        assert_eq!(eng.node_as::<Echo>(echo).unwrap().pings, 0);
        assert_eq!(eng.stats().dropped, 1);
    }

    #[test]
    fn scheduled_partition_heals() {
        let mut eng: Engine<Msg> = Engine::new(1, SimDuration::from_millis(10));
        let echo = eng.add_node(Box::new(Echo { pings: 0 }));
        let ext_target = echo;
        eng.schedule_partition(NodeId::EXTERNAL, echo, SimTime(0), SimTime(50))
            .unwrap();
        // External sends bypass links only if the link is up; EXTERNAL
        // delivery is scheduled directly so it always arrives.
        eng.schedule_message(SimTime(10), ext_target, Msg::Ping);
        eng.run_until_idle(10);
        assert_eq!(eng.node_as::<Echo>(echo).unwrap().pings, 1);
        assert!(eng.links().is_up(NodeId::EXTERNAL, echo));
    }

    #[test]
    fn backwards_fault_windows_are_rejected_not_enqueued() {
        let mut eng: Engine<Msg> = Engine::new(1, SimDuration::from_millis(10));
        let echo = eng.add_node(Box::new(Echo { pings: 0 }));
        let err = eng
            .schedule_partition(NodeId::EXTERNAL, echo, SimTime(100), SimTime(50))
            .unwrap_err();
        assert_eq!(
            err.to_string(),
            "backwards fault window: recovery at 50 precedes failure at 100"
        );
        assert!(matches!(
            eng.schedule_crash(echo, SimTime(9), SimTime(8)),
            Err(ScheduleError::BackwardsWindow {
                at: SimTime(9),
                until: SimTime(8),
            })
        ));
        // Nothing was enqueued: the link never goes down, the node
        // never crashes, and no stray Up/Down events run.
        assert_eq!(eng.pending(), 0);
        eng.run_until_idle(10);
        assert!(eng.links().is_up(NodeId::EXTERNAL, echo));
        assert_eq!(eng.faults().stats().crashes, 0);
        assert_eq!(eng.stats().events, 0);
        // Zero-length windows (at == until) remain legal.
        eng.schedule_crash(echo, SimTime(5), SimTime(5)).unwrap();
        eng.run_until_idle(10);
        assert_eq!(eng.faults().stats().crashes, 1);
        assert_eq!(eng.faults().stats().restarts, 1);
    }

    /// Timers fire in order and deterministically.
    struct TimerNode {
        fired: Vec<u64>,
    }
    impl Node<Msg> for TimerNode {
        fn on_message(&mut self, _: &mut Ctx<'_, Msg>, _: NodeId, _: Msg) {}
        fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
            ctx.set_timer(SimDuration::from_millis(30), 3);
            ctx.set_timer(SimDuration::from_millis(10), 1);
            ctx.set_timer(SimDuration::from_millis(20), 2);
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<'_, Msg>, key: u64) {
            self.fired.push(key);
        }
    }

    #[test]
    fn timers_fire_in_order() {
        let mut eng: Engine<Msg> = Engine::new(1, SimDuration::from_millis(1));
        let n = eng.add_node(Box::new(TimerNode { fired: vec![] }));
        eng.run_until_idle(10);
        assert_eq!(eng.node_as::<TimerNode>(n).unwrap().fired, vec![1, 2, 3]);
        assert_eq!(eng.stats().timers, 3);
    }

    #[test]
    fn crash_blackholes_messages_and_restart_hook_runs() {
        /// Counts restarts and re-arms a timer from `on_restart`.
        struct Phoenix {
            restarts: u32,
            late_timers: u32,
        }
        impl Node<Msg> for Phoenix {
            fn on_message(&mut self, _: &mut Ctx<'_, Msg>, _: NodeId, _: Msg) {}
            fn on_restart(&mut self, ctx: &mut Ctx<'_, Msg>) {
                self.restarts += 1;
                ctx.set_timer(SimDuration::from_millis(5), 7);
            }
            fn on_timer(&mut self, _: &mut Ctx<'_, Msg>, key: u64) {
                if key == 7 {
                    self.late_timers += 1;
                }
            }
        }
        let mut eng: Engine<Msg> = Engine::new(1, SimDuration::from_millis(1));
        let echo = eng.add_node(Box::new(Echo { pings: 0 }));
        let ph = eng.add_node(Box::new(Phoenix {
            restarts: 0,
            late_timers: 0,
        }));
        eng.schedule_crash(echo, SimTime(10), SimTime(50)).unwrap();
        eng.schedule_crash(ph, SimTime(10), SimTime(60)).unwrap();
        // Pings during the outage are blackholed; afterwards delivered.
        eng.schedule_message(SimTime(20), echo, Msg::Ping);
        eng.schedule_message(SimTime(49), echo, Msg::Ping);
        eng.schedule_message(SimTime(55), echo, Msg::Ping);
        eng.run_until_idle(100);
        assert_eq!(eng.node_as::<Echo>(echo).unwrap().pings, 1);
        let ph = eng.node_as::<Phoenix>(ph).unwrap();
        assert_eq!(ph.restarts, 1);
        assert_eq!(ph.late_timers, 1);
        let fs = eng.faults().stats();
        assert_eq!(fs.crashes, 2);
        assert_eq!(fs.restarts, 2);
        assert_eq!(fs.dropped_at_down_node, 2);
    }

    #[test]
    fn loss_and_duplication_are_seed_deterministic() {
        fn run(seed: u64, loss: f64, dup: f64) -> (u32, FaultStats) {
            let mut eng: Engine<Msg> = Engine::new(seed, SimDuration::from_millis(1));
            let echo = eng.add_node(Box::new(Echo { pings: 0 }));
            let src = eng.add_node(Box::new(Pinger {
                peer: echo,
                pongs: 0,
            }));
            eng.faults_mut().set_link_model(
                src,
                echo,
                FaultModel {
                    loss,
                    dup,
                    jitter_ms: 3,
                },
            );
            for i in 0..200 {
                eng.schedule_message_from(SimTime(i), src, echo, Msg::Ping);
            }
            eng.run_until_idle(10_000);
            (
                eng.node_as::<Echo>(echo).unwrap().pings,
                eng.faults().stats(),
            )
        }
        // Externally scheduled pings bypass Ctx::send; the faults fire
        // on the echoed Pongs, which cross the modelled link.
        let (pings_a, stats_a) = run(9, 0.3, 0.2);
        let (pings_b, stats_b) = run(9, 0.3, 0.2);
        assert_eq!(pings_a, pings_b);
        assert_eq!(stats_a.lost, stats_b.lost);
        assert_eq!(stats_a.duplicated, stats_b.duplicated);
        // The echo's Pongs travel src←echo over the modelled link too;
        // with 200 pings at 30% loss some faults must have fired.
        assert!(stats_a.lost > 0);
        assert!(stats_a.duplicated > 0);
        // A different seed gives a different trace (overwhelmingly).
        let (_, stats_c) = run(10, 0.3, 0.2);
        assert!(stats_c.lost != stats_a.lost || stats_c.duplicated != stats_a.duplicated);
    }

    #[test]
    fn inert_fault_plane_changes_nothing() {
        fn run(configure: bool) -> (u64, SimTime) {
            let mut eng: Engine<Msg> = Engine::new(3, SimDuration::from_millis(7));
            let echo = eng.add_node(Box::new(Echo { pings: 0 }));
            let _p = eng.add_node(Box::new(Pinger {
                peer: echo,
                pongs: 0,
            }));
            if configure {
                // A NONE model on some other link must not perturb the
                // RNG stream or the schedule.
                eng.faults_mut()
                    .set_link_model(NodeId(7), NodeId(8), FaultModel::NONE);
            }
            eng.run_until_idle(1000);
            (eng.stats().events, eng.now())
        }
        assert_eq!(run(false), run(true));
    }

    impl Snapshot for Msg {
        fn encode(&self, enc: &mut snapshot::Enc) {
            enc.u8(match self {
                Msg::Ping => 0,
                Msg::Pong => 1,
            });
        }
        fn decode(dec: &mut snapshot::Dec<'_>) -> Result<Self, SnapError> {
            match dec.u8()? {
                0 => Ok(Msg::Ping),
                1 => Ok(Msg::Pong),
                _ => Err(SnapError::Invalid("Msg tag")),
            }
        }
    }

    impl SnapshotState for Echo {
        fn encode_state(&self, enc: &mut snapshot::Enc) {
            enc.u32(self.pings);
        }
        fn restore_state(&mut self, dec: &mut snapshot::Dec<'_>) -> Result<(), SnapError> {
            self.pings = dec.u32()?;
            Ok(())
        }
    }

    /// Builds the lossy echo rig used by the resume-equivalence test.
    fn lossy_echo_rig() -> (Engine<Msg>, NodeId) {
        let mut eng: Engine<Msg> = Engine::new(11, SimDuration::from_millis(3));
        let echo = eng.add_node(Box::new(Echo { pings: 0 }));
        let peer = eng.add_node(Box::new(Echo { pings: 0 }));
        eng.faults_mut().set_link_model(
            peer,
            echo,
            FaultModel {
                loss: 0.25,
                dup: 0.15,
                jitter_ms: 4,
            },
        );
        for i in 0..300 {
            eng.schedule_message_from(SimTime(i * 2), peer, echo, Msg::Ping);
        }
        (eng, echo)
    }

    #[test]
    fn checkpoint_resume_equals_uninterrupted_run() {
        // Uninterrupted run to T2.
        let (mut mono, echo) = lossy_echo_rig();
        mono.run_until(SimTime(200));
        let t1_blob = {
            // Checkpoint a *separate* engine at T1, then resume it.
            let (mut eng, _) = lossy_echo_rig();
            eng.run_until(SimTime(90));
            eng.checkpoint::<Echo>().unwrap()
        };
        mono.run_until(SimTime(600));

        let (mut resumed, echo2) = lossy_echo_rig();
        resumed.resume::<Echo>(&t1_blob).unwrap();
        assert_eq!(resumed.now(), SimTime(90));
        resumed.run_until(SimTime(200));
        resumed.run_until(SimTime(600));

        assert_eq!(
            resumed.node_as::<Echo>(echo2).unwrap().pings,
            mono.node_as::<Echo>(echo).unwrap().pings
        );
        let (a, b) = (mono.stats(), resumed.stats());
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.events, b.events);
        let (fa, fb) = (mono.faults().stats(), resumed.faults().stats());
        assert_eq!(fa.lost, fb.lost);
        assert_eq!(fa.duplicated, fb.duplicated);
        assert_eq!(fa.jittered, fb.jittered);
        assert_eq!(mono.pending(), resumed.pending());
        assert_eq!(mono.now(), resumed.now());
        // The fault model actually fired, so the equality is earned.
        assert!(fa.lost > 0 && fa.duplicated > 0);
    }

    #[test]
    fn resume_marks_trace_and_preserves_total() {
        let (mut eng, _) = lossy_echo_rig();
        eng.enable_trace(16);
        eng.run_until(SimTime(120));
        let total_at_t1 = eng.trace().unwrap().total();
        assert!(total_at_t1 > 16, "trace should have evicted lines");
        let blob = eng.checkpoint::<Echo>().unwrap();

        let (mut resumed, _) = lossy_echo_rig();
        resumed.resume::<Echo>(&blob).unwrap();
        let tr = resumed.trace().unwrap();
        // total() survives (plus exactly the resume marker line)...
        assert_eq!(tr.total(), total_at_t1 + 1);
        // ...and the marker is the newest retained line.
        let last = tr.lines().last().unwrap();
        assert_eq!(last.1, "resume @ 120");
    }

    #[test]
    fn resume_rejects_corrupt_and_mismatched_snapshots() {
        let (eng, _) = lossy_echo_rig();
        let blob = eng.checkpoint::<Echo>().unwrap();

        // Truncations error out, never panic.
        for cut in [0, 4, 7, blob.len() / 2, blob.len() - 1] {
            let (mut fresh, _) = lossy_echo_rig();
            assert!(fresh.resume::<Echo>(&blob[..cut]).is_err());
        }
        // A smaller topology refuses the blob.
        let mut tiny: Engine<Msg> = Engine::new(11, SimDuration::from_millis(3));
        tiny.add_node(Box::new(Echo { pings: 0 }));
        assert!(tiny.resume::<Echo>(&blob).is_err());
        // Wrong node type refuses too.
        let mut wrong: Engine<Msg> = Engine::new(11, SimDuration::from_millis(3));
        wrong.add_node(Box::new(TimerNode { fired: vec![] }));
        wrong.add_node(Box::new(TimerNode { fired: vec![] }));
        assert!(wrong.resume::<Echo>(&blob).is_err());
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        fn run(seed: u64) -> (u64, SimTime) {
            let mut eng: Engine<Msg> = Engine::new(seed, SimDuration::from_millis(7));
            let echo = eng.add_node(Box::new(Echo { pings: 0 }));
            for i in 0..50 {
                eng.schedule_message(SimTime(i * 13), echo, Msg::Ping);
            }
            eng.run_until_idle(1000);
            (eng.stats().events, eng.now())
        }
        assert_eq!(run(42), run(42));
    }
}
