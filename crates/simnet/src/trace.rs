//! Bounded event tracing for simulation debugging.
//!
//! A [`Trace`] is a fixed-capacity ring of human-readable event lines.
//! Actors and harnesses push lines as they process events; when a test
//! fails, dumping the trace shows the last N things that happened
//! without paying for unbounded logging on the happy path.

use std::collections::VecDeque;

use crate::time::SimTime;

/// A bounded ring buffer of timestamped trace lines.
#[derive(Debug, Clone)]
pub struct Trace {
    cap: usize,
    ring: VecDeque<(SimTime, String)>,
    /// Total lines ever pushed (including evicted ones).
    pushed: u64,
}

impl Trace {
    /// Creates a trace retaining at most `cap` lines.
    pub fn new(cap: usize) -> Self {
        Trace {
            cap: cap.max(1),
            ring: VecDeque::with_capacity(cap.max(1)),
            pushed: 0,
        }
    }

    /// Appends a line, evicting the oldest when full.
    pub fn push(&mut self, at: SimTime, line: impl Into<String>) {
        if self.ring.len() == self.cap {
            self.ring.pop_front();
        }
        self.ring.push_back((at, line.into()));
        self.pushed += 1;
    }

    /// Lines currently retained, oldest first.
    pub fn lines(&self) -> impl Iterator<Item = (SimTime, &str)> {
        self.ring.iter().map(|(t, s)| (*t, s.as_str()))
    }

    /// Total lines ever pushed.
    pub fn total(&self) -> u64 {
        self.pushed
    }

    /// Lines currently retained.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Records the checkpoint/resume boundary, so a dumped window
    /// makes clear which lines predate the restore.
    pub fn mark_resume(&mut self, at: SimTime) {
        self.push(at, format!("resume @ {}", at.0));
    }

    /// Renders the retained lines for a failure report.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        if self.pushed as usize > self.ring.len() {
            out.push_str(&format!(
                "... {} earlier lines evicted ...\n",
                self.pushed as usize - self.ring.len()
            ));
        }
        for (t, line) in self.lines() {
            out.push_str(&format!("[{t}] {line}\n"));
        }
        out
    }
}

impl snapshot::Snapshot for Trace {
    /// Captures the full ring *and* the lifetime counter: a restored
    /// trace reports the same [`Trace::total`] as the uninterrupted
    /// run instead of silently resetting to the window length.
    fn encode(&self, enc: &mut snapshot::Enc) {
        enc.usize(self.cap);
        enc.u64(self.pushed);
        enc.seq(self.ring.len());
        for (t, line) in &self.ring {
            t.encode(enc);
            enc.str(line);
        }
    }

    fn decode(dec: &mut snapshot::Dec<'_>) -> Result<Self, snapshot::SnapError> {
        let cap = dec.usize()?.max(1);
        let pushed = dec.u64()?;
        let n = dec.seq()?;
        if n > cap {
            return Err(snapshot::SnapError::Invalid("trace ring exceeds cap"));
        }
        let mut ring = VecDeque::with_capacity(cap);
        for _ in 0..n {
            let t = SimTime::decode(dec)?;
            let line = dec.str()?;
            ring.push_back((t, line));
        }
        Ok(Trace { cap, ring, pushed })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest() {
        let mut t = Trace::new(3);
        for i in 0..5 {
            t.push(SimTime(i), format!("e{i}"));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.total(), 5);
        let lines: Vec<String> = t.lines().map(|(_, s)| s.to_string()).collect();
        assert_eq!(lines, vec!["e2", "e3", "e4"]);
        let dump = t.dump();
        assert!(dump.contains("2 earlier lines evicted"));
        assert!(dump.contains("e4"));
    }

    #[test]
    fn zero_cap_clamps_to_one() {
        let mut t = Trace::new(0);
        t.push(SimTime(1), "a");
        t.push(SimTime(2), "b");
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }
}
