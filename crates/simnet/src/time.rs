//! Virtual time for the discrete-event simulator.
//!
//! The base unit is the **millisecond**: fine enough for control-message
//! latencies, wide enough that the paper's 800-day MASC run (≈ 6.9×10¹⁰
//! ms) fits comfortably in a `u64`.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant in simulated time (milliseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time (milliseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);

    /// Milliseconds since simulation start.
    pub fn as_millis(self) -> u64 {
        self.0
    }

    /// Whole seconds since simulation start.
    pub fn as_secs(self) -> u64 {
        self.0 / 1000
    }

    /// Fractional days since simulation start (for plotting).
    pub fn as_days_f64(self) -> f64 {
        self.0 as f64 / 86_400_000.0
    }

    /// Saturating difference.
    pub fn saturating_sub(self, other: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// A span of milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms)
    }

    /// A span of seconds.
    pub fn from_secs(s: u64) -> Self {
        SimDuration(s * 1000)
    }

    /// A span of minutes.
    pub fn from_mins(m: u64) -> Self {
        SimDuration(m * 60_000)
    }

    /// A span of hours.
    pub fn from_hours(h: u64) -> Self {
        SimDuration(h * 3_600_000)
    }

    /// A span of days.
    pub fn from_days(d: u64) -> Self {
        SimDuration(d * 86_400_000)
    }

    /// Milliseconds in the span.
    pub fn as_millis(self) -> u64 {
        self.0
    }

    /// Whole seconds in the span.
    pub fn as_secs(self) -> u64 {
        self.0 / 1000
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, other: SimTime) -> SimDuration {
        SimDuration(self.0 - other.0)
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0 + d.0)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}ms", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total_secs = self.0 / 1000;
        let d = total_secs / 86_400;
        let h = (total_secs % 86_400) / 3600;
        let m = (total_secs % 3600) / 60;
        let s = total_secs % 60;
        write!(f, "{d}d {h:02}:{m:02}:{s:02}")
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ms", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_secs(5);
        assert_eq!(t.as_millis(), 5000);
        assert_eq!((t + SimDuration::from_millis(500)).as_secs(), 5);
        assert_eq!((t - SimTime(2000)).as_millis(), 3000);
        assert_eq!(t.saturating_sub(SimTime(10_000)), SimDuration::ZERO);
    }

    #[test]
    fn unit_constructors() {
        assert_eq!(SimDuration::from_days(1).as_millis(), 86_400_000);
        assert_eq!(SimDuration::from_hours(2).as_secs(), 7200);
        assert_eq!(SimDuration::from_mins(3).as_secs(), 180);
        assert_eq!(SimDuration::from_hours(48), SimDuration::from_days(2));
    }

    #[test]
    fn display_format() {
        let t = SimTime::ZERO + SimDuration::from_days(2) + SimDuration::from_hours(3);
        assert_eq!(t.to_string(), "2d 03:00:00");
    }

    #[test]
    fn days_f64() {
        let t = SimTime::ZERO + SimDuration::from_hours(36);
        assert!((t.as_days_f64() - 1.5).abs() < 1e-12);
    }
}
