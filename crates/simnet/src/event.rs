//! The time-ordered event queue.
//!
//! Ties on time are broken by insertion sequence number, which makes
//! execution order — and therefore every simulation result — fully
//! deterministic for a given seed and workload.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::node::NodeId;
use crate::time::SimTime;

/// A scheduled occurrence.
#[derive(Debug)]
pub enum Event<M> {
    /// Deliver `msg` from `from` to `to`.
    Message {
        /// Sender (may be [`NodeId::EXTERNAL`]).
        from: NodeId,
        /// Recipient.
        to: NodeId,
        /// Payload.
        msg: M,
    },
    /// Fire timer `key` on `node`.
    Timer {
        /// The node whose timer fires.
        node: NodeId,
        /// Caller-chosen timer key.
        key: u64,
    },
    /// Bring the link between the two nodes down.
    LinkDown(NodeId, NodeId),
    /// Bring the link between the two nodes back up.
    LinkUp(NodeId, NodeId),
}

struct Entry<M> {
    at: SimTime,
    seq: u64,
    event: Event<M>,
}

impl<M> PartialEq for Entry<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Entry<M> {}
impl<M> PartialOrd for Entry<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Entry<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Priority queue of pending events.
pub struct EventQueue<M> {
    heap: BinaryHeap<Entry<M>>,
    seq: u64,
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> EventQueue<M> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules an arbitrary event at `at`.
    pub fn push(&mut self, at: SimTime, event: Event<M>) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Schedules a message delivery.
    pub fn push_message(&mut self, at: SimTime, from: NodeId, to: NodeId, msg: M) {
        self.push(at, Event::Message { from, to, msg });
    }

    /// Schedules a timer firing.
    pub fn push_timer(&mut self, at: SimTime, node: NodeId, key: u64) {
        self.push(at, Event::Timer { node, key });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, Event<M>)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.push_message(SimTime(30), NodeId(0), NodeId(1), 3);
        q.push_message(SimTime(10), NodeId(0), NodeId(1), 1);
        q.push_message(SimTime(20), NodeId(0), NodeId(1), 2);
        let mut got = Vec::new();
        while let Some((t, Event::Message { msg, .. })) = q.pop() {
            got.push((t.0, msg));
        }
        assert_eq!(got, vec![(10, 1), (20, 2), (30, 3)]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q: EventQueue<u32> = EventQueue::new();
        for i in 0..10 {
            q.push_message(SimTime(5), NodeId(0), NodeId(1), i);
        }
        let mut got = Vec::new();
        while let Some((_, Event::Message { msg, .. })) = q.pop() {
            got.push(msg);
        }
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_len() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push_timer(SimTime(7), NodeId(0), 1);
        q.push_timer(SimTime(3), NodeId(0), 2);
        assert_eq!(q.peek_time(), Some(SimTime(3)));
        assert_eq!(q.len(), 2);
    }
}
