//! The time-ordered event queue.
//!
//! Ties on time are broken by insertion sequence number, which makes
//! execution order — and therefore every simulation result — fully
//! deterministic for a given seed and workload.
//!
//! # Structure
//!
//! MASC workloads mix two very different time scales: dense
//! millisecond-latency protocol messages around the current instant,
//! and standing far-future timers (48 h waiting periods, 30-day lease
//! lifetimes, hour-scale retry jitter). A single [`BinaryHeap`] makes
//! every near-term message pay `O(log n)` sift costs against the
//! standing timer population, so [`EventQueue`] is a two-tier
//! scheduler instead:
//!
//! * a **near-horizon wheel**: one FIFO bucket per millisecond for the
//!   [`WHEEL_SPAN`] ms starting at the earliest pending event, with a
//!   bitmap for constant-time next-bucket scans — near-term traffic is
//!   O(1) to push and pop. Buckets are intrusive singly-linked lists
//!   over one slab of slots, so steady-state operation performs no
//!   allocation at all;
//! * an **overflow map** (`BTreeMap<(time, rank, seq), event>`) for
//!   everything past the wheel horizon — keying by `(time, rank, seq)`
//!   keeps same-time order in plain map order; when the wheel drains,
//!   it re-anchors at the earliest overflow time and the next window
//!   of events moves over in one batch.
//!
//! Because a given timestamp always maps to exactly one tier between
//! re-anchors, and both tiers keep per-timestamp FIFOs in key order,
//! the (time, rank, sequence) pop order is *identical* to the
//! original heap's — property-tested against [`BinaryHeapQueue`] in
//! `tests/prop_event.rs`.
//!
//! # Ordering keys and sharding
//!
//! [`EventQueue::push`] assigns rank 0 and a queue-local monotone
//! sequence — plain insertion-order FIFO, exactly the historical
//! behaviour (and an O(1) bucket append, since keys only grow).
//! [`EventQueue::push_keyed`] lets the caller supply the full
//! `(rank, seq)` key; the sharded engine uses it with
//! shard-layout-invariant keys (rank = source node id + 1, seq = the
//! source's emit counter) so that per-shard queues pop the *same*
//! global order no matter how nodes are partitioned.

use std::collections::{BTreeMap, BinaryHeap};

use crate::node::NodeId;
use crate::time::SimTime;

/// A scheduled occurrence.
#[derive(Debug)]
pub enum Event<M> {
    /// Deliver `msg` from `from` to `to`.
    Message {
        /// Sender (may be [`NodeId::EXTERNAL`]).
        from: NodeId,
        /// Recipient.
        to: NodeId,
        /// Payload.
        msg: M,
    },
    /// Fire timer `key` on `node`.
    Timer {
        /// The node whose timer fires.
        node: NodeId,
        /// Caller-chosen timer key.
        key: u64,
    },
    /// Bring the link between the two nodes down.
    LinkDown(NodeId, NodeId),
    /// Bring the link between the two nodes back up.
    LinkUp(NodeId, NodeId),
    /// Crash the node (fail-stop: messages blackholed, timers
    /// suppressed until the matching [`Event::NodeUp`]).
    NodeDown(NodeId),
    /// Restart the node (its `on_restart` hook runs).
    NodeUp(NodeId),
}

/// Width of the near-horizon wheel in milliseconds (one bucket each).
pub const WHEEL_SPAN: u64 = 16_384;
const OCC_WORDS: usize = (WHEEL_SPAN as usize) / 64;

/// Sentinel for "no slot" in the wheel's intrusive lists.
const NIL: u32 = u32::MAX;

/// One slab entry: an event threaded into its bucket's FIFO list.
struct Slot<M> {
    /// Next slot in the same bucket (or the slot free list); [`NIL`]
    /// terminates.
    next: u32,
    /// Major tie-break (0 for plain pushes; source-derived for keyed
    /// pushes — see the module docs).
    rank: u64,
    /// Minor tie-break: insertion sequence within the rank.
    seq: u64,
    /// The event; `None` once popped (slot is then on the free list).
    ev: Option<Event<M>>,
}

/// Priority queue of pending events: near-horizon bucket wheel plus a
/// far-future overflow map. See the module docs for the design.
// The queue's Snapshot impl serializes the logical content (pending
// events in (time, seq) order) and replays it into a fresh queue, so
// every structural field below is rebuilt by push() on decode rather
// than serialized — hence the per-field coverage exemptions.
pub struct EventQueue<M> {
    /// Slot arena; bucket lists and the free list index into it.
    // lint:allow(snapshot-field-coverage) — wheel structure; rebuilt by replaying events on decode
    slots: Vec<Slot<M>>,
    /// Head of the free-slot list ([`NIL`] when exhausted).
    // lint:allow(snapshot-field-coverage) — wheel structure; rebuilt by replaying events on decode
    free: u32,
    /// Per-millisecond bucket list heads over
    /// `[wheel_start, wheel_start + WHEEL_SPAN)`; [`NIL`] = empty.
    // lint:allow(snapshot-field-coverage) — wheel structure; rebuilt by replaying events on decode
    head: Vec<u32>,
    /// Per-bucket list tails (valid only when the head is not [`NIL`]).
    // lint:allow(snapshot-field-coverage) — wheel structure; rebuilt by replaying events on decode
    tail: Vec<u32>,
    /// Occupancy bitmap over buckets (bit set ⇔ bucket non-empty).
    // lint:allow(snapshot-field-coverage) — wheel structure; rebuilt by replaying events on decode
    occ: [u64; OCC_WORDS],
    /// Absolute time (ms) of bucket 0.
    // lint:allow(snapshot-field-coverage) — wheel structure; rebuilt by replaying events on decode
    wheel_start: u64,
    /// No non-empty bucket lies below this index.
    // lint:allow(snapshot-field-coverage) — wheel structure; rebuilt by replaying events on decode
    cursor: usize,
    /// Events currently in the wheel.
    // lint:allow(snapshot-field-coverage) — wheel structure; rebuilt by replaying events on decode
    wheel_len: usize,
    /// Far-future (or, defensively, past-of-window) events. Keying by
    /// `(time, rank, seq)` gives same-time order by plain map order
    /// with no per-timestamp container.
    // lint:allow(snapshot-field-coverage) — wheel structure; rebuilt by replaying events on decode
    overflow: BTreeMap<(u64, u64, u64), Event<M>>,
    /// Cached time of the overflow head (`u64::MAX` when empty), so
    /// the pop fast path costs one compare instead of a tree descent.
    // lint:allow(snapshot-field-coverage) — wheel structure; rebuilt by replaying events on decode
    overflow_min: u64,
    seq: u64,
    /// True once [`EventQueue::push_keyed`] has run: bucket FIFOs may
    /// then hold non-zero ranks, so plain pushes must key-compare
    /// against the tail. While false (every serial-engine queue), a
    /// plain push is the historical unconditional tail append.
    // lint:allow(snapshot-field-coverage) — wheel structure; rebuilt by replaying events on decode
    keyed: bool,
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> EventQueue<M> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            slots: Vec::new(),
            free: NIL,
            head: vec![NIL; WHEEL_SPAN as usize],
            tail: vec![NIL; WHEEL_SPAN as usize],
            occ: [0; OCC_WORDS],
            wheel_start: 0,
            cursor: 0,
            wheel_len: 0,
            overflow: BTreeMap::new(),
            overflow_min: u64::MAX,
            seq: 0,
            keyed: false,
        }
    }

    /// Takes a slot from the free list (or grows the slab) and fills it.
    #[inline]
    fn alloc_slot(&mut self, rank: u64, seq: u64, ev: Event<M>) -> u32 {
        if self.free != NIL {
            let i = self.free;
            let s = &mut self.slots[i as usize];
            self.free = s.next;
            s.next = NIL;
            s.rank = rank;
            s.seq = seq;
            s.ev = Some(ev);
            i
        } else {
            self.slots.push(Slot {
                next: NIL,
                rank,
                seq,
                ev: Some(ev),
            });
            (self.slots.len() - 1) as u32
        }
    }

    /// Inserts into bucket `idx`'s list, keeping it sorted by
    /// `(rank, seq)`. Plain pushes (rank 0, monotone seq) always land
    /// on the tail, so the historical FIFO path stays an O(1) append;
    /// only keyed pushes arriving out of key order pay the (outlined,
    /// cold) list walk — keeping this body small enough to inline into
    /// the engine's push path, which the wheel microbench notices.
    #[inline]
    fn bucket_push(&mut self, idx: usize, rank: u64, seq: u64, ev: Event<M>) {
        let i = self.alloc_slot(rank, seq, ev);
        if self.head[idx] == NIL {
            self.head[idx] = i;
            self.tail[idx] = i;
            self.occ[idx >> 6] |= 1 << (idx & 63);
        } else {
            let t = self.tail[idx] as usize;
            // A never-keyed queue (every serial engine) is pure
            // insertion-order FIFO: skip the tail key load entirely.
            if !self.keyed || (self.slots[t].rank, self.slots[t].seq) <= (rank, seq) {
                self.slots[t].next = i;
                self.tail[idx] = i;
            } else {
                self.bucket_insert_sorted(idx, i, rank, seq);
            }
        }
        self.wheel_len += 1;
        if idx < self.cursor {
            // Scheduling below the scan cursor (into the window's
            // past) — only possible from misuse the engine's
            // debug_asserts catch, but stay well-ordered anyway.
            self.cursor = idx;
        }
    }

    /// Sorted insert for an out-of-key-order keyed push: the new slot
    /// lands strictly before some existing slot, so the tail is
    /// unchanged. Outlined and cold — the sharded engine's barrier
    /// delivery pre-sorts its mail, so in practice this only runs for
    /// adversarial push orders (the property tests).
    #[cold]
    fn bucket_insert_sorted(&mut self, idx: usize, i: u32, rank: u64, seq: u64) {
        let mut prev = NIL;
        let mut cur = self.head[idx];
        while cur != NIL {
            let s = &self.slots[cur as usize];
            if (s.rank, s.seq) > (rank, seq) {
                break;
            }
            prev = cur;
            cur = s.next;
        }
        self.slots[i as usize].next = cur;
        if prev == NIL {
            self.head[idx] = i;
        } else {
            self.slots[prev as usize].next = i;
        }
    }

    /// Pops the front of (non-empty) bucket `idx`, recycling its slot.
    #[inline]
    fn bucket_pop(&mut self, idx: usize) -> Event<M> {
        let i = self.head[idx];
        let s = &mut self.slots[i as usize];
        let ev = s.ev.take().expect("occupied slot");
        self.head[idx] = s.next;
        s.next = self.free;
        self.free = i;
        if self.head[idx] == NIL {
            self.occ[idx >> 6] &= !(1 << (idx & 63));
        }
        self.wheel_len -= 1;
        ev
    }

    /// Schedules an arbitrary event at `at` (rank 0, insertion-order
    /// FIFO — the historical single-stream behaviour).
    #[inline]
    pub fn push(&mut self, at: SimTime, event: Event<M>) {
        let seq = self.seq;
        self.seq += 1;
        self.push_inner(at, 0, seq, event);
    }

    /// Schedules an event at `at` under an explicit `(rank, seq)`
    /// tie-break key. Same-time events pop in `(rank, seq)` order
    /// regardless of push order, which is what lets the sharded
    /// engine keep one global order across any partitioning: callers
    /// must guarantee `(rank, seq)` pairs are unique per timestamp
    /// (the sharded engine derives them from the source node and its
    /// emit counter). Marks the queue keyed for good: plain pushes
    /// then key-compare against bucket tails instead of appending.
    #[inline]
    pub fn push_keyed(&mut self, at: SimTime, rank: u64, seq: u64, event: Event<M>) {
        self.keyed = true;
        self.push_inner(at, rank, seq, event);
    }

    #[inline]
    fn push_inner(&mut self, at: SimTime, rank: u64, seq: u64, event: Event<M>) {
        let t = at.0;
        if t >= self.wheel_start && t - self.wheel_start < WHEEL_SPAN {
            self.bucket_push((t - self.wheel_start) as usize, rank, seq, event);
        } else {
            self.overflow.insert((t, rank, seq), event);
            if t < self.overflow_min {
                self.overflow_min = t;
            }
        }
    }

    /// Schedules a message delivery.
    pub fn push_message(&mut self, at: SimTime, from: NodeId, to: NodeId, msg: M) {
        self.push(at, Event::Message { from, to, msg });
    }

    /// Schedules a timer firing.
    pub fn push_timer(&mut self, at: SimTime, node: NodeId, key: u64) {
        self.push(at, Event::Timer { node, key });
    }

    /// First non-empty bucket at or above the cursor, if any.
    #[inline]
    fn first_bucket(&self) -> Option<usize> {
        let mut w = self.cursor >> 6;
        if w >= OCC_WORDS {
            return None;
        }
        let mut word = self.occ[w] & (!0u64 << (self.cursor & 63));
        loop {
            if word != 0 {
                return Some((w << 6) + word.trailing_zeros() as usize);
            }
            w += 1;
            if w >= OCC_WORDS {
                return None;
            }
            word = self.occ[w];
        }
    }

    /// Re-anchors the (empty) wheel at the earliest overflow time and
    /// moves the next window of overflow events into it. Map order is
    /// `(time, rank, seq)`, so same-time events land in their bucket
    /// FIFO already in key order (each move is the O(1) append path).
    fn refill(&mut self) {
        debug_assert_eq!(self.wheel_len, 0);
        if self.overflow_min == u64::MAX {
            return;
        }
        let start = self.overflow_min;
        self.wheel_start = start;
        self.cursor = 0;
        while let Some((&(t, _, _), _)) = self.overflow.first_key_value() {
            if t - start >= WHEEL_SPAN {
                self.overflow_min = t;
                return;
            }
            let ((_, rank, seq), ev) = self.overflow.pop_first().expect("checked non-empty");
            self.bucket_push((t - start) as usize, rank, seq, ev);
        }
        self.overflow_min = u64::MAX;
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, Event<M>)> {
        self.pop_le(SimTime(u64::MAX))
    }

    /// Removes and returns the earliest event if its time is `<= until`
    /// — one bucket scan, no separate peek. This is the engine's
    /// `run_until` fast path: while draining a same-timestamp batch the
    /// cursor already rests on the hot bucket, so each pop is O(1).
    ///
    /// A widened variant returning a same-tick hint as a third tuple
    /// element was tried and *measured slower* than this pop plus a
    /// separate [`EventQueue::more_at`] probe: the three-element
    /// `Option` return defeated the optimizer at every call-site shape
    /// (interleaved wheel-microbench A/B, ~48 vs ~37 M ev/s), even
    /// though the hint itself was free to compute. Keep the narrow
    /// return type.
    #[inline]
    pub fn pop_le(&mut self, until: SimTime) -> Option<(SimTime, Event<M>)> {
        if self.wheel_len == 0 {
            if self.overflow_min == u64::MAX || self.overflow_min > until.0 {
                return None;
            }
            self.refill();
        }
        let idx = self.first_bucket().expect("wheel_len > 0");
        let wheel_t = self.wheel_start + idx as u64;
        // An event can sit in overflow *below* the window only after a
        // past-of-window push (see `push`); honour it first.
        if self.overflow_min < wheel_t {
            let t = self.overflow_min;
            if t > until.0 {
                return None;
            }
            let (_, ev) = self.overflow.pop_first().expect("overflow_min is live");
            self.overflow_min = match self.overflow.first_key_value() {
                Some((&(t2, _, _), _)) => t2,
                None => u64::MAX,
            };
            return Some((SimTime(t), ev));
        }
        if wheel_t > until.0 {
            return None;
        }
        self.cursor = idx;
        Some((SimTime(wheel_t), self.bucket_pop(idx)))
    }

    /// Pops the earliest event only when it is due at exactly `t` and
    /// is delivered to `node` (a message to it or one of its timers).
    /// Returns `None` — popping nothing — in every other case. This is
    /// the engine's same-tick batching probe: after dispatching an
    /// event to a node, the engine drains the contiguous run of
    /// same-timestamp events for that same node in one node borrow.
    /// Only the global head is ever taken, so pop order is identical
    /// to repeated [`EventQueue::pop`].
    ///
    /// The probe must cost O(1) on a miss — it runs once per
    /// dispatched event — so it never scans the occupancy bitmap.
    /// While `t` is inside the window, every same-time event sits in
    /// bucket `t - wheel_start` (one tier per timestamp), so a
    /// drained bucket ends the batch immediately. The remaining
    /// guards refuse to batch in states where bucket-head ≠ global
    /// head: the cursor resting elsewhere (a past-of-window push
    /// moved it) or an overflow stray at or below `t`. Refusing is
    /// always sound — the engine just falls back to `pop_le`.
    #[inline]
    pub fn pop_if_for(&mut self, t: SimTime, node: NodeId) -> Option<Event<M>> {
        let off = t.0.wrapping_sub(self.wheel_start) as usize;
        if off >= WHEEL_SPAN as usize || self.cursor != off || self.overflow_min <= t.0 {
            return None;
        }
        let head = self.head[off];
        if head == NIL {
            return None;
        }
        let hit = match self.slots[head as usize]
            .ev
            .as_ref()
            .expect("occupied slot")
        {
            Event::Message { to, .. } => *to == node,
            Event::Timer { node: n, .. } => *n == node,
            _ => false,
        };
        if !hit {
            return None;
        }
        Some(self.bucket_pop(off))
    }

    /// True when at least one more event is pending at exactly `t`
    /// (which must be inside the wheel window). One array load: the
    /// engine uses it to skip the batching machinery entirely for the
    /// common sparse case of a single event per (timestamp, node).
    /// (Folding this into [`EventQueue::pop_le`]'s return value was
    /// tried and measured slower — see that method's docs.)
    #[inline]
    pub fn more_at(&self, t: SimTime) -> bool {
        let off = t.0.wrapping_sub(self.wheel_start) as usize;
        off < WHEEL_SPAN as usize && self.head[off] != NIL
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        let wheel_t = if self.wheel_len > 0 {
            self.first_bucket().map(|i| self.wheel_start + i as u64)
        } else {
            None
        };
        let over_t = (self.overflow_min != u64::MAX).then_some(self.overflow_min);
        match (wheel_t, over_t) {
            (Some(w), Some(o)) => Some(SimTime(w.min(o))),
            (Some(w), None) => Some(SimTime(w)),
            (None, Some(o)) => Some(SimTime(o)),
            (None, None) => None,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.wheel_len + self.overflow.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every pending event with its full `(time, rank, seq)` key, in
    /// key order. The sharded engine's checkpoint walks this to emit a
    /// shard-count-invariant event list (the keys are layout-invariant
    /// by construction, so the sorted stream is identical no matter
    /// which shard held which event).
    pub(crate) fn items_keyed(&self) -> Vec<(u64, u64, u64, &Event<M>)> {
        let mut items: Vec<(u64, u64, u64, &Event<M>)> = Vec::with_capacity(self.len());
        for idx in 0..WHEEL_SPAN as usize {
            let mut i = self.head[idx];
            while i != NIL {
                let s = &self.slots[i as usize];
                if let Some(ev) = &s.ev {
                    items.push((self.wheel_start + idx as u64, s.rank, s.seq, ev));
                }
                i = s.next;
            }
        }
        for (&(t, rank, seq), ev) in &self.overflow {
            items.push((t, rank, seq, ev));
        }
        items.sort_by_key(|&(t, rank, seq, _)| (t, rank, seq));
        items
    }
}

impl<M: snapshot::Snapshot> snapshot::Snapshot for Event<M> {
    fn encode(&self, enc: &mut snapshot::Enc) {
        match self {
            Event::Message { from, to, msg } => {
                enc.u8(0);
                from.encode(enc);
                to.encode(enc);
                msg.encode(enc);
            }
            Event::Timer { node, key } => {
                enc.u8(1);
                node.encode(enc);
                enc.u64(*key);
            }
            Event::LinkDown(a, b) => {
                enc.u8(2);
                a.encode(enc);
                b.encode(enc);
            }
            Event::LinkUp(a, b) => {
                enc.u8(3);
                a.encode(enc);
                b.encode(enc);
            }
            Event::NodeDown(n) => {
                enc.u8(4);
                n.encode(enc);
            }
            Event::NodeUp(n) => {
                enc.u8(5);
                n.encode(enc);
            }
        }
    }

    fn decode(dec: &mut snapshot::Dec<'_>) -> Result<Self, snapshot::SnapError> {
        Ok(match dec.u8()? {
            0 => Event::Message {
                from: NodeId::decode(dec)?,
                to: NodeId::decode(dec)?,
                msg: M::decode(dec)?,
            },
            1 => Event::Timer {
                node: NodeId::decode(dec)?,
                key: dec.u64()?,
            },
            2 => Event::LinkDown(NodeId::decode(dec)?, NodeId::decode(dec)?),
            3 => Event::LinkUp(NodeId::decode(dec)?, NodeId::decode(dec)?),
            4 => Event::NodeDown(NodeId::decode(dec)?),
            5 => Event::NodeUp(NodeId::decode(dec)?),
            _ => return Err(snapshot::SnapError::Invalid("Event tag")),
        })
    }
}

impl<M: snapshot::Snapshot> snapshot::Snapshot for EventQueue<M> {
    /// Encodes pending events in global `(time, seq)` order and
    /// replays them into a fresh queue on decode. The restored queue
    /// assigns new contiguous sequence numbers `0..n`, which preserves
    /// every pairwise ordering: restored events keep their relative
    /// order (re-pushed in sorted order), and any event pushed after
    /// resume receives a larger sequence number than all of them —
    /// exactly as in the uninterrupted run.
    fn encode(&self, enc: &mut snapshot::Enc) {
        let items = self.items_keyed();
        enc.seq(items.len());
        for (t, _, _, ev) in items {
            enc.u64(t);
            ev.encode(enc);
        }
    }

    fn decode(dec: &mut snapshot::Dec<'_>) -> Result<Self, snapshot::SnapError> {
        let n = dec.seq()?;
        let mut q = EventQueue::new();
        for _ in 0..n {
            let t = dec.u64()?;
            let ev = Event::<M>::decode(dec)?;
            q.push(SimTime(t), ev);
        }
        Ok(q)
    }
}

// ---------------------------------------------------------------------
// Reference implementation
// ---------------------------------------------------------------------

struct HeapEntry<M> {
    at: SimTime,
    seq: u64,
    event: Event<M>,
}

impl<M> PartialEq for HeapEntry<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for HeapEntry<M> {}
impl<M> PartialOrd for HeapEntry<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for HeapEntry<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// The original `BinaryHeap`-backed queue, kept as the executable
/// specification of pop order: `tests/prop_event.rs` checks the wheel
/// queue against it on random interleavings, and
/// `benches/sim_engine.rs` uses it as the speedup baseline.
pub struct BinaryHeapQueue<M> {
    heap: BinaryHeap<HeapEntry<M>>,
    seq: u64,
}

impl<M> Default for BinaryHeapQueue<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> BinaryHeapQueue<M> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        BinaryHeapQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules an arbitrary event at `at`.
    pub fn push(&mut self, at: SimTime, event: Event<M>) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(HeapEntry { at, seq, event });
    }

    /// Schedules a message delivery.
    pub fn push_message(&mut self, at: SimTime, from: NodeId, to: NodeId, msg: M) {
        self.push(at, Event::Message { from, to, msg });
    }

    /// Schedules a timer firing.
    pub fn push_timer(&mut self, at: SimTime, node: NodeId, key: u64) {
        self.push(at, Event::Timer { node, key });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, Event<M>)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.push_message(SimTime(30), NodeId(0), NodeId(1), 3);
        q.push_message(SimTime(10), NodeId(0), NodeId(1), 1);
        q.push_message(SimTime(20), NodeId(0), NodeId(1), 2);
        let mut got = Vec::new();
        while let Some((t, Event::Message { msg, .. })) = q.pop() {
            got.push((t.0, msg));
        }
        assert_eq!(got, vec![(10, 1), (20, 2), (30, 3)]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q: EventQueue<u32> = EventQueue::new();
        for i in 0..10 {
            q.push_message(SimTime(5), NodeId(0), NodeId(1), i);
        }
        let mut got = Vec::new();
        while let Some((_, Event::Message { msg, .. })) = q.pop() {
            got.push(msg);
        }
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_len() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push_timer(SimTime(7), NodeId(0), 1);
        q.push_timer(SimTime(3), NodeId(0), 2);
        assert_eq!(q.peek_time(), Some(SimTime(3)));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn far_future_events_cross_the_horizon() {
        // Events beyond WHEEL_SPAN land in overflow and come back out
        // in order across several refills.
        let mut q: EventQueue<u32> = EventQueue::new();
        let times = [
            0,
            WHEEL_SPAN - 1,
            WHEEL_SPAN,
            3 * WHEEL_SPAN + 17,
            48 * 3_600_000,  // a MASC 48 h waiting period
            30 * 86_400_000, // a 30-day lease lifetime
        ];
        for (i, t) in times.iter().enumerate().rev() {
            q.push_message(SimTime(*t), NodeId(0), NodeId(1), i as u32);
        }
        let mut got = Vec::new();
        while let Some((t, Event::Message { msg, .. })) = q.pop() {
            got.push((t.0, msg));
        }
        let want: Vec<(u64, u32)> = times
            .iter()
            .enumerate()
            .map(|(i, t)| (*t, i as u32))
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn ties_preserved_across_refill() {
        // Same far-future timestamp, pushed both before and after an
        // unrelated pop forces a refill: FIFO order must survive.
        let far = 10 * WHEEL_SPAN;
        let mut q: EventQueue<u32> = EventQueue::new();
        q.push_message(SimTime(far), NodeId(0), NodeId(1), 0);
        q.push_message(SimTime(1), NodeId(0), NodeId(1), 99);
        q.push_message(SimTime(far), NodeId(0), NodeId(1), 1);
        assert!(matches!(
            q.pop(),
            Some((SimTime(1), Event::Message { msg: 99, .. }))
        ));
        // Refill happens on this pop; both `far` events move together.
        q.push_message(SimTime(far), NodeId(0), NodeId(1), 2);
        let mut got = Vec::new();
        while let Some((t, Event::Message { msg, .. })) = q.pop() {
            assert_eq!(t.0, far);
            got.push(msg);
        }
        assert_eq!(got, vec![0, 1, 2]);
    }

    #[test]
    fn pop_le_respects_limit() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.push_message(SimTime(10), NodeId(0), NodeId(1), 1);
        q.push_message(SimTime(WHEEL_SPAN + 50), NodeId(0), NodeId(1), 2);
        assert!(q.pop_le(SimTime(5)).is_none());
        assert!(matches!(q.pop_le(SimTime(10)), Some((SimTime(10), _))));
        // Limit below the earliest remaining (overflow) event: nothing,
        // and the wheel is not disturbed.
        assert!(q.pop_le(SimTime(100)).is_none());
        assert_eq!(q.len(), 1);
        assert!(matches!(
            q.pop_le(SimTime(u64::MAX)),
            Some((SimTime(t), _)) if t == WHEEL_SPAN + 50
        ));
        assert!(q.is_empty());
    }

    #[test]
    fn past_of_window_push_still_ordered() {
        // Anchor the wheel at a far-future event, then (mis)schedule
        // below the window: the early event must still pop first.
        let mut q: EventQueue<u32> = EventQueue::new();
        q.push_message(SimTime(100 * WHEEL_SPAN), NodeId(0), NodeId(1), 1);
        assert!(q.pop_le(SimTime(0)).is_none()); // no refill past the limit
        let _ = q.peek_time();
        // Force a refill by popping with no limit, then push early.
        q.push_message(SimTime(100 * WHEEL_SPAN + 1), NodeId(0), NodeId(1), 2);
        let (t1, _) = q.pop().unwrap();
        assert_eq!(t1.0, 100 * WHEEL_SPAN);
        q.push_message(SimTime(3), NodeId(0), NodeId(1), 0);
        assert_eq!(q.peek_time(), Some(SimTime(3)));
        let (t0, _) = q.pop().unwrap();
        assert_eq!(t0.0, 3);
        let (t2, _) = q.pop().unwrap();
        assert_eq!(t2.0, 100 * WHEEL_SPAN + 1);
    }

    #[test]
    fn keyed_pushes_order_by_rank_then_seq_not_push_order() {
        // Push in scrambled key order at one timestamp; pops must come
        // back in (rank, seq) order — the shard-layout-invariant
        // contract — and an interleaved plain push (rank 0) sorts
        // ahead of every ranked event.
        let mut q: EventQueue<u32> = EventQueue::new();
        q.push_keyed(
            SimTime(5),
            2,
            0,
            Event::Timer {
                node: NodeId(1),
                key: 20,
            },
        );
        q.push_keyed(
            SimTime(5),
            1,
            7,
            Event::Timer {
                node: NodeId(0),
                key: 17,
            },
        );
        q.push_keyed(
            SimTime(5),
            1,
            3,
            Event::Timer {
                node: NodeId(0),
                key: 13,
            },
        );
        q.push(
            SimTime(5),
            Event::Timer {
                node: NodeId(9),
                key: 90,
            },
        );
        q.push_keyed(
            SimTime(5),
            3,
            1,
            Event::Timer {
                node: NodeId(2),
                key: 31,
            },
        );
        let mut got = Vec::new();
        while let Some((t, Event::Timer { key, .. })) = q.pop() {
            assert_eq!(t, SimTime(5));
            got.push(key);
        }
        assert_eq!(got, vec![90, 13, 17, 20, 31]);
    }

    #[test]
    fn keyed_order_survives_overflow_and_refill() {
        // Same scrambled keys, but landing beyond the wheel horizon so
        // they cross overflow and a re-anchor before popping.
        let far = 12 * WHEEL_SPAN;
        let mut q: EventQueue<u32> = EventQueue::new();
        q.push_keyed(
            SimTime(far),
            2,
            0,
            Event::Timer {
                node: NodeId(1),
                key: 20,
            },
        );
        q.push_keyed(
            SimTime(far),
            1,
            7,
            Event::Timer {
                node: NodeId(0),
                key: 17,
            },
        );
        q.push_message(SimTime(1), NodeId(0), NodeId(1), 0);
        q.push_keyed(
            SimTime(far),
            1,
            3,
            Event::Timer {
                node: NodeId(0),
                key: 13,
            },
        );
        assert!(matches!(q.pop(), Some((SimTime(1), _)))); // forces later refill
        q.push_keyed(
            SimTime(far),
            0,
            9,
            Event::Timer {
                node: NodeId(3),
                key: 9,
            },
        );
        let mut got = Vec::new();
        while let Some((t, Event::Timer { key, .. })) = q.pop() {
            assert_eq!(t.0, far);
            got.push(key);
        }
        assert_eq!(got, vec![9, 13, 17, 20]);
    }

    #[test]
    fn more_at_flags_same_tick_batches_after_pop() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.push_message(SimTime(4), NodeId(0), NodeId(1), 0);
        q.push_message(SimTime(4), NodeId(0), NodeId(1), 1);
        q.push_message(SimTime(9), NodeId(0), NodeId(1), 2);
        let (t, _) = q.pop_le(SimTime(100)).unwrap();
        assert_eq!((t, q.more_at(t)), (SimTime(4), true));
        let (t, _) = q.pop_le(SimTime(100)).unwrap();
        assert_eq!((t, q.more_at(t)), (SimTime(4), false));
        let (t, _) = q.pop_le(SimTime(100)).unwrap();
        assert_eq!((t, q.more_at(t)), (SimTime(9), false));
        assert!(q.pop_le(SimTime(100)).is_none());
    }

    #[test]
    fn reference_queue_matches_basic_order() {
        let mut q: BinaryHeapQueue<u32> = BinaryHeapQueue::new();
        assert!(q.is_empty());
        q.push_message(SimTime(5), NodeId(0), NodeId(1), 1);
        q.push_timer(SimTime(5), NodeId(0), 9);
        q.push_message(SimTime(2), NodeId(0), NodeId(1), 0);
        assert_eq!(q.peek_time(), Some(SimTime(2)));
        assert_eq!(q.len(), 3);
        assert!(matches!(q.pop(), Some((SimTime(2), _))));
        assert!(matches!(
            q.pop(),
            Some((SimTime(5), Event::Message { msg: 1, .. }))
        ));
        assert!(matches!(
            q.pop(),
            Some((SimTime(5), Event::Timer { key: 9, .. }))
        ));
        assert!(q.pop().is_none());
    }
}
