//! The time-ordered event queue.
//!
//! Ties on time are broken by insertion sequence number, which makes
//! execution order — and therefore every simulation result — fully
//! deterministic for a given seed and workload.
//!
//! # Structure
//!
//! MASC workloads mix two very different time scales: dense
//! millisecond-latency protocol messages around the current instant,
//! and standing far-future timers (48 h waiting periods, 30-day lease
//! lifetimes, hour-scale retry jitter). A single [`BinaryHeap`] makes
//! every near-term message pay `O(log n)` sift costs against the
//! standing timer population, so [`EventQueue`] is a two-tier
//! scheduler instead:
//!
//! * a **near-horizon wheel**: one FIFO bucket per millisecond for the
//!   [`WHEEL_SPAN`] ms starting at the earliest pending event, with a
//!   bitmap for constant-time next-bucket scans — near-term traffic is
//!   O(1) to push and pop. Buckets are intrusive singly-linked lists
//!   over one slab of slots, so steady-state operation performs no
//!   allocation at all;
//! * an **overflow map** (`BTreeMap<(time, seq), event>`) for
//!   everything past the wheel horizon — keying by `(time, seq)` keeps
//!   same-time FIFO order in plain map order; when the wheel drains,
//!   it re-anchors at the earliest overflow time and the next window
//!   of events moves over in one batch.
//!
//! Because a given timestamp always maps to exactly one tier between
//! re-anchors, and both tiers keep per-timestamp FIFOs in insertion
//! order, the (time, sequence) pop order is *identical* to the
//! original heap's — property-tested against [`BinaryHeapQueue`] in
//! `tests/prop_event.rs`.

use std::collections::{BTreeMap, BinaryHeap};

use crate::node::NodeId;
use crate::time::SimTime;

/// A scheduled occurrence.
#[derive(Debug)]
pub enum Event<M> {
    /// Deliver `msg` from `from` to `to`.
    Message {
        /// Sender (may be [`NodeId::EXTERNAL`]).
        from: NodeId,
        /// Recipient.
        to: NodeId,
        /// Payload.
        msg: M,
    },
    /// Fire timer `key` on `node`.
    Timer {
        /// The node whose timer fires.
        node: NodeId,
        /// Caller-chosen timer key.
        key: u64,
    },
    /// Bring the link between the two nodes down.
    LinkDown(NodeId, NodeId),
    /// Bring the link between the two nodes back up.
    LinkUp(NodeId, NodeId),
    /// Crash the node (fail-stop: messages blackholed, timers
    /// suppressed until the matching [`Event::NodeUp`]).
    NodeDown(NodeId),
    /// Restart the node (its `on_restart` hook runs).
    NodeUp(NodeId),
}

/// Width of the near-horizon wheel in milliseconds (one bucket each).
pub const WHEEL_SPAN: u64 = 16_384;
const OCC_WORDS: usize = (WHEEL_SPAN as usize) / 64;

/// Sentinel for "no slot" in the wheel's intrusive lists.
const NIL: u32 = u32::MAX;

/// One slab entry: an event threaded into its bucket's FIFO list.
struct Slot<M> {
    /// Next slot in the same bucket (or the slot free list); [`NIL`]
    /// terminates.
    next: u32,
    /// Insertion sequence (the FIFO tie-break).
    seq: u64,
    /// The event; `None` once popped (slot is then on the free list).
    ev: Option<Event<M>>,
}

/// Priority queue of pending events: near-horizon bucket wheel plus a
/// far-future overflow map. See the module docs for the design.
// The queue's Snapshot impl serializes the logical content (pending
// events in (time, seq) order) and replays it into a fresh queue, so
// every structural field below is rebuilt by push() on decode rather
// than serialized — hence the per-field coverage exemptions.
pub struct EventQueue<M> {
    /// Slot arena; bucket lists and the free list index into it.
    // lint:allow(snapshot-field-coverage) — wheel structure; rebuilt by replaying events on decode
    slots: Vec<Slot<M>>,
    /// Head of the free-slot list ([`NIL`] when exhausted).
    // lint:allow(snapshot-field-coverage) — wheel structure; rebuilt by replaying events on decode
    free: u32,
    /// Per-millisecond bucket list heads over
    /// `[wheel_start, wheel_start + WHEEL_SPAN)`; [`NIL`] = empty.
    // lint:allow(snapshot-field-coverage) — wheel structure; rebuilt by replaying events on decode
    head: Vec<u32>,
    /// Per-bucket list tails (valid only when the head is not [`NIL`]).
    // lint:allow(snapshot-field-coverage) — wheel structure; rebuilt by replaying events on decode
    tail: Vec<u32>,
    /// Occupancy bitmap over buckets (bit set ⇔ bucket non-empty).
    // lint:allow(snapshot-field-coverage) — wheel structure; rebuilt by replaying events on decode
    occ: [u64; OCC_WORDS],
    /// Absolute time (ms) of bucket 0.
    // lint:allow(snapshot-field-coverage) — wheel structure; rebuilt by replaying events on decode
    wheel_start: u64,
    /// No non-empty bucket lies below this index.
    // lint:allow(snapshot-field-coverage) — wheel structure; rebuilt by replaying events on decode
    cursor: usize,
    /// Events currently in the wheel.
    // lint:allow(snapshot-field-coverage) — wheel structure; rebuilt by replaying events on decode
    wheel_len: usize,
    /// Far-future (or, defensively, past-of-window) events. Keying by
    /// `(time, seq)` gives same-time FIFO by plain map order with no
    /// per-timestamp container.
    // lint:allow(snapshot-field-coverage) — wheel structure; rebuilt by replaying events on decode
    overflow: BTreeMap<(u64, u64), Event<M>>,
    /// Cached time of the overflow head (`u64::MAX` when empty), so
    /// the pop fast path costs one compare instead of a tree descent.
    // lint:allow(snapshot-field-coverage) — wheel structure; rebuilt by replaying events on decode
    overflow_min: u64,
    seq: u64,
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> EventQueue<M> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            slots: Vec::new(),
            free: NIL,
            head: vec![NIL; WHEEL_SPAN as usize],
            tail: vec![NIL; WHEEL_SPAN as usize],
            occ: [0; OCC_WORDS],
            wheel_start: 0,
            cursor: 0,
            wheel_len: 0,
            overflow: BTreeMap::new(),
            overflow_min: u64::MAX,
            seq: 0,
        }
    }

    /// Takes a slot from the free list (or grows the slab) and fills it.
    fn alloc_slot(&mut self, seq: u64, ev: Event<M>) -> u32 {
        if self.free != NIL {
            let i = self.free;
            let s = &mut self.slots[i as usize];
            self.free = s.next;
            s.next = NIL;
            s.seq = seq;
            s.ev = Some(ev);
            i
        } else {
            self.slots.push(Slot {
                next: NIL,
                seq,
                ev: Some(ev),
            });
            (self.slots.len() - 1) as u32
        }
    }

    /// Appends to bucket `idx`'s FIFO list.
    fn bucket_push(&mut self, idx: usize, seq: u64, ev: Event<M>) {
        let i = self.alloc_slot(seq, ev);
        if self.head[idx] == NIL {
            self.head[idx] = i;
            self.occ[idx >> 6] |= 1 << (idx & 63);
        } else {
            self.slots[self.tail[idx] as usize].next = i;
        }
        self.tail[idx] = i;
        self.wheel_len += 1;
        if idx < self.cursor {
            // Scheduling below the scan cursor (into the window's
            // past) — only possible from misuse the engine's
            // debug_asserts catch, but stay well-ordered anyway.
            self.cursor = idx;
        }
    }

    /// Pops the front of (non-empty) bucket `idx`, recycling its slot.
    fn bucket_pop(&mut self, idx: usize) -> Event<M> {
        let i = self.head[idx];
        let s = &mut self.slots[i as usize];
        let ev = s.ev.take().expect("occupied slot");
        self.head[idx] = s.next;
        s.next = self.free;
        self.free = i;
        if self.head[idx] == NIL {
            self.occ[idx >> 6] &= !(1 << (idx & 63));
        }
        self.wheel_len -= 1;
        ev
    }

    /// Schedules an arbitrary event at `at`.
    pub fn push(&mut self, at: SimTime, event: Event<M>) {
        let seq = self.seq;
        self.seq += 1;
        let t = at.0;
        if t >= self.wheel_start && t - self.wheel_start < WHEEL_SPAN {
            self.bucket_push((t - self.wheel_start) as usize, seq, event);
        } else {
            self.overflow.insert((t, seq), event);
            if t < self.overflow_min {
                self.overflow_min = t;
            }
        }
    }

    /// Schedules a message delivery.
    pub fn push_message(&mut self, at: SimTime, from: NodeId, to: NodeId, msg: M) {
        self.push(at, Event::Message { from, to, msg });
    }

    /// Schedules a timer firing.
    pub fn push_timer(&mut self, at: SimTime, node: NodeId, key: u64) {
        self.push(at, Event::Timer { node, key });
    }

    /// First non-empty bucket at or above the cursor, if any.
    fn first_bucket(&self) -> Option<usize> {
        let mut w = self.cursor >> 6;
        if w >= OCC_WORDS {
            return None;
        }
        let mut word = self.occ[w] & (!0u64 << (self.cursor & 63));
        loop {
            if word != 0 {
                return Some((w << 6) + word.trailing_zeros() as usize);
            }
            w += 1;
            if w >= OCC_WORDS {
                return None;
            }
            word = self.occ[w];
        }
    }

    /// Re-anchors the (empty) wheel at the earliest overflow time and
    /// moves the next window of overflow events into it. Map order is
    /// `(time, seq)`, so same-time events land in their bucket FIFO in
    /// insertion order.
    fn refill(&mut self) {
        debug_assert_eq!(self.wheel_len, 0);
        if self.overflow_min == u64::MAX {
            return;
        }
        let start = self.overflow_min;
        self.wheel_start = start;
        self.cursor = 0;
        while let Some((&(t, _), _)) = self.overflow.first_key_value() {
            if t - start >= WHEEL_SPAN {
                self.overflow_min = t;
                return;
            }
            let ((_, seq), ev) = self.overflow.pop_first().expect("checked non-empty");
            self.bucket_push((t - start) as usize, seq, ev);
        }
        self.overflow_min = u64::MAX;
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, Event<M>)> {
        self.pop_le(SimTime(u64::MAX))
    }

    /// Removes and returns the earliest event if its time is `<= until`
    /// — one bucket scan, no separate peek. This is the engine's
    /// `run_until` fast path: while draining a same-timestamp batch the
    /// cursor already rests on the hot bucket, so each pop is O(1).
    pub fn pop_le(&mut self, until: SimTime) -> Option<(SimTime, Event<M>)> {
        if self.wheel_len == 0 {
            if self.overflow_min == u64::MAX || self.overflow_min > until.0 {
                return None;
            }
            self.refill();
        }
        let idx = self.first_bucket().expect("wheel_len > 0");
        let wheel_t = self.wheel_start + idx as u64;
        // An event can sit in overflow *below* the window only after a
        // past-of-window push (see `push`); honour it first.
        if self.overflow_min < wheel_t {
            let t = self.overflow_min;
            if t > until.0 {
                return None;
            }
            let (_, ev) = self.overflow.pop_first().expect("overflow_min is live");
            self.overflow_min = match self.overflow.first_key_value() {
                Some((&(t2, _), _)) => t2,
                None => u64::MAX,
            };
            return Some((SimTime(t), ev));
        }
        if wheel_t > until.0 {
            return None;
        }
        self.cursor = idx;
        Some((SimTime(wheel_t), self.bucket_pop(idx)))
    }

    /// Pops the earliest event only when it is due at exactly `t` and
    /// is delivered to `node` (a message to it or one of its timers).
    /// Returns `None` — popping nothing — in every other case. This is
    /// the engine's same-tick batching probe: after dispatching an
    /// event to a node, the engine drains the contiguous run of
    /// same-timestamp events for that same node in one node borrow.
    /// Only the global head is ever taken, so pop order is identical
    /// to repeated [`EventQueue::pop`].
    /// True when at least one more event is pending at exactly `t`
    /// (which must be inside the wheel window). One array load: the
    /// engine uses it to skip the batching machinery entirely for the
    /// common sparse case of a single event per (timestamp, node).
    #[inline]
    pub fn more_at(&self, t: SimTime) -> bool {
        let off = t.0.wrapping_sub(self.wheel_start) as usize;
        off < WHEEL_SPAN as usize && self.head[off] != NIL
    }

    /// The probe must cost O(1) on a miss — it runs once per
    /// dispatched event — so it never scans the occupancy bitmap.
    /// While `t` is inside the window, every same-time event sits in
    /// bucket `t - wheel_start` (one tier per timestamp), so a
    /// drained bucket ends the batch immediately. The remaining
    /// guards refuse to batch in states where bucket-head ≠ global
    /// head: the cursor resting elsewhere (a past-of-window push
    /// moved it) or an overflow stray at or below `t`. Refusing is
    /// always sound — the engine just falls back to `pop_le`.
    pub fn pop_if_for(&mut self, t: SimTime, node: NodeId) -> Option<Event<M>> {
        let off = t.0.wrapping_sub(self.wheel_start) as usize;
        if off >= WHEEL_SPAN as usize || self.cursor != off || self.overflow_min <= t.0 {
            return None;
        }
        let head = self.head[off];
        if head == NIL {
            return None;
        }
        let hit = match self.slots[head as usize]
            .ev
            .as_ref()
            .expect("occupied slot")
        {
            Event::Message { to, .. } => *to == node,
            Event::Timer { node: n, .. } => *n == node,
            _ => false,
        };
        if !hit {
            return None;
        }
        Some(self.bucket_pop(off))
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        let wheel_t = if self.wheel_len > 0 {
            self.first_bucket().map(|i| self.wheel_start + i as u64)
        } else {
            None
        };
        let over_t = (self.overflow_min != u64::MAX).then_some(self.overflow_min);
        match (wheel_t, over_t) {
            (Some(w), Some(o)) => Some(SimTime(w.min(o))),
            (Some(w), None) => Some(SimTime(w)),
            (None, Some(o)) => Some(SimTime(o)),
            (None, None) => None,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.wheel_len + self.overflow.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<M: snapshot::Snapshot> snapshot::Snapshot for Event<M> {
    fn encode(&self, enc: &mut snapshot::Enc) {
        match self {
            Event::Message { from, to, msg } => {
                enc.u8(0);
                from.encode(enc);
                to.encode(enc);
                msg.encode(enc);
            }
            Event::Timer { node, key } => {
                enc.u8(1);
                node.encode(enc);
                enc.u64(*key);
            }
            Event::LinkDown(a, b) => {
                enc.u8(2);
                a.encode(enc);
                b.encode(enc);
            }
            Event::LinkUp(a, b) => {
                enc.u8(3);
                a.encode(enc);
                b.encode(enc);
            }
            Event::NodeDown(n) => {
                enc.u8(4);
                n.encode(enc);
            }
            Event::NodeUp(n) => {
                enc.u8(5);
                n.encode(enc);
            }
        }
    }

    fn decode(dec: &mut snapshot::Dec<'_>) -> Result<Self, snapshot::SnapError> {
        Ok(match dec.u8()? {
            0 => Event::Message {
                from: NodeId::decode(dec)?,
                to: NodeId::decode(dec)?,
                msg: M::decode(dec)?,
            },
            1 => Event::Timer {
                node: NodeId::decode(dec)?,
                key: dec.u64()?,
            },
            2 => Event::LinkDown(NodeId::decode(dec)?, NodeId::decode(dec)?),
            3 => Event::LinkUp(NodeId::decode(dec)?, NodeId::decode(dec)?),
            4 => Event::NodeDown(NodeId::decode(dec)?),
            5 => Event::NodeUp(NodeId::decode(dec)?),
            _ => return Err(snapshot::SnapError::Invalid("Event tag")),
        })
    }
}

impl<M: snapshot::Snapshot> snapshot::Snapshot for EventQueue<M> {
    /// Encodes pending events in global `(time, seq)` order and
    /// replays them into a fresh queue on decode. The restored queue
    /// assigns new contiguous sequence numbers `0..n`, which preserves
    /// every pairwise ordering: restored events keep their relative
    /// order (re-pushed in sorted order), and any event pushed after
    /// resume receives a larger sequence number than all of them —
    /// exactly as in the uninterrupted run.
    fn encode(&self, enc: &mut snapshot::Enc) {
        let mut items: Vec<(u64, u64, &Event<M>)> = Vec::with_capacity(self.len());
        for idx in 0..WHEEL_SPAN as usize {
            let mut i = self.head[idx];
            while i != NIL {
                let s = &self.slots[i as usize];
                if let Some(ev) = &s.ev {
                    items.push((self.wheel_start + idx as u64, s.seq, ev));
                }
                i = s.next;
            }
        }
        for (&(t, seq), ev) in &self.overflow {
            items.push((t, seq, ev));
        }
        items.sort_by_key(|&(t, seq, _)| (t, seq));
        enc.seq(items.len());
        for (t, _, ev) in items {
            enc.u64(t);
            ev.encode(enc);
        }
    }

    fn decode(dec: &mut snapshot::Dec<'_>) -> Result<Self, snapshot::SnapError> {
        let n = dec.seq()?;
        let mut q = EventQueue::new();
        for _ in 0..n {
            let t = dec.u64()?;
            let ev = Event::<M>::decode(dec)?;
            q.push(SimTime(t), ev);
        }
        Ok(q)
    }
}

// ---------------------------------------------------------------------
// Reference implementation
// ---------------------------------------------------------------------

struct HeapEntry<M> {
    at: SimTime,
    seq: u64,
    event: Event<M>,
}

impl<M> PartialEq for HeapEntry<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for HeapEntry<M> {}
impl<M> PartialOrd for HeapEntry<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for HeapEntry<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// The original `BinaryHeap`-backed queue, kept as the executable
/// specification of pop order: `tests/prop_event.rs` checks the wheel
/// queue against it on random interleavings, and
/// `benches/sim_engine.rs` uses it as the speedup baseline.
pub struct BinaryHeapQueue<M> {
    heap: BinaryHeap<HeapEntry<M>>,
    seq: u64,
}

impl<M> Default for BinaryHeapQueue<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> BinaryHeapQueue<M> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        BinaryHeapQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules an arbitrary event at `at`.
    pub fn push(&mut self, at: SimTime, event: Event<M>) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(HeapEntry { at, seq, event });
    }

    /// Schedules a message delivery.
    pub fn push_message(&mut self, at: SimTime, from: NodeId, to: NodeId, msg: M) {
        self.push(at, Event::Message { from, to, msg });
    }

    /// Schedules a timer firing.
    pub fn push_timer(&mut self, at: SimTime, node: NodeId, key: u64) {
        self.push(at, Event::Timer { node, key });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, Event<M>)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.push_message(SimTime(30), NodeId(0), NodeId(1), 3);
        q.push_message(SimTime(10), NodeId(0), NodeId(1), 1);
        q.push_message(SimTime(20), NodeId(0), NodeId(1), 2);
        let mut got = Vec::new();
        while let Some((t, Event::Message { msg, .. })) = q.pop() {
            got.push((t.0, msg));
        }
        assert_eq!(got, vec![(10, 1), (20, 2), (30, 3)]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q: EventQueue<u32> = EventQueue::new();
        for i in 0..10 {
            q.push_message(SimTime(5), NodeId(0), NodeId(1), i);
        }
        let mut got = Vec::new();
        while let Some((_, Event::Message { msg, .. })) = q.pop() {
            got.push(msg);
        }
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_len() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push_timer(SimTime(7), NodeId(0), 1);
        q.push_timer(SimTime(3), NodeId(0), 2);
        assert_eq!(q.peek_time(), Some(SimTime(3)));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn far_future_events_cross_the_horizon() {
        // Events beyond WHEEL_SPAN land in overflow and come back out
        // in order across several refills.
        let mut q: EventQueue<u32> = EventQueue::new();
        let times = [
            0,
            WHEEL_SPAN - 1,
            WHEEL_SPAN,
            3 * WHEEL_SPAN + 17,
            48 * 3_600_000,  // a MASC 48 h waiting period
            30 * 86_400_000, // a 30-day lease lifetime
        ];
        for (i, t) in times.iter().enumerate().rev() {
            q.push_message(SimTime(*t), NodeId(0), NodeId(1), i as u32);
        }
        let mut got = Vec::new();
        while let Some((t, Event::Message { msg, .. })) = q.pop() {
            got.push((t.0, msg));
        }
        let want: Vec<(u64, u32)> = times
            .iter()
            .enumerate()
            .map(|(i, t)| (*t, i as u32))
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn ties_preserved_across_refill() {
        // Same far-future timestamp, pushed both before and after an
        // unrelated pop forces a refill: FIFO order must survive.
        let far = 10 * WHEEL_SPAN;
        let mut q: EventQueue<u32> = EventQueue::new();
        q.push_message(SimTime(far), NodeId(0), NodeId(1), 0);
        q.push_message(SimTime(1), NodeId(0), NodeId(1), 99);
        q.push_message(SimTime(far), NodeId(0), NodeId(1), 1);
        assert!(matches!(
            q.pop(),
            Some((SimTime(1), Event::Message { msg: 99, .. }))
        ));
        // Refill happens on this pop; both `far` events move together.
        q.push_message(SimTime(far), NodeId(0), NodeId(1), 2);
        let mut got = Vec::new();
        while let Some((t, Event::Message { msg, .. })) = q.pop() {
            assert_eq!(t.0, far);
            got.push(msg);
        }
        assert_eq!(got, vec![0, 1, 2]);
    }

    #[test]
    fn pop_le_respects_limit() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.push_message(SimTime(10), NodeId(0), NodeId(1), 1);
        q.push_message(SimTime(WHEEL_SPAN + 50), NodeId(0), NodeId(1), 2);
        assert!(q.pop_le(SimTime(5)).is_none());
        assert!(matches!(q.pop_le(SimTime(10)), Some((SimTime(10), _))));
        // Limit below the earliest remaining (overflow) event: nothing,
        // and the wheel is not disturbed.
        assert!(q.pop_le(SimTime(100)).is_none());
        assert_eq!(q.len(), 1);
        assert!(matches!(
            q.pop_le(SimTime(u64::MAX)),
            Some((SimTime(t), _)) if t == WHEEL_SPAN + 50
        ));
        assert!(q.is_empty());
    }

    #[test]
    fn past_of_window_push_still_ordered() {
        // Anchor the wheel at a far-future event, then (mis)schedule
        // below the window: the early event must still pop first.
        let mut q: EventQueue<u32> = EventQueue::new();
        q.push_message(SimTime(100 * WHEEL_SPAN), NodeId(0), NodeId(1), 1);
        assert!(q.pop_le(SimTime(0)).is_none()); // no refill past the limit
        let _ = q.peek_time();
        // Force a refill by popping with no limit, then push early.
        q.push_message(SimTime(100 * WHEEL_SPAN + 1), NodeId(0), NodeId(1), 2);
        let (t1, _) = q.pop().unwrap();
        assert_eq!(t1.0, 100 * WHEEL_SPAN);
        q.push_message(SimTime(3), NodeId(0), NodeId(1), 0);
        assert_eq!(q.peek_time(), Some(SimTime(3)));
        let (t0, _) = q.pop().unwrap();
        assert_eq!(t0.0, 3);
        let (t2, _) = q.pop().unwrap();
        assert_eq!(t2.0, 100 * WHEEL_SPAN + 1);
    }

    #[test]
    fn reference_queue_matches_basic_order() {
        let mut q: BinaryHeapQueue<u32> = BinaryHeapQueue::new();
        assert!(q.is_empty());
        q.push_message(SimTime(5), NodeId(0), NodeId(1), 1);
        q.push_timer(SimTime(5), NodeId(0), 9);
        q.push_message(SimTime(2), NodeId(0), NodeId(1), 0);
        assert_eq!(q.peek_time(), Some(SimTime(2)));
        assert_eq!(q.len(), 3);
        assert!(matches!(q.pop(), Some((SimTime(2), _))));
        assert!(matches!(
            q.pop(),
            Some((SimTime(5), Event::Message { msg: 1, .. }))
        ));
        assert!(matches!(
            q.pop(),
            Some((SimTime(5), Event::Timer { key: 9, .. }))
        ));
        assert!(q.pop().is_none());
    }
}
