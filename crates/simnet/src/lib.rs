//! A deterministic discrete-event network simulator.
//!
//! This is the substrate every protocol simulation in the MASC/BGMP
//! reproduction runs on. Design follows the event-driven ethos of the
//! session's networking guides (smoltcp): a poll-style core, no hidden
//! global state, all randomness from one seeded stream, so that every
//! figure in `EXPERIMENTS.md` is reproducible bit-for-bit.
//!
//! * [`time`] — millisecond-resolution virtual clock types;
//! * [`event`] — the time-ordered queue (ties broken by insertion
//!   order);
//! * [`fault`] — deterministic fault injection (loss, duplication,
//!   jitter reordering, crash/restart), all from the one seeded
//!   stream;
//! * [`link`] — per-pair latency and up/down (partition) state;
//! * [`node`] — the actor trait and its effect context;
//! * [`engine`] — the dispatcher: register nodes, inject workload, run;
//! * [`shard`] — domain-decomposed execution: the node population
//!   split into shards advancing in conservative-lookahead windows,
//!   byte-deterministic at any shard count.

pub mod engine;
pub mod event;
pub mod fault;
pub mod link;
pub mod node;
pub mod shard;
mod snap;
pub mod time;
pub mod trace;

pub use engine::{Engine, EngineStats, ScheduleError, SNAP_KIND_ENGINE};
pub use event::{BinaryHeapQueue, Event, EventQueue, WHEEL_SPAN};
pub use fault::{FaultModel, FaultPlane, FaultStats};
pub use link::{Link, LinkKey, LinkTable};
pub use node::{Ctx, Node, NodeId};
pub use shard::{ShardedEngine, SimEngine};
pub use time::{SimDuration, SimTime};
pub use trace::Trace;
