//! Node identity and the actor trait driven by the engine.

use std::any::Any;

use rand::rngs::StdRng;
use rand::Rng;

use crate::event::EventQueue;
use crate::fault::FaultPlane;
use crate::link::LinkTable;
use crate::time::{SimDuration, SimTime};

/// Identifies a node registered with the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

impl NodeId {
    /// Pseudo-sender for messages injected from outside the simulation
    /// (test drivers, workload generators).
    pub const EXTERNAL: NodeId = NodeId(usize::MAX);
}

/// An actor in the simulation. Implementations are plain state
/// machines: all effects go through the [`Ctx`], which keeps them
/// deterministic and replayable.
///
/// `Node` requires `Any` so simulations can downcast registered nodes
/// back to their concrete type for inspection
/// (see `Engine::node_as`).
pub trait Node<M>: Any {
    /// A message sent by another node (or injected externally) has
    /// arrived.
    fn on_message(&mut self, ctx: &mut Ctx<'_, M>, from: NodeId, msg: M);

    /// A timer set via [`Ctx::set_timer`] has fired.
    fn on_timer(&mut self, _ctx: &mut Ctx<'_, M>, _key: u64) {}

    /// Called once when the simulation starts (before any event).
    fn on_start(&mut self, _ctx: &mut Ctx<'_, M>) {}

    /// Called when the node restarts after a scheduled crash (see
    /// `Engine::schedule_crash`). Messages and timers addressed to the
    /// node while it was down were blackholed, so implementations
    /// should re-arm timers and re-announce state here.
    fn on_restart(&mut self, _ctx: &mut Ctx<'_, M>) {}
}

/// The effect interface handed to a node while it handles an event.
pub struct Ctx<'a, M> {
    pub(crate) id: NodeId,
    pub(crate) now: SimTime,
    pub(crate) queue: &'a mut EventQueue<M>,
    pub(crate) links: &'a LinkTable,
    pub(crate) rng: &'a mut StdRng,
    pub(crate) faults: &'a mut FaultPlane<M>,
    pub(crate) dropped: &'a mut u64,
}

impl<'a, M> Ctx<'a, M> {
    /// The handling node's own id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Sends `msg` to `to` over the (implicit or configured) link.
    /// If the link is down the message is silently dropped — partition
    /// semantics per §4.1 — and the engine's drop counter increments.
    /// If the link carries an active [`FaultModel`] and the message
    /// class is faultable, loss/duplication/jitter are applied here
    /// (see [`crate::fault`] for the draw-order contract).
    ///
    /// [`FaultModel`]: crate::fault::FaultModel
    pub fn send(&mut self, to: NodeId, msg: M)
    where
        M: Clone,
    {
        self.send_after(SimDuration::ZERO, to, msg);
    }

    /// Sends with an explicit extra delay on top of link latency
    /// (e.g. modelling processing time).
    pub fn send_after(&mut self, delay: SimDuration, to: NodeId, msg: M)
    where
        M: Clone,
    {
        if !self.links.is_up(self.id, to) {
            *self.dropped += 1;
            return;
        }
        let at = self.now + self.links.latency(self.id, to) + delay;
        let model = self.faults.model_for(self.id, to);
        if model.is_none() || !(self.faults.faultable)(&msg) {
            self.queue.push_message(at, self.id, to, msg);
            return;
        }
        // Fault draws happen in a fixed order — loss, primary jitter,
        // duplication, duplicate jitter — and each draw only when its
        // knob is non-zero, so a given model consumes a stable slice
        // of the RNG stream per send.
        if model.loss > 0.0 && self.rng.gen_bool(model.loss) {
            self.faults.stats.lost += 1;
            return;
        }
        let mut primary_at = at;
        if model.jitter_ms > 0 {
            let j = self.rng.gen_range(0..=model.jitter_ms);
            if j > 0 {
                self.faults.stats.jittered += 1;
            }
            primary_at += SimDuration::from_millis(j);
        }
        if model.dup > 0.0 && self.rng.gen_bool(model.dup) {
            let mut dup_at = at;
            if model.jitter_ms > 0 {
                let j = self.rng.gen_range(0..=model.jitter_ms);
                if j > 0 {
                    self.faults.stats.jittered += 1;
                }
                dup_at += SimDuration::from_millis(j);
            }
            self.faults.stats.duplicated += 1;
            self.queue.push_message(dup_at, self.id, to, msg.clone());
        }
        self.queue.push_message(primary_at, self.id, to, msg);
    }

    /// Schedules `on_timer(key)` on this node after `delay`.
    pub fn set_timer(&mut self, delay: SimDuration, key: u64) {
        self.queue.push_timer(self.now + delay, self.id, key);
    }

    /// Deterministic per-engine RNG (a single seeded stream; event
    /// order is deterministic, so draws are too).
    pub fn rng(&mut self) -> &mut impl Rng {
        self.rng
    }

    /// Is the link from this node to `to` currently up?
    pub fn link_up(&self, to: NodeId) -> bool {
        self.links.is_up(self.id, to)
    }
}
