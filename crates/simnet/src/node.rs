//! Node identity and the actor trait driven by the engine.

use std::any::Any;

use rand::rngs::StdRng;
use rand::Rng;

use crate::event::{Event, EventQueue};
use crate::fault::FaultPlane;
use crate::link::LinkTable;
use crate::time::{SimDuration, SimTime};

/// Identifies a node registered with the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

impl NodeId {
    /// Pseudo-sender for messages injected from outside the simulation
    /// (test drivers, workload generators).
    pub const EXTERNAL: NodeId = NodeId(usize::MAX);
}

/// An actor in the simulation. Implementations are plain state
/// machines: all effects go through the [`Ctx`], which keeps them
/// deterministic and replayable.
///
/// `Node` requires `Any` so simulations can downcast registered nodes
/// back to their concrete type for inspection
/// (see `Engine::node_as`).
pub trait Node<M>: Any {
    /// A message sent by another node (or injected externally) has
    /// arrived.
    fn on_message(&mut self, ctx: &mut Ctx<'_, M>, from: NodeId, msg: M);

    /// A timer set via [`Ctx::set_timer`] has fired.
    fn on_timer(&mut self, _ctx: &mut Ctx<'_, M>, _key: u64) {}

    /// Called once when the simulation starts (before any event).
    fn on_start(&mut self, _ctx: &mut Ctx<'_, M>) {}

    /// Called when the node restarts after a scheduled crash (see
    /// `Engine::schedule_crash`). Messages and timers addressed to the
    /// node while it was down were blackholed, so implementations
    /// should re-arm timers and re-announce state here.
    fn on_restart(&mut self, _ctx: &mut Ctx<'_, M>) {}
}

/// Shard-routing state threaded into a [`Ctx`] by the sharded engine
/// (`None` under the serial engine). Every effect a node emits gets a
/// shard-layout-invariant `(rank, seq)` ordering key — rank is the
/// emitting node's id + 1, seq its private emit counter — and
/// cross-shard messages divert to the shard's outbox for delivery at
/// the next barrier instead of landing in the local queue.
pub(crate) struct ShardRoute<'a, M> {
    /// Node id → owning shard, for the whole simulation.
    pub(crate) owner: &'a [u32],
    /// The shard this context is executing in.
    pub(crate) shard: u32,
    /// Cross-shard sends accumulated during the current window, as
    /// `(time, rank, seq, event)`.
    pub(crate) outbox: &'a mut Vec<(u64, u64, u64, Event<M>)>,
    /// Ordering rank of the emitting node (id + 1; 0 is reserved for
    /// external injections).
    pub(crate) rank: u64,
    /// The emitting node's monotone emit counter.
    pub(crate) emit: &'a mut u64,
}

/// The effect interface handed to a node while it handles an event.
pub struct Ctx<'a, M> {
    pub(crate) id: NodeId,
    pub(crate) now: SimTime,
    pub(crate) queue: &'a mut EventQueue<M>,
    pub(crate) links: &'a LinkTable,
    pub(crate) rng: &'a mut StdRng,
    pub(crate) faults: &'a mut FaultPlane<M>,
    pub(crate) dropped: &'a mut u64,
    /// `Some` when executing inside a shard (see [`ShardRoute`]).
    pub(crate) route: Option<ShardRoute<'a, M>>,
}

impl<'a, M> Ctx<'a, M> {
    /// Enqueues a message, routing through the shard mailbox when the
    /// recipient lives on another shard. The serial path is the
    /// historical direct push (queue-local insertion order); the
    /// sharded path is outlined so the serial fast path stays one
    /// predictable branch (see [`Ctx::set_timer_routed`] for why the
    /// cold hint is safe for sharded throughput too).
    #[inline]
    fn push_msg(&mut self, at: SimTime, to: NodeId, msg: M) {
        if self.route.is_none() {
            self.queue.push_message(at, self.id, to, msg);
        } else {
            self.push_msg_routed(at, to, msg);
        }
    }

    #[cold]
    fn push_msg_routed(&mut self, at: SimTime, to: NodeId, msg: M) {
        let r = self.route.as_mut().expect("checked by push_msg");
        let seq = *r.emit;
        *r.emit += 1;
        let ev = Event::Message {
            from: self.id,
            to,
            msg,
        };
        if r.owner.get(to.0).copied() == Some(r.shard) {
            self.queue.push_keyed(at, r.rank, seq, ev);
        } else {
            r.outbox.push((at.0, r.rank, seq, ev));
        }
    }
    /// The handling node's own id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Sends `msg` to `to` over the (implicit or configured) link.
    /// If the link is down the message is silently dropped — partition
    /// semantics per §4.1 — and the engine's drop counter increments.
    /// If the link carries an active [`FaultModel`] and the message
    /// class is faultable, loss/duplication/jitter are applied here
    /// (see [`crate::fault`] for the draw-order contract).
    ///
    /// [`FaultModel`]: crate::fault::FaultModel
    pub fn send(&mut self, to: NodeId, msg: M)
    where
        M: Clone,
    {
        self.send_after(SimDuration::ZERO, to, msg);
    }

    /// Sends with an explicit extra delay on top of link latency
    /// (e.g. modelling processing time).
    pub fn send_after(&mut self, delay: SimDuration, to: NodeId, msg: M)
    where
        M: Clone,
    {
        if !self.links.is_up(self.id, to) {
            *self.dropped += 1;
            return;
        }
        let at = self.now + self.links.latency(self.id, to) + delay;
        let model = self.faults.model_for(self.id, to);
        if model.is_none() || !(self.faults.faultable)(&msg) {
            self.push_msg(at, to, msg);
            return;
        }
        // Fault draws happen in a fixed order — loss, primary jitter,
        // duplication, duplicate jitter — and each draw only when its
        // knob is non-zero, so a given model consumes a stable slice
        // of the RNG stream per send.
        if model.loss > 0.0 && self.rng.gen_bool(model.loss) {
            self.faults.stats.lost += 1;
            return;
        }
        let mut primary_at = at;
        if model.jitter_ms > 0 {
            let j = self.rng.gen_range(0..=model.jitter_ms);
            if j > 0 {
                self.faults.stats.jittered += 1;
            }
            primary_at += SimDuration::from_millis(j);
        }
        if model.dup > 0.0 && self.rng.gen_bool(model.dup) {
            let mut dup_at = at;
            if model.jitter_ms > 0 {
                let j = self.rng.gen_range(0..=model.jitter_ms);
                if j > 0 {
                    self.faults.stats.jittered += 1;
                }
                dup_at += SimDuration::from_millis(j);
            }
            self.faults.stats.duplicated += 1;
            self.push_msg(dup_at, to, msg.clone());
        }
        self.push_msg(primary_at, to, msg);
    }

    /// Schedules `on_timer(key)` on this node after `delay`.
    #[inline]
    pub fn set_timer(&mut self, delay: SimDuration, key: u64) {
        let at = self.now + delay;
        if self.route.is_none() {
            self.queue.push_timer(at, self.id, key);
        } else {
            self.set_timer_routed(at, key);
        }
    }

    /// Timers are always node-local, so they stay in the shard's own
    /// queue — but still keyed, so their order against arriving
    /// messages is layout-invariant. Outlined like
    /// [`Ctx::push_msg_routed`]: the sharded sims are
    /// protocol-dominated, so pushing their enqueue off the serial
    /// fast path costs them nothing measurable while keeping the
    /// serial wheel microbench at full speed.
    #[cold]
    fn set_timer_routed(&mut self, at: SimTime, key: u64) {
        let r = self.route.as_mut().expect("checked by set_timer");
        let seq = *r.emit;
        *r.emit += 1;
        let ev = Event::Timer { node: self.id, key };
        self.queue.push_keyed(at, r.rank, seq, ev);
    }

    /// Deterministic per-engine RNG (a single seeded stream; event
    /// order is deterministic, so draws are too).
    pub fn rng(&mut self) -> &mut impl Rng {
        self.rng
    }

    /// Is the link from this node to `to` currently up?
    pub fn link_up(&self, to: NodeId) -> bool {
        self.links.is_up(self.id, to)
    }
}
