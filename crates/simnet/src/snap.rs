//! [`Snapshot`] impls for simnet's plain-data types.
//!
//! Types with private fields (the queue, the link table, the fault
//! plane, the engine itself) implement capture in their own modules,
//! where field access is legal; this module covers the public-field
//! value types they compose.

use snapshot::{Dec, Enc, SnapError, Snapshot};

use crate::engine::EngineStats;
use crate::fault::{FaultModel, FaultStats};
use crate::node::NodeId;
use crate::time::{SimDuration, SimTime};

impl Snapshot for SimTime {
    fn encode(&self, enc: &mut Enc) {
        enc.u64(self.0);
    }
    fn decode(dec: &mut Dec<'_>) -> Result<Self, SnapError> {
        Ok(SimTime(dec.u64()?))
    }
}

impl Snapshot for SimDuration {
    fn encode(&self, enc: &mut Enc) {
        enc.u64(self.0);
    }
    fn decode(dec: &mut Dec<'_>) -> Result<Self, SnapError> {
        Ok(SimDuration(dec.u64()?))
    }
}

impl Snapshot for NodeId {
    fn encode(&self, enc: &mut Enc) {
        enc.usize(self.0);
    }
    fn decode(dec: &mut Dec<'_>) -> Result<Self, SnapError> {
        Ok(NodeId(dec.usize()?))
    }
}

impl Snapshot for FaultModel {
    fn encode(&self, enc: &mut Enc) {
        enc.f64(self.loss);
        enc.f64(self.dup);
        enc.u64(self.jitter_ms);
    }
    fn decode(dec: &mut Dec<'_>) -> Result<Self, SnapError> {
        Ok(FaultModel {
            loss: dec.f64()?,
            dup: dec.f64()?,
            jitter_ms: dec.u64()?,
        })
    }
}

impl Snapshot for FaultStats {
    fn encode(&self, enc: &mut Enc) {
        enc.u64(self.lost);
        enc.u64(self.duplicated);
        enc.u64(self.jittered);
        enc.u64(self.dropped_at_down_node);
        enc.u64(self.timers_suppressed);
        enc.u64(self.crashes);
        enc.u64(self.restarts);
    }
    fn decode(dec: &mut Dec<'_>) -> Result<Self, SnapError> {
        Ok(FaultStats {
            lost: dec.u64()?,
            duplicated: dec.u64()?,
            jittered: dec.u64()?,
            dropped_at_down_node: dec.u64()?,
            timers_suppressed: dec.u64()?,
            crashes: dec.u64()?,
            restarts: dec.u64()?,
        })
    }
}

impl Snapshot for EngineStats {
    fn encode(&self, enc: &mut Enc) {
        enc.u64(self.delivered);
        enc.u64(self.dropped);
        enc.u64(self.timers);
        enc.u64(self.events);
    }
    fn decode(dec: &mut Dec<'_>) -> Result<Self, SnapError> {
        Ok(EngineStats {
            delivered: dec.u64()?,
            dropped: dec.u64()?,
            timers: dec.u64()?,
            events: dec.u64()?,
        })
    }
}
