//! Point-to-point links with latency and failure (partition) state.
//!
//! Links are identified by an unordered node pair. A link that was never
//! configured uses the table's default latency and is always up; this
//! keeps abstract simulations (e.g. the MASC 50×50 hierarchy, where
//! message latency barely matters next to the 48-hour waiting period)
//! free of boilerplate while letting topology-faithful simulations
//! configure every edge.

use std::collections::BTreeMap;

use crate::node::NodeId;
use crate::time::SimDuration;

/// Unordered node pair used as a link key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkKey(NodeId, NodeId);

impl LinkKey {
    /// Canonical (order-independent) key for a pair of nodes.
    pub fn new(a: NodeId, b: NodeId) -> Self {
        if a.0 <= b.0 {
            LinkKey(a, b)
        } else {
            LinkKey(b, a)
        }
    }
}

/// Configured state of one link.
#[derive(Debug, Clone, Copy)]
pub struct Link {
    /// One-way propagation delay.
    pub latency: SimDuration,
    /// Whether the link is currently passing traffic.
    pub up: bool,
}

/// The table of all configured links plus defaults for the rest.
///
/// Backed by a `BTreeMap` so the table has a deterministic iteration
/// order if one is ever added — `simnet` carries the workspace's
/// determinism contract, so no hash-ordered container may live here
/// (enforced by repolint's `unordered-iter` rule with zero allows).
#[derive(Debug, Clone)]
pub struct LinkTable {
    links: BTreeMap<LinkKey, Link>,
    default_latency: SimDuration,
}

impl LinkTable {
    /// Creates a table whose unconfigured links have `default_latency`.
    pub fn new(default_latency: SimDuration) -> Self {
        LinkTable {
            links: BTreeMap::new(),
            default_latency,
        }
    }

    /// Configures (or reconfigures) the link between `a` and `b`.
    pub fn set(&mut self, a: NodeId, b: NodeId, latency: SimDuration) {
        self.links
            .insert(LinkKey::new(a, b), Link { latency, up: true });
    }

    /// Brings the link down (messages in flight are unaffected; new
    /// sends are dropped). Creates the link with default latency if it
    /// was unconfigured.
    pub fn set_down(&mut self, a: NodeId, b: NodeId) {
        let lat = self.default_latency;
        self.links
            .entry(LinkKey::new(a, b))
            .or_insert(Link {
                latency: lat,
                up: true,
            })
            .up = false;
    }

    /// Brings the link back up.
    pub fn set_up(&mut self, a: NodeId, b: NodeId) {
        let lat = self.default_latency;
        self.links
            .entry(LinkKey::new(a, b))
            .or_insert(Link {
                latency: lat,
                up: true,
            })
            .up = true;
    }

    /// Is the link currently up? Unconfigured links are up.
    pub fn is_up(&self, a: NodeId, b: NodeId) -> bool {
        self.links.get(&LinkKey::new(a, b)).is_none_or(|l| l.up)
    }

    /// One-way latency between `a` and `b`.
    pub fn latency(&self, a: NodeId, b: NodeId) -> SimDuration {
        self.links
            .get(&LinkKey::new(a, b))
            .map_or(self.default_latency, |l| l.latency)
    }

    /// The default latency for unconfigured links.
    pub fn default_latency(&self) -> SimDuration {
        self.default_latency
    }

    /// The smallest latency any link can deliver at: the minimum of
    /// the default and every configured link's latency. This is the
    /// sharded engine's conservative lookahead bound — no message sent
    /// at time `t` can arrive before `t + min_latency()`.
    pub fn min_latency(&self) -> SimDuration {
        self.links
            .values()
            .map(|l| l.latency)
            .fold(self.default_latency, |a, b| if b < a { b } else { a })
    }
}

impl snapshot::Snapshot for LinkKey {
    fn encode(&self, enc: &mut snapshot::Enc) {
        self.0.encode(enc);
        self.1.encode(enc);
    }
    fn decode(dec: &mut snapshot::Dec<'_>) -> Result<Self, snapshot::SnapError> {
        // Re-canonicalise rather than trusting the input ordering.
        Ok(LinkKey::new(NodeId::decode(dec)?, NodeId::decode(dec)?))
    }
}

impl snapshot::Snapshot for Link {
    fn encode(&self, enc: &mut snapshot::Enc) {
        self.latency.encode(enc);
        enc.bool(self.up);
    }
    fn decode(dec: &mut snapshot::Dec<'_>) -> Result<Self, snapshot::SnapError> {
        Ok(Link {
            latency: SimDuration::decode(dec)?,
            up: dec.bool()?,
        })
    }
}

impl snapshot::Snapshot for LinkTable {
    fn encode(&self, enc: &mut snapshot::Enc) {
        self.links.encode(enc);
        self.default_latency.encode(enc);
    }
    fn decode(dec: &mut snapshot::Dec<'_>) -> Result<Self, snapshot::SnapError> {
        Ok(LinkTable {
            links: snapshot::Snapshot::decode(dec)?,
            default_latency: SimDuration::decode(dec)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_is_unordered() {
        assert_eq!(
            LinkKey::new(NodeId(1), NodeId(2)),
            LinkKey::new(NodeId(2), NodeId(1))
        );
    }

    #[test]
    fn defaults_apply_to_unconfigured_links() {
        let t = LinkTable::new(SimDuration::from_millis(10));
        assert!(t.is_up(NodeId(0), NodeId(1)));
        assert_eq!(
            t.latency(NodeId(0), NodeId(1)),
            SimDuration::from_millis(10)
        );
    }

    #[test]
    fn configure_and_fail() {
        let mut t = LinkTable::new(SimDuration::from_millis(10));
        t.set(NodeId(0), NodeId(1), SimDuration::from_millis(50));
        assert_eq!(
            t.latency(NodeId(1), NodeId(0)),
            SimDuration::from_millis(50)
        );
        t.set_down(NodeId(1), NodeId(0));
        assert!(!t.is_up(NodeId(0), NodeId(1)));
        t.set_up(NodeId(0), NodeId(1));
        assert!(t.is_up(NodeId(1), NodeId(0)));
    }

    #[test]
    fn set_down_creates_unconfigured_link() {
        let mut t = LinkTable::new(SimDuration::from_millis(5));
        t.set_down(NodeId(3), NodeId(4));
        assert!(!t.is_up(NodeId(3), NodeId(4)));
        assert_eq!(t.latency(NodeId(3), NodeId(4)), SimDuration::from_millis(5));
    }
}
