//! Deterministic fault injection: lossy links and failing nodes.
//!
//! The paper's robustness story (BGMP tree repair after peer loss,
//! MASC claim–collide under message loss) only means something if the
//! chaos itself is reproducible. This module therefore injects every
//! fault from the engine's single seeded RNG stream:
//!
//! * **per-link [`FaultModel`]s** — independent message loss,
//!   duplication, and bounded-jitter re-enqueue (reordering) applied at
//!   send time in [`Ctx::send`](crate::node::Ctx::send);
//! * **scheduled link flaps** — the existing
//!   [`Engine::schedule_partition`](crate::engine::Engine::schedule_partition)
//!   events, usually driven from a seeded chaos plan;
//! * **node crash/restart** — fail-stop semantics via
//!   [`Engine::schedule_crash`](crate::engine::Engine::schedule_crash):
//!   while a node is down the engine blackholes its messages and
//!   suppresses its timers; on restart the node's
//!   [`Node::on_restart`](crate::node::Node::on_restart) hook runs.
//!
//! # Determinism contract
//!
//! Fault decisions draw from the engine RNG in a fixed order per send
//! (loss, then jitter, then duplication, then the duplicate's jitter),
//! and **only** when the link's model is active and the message class
//! is faultable. A run with no models configured performs zero draws,
//! so enabling the fault plane for one link leaves every other
//! simulation byte-identical. No wall-clock time and no ambient RNG is
//! consulted anywhere (repolint's `wall-clock`/`ambient-rng` rules
//! cover this module like the rest of `simnet`).
//!
//! The faultable-class filter is a plain `fn(&M) -> bool`, not a
//! closure, so a fault plane carries no hidden captured state. Harness
//! code uses it to model transport semantics: messages that ride a
//! reliable transport (e.g. BGP/BGMP updates over TCP) are exempt from
//! loss, while liveness probes and data packets are fair game.

use std::collections::{BTreeMap, BTreeSet};

use snapshot::Snapshot;

use crate::link::LinkKey;
use crate::node::NodeId;

/// Per-link fault model. Probabilities are independent per message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultModel {
    /// Probability a message is silently lost.
    pub loss: f64,
    /// Probability a message is delivered twice.
    pub dup: f64,
    /// Maximum extra delivery delay in ms (uniform in `0..=jitter_ms`),
    /// drawn per copy — this is what produces reordering.
    pub jitter_ms: u64,
}

impl FaultModel {
    /// The identity model: no faults, and — critically — no RNG draws.
    pub const NONE: FaultModel = FaultModel {
        loss: 0.0,
        dup: 0.0,
        jitter_ms: 0,
    };

    /// A pure-loss model.
    pub fn lossy(loss: f64) -> Self {
        FaultModel {
            loss,
            dup: 0.0,
            jitter_ms: 0,
        }
    }

    /// Does this model inject nothing (and therefore draw nothing)?
    pub fn is_none(&self) -> bool {
        self.loss <= 0.0 && self.dup <= 0.0 && self.jitter_ms == 0
    }
}

/// Counters for every fault the plane has injected.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultStats {
    /// Messages dropped by a loss model.
    pub lost: u64,
    /// Extra copies enqueued by a duplication model.
    pub duplicated: u64,
    /// Copies delivered late by a non-zero jitter draw.
    pub jittered: u64,
    /// Messages blackholed because the recipient was crashed.
    pub dropped_at_down_node: u64,
    /// Timer firings suppressed on crashed nodes.
    pub timers_suppressed: u64,
    /// NodeDown events processed.
    pub crashes: u64,
    /// NodeUp events processed.
    pub restarts: u64,
}

fn faultable_default<M>(_: &M) -> bool {
    true
}

/// The engine's fault state: per-link models, the crashed-node set,
/// the faultable-class filter, and injection counters.
pub struct FaultPlane<M> {
    default_model: FaultModel,
    per_link: BTreeMap<LinkKey, FaultModel>,
    down: BTreeSet<NodeId>,
    // lint:allow(snapshot-field-coverage) — fn-pointer filter, volatile by design; resume keeps the rebuilt plane's filter
    pub(crate) faultable: fn(&M) -> bool,
    pub(crate) stats: FaultStats,
}

impl<M> Default for FaultPlane<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> FaultPlane<M> {
    /// An inert fault plane (all models [`FaultModel::NONE`], every
    /// message class faultable).
    pub fn new() -> Self {
        FaultPlane {
            default_model: FaultModel::NONE,
            per_link: BTreeMap::new(),
            down: BTreeSet::new(),
            faultable: faultable_default::<M>,
            stats: FaultStats::default(),
        }
    }

    /// Sets the model applied to links without a per-link override.
    pub fn set_default_model(&mut self, model: FaultModel) {
        self.default_model = model;
    }

    /// Sets (or, with [`FaultModel::NONE`], effectively clears) the
    /// model for the link between `a` and `b`.
    pub fn set_link_model(&mut self, a: NodeId, b: NodeId, model: FaultModel) {
        self.per_link.insert(LinkKey::new(a, b), model);
    }

    /// Removes every configured model (faults cease; RNG draws stop).
    pub fn clear_models(&mut self) {
        self.default_model = FaultModel::NONE;
        self.per_link.clear();
    }

    /// The model in effect for the link between `a` and `b`.
    pub fn model_for(&self, a: NodeId, b: NodeId) -> FaultModel {
        self.per_link
            .get(&LinkKey::new(a, b))
            .copied()
            .unwrap_or(self.default_model)
    }

    /// Restricts fault injection to messages for which `f` returns
    /// true (e.g. exempting reliable-transport control traffic).
    pub fn set_faultable(&mut self, f: fn(&M) -> bool) {
        self.faultable = f;
    }

    /// Is `node` currently crashed?
    pub fn is_down(&self, node: NodeId) -> bool {
        self.down.contains(&node)
    }

    /// The currently crashed nodes.
    pub fn down_nodes(&self) -> &BTreeSet<NodeId> {
        &self.down
    }

    /// Injection counters so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Copies the *configuration* (models and faultable filter) from
    /// `master`, leaving dynamic state (down set, counters) alone. The
    /// sharded engine calls this at every `run_until` entry so each
    /// shard's plane reflects configuration applied to the master
    /// plane between runs.
    pub(crate) fn copy_config_from(&mut self, master: &FaultPlane<M>) {
        self.default_model = master.default_model;
        self.per_link = master.per_link.clone();
        self.faultable = master.faultable;
    }

    /// The crashed-node set, mutable (shard merge/resume plumbing).
    pub(crate) fn down_mut(&mut self) -> &mut BTreeSet<NodeId> {
        &mut self.down
    }

    /// Replaces the counters (shard merge/resume plumbing).
    pub(crate) fn set_stats(&mut self, stats: FaultStats) {
        self.stats = stats;
    }

    pub(crate) fn mark_down(&mut self, node: NodeId) {
        if self.down.insert(node) {
            self.stats.crashes += 1;
        }
    }

    /// Marks `node` as restarted; true if it was down.
    pub(crate) fn mark_up(&mut self, node: NodeId) -> bool {
        let was_down = self.down.remove(&node);
        if was_down {
            self.stats.restarts += 1;
        }
        was_down
    }
}

impl<M> snapshot::SnapshotState for FaultPlane<M> {
    /// Captures models, the crashed-node set, and counters. The
    /// faultable-class filter is a plain `fn` pointer derived from the
    /// harness's message type — volatile by design; resume keeps
    /// whatever filter the rebuilt plane was configured with.
    fn encode_state(&self, enc: &mut snapshot::Enc) {
        self.default_model.encode(enc);
        self.per_link.encode(enc);
        self.down.encode(enc);
        self.stats.encode(enc);
    }

    fn restore_state(&mut self, dec: &mut snapshot::Dec<'_>) -> Result<(), snapshot::SnapError> {
        self.default_model = FaultModel::decode(dec)?;
        self.per_link = Snapshot::decode(dec)?;
        self.down = Snapshot::decode(dec)?;
        self.stats = FaultStats::decode(dec)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_link_model_overrides_default() {
        let mut fp: FaultPlane<u32> = FaultPlane::new();
        fp.set_default_model(FaultModel::lossy(0.5));
        fp.set_link_model(NodeId(0), NodeId(1), FaultModel::NONE);
        assert!(fp.model_for(NodeId(1), NodeId(0)).is_none());
        assert_eq!(fp.model_for(NodeId(0), NodeId(2)).loss, 0.5);
        fp.clear_models();
        assert!(fp.model_for(NodeId(0), NodeId(2)).is_none());
    }

    #[test]
    fn down_set_tracks_crash_and_restart() {
        let mut fp: FaultPlane<u32> = FaultPlane::new();
        fp.mark_down(NodeId(3));
        fp.mark_down(NodeId(3)); // idempotent
        assert!(fp.is_down(NodeId(3)));
        assert_eq!(fp.stats().crashes, 1);
        assert!(fp.mark_up(NodeId(3)));
        assert!(!fp.mark_up(NodeId(3)));
        assert_eq!(fp.stats().restarts, 1);
    }

    #[test]
    fn none_model_is_none() {
        assert!(FaultModel::NONE.is_none());
        assert!(!FaultModel::lossy(0.1).is_none());
        assert!(!FaultModel {
            loss: 0.0,
            dup: 0.0,
            jitter_ms: 5
        }
        .is_none());
    }
}
