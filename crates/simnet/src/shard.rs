//! Sharded, domain-decomposed execution with conservative lookahead.
//!
//! [`ShardedEngine`] partitions the node population into shards, each
//! owning its nodes, their bucket-wheel [`EventQueue`], and their RNG
//! streams — the domain-decomposition shape of cellular_raza's chili
//! backend (a domain deconstructs into subdomains that each own their
//! cells), applied to the AS graph. Cross-shard messages cross only at
//! barrier rounds bounded by the minimum link latency (conservative
//! lookahead), so shards never observe each other mid-window and the
//! merged execution is **byte-deterministic at any shard count**.
//!
//! # The determinism argument
//!
//! 1. **Windows.** Let `L = min link latency (≥ 1 ms)`. A window
//!    anchors at the global earliest pending event time `W` and spans
//!    `[W, W + L)`. Any message sent while handling an event at time
//!    `t ∈ [W, W + L)` arrives at `t + latency ≥ W + L` — beyond the
//!    window — whether its recipient is local (it lands in the shard
//!    queue but is not popped this window) or remote (it lands in the
//!    outbox and merges at the barrier). So event handling inside a
//!    window can only depend on state established *before* the window,
//!    which every shard has in full for the nodes and links it owns.
//! 2. **Keys.** Every event carries a `(time, rank, seq)` key that
//!    does not depend on the partitioning: rank is the source node's
//!    id + 1 (0 for external injections), seq the source's private
//!    emit counter (a global counter for external injections). Shard
//!    queues pop in key order, so the events delivered to any single
//!    node — and the per-node RNG draws their handlers make — are the
//!    same sequence under every layout.
//! 3. **RNG.** Each node owns a `StdRng` seeded from
//!    `seed ^ splitmix64(id)`; fault draws for a send use the sending
//!    node's stream. No draw order is shared across nodes, so window
//!    scheduling order cannot leak into results.
//!
//! Together: same per-node event sequences, same per-node draws, same
//! merged counters — byte-identical outputs, fingerprints, and
//! checkpoints for `--shards 1`, `2`, `4`, …
//!
//! The serial [`Engine`] is *not* byte-identical to `--shards 1` (it
//! draws from one shared RNG stream); `shards = 0` therefore selects
//! the legacy serial engine in [`SimEngine`] and preserves every
//! historical golden, while any `shards ≥ 1` selects this engine and a
//! shard-count-invariant schedule.
//!
//! # Threads
//!
//! Shards with work in the current window run on scoped threads when
//! the host has more than one core (and at least two shards are
//! active); otherwise the window executes serially on the caller.
//! Both paths produce identical bytes — threading here is purely a
//! wall-clock lever, exactly like `bench::par`'s task fan-out.

use std::any::Any;

use rand::rngs::StdRng;
use rand::SeedableRng;
use snapshot::{SnapError, Snapshot, SnapshotState};

use crate::engine::{Engine, EngineStats, ScheduleError, ENGINE_MODE_SHARDED, SNAP_KIND_ENGINE};
use crate::event::{Event, EventQueue};
use crate::fault::FaultPlane;
use crate::link::LinkTable;
use crate::node::{Ctx, Node, NodeId, ShardRoute};
use crate::time::{SimDuration, SimTime};
use crate::trace::Trace;

/// splitmix64 finalizer — the same per-stream seed derivation the
/// bench harness uses for task seeds, here keyed by node id.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Seed of node `id`'s private RNG stream (layout-invariant).
fn node_seed(seed: u64, id: usize) -> u64 {
    seed ^ splitmix64(id as u64)
}

/// One shard: the nodes it owns, their queue, RNG streams and emit
/// counters, plus working copies of the link table and fault plane
/// (synced from the master at each `run_until`, merged back after).
struct Shard<M> {
    /// Owned nodes, indexed by local index (see
    /// `ShardedEngine::local`).
    nodes: Vec<Option<Box<dyn Node<M> + Send>>>,
    /// Per-node RNG streams (parallel to `nodes`).
    rngs: Vec<StdRng>,
    /// Per-node emit counters — the layout-invariant `seq` component
    /// of every event key this shard's nodes produce.
    emit: Vec<u64>,
    /// The shard-owned event queue.
    queue: EventQueue<M>,
    /// Working copy of the link table (reads during a window).
    links: LinkTable,
    /// Working copy of the fault plane: config mirrors the master;
    /// down set and counters are authoritative for owned nodes.
    faults: FaultPlane<M>,
    /// This shard's share of the engine counters.
    stats: EngineStats,
    /// Cross-shard sends of the current window, `(t, rank, seq, ev)`.
    outbox: Vec<(u64, u64, u64, Event<M>)>,
    /// Link up/down transitions processed (primary copies only), for
    /// replay onto the master table at merge.
    link_log: Vec<(NodeId, NodeId, bool)>,
}

impl<M: 'static> Shard<M> {
    fn new(default_latency: SimDuration) -> Self {
        Shard {
            nodes: Vec::new(),
            rngs: Vec::new(),
            emit: Vec::new(),
            queue: EventQueue::new(),
            links: LinkTable::new(default_latency),
            faults: FaultPlane::new(),
            stats: EngineStats::default(),
            outbox: Vec::new(),
            link_log: Vec::new(),
        }
    }

    /// Is this shard the endpoint that counts/logs a link event? The
    /// first *registered* endpoint owns it, so replicated copies are
    /// counted exactly once regardless of the layout.
    fn primary_for(&self, owner: &[u32], me: u32, a: NodeId, b: NodeId) -> bool {
        match owner.get(a.0) {
            Some(&s) => s == me,
            None => owner.get(b.0) == Some(&me),
        }
    }

    /// Runs every pending event with `time <= until` (the window's
    /// inclusive end).
    fn run_window(&mut self, owner: &[u32], local: &[u32], me: u32, until: SimTime) {
        while let Some((at, ev)) = self.queue.pop_le(until) {
            self.dispatch(owner, local, me, at, ev);
        }
    }

    fn dispatch(&mut self, owner: &[u32], local: &[u32], me: u32, at: SimTime, event: Event<M>) {
        match event {
            Event::Message { from, to, msg } => {
                self.stats.events += 1;
                if self.faults.is_down(to) {
                    self.faults.stats.dropped_at_down_node += 1;
                    return;
                }
                self.stats.delivered += 1;
                self.with_node(owner, local, me, at, to, |n, ctx| {
                    n.on_message(ctx, from, msg)
                });
            }
            Event::Timer { node, key } => {
                self.stats.events += 1;
                if self.faults.is_down(node) {
                    self.faults.stats.timers_suppressed += 1;
                    return;
                }
                self.stats.timers += 1;
                self.with_node(owner, local, me, at, node, |n, ctx| n.on_timer(ctx, key));
            }
            Event::LinkDown(a, b) => {
                if self.primary_for(owner, me, a, b) {
                    self.stats.events += 1;
                    self.link_log.push((a, b, false));
                }
                self.links.set_down(a, b);
            }
            Event::LinkUp(a, b) => {
                if self.primary_for(owner, me, a, b) {
                    self.stats.events += 1;
                    self.link_log.push((a, b, true));
                }
                self.links.set_up(a, b);
            }
            Event::NodeDown(n) => {
                self.stats.events += 1;
                self.faults.mark_down(n);
            }
            Event::NodeUp(n) => {
                self.stats.events += 1;
                if self.faults.mark_up(n) {
                    self.with_node(owner, local, me, at, n, |node, ctx| node.on_restart(ctx));
                }
            }
        }
    }

    fn with_node(
        &mut self,
        owner: &[u32],
        local: &[u32],
        me: u32,
        at: SimTime,
        id: NodeId,
        f: impl FnOnce(&mut dyn Node<M>, &mut Ctx<'_, M>),
    ) {
        let li = local[id.0] as usize;
        let Some(slot) = self.nodes.get_mut(li) else {
            return;
        };
        let Some(mut node) = slot.take() else {
            return;
        };
        let mut ctx = Ctx {
            id,
            now: at,
            queue: &mut self.queue,
            links: &self.links,
            rng: &mut self.rngs[li],
            faults: &mut self.faults,
            dropped: &mut self.stats.dropped,
            route: Some(ShardRoute {
                owner,
                shard: me,
                outbox: &mut self.outbox,
                rank: id.0 as u64 + 1,
                emit: &mut self.emit[li],
            }),
        };
        f(node.as_mut(), &mut ctx);
        self.nodes[li] = Some(node);
    }
}

/// The sharded engine. API mirrors [`Engine`]; see the module docs
/// for the execution and determinism model.
pub struct ShardedEngine<M> {
    shards: Vec<Shard<M>>,
    /// Node id → owning shard.
    owner: Vec<u32>,
    /// Node id → index within its shard.
    local: Vec<u32>,
    /// Master link table: authoritative between runs (external
    /// configuration lands here), synced to shards at `run_until`.
    links: LinkTable,
    /// Master fault plane: configuration is authoritative between
    /// runs; down set and counters hold the merged view.
    faults: FaultPlane<M>,
    /// Merged counters (sums over shards).
    stats: EngineStats,
    now: SimTime,
    seed: u64,
    /// Sequence counter for externally injected events (rank 0).
    ext_seq: u64,
    started: bool,
}

impl<M: Send + 'static> ShardedEngine<M> {
    /// Creates a sharded engine with `shards` shards (min 1).
    pub fn new(seed: u64, default_latency: SimDuration, shards: usize) -> Self {
        let shards = shards.max(1);
        ShardedEngine {
            shards: (0..shards).map(|_| Shard::new(default_latency)).collect(),
            owner: Vec::new(),
            local: Vec::new(),
            links: LinkTable::new(default_latency),
            faults: FaultPlane::new(),
            stats: EngineStats::default(),
            now: SimTime::ZERO,
            seed,
            ext_seq: 0,
            started: false,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Registers a node on `shard` (clamped to the shard count),
    /// returning its globally sequential id.
    pub fn add_node_in(&mut self, shard: usize, node: Box<dyn Node<M> + Send>) -> NodeId {
        self.add_node_with_in(shard, |_| node)
    }

    /// Registers a node built from its own id on `shard`.
    pub fn add_node_with_in(
        &mut self,
        shard: usize,
        f: impl FnOnce(NodeId) -> Box<dyn Node<M> + Send>,
    ) -> NodeId {
        let id = NodeId(self.owner.len());
        let s = shard.min(self.shards.len() - 1);
        let sh = &mut self.shards[s];
        self.owner.push(s as u32);
        self.local.push(sh.nodes.len() as u32);
        sh.nodes.push(Some(f(id)));
        sh.rngs
            .push(StdRng::seed_from_u64(node_seed(self.seed, id.0)));
        sh.emit.push(0);
        id
    }

    /// Number of registered nodes.
    pub fn node_count(&self) -> usize {
        self.owner.len()
    }

    /// Immutable access to a node downcast to its concrete type.
    pub fn node_as<T: 'static>(&self, id: NodeId) -> Option<&T> {
        let s = *self.owner.get(id.0)? as usize;
        let li = self.local[id.0] as usize;
        let node = self.shards[s].nodes.get(li)?.as_deref()?;
        (node as &dyn Any).downcast_ref::<T>()
    }

    /// Mutable access to a node downcast to its concrete type.
    pub fn node_as_mut<T: 'static>(&mut self, id: NodeId) -> Option<&mut T> {
        let s = *self.owner.get(id.0)? as usize;
        let li = self.local[id.0] as usize;
        let node = self.shards[s].nodes.get_mut(li)?.as_deref_mut()?;
        (node as &mut dyn Any).downcast_mut::<T>()
    }

    /// The master link table, for configuration (valid between runs).
    pub fn links_mut(&mut self) -> &mut LinkTable {
        &mut self.links
    }

    /// The master link table, read-only (merged view between runs).
    pub fn links(&self) -> &LinkTable {
        &self.links
    }

    /// The master fault plane, for configuration (valid between runs).
    pub fn faults_mut(&mut self) -> &mut FaultPlane<M> {
        &mut self.faults
    }

    /// The master fault plane, read-only (merged view between runs).
    pub fn faults(&self) -> &FaultPlane<M> {
        &self.faults
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Merged counters (valid between runs).
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Pending event count across all shards (diagnostics).
    pub fn pending(&self) -> usize {
        self.shards.iter().map(|s| s.queue.len()).sum()
    }

    /// Routes an externally injected event (rank 0, global sequence)
    /// to the owning shard; link events replicate to both endpoint
    /// owners under one shared key.
    fn push_routed(&mut self, at: SimTime, ev: Event<M>) {
        debug_assert!(at >= self.now, "scheduling into the past");
        let seq = self.ext_seq;
        self.ext_seq += 1;
        match ev {
            Event::Message { ref to, .. } => {
                let s = self.owner[to.0] as usize;
                self.shards[s].queue.push_keyed(at, 0, seq, ev);
            }
            Event::Timer { ref node, .. } => {
                let s = self.owner[node.0] as usize;
                self.shards[s].queue.push_keyed(at, 0, seq, ev);
            }
            Event::NodeDown(n) => {
                let s = self.owner[n.0] as usize;
                self.shards[s]
                    .queue
                    .push_keyed(at, 0, seq, Event::NodeDown(n));
            }
            Event::NodeUp(n) => {
                let s = self.owner[n.0] as usize;
                self.shards[s]
                    .queue
                    .push_keyed(at, 0, seq, Event::NodeUp(n));
            }
            Event::LinkDown(a, b) => {
                for s in self.link_shards(a, b) {
                    self.shards[s]
                        .queue
                        .push_keyed(at, 0, seq, Event::LinkDown(a, b));
                }
            }
            Event::LinkUp(a, b) => {
                for s in self.link_shards(a, b) {
                    self.shards[s]
                        .queue
                        .push_keyed(at, 0, seq, Event::LinkUp(a, b));
                }
            }
        }
    }

    /// The (one or two) shards that must observe a link event: the
    /// owners of its registered endpoints.
    fn link_shards(&self, a: NodeId, b: NodeId) -> Vec<usize> {
        let mut out = Vec::with_capacity(2);
        if let Some(&s) = self.owner.get(a.0) {
            out.push(s as usize);
        }
        if let Some(&s) = self.owner.get(b.0) {
            if out.first() != Some(&(s as usize)) {
                out.push(s as usize);
            }
        }
        out
    }

    /// Injects a message from [`NodeId::EXTERNAL`] to `to` at `at`.
    pub fn schedule_message(&mut self, at: SimTime, to: NodeId, msg: M) {
        self.push_routed(
            at,
            Event::Message {
                from: NodeId::EXTERNAL,
                to,
                msg,
            },
        );
    }

    /// Injects a message with an explicit sender. Still an external
    /// injection for ordering purposes (rank 0, global sequence).
    pub fn schedule_message_from(&mut self, at: SimTime, from: NodeId, to: NodeId, msg: M) {
        self.push_routed(at, Event::Message { from, to, msg });
    }

    /// Schedules a timer firing on `node` at `at`.
    pub fn schedule_timer(&mut self, at: SimTime, node: NodeId, key: u64) {
        self.push_routed(at, Event::Timer { node, key });
    }

    /// Schedules a link partition; see [`Engine::schedule_partition`]
    /// for the backwards-window contract.
    pub fn schedule_partition(
        &mut self,
        a: NodeId,
        b: NodeId,
        at: SimTime,
        until: SimTime,
    ) -> Result<(), ScheduleError> {
        if until < at {
            return Err(ScheduleError::BackwardsWindow { at, until });
        }
        self.push_routed(at, Event::LinkDown(a, b));
        self.push_routed(until, Event::LinkUp(a, b));
        Ok(())
    }

    /// Schedules a fail-stop crash/restart; see
    /// [`Engine::schedule_crash`] for the backwards-window contract.
    pub fn schedule_crash(
        &mut self,
        node: NodeId,
        at: SimTime,
        until: SimTime,
    ) -> Result<(), ScheduleError> {
        if until < at {
            return Err(ScheduleError::BackwardsWindow { at, until });
        }
        self.push_routed(at, Event::NodeDown(node));
        self.push_routed(until, Event::NodeUp(node));
        Ok(())
    }

    /// Calls every node's `on_start` (idempotent). Start order across
    /// nodes is unobservable: effects are keyed and RNG streams are
    /// per node.
    pub fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        self.sync_config();
        for si in 0..self.shards.len() {
            let me = si as u32;
            for li in 0..self.shards[si].nodes.len() {
                // Recover the global id from the shard-local index.
                let id = NodeId(
                    self.owner
                        .iter()
                        .zip(self.local.iter())
                        .position(|(&o, &l)| o == me && l as usize == li)
                        .expect("registered node"),
                );
                let (owner, local) = (&self.owner, &self.local);
                self.shards[si].with_node(owner, local, me, self.now, id, |n, ctx| n.on_start(ctx));
            }
        }
        // Startup runs outside any window, so cross-shard sends from
        // `on_start` must be delivered to their owners now — leaving
        // them for the first window's barrier would both defer them
        // past their due time and trip the lookahead check (they can
        // land *inside* the first window, which anchors at the global
        // minimum event time).
        self.deliver_mail(None);
    }

    /// Drains every shard's outbox into the destination queues in the
    /// layout-invariant `(time, rank, seq)` order. `window_end` is the
    /// inclusive end of the window the mail was produced in (`None`
    /// at startup); conservative lookahead guarantees in-window
    /// executions never produce mail due inside the window.
    fn deliver_mail(&mut self, window_end: Option<SimTime>) {
        let mut mail: Vec<(u64, u64, u64, Event<M>)> = Vec::new();
        for sh in &mut self.shards {
            mail.append(&mut sh.outbox);
        }
        mail.sort_unstable_by_key(|&(t, r, s, _)| (t, r, s));
        for (t, r, s, ev) in mail {
            let to = match &ev {
                Event::Message { to, .. } => *to,
                _ => unreachable!("only messages cross shards"),
            };
            if let Some(end) = window_end {
                debug_assert!(
                    t > end.0,
                    "lookahead violation: cross-shard arrival inside window"
                );
            }
            let dst = self.owner[to.0] as usize;
            self.shards[dst].queue.push_keyed(SimTime(t), r, s, ev);
        }
    }

    /// The conservative lookahead in ms: no message can arrive sooner
    /// than this after its send. Clamped to ≥ 1 — a zero-latency link
    /// would make windows empty, so it is rejected outright.
    fn lookahead_ms(&self) -> u64 {
        let la = self.links.min_latency().as_millis();
        assert!(
            la >= 1,
            "sharded execution requires every link latency >= 1 ms (lookahead bound)"
        );
        la
    }

    /// Pushes master configuration down into every shard's working
    /// copies (link table clone, fault-plane config).
    fn sync_config(&mut self) {
        for sh in &mut self.shards {
            sh.links = self.links.clone();
            sh.faults.copy_config_from(&self.faults);
        }
    }

    /// Folds shard state back into the master view: link transitions
    /// replay onto the master table, the down set is the union of the
    /// shard down sets, counters are sums.
    fn merge(&mut self) {
        let mut fstats = crate::fault::FaultStats::default();
        let mut stats = EngineStats::default();
        self.faults.down_mut().clear();
        for sh in &mut self.shards {
            for (a, b, up) in sh.link_log.drain(..) {
                if up {
                    self.links.set_up(a, b);
                } else {
                    self.links.set_down(a, b);
                }
            }
            for &n in sh.faults.down_nodes() {
                self.faults.down_mut().insert(n);
            }
            let fs = sh.faults.stats();
            fstats.lost += fs.lost;
            fstats.duplicated += fs.duplicated;
            fstats.jittered += fs.jittered;
            fstats.dropped_at_down_node += fs.dropped_at_down_node;
            fstats.timers_suppressed += fs.timers_suppressed;
            fstats.crashes += fs.crashes;
            fstats.restarts += fs.restarts;
            stats.delivered += sh.stats.delivered;
            stats.dropped += sh.stats.dropped;
            stats.timers += sh.stats.timers;
            stats.events += sh.stats.events;
        }
        self.faults.set_stats(fstats);
        self.stats = stats;
    }

    /// Runs all events scheduled up to and including `until` in
    /// lookahead-bounded barrier windows, then advances the clock.
    /// Between windows the next anchor jumps straight to the global
    /// earliest pending event, so idle stretches (night-time in a
    /// MASC run) cost zero barriers.
    pub fn run_until(&mut self, until: SimTime) {
        self.start();
        self.sync_config();
        let la = self.lookahead_ms();
        let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
        while let Some(w) = self.shards.iter().filter_map(|s| s.queue.peek_time()).min() {
            if w > until {
                break;
            }
            // Inclusive window end: [W, W + L) ∩ [0, until].
            let end = SimTime((w.0 + (la - 1)).min(until.0));
            let owner = &self.owner;
            let local = &self.local;
            let active = self
                .shards
                .iter()
                .filter(|s| s.queue.peek_time().is_some_and(|t| t <= end))
                .count();
            if active >= 2 && cores > 1 {
                std::thread::scope(|sc| {
                    for (i, sh) in self.shards.iter_mut().enumerate() {
                        let me = i as u32;
                        sc.spawn(move || sh.run_window(owner, local, me, end));
                    }
                });
            } else {
                for (i, sh) in self.shards.iter_mut().enumerate() {
                    sh.run_window(owner, local, i as u32, end);
                }
            }
            // Barrier: merge outboxes into destination shard queues.
            // Keys are globally unique and layout-invariant, so the
            // sort makes the merge independent of shard iteration
            // order.
            self.deliver_mail(Some(end));
        }
        self.merge();
        if until > self.now {
            self.now = until;
        }
    }

    /// Runs until no events remain or about `max_events` have been
    /// processed. The cap is checked at window granularity (this is a
    /// livelock guard, not a precise budget). Returns the number of
    /// events processed.
    pub fn run_until_idle(&mut self, max_events: u64) -> u64 {
        self.start();
        let before = self.merged_events();
        let la = self.lookahead_ms();
        while let Some(w) = self.shards.iter().filter_map(|s| s.queue.peek_time()).min() {
            self.run_until(SimTime(w.0 + la - 1));
            if self.merged_events() - before >= max_events {
                break;
            }
        }
        self.merged_events() - before
    }

    fn merged_events(&self) -> u64 {
        self.shards.iter().map(|s| s.stats.events).sum()
    }
}

impl<M: Snapshot + Send + 'static> ShardedEngine<M> {
    /// Captures the engine's complete dynamic state as one
    /// **shard-count-invariant** v2 blob: globals, then per-node
    /// state (RNG stream, emit counter, node state) in global id
    /// order, then all pending events with their layout-invariant
    /// keys in key order (replicated link events deduplicated to
    /// their primary copy). Checkpointing the same simulation at any
    /// shard count yields byte-identical blobs, and a blob restores
    /// onto an engine built with any shard count.
    ///
    /// Call only between runs (never from inside a dispatch).
    pub fn checkpoint<N: Node<M> + SnapshotState>(&self) -> Result<Vec<u8>, SnapError> {
        let mut enc = snapshot::Enc::with_header(SNAP_KIND_ENGINE);
        enc.u8(ENGINE_MODE_SHARDED);
        enc.u64(self.now.0);
        enc.u64(self.ext_seq);
        enc.bool(self.started);
        self.stats.encode(&mut enc);
        self.links.encode(&mut enc);
        self.faults.encode_state(&mut enc);
        enc.seq(self.owner.len());
        for id in 0..self.owner.len() {
            let sh = &self.shards[self.owner[id] as usize];
            let li = self.local[id] as usize;
            sh.rngs[li].state().encode(&mut enc);
            enc.u64(sh.emit[li]);
            let node = sh.nodes[li]
                .as_deref()
                .ok_or(SnapError::Invalid("checkpoint during dispatch"))?;
            let node = (node as &dyn Any)
                .downcast_ref::<N>()
                .ok_or(SnapError::Invalid("node is not the expected type"))?;
            node.encode_state(&mut enc);
        }
        // Pending events, globally sorted. A link event is emitted
        // only by its primary owner's queue; both replicas share one
        // key, so the secondary copy is redundant (re-created on
        // resume).
        let mut items: Vec<(u64, u64, u64, &Event<M>)> = Vec::new();
        for (si, sh) in self.shards.iter().enumerate() {
            for (t, rank, seq, ev) in sh.queue.items_keyed() {
                let keep = match ev {
                    Event::LinkDown(a, b) | Event::LinkUp(a, b) => {
                        sh.primary_for(&self.owner, si as u32, *a, *b)
                    }
                    _ => true,
                };
                if keep {
                    items.push((t, rank, seq, ev));
                }
            }
        }
        items.sort_unstable_by_key(|&(t, r, s, _)| (t, r, s));
        enc.seq(items.len());
        for (t, rank, seq, ev) in items {
            enc.u64(t);
            enc.u64(rank);
            enc.u64(seq);
            ev.encode(enc_mut(&mut enc));
        }
        Ok(enc.finish())
    }

    /// Restores state captured by [`ShardedEngine::checkpoint`] onto
    /// this engine, which must have been rebuilt as at tick zero with
    /// the same node population — but **any** shard count: the blob
    /// is node-major, so events and per-node streams re-distribute to
    /// whatever layout this engine has.
    pub fn resume<N: Node<M> + SnapshotState>(&mut self, bytes: &[u8]) -> Result<(), SnapError> {
        let mut dec = snapshot::Dec::new(bytes);
        let version = dec.header(SNAP_KIND_ENGINE)?;
        if version < 2 || dec.u8()? != ENGINE_MODE_SHARDED {
            return Err(SnapError::Invalid(
                "snapshot is from the serial engine; resume it with `Engine::resume`",
            ));
        }
        let now = SimTime(dec.u64()?);
        let ext_seq = dec.u64()?;
        let started = dec.bool()?;
        let stats = EngineStats::decode(&mut dec)?;
        let links = LinkTable::decode(&mut dec)?;
        self.faults.restore_state(&mut dec)?;
        let n = dec.seq()?;
        if n != self.owner.len() {
            return Err(SnapError::Invalid("node count differs from snapshot"));
        }
        // Wipe dynamic shard state, then deal the per-node section.
        for sh in &mut self.shards {
            sh.queue = EventQueue::new();
            sh.outbox.clear();
            sh.link_log.clear();
            sh.stats = EngineStats::default();
            sh.faults.set_stats(crate::fault::FaultStats::default());
            sh.faults.down_mut().clear();
        }
        for id in 0..n {
            let rng_state = <[u64; 4]>::decode(&mut dec)?;
            let emit = dec.u64()?;
            let si = self.owner[id] as usize;
            let li = self.local[id] as usize;
            let sh = &mut self.shards[si];
            sh.rngs[li] = StdRng::from_state(rng_state);
            sh.emit[li] = emit;
            let node = sh.nodes[li]
                .as_deref_mut()
                .ok_or(SnapError::Invalid("resume during dispatch"))?;
            let node = (node as &mut dyn Any)
                .downcast_mut::<N>()
                .ok_or(SnapError::Invalid("node is not the expected type"))?;
            node.restore_state(&mut dec)?;
        }
        let n_events = dec.seq()?;
        for _ in 0..n_events {
            let t = SimTime(dec.u64()?);
            let rank = dec.u64()?;
            let seq = dec.u64()?;
            let ev = Event::<M>::decode(&mut dec)?;
            match ev {
                Event::LinkDown(a, b) => {
                    for s in self.link_shards(a, b) {
                        self.shards[s]
                            .queue
                            .push_keyed(t, rank, seq, Event::LinkDown(a, b));
                    }
                }
                Event::LinkUp(a, b) => {
                    for s in self.link_shards(a, b) {
                        self.shards[s]
                            .queue
                            .push_keyed(t, rank, seq, Event::LinkUp(a, b));
                    }
                }
                ev => {
                    let to = match &ev {
                        Event::Message { to, .. } => *to,
                        Event::Timer { node, .. } => *node,
                        Event::NodeDown(n) | Event::NodeUp(n) => *n,
                        _ => unreachable!(),
                    };
                    let s = self.owner[to.0] as usize;
                    self.shards[s].queue.push_keyed(t, rank, seq, ev);
                }
            }
        }
        dec.finish()?;
        // Distribute the merged down set to owners; counters are only
        // ever observed as sums, so shard 0 carries the totals.
        let down: Vec<NodeId> = self.faults.down_nodes().iter().copied().collect();
        for nd in down {
            if let Some(&s) = self.owner.get(nd.0) {
                self.shards[s as usize].faults.down_mut().insert(nd);
            }
        }
        self.shards[0].faults.set_stats(self.faults.stats());
        self.shards[0].stats = stats;
        self.links = links;
        self.now = now;
        self.ext_seq = ext_seq;
        self.started = started;
        self.stats = stats;
        self.sync_config();
        Ok(())
    }
}

/// `Enc` re-borrow helper (keeps the encode call sites readable).
fn enc_mut(enc: &mut snapshot::Enc) -> &mut snapshot::Enc {
    enc
}

/// The engine selector every harness holds: `shards = 0` (the
/// default everywhere) is the legacy serial [`Engine`] — historical
/// goldens, fingerprints, and snapshots are bit-for-bit unchanged —
/// while `shards ≥ 1` is the [`ShardedEngine`], whose outputs are
/// byte-identical across shard counts (but intentionally *not* to the
/// serial engine, which draws from a single shared RNG stream).
///
/// Every method forwards; the serial-only dispatch trace degrades to
/// a no-op under sharding (documented at [`SimEngine::enable_trace`]).
pub enum SimEngine<M> {
    /// The single-threaded legacy engine. Boxed (as is the sharded
    /// variant) so the selector is a thin handle either way — the
    /// serial engine's inline wheel cursor state is ~2.5 kB.
    Serial(Box<Engine<M>>),
    /// The domain-decomposed engine.
    Sharded(Box<ShardedEngine<M>>),
}

impl<M: Send + 'static> SimEngine<M> {
    /// Serial engine (the historical default).
    pub fn new(seed: u64, default_latency: SimDuration) -> Self {
        SimEngine::Serial(Box::new(Engine::new(seed, default_latency)))
    }

    /// `shards = 0` → serial; `shards ≥ 1` → sharded with that many
    /// shards.
    pub fn with_shards(seed: u64, default_latency: SimDuration, shards: usize) -> Self {
        if shards == 0 {
            SimEngine::Serial(Box::new(Engine::new(seed, default_latency)))
        } else {
            SimEngine::Sharded(Box::new(ShardedEngine::new(seed, default_latency, shards)))
        }
    }

    /// Number of shards (0 = serial).
    pub fn shard_count(&self) -> usize {
        match self {
            SimEngine::Serial(_) => 0,
            SimEngine::Sharded(e) => e.shard_count(),
        }
    }

    /// Registers a node (on shard 0 when sharded); see
    /// [`SimEngine::add_node_in`] for placement.
    pub fn add_node(&mut self, node: Box<dyn Node<M> + Send>) -> NodeId {
        self.add_node_in(0, node)
    }

    /// Registers a node on `shard` (ignored when serial).
    pub fn add_node_in(&mut self, shard: usize, node: Box<dyn Node<M> + Send>) -> NodeId {
        match self {
            SimEngine::Serial(e) => e.add_node(node),
            SimEngine::Sharded(e) => e.add_node_in(shard, node),
        }
    }

    /// Registers a node built from its own id on `shard` (ignored
    /// when serial).
    pub fn add_node_with_in(
        &mut self,
        shard: usize,
        f: impl FnOnce(NodeId) -> Box<dyn Node<M> + Send>,
    ) -> NodeId {
        match self {
            SimEngine::Serial(e) => e.add_node_with(|id| f(id) as Box<dyn Node<M>>),
            SimEngine::Sharded(e) => e.add_node_with_in(shard, f),
        }
    }

    /// Number of registered nodes.
    pub fn node_count(&self) -> usize {
        match self {
            SimEngine::Serial(e) => e.node_count(),
            SimEngine::Sharded(e) => e.node_count(),
        }
    }

    /// Immutable access to a node downcast to its concrete type.
    pub fn node_as<T: 'static>(&self, id: NodeId) -> Option<&T> {
        match self {
            SimEngine::Serial(e) => e.node_as(id),
            SimEngine::Sharded(e) => e.node_as(id),
        }
    }

    /// Mutable access to a node downcast to its concrete type.
    pub fn node_as_mut<T: 'static>(&mut self, id: NodeId) -> Option<&mut T> {
        match self {
            SimEngine::Serial(e) => e.node_as_mut(id),
            SimEngine::Sharded(e) => e.node_as_mut(id),
        }
    }

    /// The link table, for configuration (the master table when
    /// sharded; valid between runs).
    pub fn links_mut(&mut self) -> &mut LinkTable {
        match self {
            SimEngine::Serial(e) => e.links_mut(),
            SimEngine::Sharded(e) => e.links_mut(),
        }
    }

    /// The link table, read-only.
    pub fn links(&self) -> &LinkTable {
        match self {
            SimEngine::Serial(e) => e.links(),
            SimEngine::Sharded(e) => e.links(),
        }
    }

    /// The fault plane, for configuration.
    pub fn faults_mut(&mut self) -> &mut FaultPlane<M> {
        match self {
            SimEngine::Serial(e) => e.faults_mut(),
            SimEngine::Sharded(e) => e.faults_mut(),
        }
    }

    /// The fault plane, read-only.
    pub fn faults(&self) -> &FaultPlane<M> {
        match self {
            SimEngine::Serial(e) => e.faults(),
            SimEngine::Sharded(e) => e.faults(),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        match self {
            SimEngine::Serial(e) => e.now(),
            SimEngine::Sharded(e) => e.now(),
        }
    }

    /// Counters (merged when sharded; valid between runs).
    pub fn stats(&self) -> EngineStats {
        match self {
            SimEngine::Serial(e) => e.stats(),
            SimEngine::Sharded(e) => e.stats(),
        }
    }

    /// Pending event count (diagnostics).
    pub fn pending(&self) -> usize {
        match self {
            SimEngine::Serial(e) => e.pending(),
            SimEngine::Sharded(e) => e.pending(),
        }
    }

    /// Injects a message from [`NodeId::EXTERNAL`].
    pub fn schedule_message(&mut self, at: SimTime, to: NodeId, msg: M) {
        match self {
            SimEngine::Serial(e) => e.schedule_message(at, to, msg),
            SimEngine::Sharded(e) => e.schedule_message(at, to, msg),
        }
    }

    /// Injects a message with an explicit sender.
    pub fn schedule_message_from(&mut self, at: SimTime, from: NodeId, to: NodeId, msg: M) {
        match self {
            SimEngine::Serial(e) => e.schedule_message_from(at, from, to, msg),
            SimEngine::Sharded(e) => e.schedule_message_from(at, from, to, msg),
        }
    }

    /// Schedules a timer firing on `node` at `at`.
    pub fn schedule_timer(&mut self, at: SimTime, node: NodeId, key: u64) {
        match self {
            SimEngine::Serial(e) => e.schedule_timer(at, node, key),
            SimEngine::Sharded(e) => e.schedule_timer(at, node, key),
        }
    }

    /// Schedules a link partition (rejects backwards windows).
    pub fn schedule_partition(
        &mut self,
        a: NodeId,
        b: NodeId,
        at: SimTime,
        until: SimTime,
    ) -> Result<(), ScheduleError> {
        match self {
            SimEngine::Serial(e) => e.schedule_partition(a, b, at, until),
            SimEngine::Sharded(e) => e.schedule_partition(a, b, at, until),
        }
    }

    /// Schedules a crash/restart (rejects backwards windows).
    pub fn schedule_crash(
        &mut self,
        node: NodeId,
        at: SimTime,
        until: SimTime,
    ) -> Result<(), ScheduleError> {
        match self {
            SimEngine::Serial(e) => e.schedule_crash(node, at, until),
            SimEngine::Sharded(e) => e.schedule_crash(node, at, until),
        }
    }

    /// Calls every node's `on_start` (idempotent).
    pub fn start(&mut self) {
        match self {
            SimEngine::Serial(e) => e.start(),
            SimEngine::Sharded(e) => e.start(),
        }
    }

    /// Runs all events up to and including `until`.
    pub fn run_until(&mut self, until: SimTime) {
        match self {
            SimEngine::Serial(e) => e.run_until(until),
            SimEngine::Sharded(e) => e.run_until(until),
        }
    }

    /// Runs until idle or ~`max_events` processed; returns the count.
    pub fn run_until_idle(&mut self, max_events: u64) -> u64 {
        match self {
            SimEngine::Serial(e) => e.run_until_idle(max_events),
            SimEngine::Sharded(e) => e.run_until_idle(max_events),
        }
    }

    /// Enables the dispatch trace. **Serial only** — the sharded
    /// engine has no single dispatch order to record, so this is a
    /// no-op there (tracing never perturbs a run either way).
    pub fn enable_trace(&mut self, cap: usize) {
        if let SimEngine::Serial(e) = self {
            e.enable_trace(cap);
        }
    }

    /// The dispatch trace, if enabled (always `None` when sharded).
    pub fn trace(&self) -> Option<&Trace> {
        match self {
            SimEngine::Serial(e) => e.trace(),
            SimEngine::Sharded(_) => None,
        }
    }
}

impl<M: Snapshot + Send + 'static> SimEngine<M> {
    /// Captures the engine state (serial v2 blob or sharded
    /// shard-count-invariant v2 blob).
    pub fn checkpoint<N: Node<M> + SnapshotState>(&self) -> Result<Vec<u8>, SnapError> {
        match self {
            SimEngine::Serial(e) => e.checkpoint::<N>(),
            SimEngine::Sharded(e) => e.checkpoint::<N>(),
        }
    }

    /// Restores a checkpoint onto this (freshly rebuilt) engine. The
    /// blob's mode must match the engine's: serial blobs resume onto
    /// serial engines, sharded blobs onto sharded engines (at any
    /// shard count).
    pub fn resume<N: Node<M> + SnapshotState>(&mut self, bytes: &[u8]) -> Result<(), SnapError> {
        match self {
            SimEngine::Serial(e) => e.resume::<N>(bytes),
            SimEngine::Sharded(e) => e.resume::<N>(bytes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// A node that accumulates a digest of everything it observes and
    /// pings a random peer back — RNG-dependent, order-sensitive.
    struct Gossip {
        peers: usize,
        digest: u64,
        hops: u64,
    }

    impl Node<u64> for Gossip {
        fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, from: NodeId, msg: u64) {
            self.digest = self
                .digest
                .wrapping_mul(0x100_0000_01b3)
                .wrapping_add(msg ^ from.0 as u64 ^ ctx.now().0);
            if self.hops < 40 {
                self.hops += 1;
                let next = NodeId(ctx.rng().gen_range(0..self.peers));
                ctx.send(next, msg.wrapping_add(1));
            }
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_, u64>, key: u64) {
            self.digest = self.digest.wrapping_add(key ^ ctx.now().0);
        }
        fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
            let delay = ctx.rng().gen_range(1..50);
            ctx.set_timer(SimDuration::from_millis(delay), 7);
        }
    }

    impl SnapshotState for Gossip {
        fn encode_state(&self, enc: &mut snapshot::Enc) {
            enc.usize(self.peers);
            enc.u64(self.digest);
            enc.u64(self.hops);
        }
        fn restore_state(&mut self, dec: &mut snapshot::Dec<'_>) -> Result<(), SnapError> {
            self.peers = dec.usize()?;
            self.digest = dec.u64()?;
            self.hops = dec.u64()?;
            Ok(())
        }
    }

    fn build(shards: usize, n: usize) -> ShardedEngine<u64> {
        let mut eng = ShardedEngine::new(42, SimDuration::from_millis(5), shards);
        for i in 0..n {
            eng.add_node_in(
                i * shards.max(1) / n,
                Box::new(Gossip {
                    peers: n,
                    digest: 0,
                    hops: 0,
                }),
            );
        }
        for i in 0..n {
            eng.schedule_message(SimTime(3 + (i as u64 % 7)), NodeId(i), i as u64);
        }
        eng
    }

    fn fingerprint(eng: &ShardedEngine<u64>, n: usize) -> (Vec<u64>, u64, u64, u64) {
        let digests = (0..n)
            .map(|i| eng.node_as::<Gossip>(NodeId(i)).unwrap().digest)
            .collect();
        let s = eng.stats();
        (digests, s.delivered, s.timers, s.events)
    }

    #[test]
    fn shard_counts_agree_exactly() {
        let n = 24;
        let mut outcomes = Vec::new();
        for shards in [1, 2, 4] {
            let mut eng = build(shards, n);
            eng.run_until(SimTime(10_000));
            outcomes.push(fingerprint(&eng, n));
        }
        assert_eq!(outcomes[0], outcomes[1]);
        assert_eq!(outcomes[0], outcomes[2]);
        assert!(outcomes[0].3 > 0, "events actually ran");
    }

    #[test]
    fn partitions_crashes_and_faults_agree_across_shard_counts() {
        let n = 16;
        let run = |shards: usize| {
            let mut eng = build(shards, n);
            eng.faults_mut()
                .set_default_model(crate::fault::FaultModel {
                    loss: 0.1,
                    dup: 0.05,
                    jitter_ms: 3,
                });
            eng.schedule_partition(NodeId(0), NodeId(1), SimTime(20), SimTime(400))
                .unwrap();
            eng.schedule_crash(NodeId(2), SimTime(30), SimTime(500))
                .unwrap();
            eng.run_until(SimTime(5_000));
            let fs = eng.faults().stats();
            (
                fingerprint(&eng, n),
                fs.lost,
                fs.duplicated,
                fs.crashes,
                fs.restarts,
                eng.stats().dropped,
            )
        };
        let a = run(1);
        let b = run(3);
        let c = run(4);
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert!(a.3 == 1 && a.4 == 1, "crash and restart both happened");
    }

    #[test]
    fn checkpoints_are_identical_across_shard_counts_and_resume_anywhere() {
        let n = 16;
        let mid = SimTime(60);
        let done = SimTime(5_000);

        // Checkpoint at the midpoint under two different layouts.
        let blob2 = {
            let mut eng = build(2, n);
            eng.run_until(mid);
            eng.checkpoint::<Gossip>().unwrap()
        };
        let blob4 = {
            let mut eng = build(4, n);
            eng.run_until(mid);
            eng.checkpoint::<Gossip>().unwrap()
        };
        assert_eq!(blob2, blob4, "checkpoint blob is shard-count-invariant");

        // Monolithic reference.
        let mut mono = build(1, n);
        mono.run_until(done);
        let want = fingerprint(&mono, n);

        // Resume the 2-shard blob at 3 shards and finish.
        let mut resumed = build(3, n);
        // A fresh `build` pre-queues workload; resume wipes it.
        resumed.resume::<Gossip>(&blob2).unwrap();
        assert_eq!(resumed.now(), mid);
        resumed.run_until(done);
        assert_eq!(fingerprint(&resumed, n), want);
    }

    #[test]
    fn backwards_windows_are_rejected() {
        let mut eng = build(2, 4);
        assert!(matches!(
            eng.schedule_partition(NodeId(0), NodeId(1), SimTime(100), SimTime(50)),
            Err(ScheduleError::BackwardsWindow { .. })
        ));
        assert!(matches!(
            eng.schedule_crash(NodeId(0), SimTime(100), SimTime(50)),
            Err(ScheduleError::BackwardsWindow { .. })
        ));
        // Nothing was enqueued by the rejected calls.
        let pending_before = eng.pending();
        eng.run_until(SimTime(10_000));
        assert_eq!(eng.faults().stats().crashes, 0);
        let _ = pending_before;
    }

    #[test]
    fn facade_serial_matches_plain_engine() {
        // shards = 0 must be the legacy engine bit-for-bit.
        let run_plain = || {
            let mut eng: Engine<u64> = Engine::new(7, SimDuration::from_millis(5));
            let a = eng.add_node(Box::new(Gossip {
                peers: 2,
                digest: 0,
                hops: 0,
            }));
            let _b = eng.add_node(Box::new(Gossip {
                peers: 2,
                digest: 0,
                hops: 0,
            }));
            eng.schedule_message(SimTime(1), a, 9);
            eng.run_until(SimTime(2_000));
            (eng.node_as::<Gossip>(a).unwrap().digest, eng.stats().events)
        };
        let run_facade = || {
            let mut eng: SimEngine<u64> = SimEngine::with_shards(7, SimDuration::from_millis(5), 0);
            let a = eng.add_node(Box::new(Gossip {
                peers: 2,
                digest: 0,
                hops: 0,
            }));
            let _b = eng.add_node(Box::new(Gossip {
                peers: 2,
                digest: 0,
                hops: 0,
            }));
            eng.schedule_message(SimTime(1), a, 9);
            eng.run_until(SimTime(2_000));
            (eng.node_as::<Gossip>(a).unwrap().digest, eng.stats().events)
        };
        assert_eq!(run_plain(), run_facade());
    }
}
