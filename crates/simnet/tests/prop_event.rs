//! Differential property tests: the two-tier wheel [`EventQueue`]
//! must pop the exact (time, insertion-sequence) order of the
//! [`BinaryHeapQueue`] reference on arbitrary push/pop interleavings —
//! including equal-timestamp FIFO ties and far-future horizon
//! crossings.

use proptest::prelude::*;
use simnet::{BinaryHeapQueue, Event, EventQueue, NodeId, SimTime};

/// One scripted queue operation.
#[derive(Debug, Clone)]
enum Op {
    /// Push at `base_of_last_pop + offset` with a payload.
    Push(u64),
    /// Pop one event.
    Pop,
}

/// Decodes a raw (selector, magnitude) pair into an operation.
///
/// Offsets mix dense near-term times (0..64 ms), wheel-boundary times,
/// and MASC-scale far-future times (hours/days), so pushes land on
/// both tiers and refills happen mid-run.
fn decode(sel: u64, mag: u64) -> Op {
    match sel % 10 {
        0..=2 => Op::Push(mag % 64),
        3 => Op::Push(mag % 16), // extra equal-time density
        4 => Op::Push(simnet::WHEEL_SPAN - 96 + mag % 200), // straddles the wheel boundary
        5 => Op::Push(172_800_000 + mag % 100), // 48 h waits
        6 => Op::Push(2_592_000_000 + mag % 50), // 30-day lifetimes
        _ => Op::Pop,
    }
}

fn arb_ops() -> impl Strategy<Value = Vec<(u64, u64, u64)>> {
    // (selector, magnitude, payload tag) per op.
    prop::collection::vec((any::<u64>(), any::<u64>(), any::<u64>()), 1..200)
}

fn payload(ev: &Event<u64>) -> u64 {
    match ev {
        Event::Message { msg, .. } => *msg,
        _ => unreachable!("script only pushes messages"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Wheel queue ≡ heap queue on random interleavings. Pushes are
    /// kept monotone relative to the last popped time, as the engine
    /// guarantees.
    #[test]
    fn wheel_matches_heap_reference(ops in arb_ops()) {
        let mut wheel: EventQueue<u64> = EventQueue::new();
        let mut heap: BinaryHeapQueue<u64> = BinaryHeapQueue::new();
        let mut now = 0u64;
        for (sel, mag, tag) in &ops {
            match decode(*sel, *mag) {
                Op::Push(offset) => {
                    let at = SimTime(now + offset);
                    wheel.push_message(at, NodeId(0), NodeId(1), *tag);
                    heap.push_message(at, NodeId(0), NodeId(1), *tag);
                }
                Op::Pop => {
                    prop_assert_eq!(wheel.peek_time(), heap.peek_time());
                    let w = wheel.pop();
                    let h = heap.pop();
                    match (w, h) {
                        (None, None) => {}
                        (Some((wt, we)), Some((ht, he))) => {
                            prop_assert_eq!(wt, ht);
                            prop_assert_eq!(payload(&we), payload(&he));
                            now = wt.0;
                        }
                        (w, h) => prop_assert!(
                            false,
                            "one queue empty, other not: {:?} vs {:?}",
                            w.map(|x| x.0),
                            h.map(|x| x.0)
                        ),
                    }
                }
            }
            prop_assert_eq!(wheel.len(), heap.len());
            prop_assert_eq!(wheel.is_empty(), heap.is_empty());
        }
        // Drain both: the full remaining order must agree, FIFO ties
        // included (payloads are the discriminator).
        loop {
            let w = wheel.pop();
            let h = heap.pop();
            match (w, h) {
                (None, None) => break,
                (Some((wt, we)), Some((ht, he))) => {
                    prop_assert_eq!(wt, ht);
                    prop_assert_eq!(payload(&we), payload(&he));
                }
                _ => prop_assert!(false, "drain length mismatch"),
            }
        }
    }

    /// `pop_le` never returns an event past the limit and never skips
    /// one at or before it.
    #[test]
    fn pop_le_agrees_with_peek(
        times in prop::collection::vec(0u64..20_000, 1..100),
        limit in 0u64..20_000,
    ) {
        let mut q: EventQueue<u64> = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.push_message(SimTime(*t), NodeId(0), NodeId(1), i as u64);
        }
        let mut due: Vec<u64> = times.iter().copied().filter(|t| *t <= limit).collect();
        due.sort_unstable();
        let mut got = Vec::new();
        while let Some((t, _)) = q.pop_le(SimTime(limit)) {
            got.push(t.0);
        }
        prop_assert_eq!(got, due.clone());
        prop_assert_eq!(q.len(), times.len() - due.len());
    }

    /// FIFO ties landing at exactly `wheel_start + WHEEL_SPAN` — the
    /// first instant completely outside the initial span — start life
    /// in the overflow map and must come back in insertion order after
    /// draining into the re-anchored wheel.
    #[test]
    fn fifo_ties_at_exactly_wheel_start_plus_span(
        early in prop::collection::vec(0u64..simnet::WHEEL_SPAN, 0..40),
        ties in 2usize..24,
    ) {
        let mut wheel: EventQueue<u64> = EventQueue::new();
        let mut heap: BinaryHeapQueue<u64> = BinaryHeapQueue::new();
        let boundary = SimTime(simnet::WHEEL_SPAN); // wheel_start is 0 on a fresh queue
        for i in 0..ties as u64 {
            wheel.push_message(boundary, NodeId(0), NodeId(1), 1_000_000 + i);
            heap.push_message(boundary, NodeId(0), NodeId(1), 1_000_000 + i);
        }
        for (i, t) in early.iter().enumerate() {
            wheel.push_message(SimTime(*t), NodeId(0), NodeId(1), i as u64);
            heap.push_message(SimTime(*t), NodeId(0), NodeId(1), i as u64);
        }
        let mut at_boundary = Vec::new();
        loop {
            match (wheel.pop(), heap.pop()) {
                (None, None) => break,
                (Some((wt, we)), Some((ht, he))) => {
                    prop_assert_eq!(wt, ht);
                    prop_assert_eq!(payload(&we), payload(&he));
                    if wt == boundary {
                        at_boundary.push(payload(&we));
                    }
                }
                _ => prop_assert!(false, "drain length mismatch"),
            }
        }
        // The tied batch must be byte-for-byte FIFO, not merely
        // time-sorted.
        let want: Vec<u64> = (0..ties as u64).map(|i| 1_000_000 + i).collect();
        prop_assert_eq!(at_boundary, want);
    }

    /// Overflow events must drain correctly into a re-anchored wheel:
    /// pop one far-future event (jumping `wheel_start` past the
    /// original span), push fresh events relative to the new now, and
    /// require the full remaining order to match the heap reference.
    #[test]
    fn overflow_drains_into_reanchored_wheel(
        far in prop::collection::vec(simnet::WHEEL_SPAN..3 * simnet::WHEEL_SPAN, 1..60),
        fresh in prop::collection::vec(0u64..2 * simnet::WHEEL_SPAN, 0..40),
    ) {
        let mut wheel: EventQueue<u64> = EventQueue::new();
        let mut heap: BinaryHeapQueue<u64> = BinaryHeapQueue::new();
        for (i, t) in far.iter().enumerate() {
            wheel.push_message(SimTime(*t), NodeId(0), NodeId(1), i as u64);
            heap.push_message(SimTime(*t), NodeId(0), NodeId(1), i as u64);
        }
        // Every event is beyond the initial span, so this pop forces a
        // re-anchor before it can be served.
        let (wt, we) = wheel.pop().expect("non-empty");
        let (ht, he) = heap.pop().expect("non-empty");
        prop_assert_eq!(wt, ht);
        prop_assert_eq!(payload(&we), payload(&he));
        let now = wt.0;
        // Fresh pushes span the re-anchored wheel and its new overflow.
        for (i, off) in fresh.iter().enumerate() {
            let at = SimTime(now + off);
            wheel.push_message(at, NodeId(0), NodeId(1), 10_000_000 + i as u64);
            heap.push_message(at, NodeId(0), NodeId(1), 10_000_000 + i as u64);
        }
        loop {
            match (wheel.pop(), heap.pop()) {
                (None, None) => break,
                (Some((wt, we)), Some((ht, he))) => {
                    prop_assert_eq!(wt, ht);
                    prop_assert_eq!(payload(&we), payload(&he));
                }
                _ => prop_assert!(false, "drain length mismatch"),
            }
        }
    }
}
