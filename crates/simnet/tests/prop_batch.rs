//! Differential property test for same-tick event batching:
//! [`Engine::run_until`] (which batches consecutive same-time events
//! to one node around a single node checkout) must be observationally
//! identical to the unbatched one-event-at-a-time [`Engine::step`]
//! loop — same per-node logs, same counters, same fault accounting —
//! on arbitrary workloads, including zero-latency message storms and
//! crash windows.

use proptest::prelude::*;
use simnet::{Ctx, Engine, Node, NodeId, SimDuration, SimTime};

const NODES: usize = 4;

/// Logs every delivery, relays messages while their low nibble is
/// non-zero (bounded chains), and arms same-tick or near-tick timers —
/// the densest mix of batchable and non-batchable events.
struct Chatter {
    log: Vec<(u64, u64, &'static str)>,
}

impl Node<u32> for Chatter {
    fn on_message(&mut self, ctx: &mut Ctx<'_, u32>, from: NodeId, msg: u32) {
        self.log.push((ctx.now().as_millis(), msg as u64, "msg"));
        let ttl = msg & 0xF;
        if ttl > 0 {
            // Relay target derives from the payload, so fan-out shape
            // is workload-controlled but deterministic.
            let _ = from;
            ctx.send(NodeId((msg >> 4) as usize % NODES), msg - 1);
        }
        if msg.is_multiple_of(3) {
            // Delay 0 arms a timer in the *current* tick: the
            // strongest batching stress (message + timer, same node,
            // same time).
            ctx.set_timer(SimDuration::from_millis((msg % 2) as u64), msg as u64);
        }
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_, u32>, key: u64) {
        self.log.push((ctx.now().as_millis(), key, "timer"));
    }
}

#[derive(Debug, Clone)]
struct Workload {
    latency: u64,                    // 0 ⇒ same-tick cross-node delivery
    injections: Vec<(u64, u8, u32)>, // (time, node, payload)
    crashes: Vec<(u8, u64, u64)>,    // (node, at, until)
}

fn arb_workload() -> impl Strategy<Value = Workload> {
    (
        0u64..3,
        // Times collide on purpose: a handful of distinct ticks shared
        // by up to 60 injections.
        prop::collection::vec((0u64..12, 0u8..NODES as u8, any::<u32>()), 1..60),
        prop::collection::vec((0u8..NODES as u8, 0u64..20, 20u64..40), 0..3),
    )
        .prop_map(|(latency, injections, crashes)| Workload {
            latency,
            injections,
            crashes,
        })
}

/// One per-node observation log: (time, payload/key, kind).
type NodeLog = Vec<(u64, u64, &'static str)>;

/// Builds the engine, runs it via `batched`/unbatched dispatch, and
/// returns everything observable.
fn run(w: &Workload, seed: u64, batched: bool) -> (Vec<NodeLog>, Vec<u64>) {
    let mut eng: Engine<u32> = Engine::new(seed, SimDuration::from_millis(w.latency));
    let mut ids = Vec::new();
    for _ in 0..NODES {
        ids.push(eng.add_node(Box::new(Chatter { log: Vec::new() })));
    }
    for (node, at, until) in &w.crashes {
        // Generator ranges guarantee `until >= at` (20..40 vs 0..20).
        eng.schedule_crash(ids[*node as usize], SimTime(*at), SimTime(*until))
            .unwrap();
    }
    for (t, n, p) in &w.injections {
        eng.schedule_message(SimTime(*t), ids[*n as usize], *p);
    }
    if batched {
        // Far past every chain (12 ms injections + 15 hops × 3 ms).
        eng.run_until(SimTime(1_000_000));
    } else {
        while eng.step() {}
    }
    assert_eq!(eng.pending(), 0, "run left events queued");
    let logs = ids
        .iter()
        .map(|id| eng.node_as::<Chatter>(*id).unwrap().log.clone())
        .collect();
    let s = eng.stats();
    let f = eng.faults().stats();
    let counters = vec![
        s.events,
        s.delivered,
        s.timers,
        s.dropped,
        f.dropped_at_down_node,
        f.timers_suppressed,
        f.crashes,
    ];
    (logs, counters)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Batched dispatch ≡ unbatched dispatch: identical per-node event
    /// logs (order included) and identical engine + fault counters.
    #[test]
    fn batched_matches_unbatched(w in arb_workload(), seed in any::<u64>()) {
        let a = run(&w, seed, true);
        let b = run(&w, seed, false);
        prop_assert_eq!(a.0, b.0, "per-node logs diverged");
        prop_assert_eq!(a.1, b.1, "counters diverged");
    }
}
