//! Property tests for the discrete-event engine: determinism, event
//! ordering, and monotone time under arbitrary workloads.

use proptest::prelude::*;
use simnet::{Ctx, Engine, Node, NodeId, SimDuration, SimTime};

/// A node that logs every event it sees (with timestamps) and
/// optionally replies or sets timers per a script.
struct Logger {
    log: Vec<(u64, String)>,
    reply_to: Option<NodeId>,
    timer_on_msg: Option<u64>,
}

impl Node<u32> for Logger {
    fn on_message(&mut self, ctx: &mut Ctx<'_, u32>, from: NodeId, msg: u32) {
        self.log
            .push((ctx.now().as_millis(), format!("msg {msg} from {from:?}")));
        if let Some(to) = self.reply_to {
            ctx.send(to, msg + 1000);
        }
        if let Some(delay) = self.timer_on_msg {
            ctx.set_timer(SimDuration::from_millis(delay), msg as u64);
        }
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_, u32>, key: u64) {
        self.log
            .push((ctx.now().as_millis(), format!("timer {key}")));
    }
}

#[derive(Debug, Clone)]
struct Workload {
    latency: u64,
    events: Vec<(u64, u8, u32)>, // (time, node, payload)
    reply: bool,
    timer_delay: Option<u64>,
}

fn arb_workload() -> impl Strategy<Value = Workload> {
    (
        1u64..50,
        prop::collection::vec((0u64..10_000, 0u8..3, any::<u32>()), 1..40),
        any::<bool>(),
        prop::option::of(1u64..500),
    )
        .prop_map(|(latency, events, reply, timer_delay)| Workload {
            latency,
            events,
            reply,
            timer_delay,
        })
}

fn run(w: &Workload, seed: u64) -> (Vec<Vec<(u64, String)>>, u64, u64) {
    let mut eng: Engine<u32> = Engine::new(seed, SimDuration::from_millis(w.latency));
    let mut ids = Vec::new();
    for i in 0..3 {
        let reply_to = if w.reply {
            Some(NodeId((i + 1) % 3))
        } else {
            None
        };
        ids.push(eng.add_node(Box::new(Logger {
            log: Vec::new(),
            reply_to,
            timer_on_msg: w.timer_delay,
        })));
    }
    for (t, n, p) in &w.events {
        eng.schedule_message(SimTime(*t), ids[*n as usize], *p);
    }
    // Replies between nodes can ring forever; cap generously but make
    // the cap part of the observed output so both runs stop alike.
    let processed = eng.run_until_idle(5_000);
    let logs = ids
        .iter()
        .map(|id| eng.node_as::<Logger>(*id).unwrap().log.clone())
        .collect();
    (logs, processed, eng.now().as_millis())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Identical seeds and workloads produce identical event logs.
    #[test]
    fn deterministic_replay(w in arb_workload(), seed in any::<u64>()) {
        let a = run(&w, seed);
        let b = run(&w, seed);
        prop_assert_eq!(a, b);
    }

    /// Every node observes its events in non-decreasing time order,
    /// and no event is observed before it could exist.
    #[test]
    fn per_node_time_monotone(w in arb_workload(), seed in any::<u64>()) {
        let (logs, _, final_now) = run(&w, seed);
        let earliest = w.events.iter().map(|(t, _, _)| *t).min().unwrap_or(0);
        for log in &logs {
            let mut prev = 0;
            for (t, _) in log {
                prop_assert!(*t >= prev, "time went backwards");
                prop_assert!(*t >= earliest, "event before first injection");
                prop_assert!(*t <= final_now, "event after the clock stopped");
                prev = *t;
            }
        }
    }

    /// Without replies or timers, every injected message is delivered
    /// exactly once, at exactly its injection time.
    #[test]
    fn plain_delivery_is_exact(mut w in arb_workload()) {
        w.reply = false;
        w.timer_delay = None;
        let (logs, processed, _) = run(&w, 1);
        let total: usize = logs.iter().map(|l| l.len()).sum();
        prop_assert_eq!(total, w.events.len());
        prop_assert_eq!(processed as usize, w.events.len());
        // Each node's observed times match its scheduled times.
        for (i, log) in logs.iter().enumerate() {
            let mut want: Vec<u64> = w
                .events
                .iter()
                .filter(|(_, n, _)| *n as usize == i)
                .map(|(t, _, _)| *t)
                .collect();
            want.sort();
            let got: Vec<u64> = log.iter().map(|(t, _)| *t).collect();
            prop_assert_eq!(got, want);
        }
    }
}
