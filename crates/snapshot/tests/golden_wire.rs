//! Golden wire-format pin: committed byte images of a snapshot
//! exercising every codec primitive. Any accidental change to the
//! header layout, integer endianness, length prefixes, or container
//! encodings makes this test fail before it can silently invalidate
//! checkpoints on disk.
//!
//! Two goldens are committed: the current-version image (what the
//! encoder produces today) and the frozen v1 image (what pre-sharding
//! checkpoints on disk look like). The payload bytes are identical —
//! only the header version differs — and both must stay decodable.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use snapshot::{Dec, Enc, SnapError, Snapshot, FORMAT_VERSION, MAGIC};

const GOLDEN_V1: &[u8] = include_bytes!("golden/wire_v1.bin");
const GOLDEN_V2: &[u8] = include_bytes!("golden/wire_v2.bin");

/// Kind tag reserved for this test; never a real subsystem.
const KIND: u16 = 0x7e57;

/// One value of every primitive and container the codec encodes.
fn encode_exemplar() -> Vec<u8> {
    let mut enc = Enc::with_header(KIND);
    enc.u8(0x01);
    enc.u16(0x0203);
    enc.u32(0x0405_0607);
    enc.u64(0x0809_0a0b_0c0d_0e0f);
    enc.usize(42);
    enc.bool(true);
    enc.bool(false);
    enc.f64(-1.5);
    enc.str("masc/bgmp");
    enc.bytes(&[0xde, 0xad]);
    [0xaau64, 0xbb, 0xcc, 0xdd].encode(&mut enc); // RNG state shape
    Some(7u32).encode(&mut enc);
    Option::<u32>::None.encode(&mut enc);
    vec![1u16, 2, 3].encode(&mut enc);
    VecDeque::from([9u8, 8]).encode(&mut enc);
    BTreeSet::from([5u32, 6]).encode(&mut enc);
    BTreeMap::from([(1u8, 2u64), (3, 4)]).encode(&mut enc);
    (0x11u8, 0x2222u16).encode(&mut enc);
    (0x33u8, 0x4444u16, 0x5555_5555u32).encode(&mut enc);
    enc.finish()
}

#[test]
fn wire_format_matches_committed_golden() {
    let bytes = encode_exemplar();
    assert_eq!(
        bytes, GOLDEN_V2,
        "snapshot wire format drifted from the committed v{FORMAT_VERSION} golden; \
         if the change is intentional, bump FORMAT_VERSION and add a new \
         crates/snapshot/tests/golden/wire_vN.bin (never regenerate old ones)"
    );
}

#[test]
fn golden_headers_are_magic_version_kind() {
    for (golden, version) in [(GOLDEN_V1, 1u16), (GOLDEN_V2, FORMAT_VERSION)] {
        assert_eq!(&golden[..4], MAGIC, "magic");
        assert_eq!(
            u16::from_le_bytes([golden[4], golden[5]]),
            version,
            "format version"
        );
        assert_eq!(u16::from_le_bytes([golden[6], golden[7]]), KIND, "kind");
    }
}

#[test]
fn goldens_decode_back_to_the_exemplar() {
    // The v1 image (old checkpoints on disk) and the v2 image carry
    // the same payload; both must decode, reporting their version.
    for (golden, version) in [(GOLDEN_V1, 1u16), (GOLDEN_V2, FORMAT_VERSION)] {
        let mut dec = Dec::new(golden);
        assert_eq!(dec.header(KIND), Ok(version));
        assert_eq!(dec.u8(), Ok(0x01));
        assert_eq!(dec.u16(), Ok(0x0203));
        assert_eq!(dec.u32(), Ok(0x0405_0607));
        assert_eq!(dec.u64(), Ok(0x0809_0a0b_0c0d_0e0f));
        assert_eq!(dec.usize(), Ok(42));
        assert_eq!(dec.bool(), Ok(true));
        assert_eq!(dec.bool(), Ok(false));
        assert_eq!(dec.f64(), Ok(-1.5));
        assert_eq!(dec.str().as_deref(), Ok("masc/bgmp"));
        assert_eq!(dec.bytes(), Ok(&[0xde, 0xad][..]));
        assert_eq!(<[u64; 4]>::decode(&mut dec), Ok([0xaa, 0xbb, 0xcc, 0xdd]));
        assert_eq!(Option::<u32>::decode(&mut dec), Ok(Some(7)));
        assert_eq!(Option::<u32>::decode(&mut dec), Ok(None));
        assert_eq!(Vec::<u16>::decode(&mut dec), Ok(vec![1, 2, 3]));
        assert_eq!(VecDeque::<u8>::decode(&mut dec), Ok(VecDeque::from([9, 8])));
        assert_eq!(
            BTreeSet::<u32>::decode(&mut dec),
            Ok(BTreeSet::from([5, 6]))
        );
        assert_eq!(
            BTreeMap::<u8, u64>::decode(&mut dec),
            Ok(BTreeMap::from([(1, 2), (3, 4)]))
        );
        assert_eq!(<(u8, u16)>::decode(&mut dec), Ok((0x11, 0x2222)));
        assert_eq!(
            <(u8, u16, u32)>::decode(&mut dec),
            Ok((0x33, 0x4444, 0x5555_5555))
        );
        assert_eq!(dec.finish(), Ok(()));
    }
}

#[test]
fn version_bump_is_rejected_not_misread() {
    let mut bytes = GOLDEN_V2.to_vec();
    bytes[4] = bytes[4].wrapping_add(1);
    let mut dec = Dec::new(&bytes);
    assert_eq!(
        dec.header(KIND),
        Err(SnapError::BadVersion {
            found: FORMAT_VERSION + 1
        })
    );
}
