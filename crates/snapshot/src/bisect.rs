//! Checkpoint bisection: localise a failing invariant to one
//! checkpoint interval in O(log T) replays instead of one O(T) re-run.
//!
//! The driver is generic over *how* a checkpoint is brought back to
//! life — it only sees opaque blobs and two callbacks:
//!
//! * `check_at(blob)` resumes the snapshot and evaluates the invariant
//!   right at its checkpoint tick, returning the violations found;
//! * `replay(blob, to_tick)` resumes the snapshot, runs it forward to
//!   `to_tick` with tracing enabled, and returns the violations at
//!   `to_tick` plus the trace window covering the replayed interval.
//!
//! The search assumes the standard bisection precondition: once the
//! invariant breaks it stays broken (violations here are structural —
//! orphaned (S,G) state, trees through dead nodes — which the stack
//! never self-heals without an explicit repair event). Under that
//! assumption the probe sequence is monotone and binary search finds
//! the first violating checkpoint; the guilty interval is the gap
//! between it and the last clean one.

/// One invariant probe taken during the search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Probe {
    /// Tick of the probed checkpoint.
    pub tick: u64,
    /// Violations found at that tick (empty ⇒ clean).
    pub violations: Vec<String>,
}

/// Where the failure was localised, with the evidence bundled in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BisectReport {
    /// Last tick known clean (a checkpoint tick, or 0 if the very
    /// first checkpoint already violates).
    pub from_tick: u64,
    /// First tick known violating (a checkpoint tick, or the caller's
    /// `fail_tick` when every checkpoint probes clean).
    pub to_tick: u64,
    /// Every probe taken, in tick order.
    pub probes: Vec<Probe>,
    /// Violations observed at `to_tick`.
    pub violations: Vec<String>,
    /// Trace lines from the final replay across the guilty interval
    /// (empty when there was no clean checkpoint to replay from).
    pub trace_window: Vec<(u64, String)>,
}

/// Binary-searches `checkpoints` for the interval in which the
/// invariant first broke, given that it is known broken at `fail_tick`.
///
/// `checkpoints` are `(tick, snapshot_bytes)` pairs; they are sorted
/// internally and entries past `fail_tick` are ignored. Returns
/// `Ok(None)` when no usable checkpoint exists. Either callback's
/// error aborts the search.
pub fn bisect<E>(
    checkpoints: &[(u64, Vec<u8>)],
    fail_tick: u64,
    mut check_at: impl FnMut(&[u8]) -> Result<Vec<String>, E>,
    mut replay: impl FnMut(&[u8], u64) -> Result<(Vec<String>, Vec<(u64, String)>), E>,
) -> Result<Option<BisectReport>, E> {
    let mut cps: Vec<&(u64, Vec<u8>)> = checkpoints
        .iter()
        .filter(|(t, _)| *t <= fail_tick)
        .collect();
    cps.sort_by_key(|(t, _)| *t);
    if cps.is_empty() {
        return Ok(None);
    }

    // First index whose checkpoint violates the invariant (cps.len()
    // when every checkpoint is clean).
    let mut probes: Vec<Probe> = Vec::new();
    let (mut lo, mut hi) = (0usize, cps.len());
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        let (tick, blob) = cps[mid];
        let violations = check_at(blob)?;
        let bad = !violations.is_empty();
        probes.push(Probe {
            tick: *tick,
            violations,
        });
        if bad {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    probes.sort_by_key(|p| p.tick);
    let first_bad = hi;

    let report = if first_bad == cps.len() {
        // Every checkpoint clean: the break is between the last
        // checkpoint and the observed failure.
        let (last_tick, last_blob) = cps[cps.len() - 1];
        let (violations, trace_window) = replay(last_blob, fail_tick)?;
        BisectReport {
            from_tick: *last_tick,
            to_tick: fail_tick,
            probes,
            violations,
            trace_window,
        }
    } else if first_bad == 0 {
        // Already broken at the earliest checkpoint: no clean state to
        // replay from, so report the probe evidence alone.
        let (bad_tick, _) = cps[0];
        let violations = probes
            .iter()
            .find(|p| p.tick == *bad_tick)
            .map(|p| p.violations.clone())
            .unwrap_or_default();
        BisectReport {
            from_tick: 0,
            to_tick: *bad_tick,
            probes,
            violations,
            trace_window: Vec::new(),
        }
    } else {
        let (good_tick, good_blob) = cps[first_bad - 1];
        let (bad_tick, _) = cps[first_bad];
        let (violations, trace_window) = replay(good_blob, *bad_tick)?;
        BisectReport {
            from_tick: *good_tick,
            to_tick: *bad_tick,
            probes,
            violations,
            trace_window,
        }
    };
    Ok(Some(report))
}

#[cfg(test)]
mod tests {
    use super::*;

    type CheckFn = Box<dyn FnMut(&[u8]) -> Result<Vec<String>, String>>;
    type ReplayFn = Box<dyn FnMut(&[u8], u64) -> Result<(Vec<String>, Vec<(u64, String)>), String>>;

    /// A toy "simulation" whose entire state is its tick, encoded as
    /// 8 LE bytes, and which violates the invariant from `broken_at`
    /// onwards.
    fn toy(broken_at: u64) -> (CheckFn, ReplayFn) {
        let decode = |blob: &[u8]| -> Result<u64, String> {
            let a: [u8; 8] = blob.try_into().map_err(|_| "bad blob".to_string())?;
            Ok(u64::from_le_bytes(a))
        };
        let check = move |blob: &[u8]| {
            let t = decode(blob)?;
            Ok(if t >= broken_at {
                vec![format!("violated at {t}")]
            } else {
                Vec::new()
            })
        };
        let replay = move |blob: &[u8], to: u64| {
            let from = decode(blob)?;
            let trace: Vec<(u64, String)> = (from..=to).map(|t| (t, format!("step {t}"))).collect();
            let v = if to >= broken_at {
                vec![format!("violated at {to}")]
            } else {
                Vec::new()
            };
            Ok((v, trace))
        };
        (Box::new(check), Box::new(replay))
    }

    fn every_10() -> Vec<(u64, Vec<u8>)> {
        (0..=9)
            .map(|i| (i * 10, (i * 10u64).to_le_bytes().to_vec()))
            .collect()
    }

    #[test]
    fn localises_to_one_interval() {
        let (check, replay) = toy(57);
        let report = bisect(&every_10(), 100, check, replay)
            .unwrap()
            .expect("has checkpoints");
        assert_eq!(report.from_tick, 50);
        assert_eq!(report.to_tick, 60);
        assert!(!report.violations.is_empty());
        // Trace window covers exactly the guilty interval.
        assert_eq!(report.trace_window.first().unwrap().0, 50);
        assert_eq!(report.trace_window.last().unwrap().0, 60);
        // O(log n) probes, in tick order.
        assert!(
            report.probes.len() <= 5,
            "took {} probes",
            report.probes.len()
        );
        assert!(report.probes.windows(2).all(|w| w[0].tick < w[1].tick));
    }

    #[test]
    fn all_checkpoints_clean_blames_tail_interval() {
        let (check, replay) = toy(95);
        let report = bisect(&every_10(), 100, check, replay).unwrap().unwrap();
        assert_eq!(report.from_tick, 90);
        assert_eq!(report.to_tick, 100);
        assert!(!report.violations.is_empty());
        assert!(!report.trace_window.is_empty());
    }

    #[test]
    fn broken_before_first_checkpoint() {
        // Checkpoints start at 10; break at 5.
        let cps: Vec<(u64, Vec<u8>)> = (1..=9)
            .map(|i| (i * 10, (i * 10u64).to_le_bytes().to_vec()))
            .collect();
        let (check, replay) = toy(5);
        let report = bisect(&cps, 100, check, replay).unwrap().unwrap();
        assert_eq!(report.from_tick, 0);
        assert_eq!(report.to_tick, 10);
        assert!(!report.violations.is_empty());
        assert!(report.trace_window.is_empty());
    }

    #[test]
    fn no_checkpoints_is_none() {
        let (check, replay) = toy(5);
        assert!(bisect(&[], 100, check, replay).unwrap().is_none());
        // Checkpoints all past the failure are unusable too.
        let late = vec![(200u64, 200u64.to_le_bytes().to_vec())];
        let (check, replay) = toy(5);
        assert!(bisect(&late, 100, check, replay).unwrap().is_none());
    }

    #[test]
    fn callback_error_aborts() {
        let cps = every_10();
        let r = bisect(
            &cps,
            100,
            |_| Err::<Vec<String>, _>("boom".to_string()),
            |_, _| unreachable!(),
        );
        assert_eq!(r, Err("boom".to_string()));
    }
}
