//! Deterministic state capture and resume for the MASC/BGMP stack.
//!
//! The paper's long-horizon behaviour (48 h collision waits, 30-day
//! lease lifetimes, 800-day figure-2 runs) makes monolithic re-runs the
//! dominant debugging cost: a chaos schedule that violates an invariant
//! at hour 40 forces a replay from tick zero. This crate is the
//! checkpoint plane that removes that cost:
//!
//! * [`codec`] — a canonical, versioned, length-prefixed byte encoding
//!   (no serde: the workspace builds against offline vendor stubs, and
//!   a hand-rolled codec keeps the format auditable and stable);
//! * [`Snapshot`] / [`SnapshotState`] — the two capture traits. Every
//!   state-bearing crate (`simnet`, `bgp`, `bgmp`, `masc`, `mcast-addr`,
//!   `migp`, `core`) implements them for its own types, with private
//!   field access and no orphan-rule contortions — this crate is a leaf
//!   dependency;
//! * [`bisect`] — O(log T) localisation of a failing invariant to one
//!   checkpoint interval, generic over how checkpoints are resumed and
//!   replayed.
//!
//! # Determinism contract
//!
//! The whole design rests on the workspace's replay guarantee: a
//! simulation is a pure function of (topology, config, seed). A
//! snapshot therefore only captures *dynamic* state — event queue, RNG
//! stream position, protocol tables, counters — and resume rebuilds the
//! static side (wiring maps, fault predicates, configs) by running the
//! same constructor path as tick zero. The contract is
//! `run(0→T2) == checkpoint(T1) + resume(T1→T2)`, byte-identical.
//!
//! Decoding is total: malformed, truncated, or corrupt input surfaces
//! as a [`SnapError`], never a panic (enforced by repolint's
//! `panicky-decode` rule on [`codec`]).

pub mod bisect;
pub mod codec;

pub use bisect::{bisect, BisectReport, Probe};
pub use codec::{Dec, Enc, SnapError, FORMAT_VERSION, MAGIC};

/// A value type with a canonical byte encoding.
///
/// Implementations must be *deterministic* (identical state encodes to
/// identical bytes — iterate ordered containers only) and *total* on
/// decode (corrupt input returns `Err`, never panics).
pub trait Snapshot: Sized {
    /// Appends this value's canonical encoding.
    fn encode(&self, enc: &mut Enc);

    /// Decodes one value, consuming exactly what [`Snapshot::encode`]
    /// wrote.
    fn decode(dec: &mut Dec<'_>) -> Result<Self, SnapError>;
}

/// A stateful component restored *onto* a freshly rebuilt instance.
///
/// Used by types that cannot be decoded from bytes alone — actors
/// holding trait objects, function pointers, or wiring derived from
/// topology. The host rebuilds the instance exactly as at tick zero
/// (same constructor path, same config) and then overwrites its dynamic
/// state from the snapshot.
pub trait SnapshotState {
    /// Appends the dynamic state's canonical encoding.
    fn encode_state(&self, enc: &mut Enc);

    /// Restores dynamic state onto `self`, consuming exactly what
    /// [`SnapshotState::encode_state`] wrote.
    fn restore_state(&mut self, dec: &mut Dec<'_>) -> Result<(), SnapError>;
}
