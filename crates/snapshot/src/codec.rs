//! The canonical byte codec: little-endian fixed-width integers,
//! length-prefixed sequences, a versioned header.
//!
//! Format rules (see DESIGN.md §11):
//!
//! * every snapshot starts with the 8-byte header
//!   `MAGIC ‖ FORMAT_VERSION:u16 ‖ kind:u16`;
//! * integers are little-endian fixed width; `usize` travels as `u64`;
//! * `f64` travels as its IEEE-754 bit pattern (`to_bits`), so
//!   encode/decode is exact and byte-stable;
//! * sequences are a `u64` element count followed by the elements in
//!   container iteration order — which is why only *ordered*
//!   containers (`BTreeMap`, `BTreeSet`, `Vec`, `VecDeque`) may be
//!   encoded;
//! * enums are a `u8` tag followed by the variant's fields.
//!
//! Decoding is total: every read is bounds-checked and returns
//! [`SnapError`] on truncation or corruption. No `unwrap`, no
//! indexing — this module is in repolint's `panicky-decode` scope.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::Snapshot;

/// Snapshot file magic: "MASC/BGMP SNapshot".
pub const MAGIC: [u8; 4] = *b"MBSN";

/// Current format version. Bump on any incompatible layout change and
/// update the committed golden header (`tests/golden_header.rs`), so
/// format drift fails loudly instead of misdecoding.
///
/// History: v1 had no engine-mode byte (every engine blob was serial);
/// v2 adds a mode byte after the engine header so sharded checkpoints
/// are distinguishable, and adds the sharded node-major payload. v1
/// blobs remain decodable — [`Dec::header`] accepts `1..=FORMAT_VERSION`
/// and returns the version so decoders can branch.
pub const FORMAT_VERSION: u16 = 2;

/// Decode failure. Every variant is a recoverable error — corrupt or
/// truncated snapshots must never panic the host.
#[derive(Debug, Clone, PartialEq, Eq)]
// lint:allow(wire-variant-coverage) — error type returned to callers; never itself serialized
pub enum SnapError {
    /// Input ended before the value did.
    Truncated {
        /// Bytes the read needed.
        need: usize,
        /// Bytes left in the input.
        have: usize,
    },
    /// The first four bytes are not [`MAGIC`].
    BadMagic,
    /// Unsupported format version.
    BadVersion {
        /// Version found in the header.
        found: u16,
    },
    /// The snapshot is of a different kind than the caller expected
    /// (e.g. resuming an engine snapshot as a fig2 run bundle).
    BadKind {
        /// Kind expected by the caller.
        want: u16,
        /// Kind found in the header.
        found: u16,
    },
    /// A tag or field value is out of range for its type.
    Invalid(&'static str),
    /// Decoding finished with unconsumed bytes.
    Trailing {
        /// Unconsumed byte count.
        remaining: usize,
    },
}

impl std::fmt::Display for SnapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapError::Truncated { need, have } => {
                write!(f, "truncated snapshot: need {need} bytes, have {have}")
            }
            SnapError::BadMagic => write!(f, "not a snapshot (bad magic)"),
            SnapError::BadVersion { found } => {
                write!(
                    f,
                    "unsupported snapshot version {found} (supported: 1..={FORMAT_VERSION})"
                )
            }
            SnapError::BadKind { want, found } => {
                write!(f, "wrong snapshot kind: want {want}, found {found}")
            }
            SnapError::Invalid(what) => write!(f, "invalid snapshot field: {what}"),
            SnapError::Trailing { remaining } => {
                write!(f, "snapshot has {remaining} trailing bytes")
            }
        }
    }
}

impl std::error::Error for SnapError {}

/// Append-only encoder over a byte buffer.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Enc { buf: Vec::new() }
    }

    /// Creates an encoder and writes the snapshot header for `kind`.
    pub fn with_header(kind: u16) -> Self {
        let mut e = Enc::new();
        e.header(kind);
        e
    }

    /// Writes the 8-byte snapshot header.
    pub fn header(&mut self, kind: u16) {
        self.buf.extend_from_slice(&MAGIC);
        self.u16(FORMAT_VERSION);
        self.u16(kind);
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends a bool as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Appends an `f64` as its IEEE-754 bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Writes a sequence length prefix; follow with that many elements.
    pub fn seq(&mut self, len: usize) {
        self.usize(len);
    }

    /// The encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Bounds-checked cursor over snapshot bytes.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Creates a decoder over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    /// Unconsumed byte count.
    pub fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    /// Takes the next `n` bytes.
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(SnapError::Invalid("length overflow"))?;
        let slice = self.buf.get(self.pos..end).ok_or(SnapError::Truncated {
            need: n,
            have: self.remaining(),
        })?;
        self.pos = end;
        Ok(slice)
    }

    /// Reads and validates the snapshot header, returning the version.
    pub fn header(&mut self, want_kind: u16) -> Result<u16, SnapError> {
        let magic = self.take(4)?;
        if magic != MAGIC {
            return Err(SnapError::BadMagic);
        }
        let version = self.u16()?;
        if version == 0 || version > FORMAT_VERSION {
            return Err(SnapError::BadVersion { found: version });
        }
        let kind = self.u16()?;
        if kind != want_kind {
            return Err(SnapError::BadKind {
                want: want_kind,
                found: kind,
            });
        }
        Ok(version)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?.first().copied().unwrap_or(0))
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, SnapError> {
        let b = self.take(2)?;
        let mut a = [0u8; 2];
        a.copy_from_slice(b);
        Ok(u16::from_le_bytes(a))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapError> {
        let b = self.take(4)?;
        let mut a = [0u8; 4];
        a.copy_from_slice(b);
        Ok(u32::from_le_bytes(a))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// Reads a `usize` (encoded as `u64`).
    pub fn usize(&mut self) -> Result<usize, SnapError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| SnapError::Invalid("usize out of range"))
    }

    /// Reads a bool (one byte, must be 0 or 1).
    pub fn bool(&mut self) -> Result<bool, SnapError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapError::Invalid("bool byte")),
        }
    }

    /// Reads an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], SnapError> {
        let n = self.usize()?;
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, SnapError> {
        let b = self.bytes()?;
        String::from_utf8(b.to_vec()).map_err(|_| SnapError::Invalid("utf-8 string"))
    }

    /// Reads a sequence length prefix, sanity-checked against the
    /// remaining input (a corrupt count cannot force a giant
    /// allocation: every element costs at least one byte).
    pub fn seq(&mut self) -> Result<usize, SnapError> {
        let n = self.usize()?;
        if n > self.remaining() {
            return Err(SnapError::Invalid("sequence length exceeds input"));
        }
        Ok(n)
    }

    /// Checks that every byte was consumed.
    pub fn finish(&self) -> Result<(), SnapError> {
        if self.remaining() != 0 {
            return Err(SnapError::Trailing {
                remaining: self.remaining(),
            });
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Snapshot impls for primitives and ordered std containers
// ---------------------------------------------------------------------

macro_rules! snap_int {
    ($($t:ty => $enc:ident / $dec:ident),* $(,)?) => {$(
        impl Snapshot for $t {
            fn encode(&self, enc: &mut Enc) {
                enc.$enc(*self);
            }
            fn decode(dec: &mut Dec<'_>) -> Result<Self, SnapError> {
                dec.$dec()
            }
        }
    )*};
}
snap_int!(
    u8 => u8 / u8,
    u16 => u16 / u16,
    u32 => u32 / u32,
    u64 => u64 / u64,
    usize => usize / usize,
    bool => bool / bool,
    f64 => f64 / f64,
);

impl Snapshot for String {
    fn encode(&self, enc: &mut Enc) {
        enc.str(self);
    }
    fn decode(dec: &mut Dec<'_>) -> Result<Self, SnapError> {
        dec.str()
    }
}

impl<T: Snapshot> Snapshot for Option<T> {
    fn encode(&self, enc: &mut Enc) {
        match self {
            None => enc.u8(0),
            Some(v) => {
                enc.u8(1);
                v.encode(enc);
            }
        }
    }
    fn decode(dec: &mut Dec<'_>) -> Result<Self, SnapError> {
        match dec.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(dec)?)),
            _ => Err(SnapError::Invalid("Option tag")),
        }
    }
}

impl<T: Snapshot> Snapshot for Vec<T> {
    fn encode(&self, enc: &mut Enc) {
        enc.seq(self.len());
        for v in self {
            v.encode(enc);
        }
    }
    fn decode(dec: &mut Dec<'_>) -> Result<Self, SnapError> {
        let n = dec.seq()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::decode(dec)?);
        }
        Ok(out)
    }
}

impl<T: Snapshot> Snapshot for VecDeque<T> {
    fn encode(&self, enc: &mut Enc) {
        enc.seq(self.len());
        for v in self {
            v.encode(enc);
        }
    }
    fn decode(dec: &mut Dec<'_>) -> Result<Self, SnapError> {
        let n = dec.seq()?;
        let mut out = VecDeque::with_capacity(n);
        for _ in 0..n {
            out.push_back(T::decode(dec)?);
        }
        Ok(out)
    }
}

impl<T: Snapshot + Ord> Snapshot for BTreeSet<T> {
    fn encode(&self, enc: &mut Enc) {
        enc.seq(self.len());
        for v in self {
            v.encode(enc);
        }
    }
    fn decode(dec: &mut Dec<'_>) -> Result<Self, SnapError> {
        let n = dec.seq()?;
        let mut out = BTreeSet::new();
        for _ in 0..n {
            out.insert(T::decode(dec)?);
        }
        Ok(out)
    }
}

impl<K: Snapshot + Ord, V: Snapshot> Snapshot for BTreeMap<K, V> {
    fn encode(&self, enc: &mut Enc) {
        enc.seq(self.len());
        for (k, v) in self {
            k.encode(enc);
            v.encode(enc);
        }
    }
    fn decode(dec: &mut Dec<'_>) -> Result<Self, SnapError> {
        let n = dec.seq()?;
        let mut out = BTreeMap::new();
        for _ in 0..n {
            let k = K::decode(dec)?;
            let v = V::decode(dec)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<A: Snapshot, B: Snapshot> Snapshot for (A, B) {
    fn encode(&self, enc: &mut Enc) {
        self.0.encode(enc);
        self.1.encode(enc);
    }
    fn decode(dec: &mut Dec<'_>) -> Result<Self, SnapError> {
        Ok((A::decode(dec)?, B::decode(dec)?))
    }
}

impl<A: Snapshot, B: Snapshot, C: Snapshot> Snapshot for (A, B, C) {
    fn encode(&self, enc: &mut Enc) {
        self.0.encode(enc);
        self.1.encode(enc);
        self.2.encode(enc);
    }
    fn decode(dec: &mut Dec<'_>) -> Result<Self, SnapError> {
        Ok((A::decode(dec)?, B::decode(dec)?, C::decode(dec)?))
    }
}

impl Snapshot for [u64; 4] {
    fn encode(&self, enc: &mut Enc) {
        for v in self {
            enc.u64(*v);
        }
    }
    fn decode(dec: &mut Dec<'_>) -> Result<Self, SnapError> {
        Ok([dec.u64()?, dec.u64()?, dec.u64()?, dec.u64()?])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_roundtrip() {
        let mut e = Enc::new();
        e.u8(7);
        e.u16(300);
        e.u32(70_000);
        e.u64(u64::MAX);
        e.usize(42);
        e.bool(true);
        e.f64(0.25);
        let bytes = e.finish();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u16().unwrap(), 300);
        assert_eq!(d.u32().unwrap(), 70_000);
        assert_eq!(d.u64().unwrap(), u64::MAX);
        assert_eq!(d.usize().unwrap(), 42);
        assert!(d.bool().unwrap());
        assert_eq!(d.f64().unwrap(), 0.25);
        d.finish().unwrap();
    }

    #[test]
    fn containers_roundtrip() {
        let v: Vec<u32> = vec![1, 2, 3];
        let s: BTreeSet<u64> = [9, 4].into_iter().collect();
        let m: BTreeMap<u8, String> = [(1u8, "a".to_string()), (2, "bb".to_string())]
            .into_iter()
            .collect();
        let o: Option<(u8, bool)> = Some((3, false));
        let q: VecDeque<u16> = [5, 6].into_iter().collect();
        let mut e = Enc::new();
        v.encode(&mut e);
        s.encode(&mut e);
        m.encode(&mut e);
        o.encode(&mut e);
        q.encode(&mut e);
        let bytes = e.finish();
        let mut d = Dec::new(&bytes);
        assert_eq!(Vec::<u32>::decode(&mut d).unwrap(), v);
        assert_eq!(BTreeSet::<u64>::decode(&mut d).unwrap(), s);
        assert_eq!(BTreeMap::<u8, String>::decode(&mut d).unwrap(), m);
        assert_eq!(Option::<(u8, bool)>::decode(&mut d).unwrap(), o);
        assert_eq!(VecDeque::<u16>::decode(&mut d).unwrap(), q);
        d.finish().unwrap();
    }

    #[test]
    fn header_validates_magic_version_kind() {
        let bytes = Enc::with_header(3).finish();
        assert!(Dec::new(&bytes).header(3).is_ok());
        assert_eq!(
            Dec::new(&bytes).header(4),
            Err(SnapError::BadKind { want: 4, found: 3 })
        );
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert_eq!(Dec::new(&bad).header(3), Err(SnapError::BadMagic));
        let mut vbad = bytes;
        vbad[4] = 0xFF;
        vbad[5] = 0xFF;
        assert_eq!(
            Dec::new(&vbad).header(3),
            Err(SnapError::BadVersion { found: 0xFFFF })
        );
    }

    #[test]
    fn past_versions_accepted_future_and_zero_rejected() {
        let bytes = Enc::with_header(3).finish();
        assert_eq!(Dec::new(&bytes).header(3), Ok(FORMAT_VERSION));
        let mut v1 = bytes.clone();
        v1[4] = 1;
        v1[5] = 0;
        assert_eq!(Dec::new(&v1).header(3), Ok(1));
        let mut v0 = bytes;
        v0[4] = 0;
        v0[5] = 0;
        assert_eq!(
            Dec::new(&v0).header(3),
            Err(SnapError::BadVersion { found: 0 })
        );
    }

    #[test]
    fn truncation_is_an_error_never_a_panic() {
        let mut e = Enc::new();
        vec![1u64, 2, 3].encode(&mut e);
        let bytes = e.finish();
        // Every strict prefix must fail cleanly.
        for cut in 0..bytes.len() {
            let mut d = Dec::new(&bytes[..cut]);
            let r = Vec::<u64>::decode(&mut d);
            assert!(r.is_err(), "prefix of {cut} bytes decoded successfully");
        }
    }

    #[test]
    fn absurd_length_prefix_is_rejected_without_allocation() {
        let mut e = Enc::new();
        e.u64(u64::MAX); // claimed element count
        let bytes = e.finish();
        let mut d = Dec::new(&bytes);
        assert!(Vec::<u8>::decode(&mut d).is_err());
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut e = Enc::new();
        e.u8(1);
        e.u8(2);
        let bytes = e.finish();
        let mut d = Dec::new(&bytes);
        let _ = d.u8().unwrap();
        assert_eq!(d.finish(), Err(SnapError::Trailing { remaining: 1 }));
    }

    #[test]
    fn bad_tags_are_errors() {
        let bytes = vec![7u8];
        let mut d = Dec::new(&bytes);
        assert_eq!(
            Option::<u8>::decode(&mut d),
            Err(SnapError::Invalid("Option tag"))
        );
        let mut d = Dec::new(&[9u8]);
        assert_eq!(d.bool(), Err(SnapError::Invalid("bool byte")));
    }
}
