//! FIG2A / FIG2B — the MASC claim-algorithm simulation (paper §4.3.3,
//! figure 2): 50 top-level domains × 50 children, each child's
//! allocation server requesting 256-address blocks with 30-day
//! lifetimes at inter-request times ~ U(1 h, 95 h), run for 800
//! simulated days.
//!
//! Emits `results/fig2_utilization.{csv,json}` and
//! `results/fig2_grib.{csv,json}`, prints the series, and summarizes
//! steady-state values against the paper's reported numbers
//! (utilization ≈ 50 %; G-RIB mean ≈ 175, max ≤ 180).
//!
//! `--seeds K` runs K independent replications (seed 0 is `--seed`
//! itself, the rest derive via `task_seed`) and reports the per-day
//! mean across them; `--threads N` fans the replications across
//! workers without changing the output.
//!
//! Long runs can be checkpointed and resumed without changing the
//! output: `--checkpoint-every N` writes one snapshot file per
//! replication to `--checkpoint-dir DIR` (default
//! `<results>/checkpoints`) every N simulated days, `--stop-at D`
//! ends the run early at day D, and `--resume-from DIR` continues
//! each replication from its snapshot. A run stopped at the midpoint
//! and resumed emits byte-identical CSVs to one uninterrupted run,
//! at any `--threads`.
//!
//! `--shards K` (default 0) runs each replication on the sharded
//! engine with conservative lookahead. The CSVs are byte-identical
//! for every K ≥ 1 (CI diffs K = 1/2/4 against each other); K = 0 is
//! the legacy serial engine with the historical output. A sharded
//! checkpoint resumes at any `--shards ≥ 1`, not just the count that
//! wrote it.
//!
//! Usage: `fig2_masc [--days 800] [--seed 1] [--sample 5] [--tops 50]
//! [--children 50] [--seeds 1] [--threads 1] [--shards K]
//! [--checkpoint-every N] [--checkpoint-dir DIR] [--stop-at D]
//! [--resume-from DIR]`

use std::path::{Path, PathBuf};

use masc::{HierarchySim, HierarchySimParams, MascConfig, Workload};
use masc_bgmp_bench::{banner, results_dir, run_tasks, task_seed, Args, Fig2Checkpoint, Fig2Row};
use metrics::{emit, Series};

/// Checkpoint/resume knobs of one invocation, shared by every
/// replication (paths are per task seed).
#[derive(Clone)]
struct CheckpointPlan {
    /// Write a snapshot every this many days (0 = never).
    every: u64,
    /// Where snapshots land.
    dir: PathBuf,
    /// Continue each replication from its snapshot in this directory.
    resume_from: Option<PathBuf>,
}

/// Runs (or continues) one replication and samples it on the fixed
/// day grid. `stop_at` caps the horizon so a run can be split; the
/// concatenation of the split halves equals one uninterrupted run.
#[allow(clippy::too_many_arguments)]
fn run_one(
    days: u64,
    stop_at: u64,
    sample_every: u64,
    tops: usize,
    children: usize,
    seed: u64,
    shards: usize,
    plan: &CheckpointPlan,
) -> Vec<Fig2Row> {
    let (mut sim, mut rows, mut d) = match &plan.resume_from {
        Some(dir) => {
            let ck = Fig2Checkpoint::load(dir, seed).expect("load checkpoint");
            assert_eq!(
                (ck.sample_every, ck.tops, ck.children, ck.seed),
                (sample_every, tops, children, seed),
                "checkpoint was taken with different run parameters"
            );
            // A serial blob resumes serially regardless of --shards; a
            // sharded blob resumes at the requested count (any count
            // continues the same byte-deterministic execution).
            let sim =
                HierarchySim::resume_sharded(&ck.sim, shards.max(1)).expect("resume checkpoint");
            (sim, ck.rows, ck.day)
        }
        None => {
            let sim = HierarchySim::new_sharded(
                HierarchySimParams {
                    top_level: tops,
                    children_per: children,
                    workload: Workload::paper_fig2(),
                    config: MascConfig::default(),
                    seed,
                },
                shards,
            );
            (sim, Vec::new(), 0)
        }
    };
    while d < stop_at.min(days) {
        d = (d + sample_every).min(days);
        sim.run_to_day(d);
        let m = sim.sample();
        rows.push(Fig2Row {
            day: m.day,
            util: m.utilization,
            leased: m.leased as f64,
            claimed: m.claimed_top as f64,
            grib_avg: m.grib_avg,
            grib_max: m.grib_max as f64,
            global: m.global_prefixes as f64,
            pending: m.pending as f64,
        });
        if plan.every > 0 && (d.is_multiple_of(plan.every) || d >= stop_at.min(days)) {
            save_checkpoint(
                &sim,
                &rows,
                d,
                sample_every,
                tops,
                children,
                seed,
                &plan.dir,
            );
        }
    }
    rows
}

#[allow(clippy::too_many_arguments)]
fn save_checkpoint(
    sim: &HierarchySim,
    rows: &[Fig2Row],
    day: u64,
    sample_every: u64,
    tops: usize,
    children: usize,
    seed: u64,
    dir: &Path,
) {
    let ck = Fig2Checkpoint {
        day,
        sample_every,
        tops,
        children,
        seed,
        rows: rows.to_vec(),
        sim: sim.checkpoint().expect("checkpoint hierarchy"),
    };
    ck.save(dir).expect("write checkpoint");
}

fn main() {
    let args = Args::parse();
    let days = args.u64("days", 800);
    let seed = args.seed(1);
    let sample_every = args.u64("sample", 5);
    let tops = args.usize("tops", 50);
    let children = args.usize("children", 50);
    let seeds = args.usize("seeds", 1).max(1);
    let threads = args.threads();
    let shards = args.usize("shards", 0);
    let stop_at = args.u64("stop-at", days);
    let plan = CheckpointPlan {
        every: args.u64("checkpoint-every", 0),
        dir: args
            .str_opt("checkpoint-dir")
            .map(PathBuf::from)
            .unwrap_or_else(|| results_dir().join("checkpoints")),
        resume_from: args.str_opt("resume-from").map(PathBuf::from),
    };

    banner(
        "FIG2",
        &format!(
            "MASC claim algorithm: {tops} top-level x {children} children, {days} days, \
             seed {seed}, {seeds} replication(s), {threads} thread(s), {} engine",
            if shards == 0 {
                "serial".to_string()
            } else {
                format!("{shards}-shard")
            }
        ),
    );

    // Replication 0 keeps the historical seed so a single-seed run is
    // unchanged; extra replications get harness-derived seeds.
    let task_seeds: Vec<u64> = (0..seeds as u64)
        .map(|i| if i == 0 { seed } else { task_seed(seed, i) })
        .collect();
    let runs = run_tasks(threads, &task_seeds, |_, &s| {
        run_one(
            days,
            stop_at,
            sample_every,
            tops,
            children,
            s,
            shards,
            &plan,
        )
    });

    if stop_at < days {
        println!(
            "stopped at day {stop_at} of {days}; checkpoints in {}",
            plan.dir.display()
        );
        return;
    }

    let mut util = Series::new("utilization");
    let mut grib_avg = Series::new("grib_avg");
    let mut grib_max = Series::new("grib_max");
    let mut global = Series::new("global_prefixes");
    let mut leased = Series::new("leased_addrs");
    let mut claimed = Series::new("claimed_addrs");

    println!(
        "{:>6} {:>7} {:>12} {:>12} {:>9} {:>9} {:>7} {:>8}",
        "day", "util", "leased", "claimed", "grib_avg", "grib_max", "global", "pending"
    );
    // Per-day mean across replications (every run samples the same
    // day grid, so index j lines up).
    let points = runs[0].len();
    let k = runs.len() as f64;
    let mut last_leased = 0.0;
    for j in 0..points {
        let mut m = Fig2Row {
            day: runs[0][j].day,
            util: 0.0,
            leased: 0.0,
            claimed: 0.0,
            grib_avg: 0.0,
            grib_max: 0.0,
            global: 0.0,
            pending: 0.0,
        };
        for r in &runs {
            m.util += r[j].util / k;
            m.leased += r[j].leased / k;
            m.claimed += r[j].claimed / k;
            m.grib_avg += r[j].grib_avg / k;
            m.grib_max += r[j].grib_max / k;
            m.global += r[j].global / k;
            m.pending += r[j].pending / k;
        }
        util.push(m.day, m.util);
        grib_avg.push(m.day, m.grib_avg);
        grib_max.push(m.day, m.grib_max);
        global.push(m.day, m.global);
        leased.push(m.day, m.leased);
        claimed.push(m.day, m.claimed);
        last_leased = m.leased;
        let d = m.day as u64;
        if d.is_multiple_of(sample_every * 4) || d == days {
            println!(
                "{:>6.0} {:>7.3} {:>12.0} {:>12.0} {:>9.1} {:>9.0} {:>7.0} {:>8.1}",
                m.day, m.util, m.leased, m.claimed, m.grib_avg, m.grib_max, m.global, m.pending
            );
        }
    }

    let dir = results_dir();
    emit::write_results(&dir, "fig2_utilization", &[util.clone(), leased, claimed])
        .expect("write results");
    emit::write_results(
        &dir,
        "fig2_grib",
        &[grib_avg.clone(), grib_max.clone(), global],
    )
    .expect("write results");

    // Steady-state summary over the last third of the run.
    let from = days as f64 * 2.0 / 3.0;
    let steady_util = util.mean_y_from(from).unwrap_or(0.0);
    let steady_avg = grib_avg.mean_y_from(from).unwrap_or(0.0);
    let steady_max = grib_max.mean_y_from(from).unwrap_or(0.0);
    let peak_avg = grib_avg.max_y().unwrap_or(0.0);

    println!();
    println!("util      {}", util.sparkline(60));
    println!("grib_avg  {}", grib_avg.sparkline(60));
    println!();
    println!("-- steady state (day > {from:.0}) vs paper --");
    println!(
        "utilization:     measured {:.3}   paper ~0.50 (converges after startup transient)",
        steady_util
    );
    println!(
        "G-RIB avg:       measured {:.0}     paper ~175 (startup peak ~290; ours peaks {:.0})",
        steady_avg, peak_avg
    );
    println!(
        "G-RIB max:       measured {:.0}     paper <=180 in steady state",
        steady_max
    );
    println!(
        "aggregation:     {:.0} outstanding blocks held in {:.0} G-RIB entries",
        last_leased / 256.0,
        steady_avg
    );
    println!("results written to {}", dir.display());
}
