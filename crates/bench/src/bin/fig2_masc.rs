//! FIG2A / FIG2B — the MASC claim-algorithm simulation (paper §4.3.3,
//! figure 2): 50 top-level domains × 50 children, each child's
//! allocation server requesting 256-address blocks with 30-day
//! lifetimes at inter-request times ~ U(1 h, 95 h), run for 800
//! simulated days.
//!
//! Emits `results/fig2_utilization.{csv,json}` and
//! `results/fig2_grib.{csv,json}`, prints the series, and summarizes
//! steady-state values against the paper's reported numbers
//! (utilization ≈ 50 %; G-RIB mean ≈ 175, max ≤ 180).
//!
//! Usage: `fig2_masc [--days 800] [--seed 1] [--sample 5] [--tops 50]
//! [--children 50]`

use masc::{HierarchySim, HierarchySimParams, MascConfig, Workload};
use masc_bgmp_bench::{arg_u64, banner, results_dir};
use metrics::{emit, Series};

fn main() {
    let days = arg_u64("days", 800);
    let seed = arg_u64("seed", 1);
    let sample_every = arg_u64("sample", 5);
    let tops = arg_u64("tops", 50) as usize;
    let children = arg_u64("children", 50) as usize;

    banner(
        "FIG2",
        &format!(
            "MASC claim algorithm: {tops} top-level x {children} children, {days} days, seed {seed}"
        ),
    );

    let params = HierarchySimParams {
        top_level: tops,
        children_per: children,
        workload: Workload::paper_fig2(),
        config: MascConfig::default(),
        seed,
    };
    let mut sim = HierarchySim::new(params);

    let mut util = Series::new("utilization");
    let mut grib_avg = Series::new("grib_avg");
    let mut grib_max = Series::new("grib_max");
    let mut global = Series::new("global_prefixes");
    let mut leased = Series::new("leased_addrs");
    let mut claimed = Series::new("claimed_addrs");

    println!(
        "{:>6} {:>7} {:>12} {:>12} {:>9} {:>9} {:>7} {:>8}",
        "day", "util", "leased", "claimed", "grib_avg", "grib_max", "global", "pending"
    );
    let mut d = 0;
    while d < days {
        d = (d + sample_every).min(days);
        sim.run_to_day(d);
        let m = sim.sample();
        util.push(m.day, m.utilization);
        grib_avg.push(m.day, m.grib_avg);
        grib_max.push(m.day, m.grib_max as f64);
        global.push(m.day, m.global_prefixes as f64);
        leased.push(m.day, m.leased as f64);
        claimed.push(m.day, m.claimed_top as f64);
        if d % (sample_every * 4) == 0 || d == days {
            println!(
                "{:>6.0} {:>7.3} {:>12} {:>12} {:>9.1} {:>9} {:>7} {:>8}",
                m.day,
                m.utilization,
                m.leased,
                m.claimed_top,
                m.grib_avg,
                m.grib_max,
                m.global_prefixes,
                m.pending
            );
        }
    }

    let dir = results_dir();
    emit::write_results(&dir, "fig2_utilization", &[util.clone(), leased, claimed])
        .expect("write results");
    emit::write_results(
        &dir,
        "fig2_grib",
        &[grib_avg.clone(), grib_max.clone(), global],
    )
    .expect("write results");

    // Steady-state summary over the last third of the run.
    let from = days as f64 * 2.0 / 3.0;
    let steady_util = util.mean_y_from(from).unwrap_or(0.0);
    let steady_avg = grib_avg.mean_y_from(from).unwrap_or(0.0);
    let steady_max = grib_max.mean_y_from(from).unwrap_or(0.0);
    let peak_avg = grib_avg.max_y().unwrap_or(0.0);

    println!();
    println!("util      {}", util.sparkline(60));
    println!("grib_avg  {}", grib_avg.sparkline(60));
    println!();
    println!("-- steady state (day > {from:.0}) vs paper --");
    println!(
        "utilization:     measured {:.3}   paper ~0.50 (converges after startup transient)",
        steady_util
    );
    println!(
        "G-RIB avg:       measured {:.0}     paper ~175 (startup peak ~290; ours peaks {:.0})",
        steady_avg, peak_avg
    );
    println!(
        "G-RIB max:       measured {:.0}     paper <=180 in steady state",
        steady_max
    );
    println!(
        "aggregation:     {:.0} outstanding blocks held in {:.0} G-RIB entries",
        sim.sample().leased as f64 / 256.0,
        steady_avg
    );
    println!("results written to {}", dir.display());
}
