//! PERF — pinned performance workloads (see `bench::perf`).
//!
//! ```text
//! bench_perf [--quick] [--seed N] [--areas fig2,fig4,faults,wheel,shard]
//!            [--out DIR] [--check DIR] [--tolerance PCT]
//! ```
//!
//! Runs every requested area, writes one `BENCH_<area>.json` per area
//! into `--out` (default `results/perf`, quick mode
//! `results/perf/quick`), and — when `--check DIR` names a baseline
//! directory — exits non-zero if any area's events/sec regressed more
//! than `--tolerance` percent (default 30) below its baseline.
//!
//! CI runs `bench_perf --quick --out target/perf --check results/perf/quick`.

use std::path::PathBuf;
use std::process::ExitCode;

use masc_bgmp_bench::perf::{check_against_baseline, run_area, CheckOutcome, PerfConfig, AREAS};
use masc_bgmp_bench::{banner, results_dir, Args};

fn main() -> ExitCode {
    let args = Args::parse();
    let cfg = PerfConfig {
        quick: args.flag("quick"),
        seed: args.seed(1),
    };
    let areas: Vec<String> = match args.str_opt("areas") {
        Some(list) => list.split(',').map(|s| s.trim().to_string()).collect(),
        None => AREAS.iter().map(|s| s.to_string()).collect(),
    };
    for a in &areas {
        assert!(
            AREAS.contains(&a.as_str()),
            "unknown area `{a}` (known: {})",
            AREAS.join(", ")
        );
    }
    let out_dir = match args.str_opt("out") {
        Some(d) => PathBuf::from(d),
        None => {
            let mut d = results_dir();
            d.push("perf");
            if cfg.quick {
                d.push("quick");
            }
            d
        }
    };
    let tolerance = args.u64("tolerance", 30) as f64 / 100.0;
    let baseline = args.str_opt("check").map(PathBuf::from);

    banner(
        "PERF",
        &format!(
            "pinned perf workloads ({}{})",
            areas.join(","),
            if cfg.quick { ", quick" } else { "" }
        ),
    );

    let mut failed = false;
    for area in &areas {
        let rec = run_area(area, &cfg);
        println!(
            "{:<6} {:>12} {:<13} {:>10.0} ev/s {:>9.1} ns/ev {:>9.1} ms {:>8} kB peak",
            rec.area,
            rec.events,
            rec.unit,
            rec.events_per_sec,
            rec.ns_per_event,
            rec.wall_ms,
            rec.peak_rss_kb
                .map_or_else(|| "n/a".to_string(), |kb| kb.to_string())
        );
        let path = masc_bgmp_bench::perf::write_record(&out_dir, &rec).expect("write record");
        println!("       wrote {}", path.display());
        if let Some(base_dir) = &baseline {
            match check_against_baseline(&rec, base_dir, tolerance) {
                CheckOutcome::Ok => {}
                CheckOutcome::MissingBaseline => {
                    println!(
                        "       no baseline for {area} in {} (skipped)",
                        base_dir.display()
                    );
                }
                CheckOutcome::EventCountChanged { baseline, current } => {
                    println!(
                        "       NOTE: deterministic event count changed {baseline} -> {current}; \
                         refresh the baseline with this binary"
                    );
                }
                CheckOutcome::Regressed {
                    baseline_eps,
                    current_eps,
                } => {
                    println!(
                        "       FAIL: {area} events/sec regressed {:.0} -> {:.0} \
                         (tolerance {:.0}%)",
                        baseline_eps,
                        current_eps,
                        tolerance * 100.0
                    );
                    failed = true;
                }
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
