//! CLAIM-N — the simultaneous-claim collision ablation (paper §4.3.3:
//! "in the worst case, the nth domain might have to make up to n
//! claims before it obtains a prefix ... choosing randomly among the
//! /6 ranges provides a lower chance of a collision than if claims
//! were deterministic").
//!
//! n sibling domains claim simultaneously from one shared space; we
//! count claim attempts and collisions until everyone holds a disjoint
//! range, for n ∈ {2..64}.
//!
//! Usage: `ablation_collisions [--seed 3] [--maxn 64] [--threads 1]`
//! (each n is an independent round, so `--threads` fans the sweep
//! without changing the output)

use masc::msg::{DomainAsn, MascAction, MascMsg};
use masc::{MascConfig, MascNode};
use masc_bgmp_bench::{banner, results_dir, run_tasks, Args};
use mcast_addr::{Prefix, Secs};
use metrics::{emit, Series};
use std::collections::VecDeque;

/// Drives a set of top-level sibling nodes to quiescence by shuttling
/// their messages and deadlines by hand. Returns (claims, collisions,
/// virtual seconds until every domain held a grant).
fn run_round(n: usize, seed: u64) -> (u64, u64, Secs) {
    let cfg = MascConfig {
        wait_period: 600,
        range_lifetime: 10_000_000,
        renew_margin: 500_000,
        claim_retry_backoff: 120,
        min_claim_len: 24,
        ..MascConfig::default()
    };
    let asns: Vec<DomainAsn> = (1..=n as u32).collect();
    let mut nodes: Vec<MascNode> = asns
        .iter()
        .map(|&a| {
            let sibs: Vec<DomainAsn> = asns.iter().copied().filter(|s| *s != a).collect();
            let mut node = MascNode::new(a, None, vec![], sibs, cfg.clone(), seed);
            node.bootstrap_ranges(&[(Prefix::MULTICAST, Secs::MAX)]);
            node
        })
        .collect();

    // Every domain requests one block at t=0 — all claims collide on
    // the same first-sub-prefix candidate.
    let mut inbox: VecDeque<(usize, DomainAsn, MascMsg)> = VecDeque::new();
    let route = |actions: Vec<MascAction>,
                 from: DomainAsn,
                 inbox: &mut VecDeque<(usize, DomainAsn, MascMsg)>| {
        for a in actions {
            if let MascAction::Send { to, msg } = a {
                inbox.push_back((to as usize - 1, from, msg));
            }
        }
    };
    for (i, node) in nodes.iter_mut().enumerate() {
        let mut acts = Vec::new();
        node.request_block(0, 24, 1_000_000, &mut acts);
        route(acts, (i + 1) as DomainAsn, &mut inbox);
    }

    let mut now: Secs = 0;
    let mut guard = 0;
    loop {
        guard += 1;
        assert!(guard < 2_000_000, "collision resolution diverged for n={n}");
        // Drain messages at the current instant, then advance to the
        // earliest deadline.
        if let Some((to, from, msg)) = inbox.pop_front() {
            let acts = nodes[to].on_message(now, from, msg);
            route(acts, (to + 1) as DomainAsn, &mut inbox);
            continue;
        }
        let all_granted = nodes.iter().all(|nd| !nd.granted_ranges().is_empty());
        if all_granted {
            break;
        }
        let next = nodes.iter().filter_map(|nd| nd.next_deadline()).min();
        let Some(next) = next else { break };
        now = next.max(now);
        for (i, node) in nodes.iter_mut().enumerate() {
            if node.next_deadline().is_some_and(|d| d <= now) {
                let acts = node.on_tick(now);
                route(acts, (i + 1) as DomainAsn, &mut inbox);
            }
        }
    }

    let claims: u64 = nodes.iter().map(|nd| nd.stats.claims_made).sum();
    let collisions: u64 = nodes.iter().map(|nd| nd.stats.collisions).sum();
    // Verify disjointness.
    let mut all: Vec<Prefix> = Vec::new();
    for nd in &nodes {
        for (p, _) in nd.granted_ranges() {
            for q in &all {
                assert!(!p.overlaps(q), "overlapping grants after resolution");
            }
            all.push(p);
        }
    }
    (claims, collisions, now)
}

fn main() {
    let args = Args::parse();
    let seed = args.seed(3);
    let maxn = args.usize("maxn", 64);
    let threads = args.threads();
    banner(
        "CLAIM-N",
        "simultaneous claimers: claims and collisions until disjoint grants",
    );

    let mut s_claims = Series::new("claims_per_domain");
    let mut s_colls = Series::new("collisions_per_domain");
    let mut s_time = Series::new("secs_to_all_granted");
    println!(
        "{:>4} {:>14} {:>16} {:>14}",
        "n", "claims/domain", "collisions/domain", "settle_secs"
    );
    let ns: Vec<usize> = std::iter::successors(Some(2usize), |n| Some(n * 2))
        .take_while(|n| *n <= maxn)
        .collect();
    // Each round uses the same fixed seed, so the fan-out is trivially
    // deterministic regardless of thread count.
    let rounds = run_tasks(threads, &ns, |_, &n| run_round(n, seed));
    for (&n, &(claims, colls, t)) in ns.iter().zip(&rounds) {
        let cpd = claims as f64 / n as f64;
        let xpd = colls as f64 / n as f64;
        println!("{:>4} {:>14.2} {:>16.2} {:>14}", n, cpd, xpd, t);
        s_claims.push(n as f64, cpd);
        s_colls.push(n as f64, xpd);
        s_time.push(n as f64, t as f64);
    }
    emit::write_results(
        &results_dir(),
        "ablation_collisions",
        &[s_claims.clone(), s_colls, s_time],
    )
    .expect("write");
    println!();
    println!(
        "paper worst case is n claims for the nth domain; jittered retries keep the mean near {:.1} claims/domain at n={}",
        s_claims.samples.last().map(|s| s.y).unwrap_or(0.0),
        maxn
    );
    println!("(settle time stays a handful of back-off intervals — \"the difference in delay is negligible\", §4.3.3)");
}
