//! STATE — forwarding-state aggregation, the paper's §7 provision:
//! "BGMP has provisions for [scaling forwarding tables] by allowing
//! (*,G-prefix) ... state to be stored at the routers wherever the
//! list of targets are the same. Its effectiveness will depend on the
//! location of the group members."
//!
//! Creates many groups rooted in the same domain with identical
//! member sets (the favourable case) and with scattered member sets
//! (the unfavourable case) and measures (*,G) entry counts before and
//! after prefix aggregation.
//!
//! Usage: `ablation_state_agg [--groups 32] [--seed 5]`

use masc_bgmp_bench::{banner, results_dir, Args};
use masc_bgmp_core::analysis::total_star_entries;
use masc_bgmp_core::{asn_of, Addressing, BorderPlan, HostId, Internet, InternetConfig};
use metrics::{emit, Series};
use migp::MigpKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use topology::{internet_like, DomainId, InternetSpec};

fn run(groups: usize, scattered: bool, seed: u64) -> (usize, usize) {
    let graph = internet_like(&InternetSpec {
        n: 40,
        backbones: 3,
        attach: 2,
        extra_peerings: 2,
        seed,
    });
    let cfg = InternetConfig {
        migp: MigpKind::Cbt,
        borders: BorderPlan::Single,
        addressing: Addressing::Static,
        seed,
        ..Default::default()
    };
    let mut net = Internet::build(graph, &cfg);
    net.converge();
    let root = DomainId(7);
    let mut rng = StdRng::seed_from_u64(seed);
    let fixed_members: Vec<DomainId> = vec![DomainId(12), DomainId(25), DomainId(33)];
    for _ in 0..groups {
        let g = net.group_addr(root);
        let members: Vec<DomainId> = if scattered {
            (0..3).map(|_| DomainId(rng.gen_range(0..40))).collect()
        } else {
            fixed_members.clone()
        };
        for m in members {
            net.host_join(
                HostId {
                    domain: asn_of(m),
                    host: 1,
                },
                g,
            );
        }
    }
    net.converge();
    let before = total_star_entries(&net, None);
    // Aggregate every router's table.
    let mut saved = 0;
    for d in net.graph.domains() {
        let node = net.nodes[d.0];
        let actor = net
            .engine
            .node_as_mut::<masc_bgmp_core::DomainActor>(node)
            .expect("actor");
        for br in &mut actor.routers {
            saved += br.bgmp.table_mut().aggregate_star();
        }
    }
    (before, before - saved)
}

fn main() {
    let args = Args::parse();
    let groups = args.usize("groups", 32);
    let seed = args.seed(5);
    banner(
        "STATE",
        "(*,G-prefix) forwarding-state aggregation (paper §7)",
    );

    let (same_before, same_after) = run(groups, false, seed);
    let (scat_before, scat_after) = run(groups, true, seed);

    println!(
        "{:>24} {:>10} {:>10} {:>9}",
        "member placement", "entries", "after agg", "saving"
    );
    println!(
        "{:>24} {:>10} {:>10} {:>8.0}%",
        "identical member sets",
        same_before,
        same_after,
        (1.0 - same_after as f64 / same_before as f64) * 100.0
    );
    println!(
        "{:>24} {:>10} {:>10} {:>8.0}%",
        "scattered member sets",
        scat_before,
        scat_after,
        (1.0 - scat_after as f64 / scat_before as f64) * 100.0
    );

    let mut s = Series::new("entries_after_aggregation");
    s.push(0.0, same_after as f64);
    s.push(1.0, scat_after as f64);
    emit::write_results(&results_dir(), "ablation_state_agg", &[s]).expect("write");

    assert!(same_after < same_before, "identical targets must aggregate");
    assert!(
        same_before - same_after >= scat_before - scat_after,
        "identical member sets must aggregate at least as well as scattered ones"
    );
    println!();
    println!("shape: consecutive groups from one root domain with the same members collapse");
    println!("into (*,G-prefix) entries; scattered membership defeats aggregation — exactly");
    println!("the dependence on member location the paper predicts (§7).");
}
