//! POLICY — selective group-route propagation (paper §2/§4.2:
//! "multicast policies are realized by the selective propagation of
//! the group routes in BGP ... a provider domain could restrict the
//! use of its resources").
//!
//! Topology: `k` provider islands (one backbone + its customers each),
//! with the backbones joined in a settlement-free peering *ring*.
//! Under Gao–Rexford export rules a peer-learned route is never passed
//! to another peer, so only adjacent islands exchange group routes;
//! with Open policy everything reaches everywhere. The G-RIB contents
//! make the difference directly visible.
//!
//! Usage: `ablation_policy [--islands 6] [--customers 4]`

use bgp::ExportPolicy;
use masc_bgmp_bench::{banner, results_dir, Args};
use masc_bgmp_core::analysis::grib_sizes;
use masc_bgmp_core::{Addressing, BorderPlan, Internet, InternetConfig};
use metrics::{emit, Series, Summary};
use migp::MigpKind;
use topology::{policy_bfs, DomainGraph};

fn ring_of_islands(islands: usize, customers: usize) -> DomainGraph {
    let mut g = DomainGraph::new();
    let backbones: Vec<_> = (0..islands)
        .map(|i| g.add_domain(format!("BB{i}")))
        .collect();
    for i in 0..islands {
        g.add_peering(backbones[i], backbones[(i + 1) % islands]);
    }
    for (i, bb) in backbones.iter().enumerate() {
        for c in 0..customers {
            let cust = g.add_domain(format!("C{i}.{c}"));
            g.add_provider_customer(*bb, cust);
        }
    }
    g
}

fn run(islands: usize, customers: usize, policy: ExportPolicy) -> (Summary, DomainGraph) {
    let graph = ring_of_islands(islands, customers);
    let cfg = InternetConfig {
        policy,
        migp: MigpKind::Cbt,
        borders: BorderPlan::Single,
        addressing: Addressing::Static,
        ..Default::default()
    };
    let mut net = Internet::build(graph.clone(), &cfg);
    net.converge();
    let sizes: Vec<f64> = grib_sizes(&net).into_iter().map(|s| s as f64).collect();
    (Summary::of(&sizes).expect("routers"), graph)
}

fn main() {
    let args = Args::parse();
    let islands = args.usize("islands", 6);
    let customers = args.usize("customers", 4);
    banner(
        "POLICY",
        &format!(
            "{islands}-island peer ring, {customers} customers each: Open vs ProviderCustomer"
        ),
    );

    let (open, _) = run(islands, customers, ExportPolicy::Open);
    let (pc, graph) = run(islands, customers, ExportPolicy::ProviderCustomer);
    let n = graph.len();

    println!("{:>28} {:>12} {:>12}", "metric", "Open", "Prov/Cust");
    println!(
        "{:>28} {:>12.1} {:>12.1}",
        "G-RIB size mean (reach)", open.mean, pc.mean
    );
    println!(
        "{:>28} {:>12.0} {:>12.0}",
        "G-RIB size max", open.max, pc.max
    );
    println!("{:>28} {:>12} {:>12.1}", "domains total", n, n as f64);

    // Graph-theoretic expectation under valley-free routing.
    let mut vf = Vec::new();
    for d in graph.domains() {
        let pd = policy_bfs(&graph, d);
        vf.push(pd.dist.iter().filter(|x| **x != u32::MAX).count() as f64);
    }
    let vf = Summary::of(&vf).unwrap();
    println!(
        "{:>28} {:>12} {:>12.1}  (valley-free reachability)",
        "expected reach", "-", vf.mean
    );

    let mut s = Series::new("grib_mean");
    s.push(0.0, open.mean);
    s.push(1.0, pc.mean);
    emit::write_results(&results_dir(), "ablation_policy", &[s]).expect("write");

    assert!(
        (open.mean - n as f64).abs() < 1e-9,
        "Open must reach every root domain"
    );
    assert!(
        pc.mean < open.mean,
        "provider/customer policy must restrict reach (pc {} vs open {})",
        pc.mean,
        open.mean
    );
    println!();
    println!("shape: with Open export every domain's G-RIB holds all {n} group routes; under");
    println!("provider/customer rules peer-learned routes stop at one peer hop, so each");
    println!("island sees only itself and its two ring neighbours — the provider's resources");
    println!("carry exactly its customers' multicast traffic (§2).");
}
