//! FIG4 — path-length comparison of multicast distribution trees
//! (paper §5.4, figure 4): ratio of path length vs the shortest-path
//! tree, average and maximum, for unidirectional shared trees
//! (PIM-SM), bidirectional shared trees (BGMP), and hybrid trees
//! (BGMP + source-specific branches), as the receiver set grows from 1
//! to 1000 on a 3326-domain Internet-like topology.
//!
//! Paper's shape: hybrid avg ≲ 1.2× (max ≤ 4×); bidirectional avg
//! ≲ 1.3× (max ≤ 4.5×); unidirectional avg ≈ 2× (max ≤ 6×).
//!
//! Usage: `fig4_trees [--domains 3326] [--trials 10] [--seed 7]
//! [--maxrx 1000]`

use masc_bgmp_bench::{arg_u64, banner, results_dir};
use masc_bgmp_core::trees::compare_trees;
use metrics::{emit, Series};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use topology::{internet_like, DomainId, InternetSpec};

fn main() {
    let n = arg_u64("domains", 3326) as usize;
    let trials = arg_u64("trials", 10) as usize;
    let seed = arg_u64("seed", 7);
    let maxrx = arg_u64("maxrx", 1000) as usize;

    banner(
        "FIG4",
        &format!("tree quality on {n}-domain topology, {trials} trials per point, seed {seed}"),
    );

    let graph = internet_like(&InternetSpec {
        n,
        backbones: 10,
        attach: 2,
        extra_peerings: 30,
        seed,
    });
    let mut rng = StdRng::seed_from_u64(seed ^ 0xF164);

    // Receiver counts: the paper sweeps 1..1000; we use log-ish spacing.
    let sizes: Vec<usize> = [1usize, 2, 5, 10, 20, 50, 100, 200, 350, 500, 700, 850, 1000]
        .into_iter()
        .filter(|s| *s <= maxrx && *s < n)
        .collect();

    let mut s_uni_avg = Series::new("unidirectional_avg");
    let mut s_uni_max = Series::new("unidirectional_max");
    let mut s_bi_avg = Series::new("bidirectional_avg");
    let mut s_bi_max = Series::new("bidirectional_max");
    let mut s_hy_avg = Series::new("hybrid_avg");
    let mut s_hy_max = Series::new("hybrid_max");

    println!(
        "{:>6} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "recv", "uni_avg", "uni_max", "bi_avg", "bi_max", "hy_avg", "hy_max"
    );
    let all: Vec<DomainId> = graph.domains().collect();
    for &k in &sizes {
        let mut acc = [0.0f64; 3];
        let mut mx = [0.0f64; 3];
        for _ in 0..trials {
            // Random source; receivers sampled without replacement;
            // root = the initiator's domain (first receiver, §5.1);
            // RP = a hash-random third-party domain (§5.1).
            let source = all[rng.gen_range(0..all.len())];
            let mut pool = all.clone();
            pool.retain(|d| *d != source);
            pool.shuffle(&mut rng);
            let receivers: Vec<DomainId> = pool[..k].to_vec();
            let root = receivers[0];
            let rp = all[rng.gen_range(0..all.len())];
            let pl = compare_trees(&graph, source, &receivers, root, rp);
            acc[0] += pl.avg_ratio(&pl.unidirectional);
            acc[1] += pl.avg_ratio(&pl.bidirectional);
            acc[2] += pl.avg_ratio(&pl.hybrid);
            mx[0] = mx[0].max(pl.max_ratio(&pl.unidirectional));
            mx[1] = mx[1].max(pl.max_ratio(&pl.bidirectional));
            mx[2] = mx[2].max(pl.max_ratio(&pl.hybrid));
        }
        let t = trials as f64;
        let x = k as f64;
        s_uni_avg.push(x, acc[0] / t);
        s_bi_avg.push(x, acc[1] / t);
        s_hy_avg.push(x, acc[2] / t);
        s_uni_max.push(x, mx[0]);
        s_bi_max.push(x, mx[1]);
        s_hy_max.push(x, mx[2]);
        println!(
            "{:>6} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>9.3}",
            k,
            acc[0] / t,
            mx[0],
            acc[1] / t,
            mx[1],
            acc[2] / t,
            mx[2]
        );
    }

    let dir = results_dir();
    emit::write_results(
        &dir,
        "fig4_tree_quality",
        &[
            s_uni_avg.clone(),
            s_uni_max.clone(),
            s_bi_avg.clone(),
            s_bi_max.clone(),
            s_hy_avg.clone(),
            s_hy_max.clone(),
        ],
    )
    .expect("write results");

    // Shape summary against the paper (averaged over the larger sets).
    let from = 100.0;
    let uni = s_uni_avg.mean_y_from(from).unwrap_or(0.0);
    let bi = s_bi_avg.mean_y_from(from).unwrap_or(0.0);
    let hy = s_hy_avg.mean_y_from(from).unwrap_or(0.0);
    println!();
    println!("-- shape vs paper (receiver sets >= 100) --");
    println!("unidirectional avg ratio: measured {uni:.2}   paper ~2.0 (worst)");
    println!("bidirectional  avg ratio: measured {bi:.2}   paper <1.3");
    println!("hybrid         avg ratio: measured {hy:.2}   paper <1.2 (best shared)");
    println!(
        "ordering holds: uni > bi >= hy >= 1  ->  {}",
        if uni > bi && bi >= hy && hy >= 1.0 {
            "YES"
        } else {
            "NO"
        }
    );
    println!(
        "max ratios: uni {:.1} (paper <=6), bi {:.1} (paper <=4.5), hy {:.1} (paper <=4)",
        s_uni_max.max_y().unwrap_or(0.0),
        s_bi_max.max_y().unwrap_or(0.0),
        s_hy_max.max_y().unwrap_or(0.0)
    );
    println!("results written to {}", dir.display());
}
