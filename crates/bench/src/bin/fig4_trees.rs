//! FIG4 — path-length comparison of multicast distribution trees
//! (paper §5.4, figure 4): ratio of path length vs the shortest-path
//! tree, average and maximum, for unidirectional shared trees
//! (PIM-SM), bidirectional shared trees (BGMP), and hybrid trees
//! (BGMP + source-specific branches), as the receiver set grows from 1
//! to 1000 on a 3326-domain Internet-like topology.
//!
//! Paper's shape: hybrid avg ≲ 1.2× (max ≤ 4×); bidirectional avg
//! ≲ 1.3× (max ≤ 4.5×); unidirectional avg ≈ 2× (max ≤ 6×).
//!
//! Usage: `fig4_trees [--domains 3326] [--trials 10] [--seed 7]
//! [--maxrx 1000] [--threads N] [--shards K]` — any `--threads` value
//! produces byte-identical output (each grid cell is independently
//! seeded). `--shards` is accepted for CLI uniformity with the other
//! sweeps but is a no-op: the tree-quality grid is analytic (graph +
//! SPF), with no event engine to shard.

use masc_bgmp_bench::fig4::{run, series, Fig4Params};
use masc_bgmp_bench::{banner, results_dir, Args};
use metrics::emit;

fn main() {
    let args = Args::parse();
    let p = Fig4Params {
        domains: args.usize("domains", 3326),
        trials: args.trials(10),
        seed: args.seed(7),
        maxrx: args.usize("maxrx", 1000),
        threads: args.threads(),
    };
    if args.usize("shards", 0) > 0 {
        println!("note: --shards ignored (fig4 is analytic; no event engine involved)");
    }

    banner(
        "FIG4",
        &format!(
            "tree quality on {}-domain topology, {} trials per point, seed {}, {} thread(s)",
            p.domains, p.trials, p.seed, p.threads
        ),
    );

    println!(
        "{:>6} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} | {:>10} {:>10} {:>10} {:>10} {:>10}",
        "recv",
        "uni_avg",
        "uni_max",
        "bi_avg",
        "bi_max",
        "hy_avg",
        "hy_max",
        "bgmp_state",
        "bier_state",
        "menc_state",
        "bier_copy",
        "menc_copy"
    );
    let points = run(&p);
    for pt in &points {
        println!(
            "{:>6} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>9.3} | {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
            pt.recv,
            pt.avg[0],
            pt.max[0],
            pt.avg[1],
            pt.max[1],
            pt.avg[2],
            pt.max[2],
            pt.state[0],
            pt.state[1],
            pt.state[2],
            pt.copies[0],
            pt.copies[1]
        );
    }

    let out = series(&points);
    let dir = results_dir();
    emit::write_results(&dir, "fig4_tree_quality", &out).expect("write results");

    // Shape summary against the paper (averaged over the larger sets).
    let from = 100.0;
    let uni = out[0].mean_y_from(from).unwrap_or(0.0);
    let bi = out[2].mean_y_from(from).unwrap_or(0.0);
    let hy = out[4].mean_y_from(from).unwrap_or(0.0);
    println!();
    println!("-- shape vs paper (receiver sets >= 100) --");
    println!("unidirectional avg ratio: measured {uni:.2}   paper ~2.0 (worst)");
    println!("bidirectional  avg ratio: measured {bi:.2}   paper <1.3");
    println!("hybrid         avg ratio: measured {hy:.2}   paper <1.2 (best shared)");
    println!(
        "ordering holds: uni > bi >= hy >= 1  ->  {}",
        if uni > bi && bi >= hy && hy >= 1.0 {
            "YES"
        } else {
            "NO"
        }
    );
    println!(
        "max ratios: uni {:.1} (paper <=6), bi {:.1} (paper <=4.5), hy {:.1} (paper <=4)",
        out[1].max_y().unwrap_or(0.0),
        out[3].max_y().unwrap_or(0.0),
        out[5].max_y().unwrap_or(0.0)
    );

    // Architecture ablation: where state lives and what traffic costs.
    let last = points.last().unwrap();
    println!();
    println!("-- architecture ablation (largest receiver set) --");
    println!(
        "per-group state:  BGMP tree {:.0} routers, BIER ingress {:.0} bitstring(s), map-and-encap {:.0} encaps",
        last.state[0], last.state[1], last.state[2]
    );
    println!(
        "path stretch:     BIER {:.2}, map-and-encap {:.2} (both ride unicast SPT)",
        last.stretch[0], last.stretch[1]
    );
    println!(
        "link copies/send: BIER {:.1} vs map-and-encap {:.1}",
        last.copies[0], last.copies[1]
    );
    println!("results written to {}", dir.display());
}
