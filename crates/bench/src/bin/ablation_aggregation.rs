//! AGG — group-route aggregation ablation (paper §4.2/§4.3.2: "the
//! border routers of the parent domain need not propagate their
//! children's group routes explicitly to the rest of the world. This
//! helps in reducing the number of routes in the G-RIB").
//!
//! Builds hierarchies of growing depth with nested (MASC-style) range
//! assignment and measures G-RIB sizes at every router with
//! aggregation suppression on vs off.
//!
//! Usage: `ablation_aggregation [--fanout 3]`

use masc_bgmp_bench::{banner, results_dir, Args};
use masc_bgmp_core::analysis::grib_sizes;
use masc_bgmp_core::{Addressing, BorderPlan, Internet, InternetConfig};
use metrics::{emit, Series, Summary};
use migp::MigpKind;
use topology::{hierarchical, HierSpec};

fn run(depth: usize, fanout: usize, suppress: bool) -> Summary {
    let fanouts = vec![fanout; depth];
    let h = hierarchical(&HierSpec {
        fanouts,
        mesh_top: true,
    });
    let cfg = InternetConfig {
        migp: MigpKind::Cbt,
        borders: BorderPlan::Single,
        addressing: Addressing::StaticNested,
        aggregate_suppress: suppress,
        ..Default::default()
    };
    let mut net = Internet::build(h.graph.clone(), &cfg);
    net.converge();
    let sizes: Vec<f64> = grib_sizes(&net).into_iter().map(|s| s as f64).collect();
    Summary::of(&sizes).expect("router G-RIBs")
}

fn main() {
    let args = Args::parse();
    let fanout = args.usize("fanout", 3);
    banner(
        "AGG",
        "G-RIB size with and without covered-route suppression, nested ranges",
    );

    let mut s_on = Series::new("grib_mean_suppressed");
    let mut s_off = Series::new("grib_mean_unsuppressed");
    println!(
        "{:>6} {:>8} {:>22} {:>22} {:>8}",
        "depth", "domains", "grib mean/max (on)", "grib mean/max (off)", "saving"
    );
    for depth in 2..=4 {
        let on = run(depth, fanout, true);
        let off = run(depth, fanout, false);
        let domains: usize = (0..depth).map(|l| fanout.pow(l as u32 + 1)).sum();
        println!(
            "{:>6} {:>8} {:>13.1} / {:>5.0} {:>15.1} / {:>5.0} {:>7.0}%",
            depth,
            domains,
            on.mean,
            on.max,
            off.mean,
            off.max,
            (1.0 - on.mean / off.mean) * 100.0
        );
        s_on.push(depth as f64, on.mean);
        s_off.push(depth as f64, off.mean);
        assert!(
            on.mean < off.mean,
            "suppression must shrink the G-RIB (depth {depth})"
        );
    }
    emit::write_results(&results_dir(), "ablation_aggregation", &[s_on, s_off]).expect("write");
    println!();
    println!("shape: with nested ranges, suppression keeps the G-RIB near the number of");
    println!("top-level + sibling prefixes; without it every domain's prefix floods globally");
    println!("(the paper's 37,500-blocks-in-175-routes result is this effect at fig-2 scale).");
}
