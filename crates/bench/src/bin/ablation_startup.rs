//! STARTUP — bootstrap from exchange points (paper §4.4: "the entire
//! multicast address space is initially partitioned among one or more
//! Internet exchange points (say, one per continent) ... backbone
//! providers with no parent then pick the prefix of a nearby exchange
//! as their parent's prefix").
//!
//! Sweeps the number of exchanges for a fixed set of top-level
//! providers and measures time-to-first-grant and collision counts:
//! partitioning the space across exchanges removes contention between
//! providers on different exchanges.
//!
//! Usage: `ablation_startup [--tops 12] [--seed 2] [--threads 1]`
//! (the exchange-count sweep fans across `--threads` workers without
//! changing the output)

use masc::msg::{DomainAsn, MascAction, MascMsg};
use masc::{MascConfig, MascNode};
use masc_bgmp_bench::{banner, results_dir, run_tasks, Args};
use mcast_addr::{Prefix, Secs};
use metrics::{emit, Series};
use std::collections::VecDeque;

/// Partitions 224/4 among `k` exchanges and assigns provider `i` to
/// exchange `i % k`, then lets every provider claim at t=0.
fn run(tops: usize, exchanges: usize, seed: u64) -> (u64, Secs) {
    let cfg = MascConfig {
        wait_period: 600,
        range_lifetime: 1_000_000,
        renew_margin: 100_000,
        claim_retry_backoff: 60,
        min_claim_len: 24,
        ..MascConfig::default()
    };
    let bits = (usize::BITS - (exchanges.max(1) - 1).leading_zeros()) as u8;
    let exchange_prefixes: Vec<Prefix> = Prefix::MULTICAST
        .subprefixes(4 + bits)
        .take(exchanges)
        .collect();

    let asns: Vec<DomainAsn> = (1..=tops as u32).collect();
    let mut nodes: Vec<MascNode> = asns
        .iter()
        .map(|&a| {
            let sibs: Vec<DomainAsn> = asns.iter().copied().filter(|s| *s != a).collect();
            let mut n = MascNode::new(a, None, vec![], sibs, cfg.clone(), seed);
            let ex = exchange_prefixes[(a as usize - 1) % exchanges];
            n.bootstrap_ranges(&[(ex, Secs::MAX)]);
            n
        })
        .collect();

    let mut inbox: VecDeque<(usize, DomainAsn, MascMsg)> = VecDeque::new();
    let route = |acts: Vec<MascAction>,
                 from: DomainAsn,
                 inbox: &mut VecDeque<(usize, DomainAsn, MascMsg)>| {
        for a in acts {
            if let MascAction::Send { to, msg } = a {
                inbox.push_back((to as usize - 1, from, msg));
            }
        }
    };
    for (i, n) in nodes.iter_mut().enumerate() {
        let mut acts = Vec::new();
        n.request_block(0, 24, 500_000, &mut acts);
        route(acts, (i + 1) as DomainAsn, &mut inbox);
    }
    let mut now: Secs = 0;
    let mut guard = 0;
    while guard < 1_000_000 {
        guard += 1;
        if let Some((to, from, msg)) = inbox.pop_front() {
            let acts = nodes[to].on_message(now, from, msg);
            route(acts, (to + 1) as DomainAsn, &mut inbox);
            continue;
        }
        if nodes.iter().all(|n| !n.granted_ranges().is_empty()) {
            break;
        }
        let Some(next) = nodes.iter().filter_map(|n| n.next_deadline()).min() else {
            break;
        };
        now = next.max(now);
        for (i, node) in nodes.iter_mut().enumerate() {
            if node.next_deadline().is_some_and(|d| d <= now) {
                let acts = node.on_tick(now);
                route(acts, (i + 1) as DomainAsn, &mut inbox);
            }
        }
    }
    let collisions: u64 = nodes.iter().map(|n| n.stats.collisions).sum();
    (collisions, now)
}

fn main() {
    let args = Args::parse();
    let tops = args.usize("tops", 12);
    let seed = args.seed(2);
    let threads = args.threads();
    banner(
        "STARTUP",
        &format!("{tops} top-level providers bootstrapping from k exchanges"),
    );

    let mut s_coll = Series::new("collisions");
    let mut s_time = Series::new("secs_to_all_granted");
    println!(
        "{:>10} {:>12} {:>14}",
        "exchanges", "collisions", "settle_secs"
    );
    let ks = [1usize, 2, 3, 4, 6];
    let rounds = run_tasks(threads, &ks, |_, &k| run(tops, k, seed));
    for (&k, &(coll, t)) in ks.iter().zip(&rounds) {
        println!("{:>10} {:>12} {:>14}", k, coll, t);
        s_coll.push(k as f64, coll as f64);
        s_time.push(k as f64, t as f64);
    }
    emit::write_results(&results_dir(), "ablation_startup", &[s_coll, s_time]).expect("write");
    println!();
    println!("shape: more exchanges partition the claim space, so fewer providers contend");
    println!("for the same first-sub-prefix candidates — collisions fall as k grows, and");
    println!("no top-level parent/root is ever required (the paper's third-party-");
    println!("dependency argument for claim-collide over query-response, §4.3.4/§4.4).");
}
