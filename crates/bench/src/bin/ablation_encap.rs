//! ENCAP — encapsulation vs source-specific branches (paper §5.3:
//! "if a source-specific branch is built, data can be brought into the
//! domain from the source via the appropriate border router so that
//! the data encapsulation overhead can be avoided").
//!
//! Reconstructs the figure-3 scenario (DVMRP domain F with two border
//! routers) and streams packets from a source in domain D, counting
//! encapsulated hand-offs with branches enabled vs disabled.
//!
//! Usage: `ablation_encap [--packets 20]`

use masc_bgmp_bench::{banner, results_dir, Args};
use masc_bgmp_core::{asn_of, Addressing, BorderPlan, HostId, Internet, InternetConfig};
use metrics::{emit, Series};
use migp::MigpKind;
use topology::{DomainGraph, DomainId};

fn fig3() -> (DomainGraph, Vec<DomainId>) {
    let mut g = DomainGraph::new();
    let ids: Vec<DomainId> = ["A", "B", "C", "D", "E", "F", "G", "H"]
        .iter()
        .map(|n| g.add_domain(*n))
        .collect();
    let (a, b, c, d, e, f, gg, h) = (
        ids[0], ids[1], ids[2], ids[3], ids[4], ids[5], ids[6], ids[7],
    );
    g.add_peering(a, d);
    g.add_peering(a, e);
    g.add_peering(d, e);
    g.add_provider_customer(a, b);
    g.add_provider_customer(a, c);
    g.add_provider_customer(b, f);
    g.add_provider_customer(a, f);
    g.add_provider_customer(c, gg);
    g.add_provider_customer(gg, h);
    (g, ids)
}

fn run(packets: usize, branches: bool) -> (Vec<u64>, u64) {
    let (graph, ids) = fig3();
    let cfg = InternetConfig {
        migp: MigpKind::Dvmrp,
        borders: BorderPlan::PerEdge,
        addressing: Addressing::Static,
        ..Default::default()
    };
    let mut net = Internet::build(graph, &cfg);
    if !branches {
        for d in net.graph.domains() {
            net.domain_mut(d).source_branches = false;
        }
    }
    net.converge();
    let (b, d, f) = (ids[1], ids[3], ids[5]);
    let g = net.group_addr(b);
    for m in [
        HostId {
            domain: asn_of(b),
            host: 1,
        },
        HostId {
            domain: asn_of(f),
            host: 1,
        },
        HostId {
            domain: asn_of(d),
            host: 1,
        },
    ] {
        net.host_join(m, g);
    }
    net.converge();
    let source = HostId {
        domain: asn_of(d),
        host: 9,
    };
    let mut encap_per_packet = Vec::new();
    let mut prev = net.total_encapsulations();
    for _ in 0..packets {
        let id = net.send_data(source, g);
        net.converge();
        assert_eq!(net.deliveries(id).len(), 3, "members always served");
        let now = net.total_encapsulations();
        encap_per_packet.push(now - prev);
        prev = now;
    }
    (encap_per_packet, net.total_duplicates())
}

fn main() {
    let args = Args::parse();
    let packets = args.usize("packets", 20);
    banner(
        "ENCAP",
        "figure-3 DVMRP encapsulation with/without source-specific branches",
    );

    let (with, dup_w) = run(packets, true);
    let (without, dup_wo) = run(packets, false);
    println!(
        "{:>8} {:>14} {:>14}",
        "packet", "branches on", "branches off"
    );
    for i in 0..packets {
        println!("{:>8} {:>14} {:>14}", i + 1, with[i], without[i]);
    }
    let total_w: u64 = with.iter().sum();
    let total_wo: u64 = without.iter().sum();
    println!("{:>8} {:>14} {:>14}", "total", total_w, total_wo);
    println!("duplicates: on={dup_w} off={dup_wo}");

    let mut s_on = Series::new("encap_with_branches");
    let mut s_off = Series::new("encap_without_branches");
    for (i, (w, wo)) in with.iter().zip(&without).enumerate() {
        s_on.push(i as f64 + 1.0, *w as f64);
        s_off.push(i as f64 + 1.0, *wo as f64);
    }
    emit::write_results(&results_dir(), "ablation_encap", &[s_on, s_off]).expect("write");

    assert!(total_w < total_wo, "branches must reduce encapsulation");
    assert_eq!(
        with.last(),
        Some(&0),
        "steady state with branches is encapsulation-free"
    );
    assert!(
        without.iter().all(|e| *e > 0),
        "without branches every packet pays"
    );
    println!();
    println!("shape: with branches, only the first packet(s) are encapsulated while the");
    println!("branch is built; afterwards data enters F natively at F2. Without branches,");
    println!("every packet from the source pays the F1→F2 encapsulation forever (§5.3).");
}
