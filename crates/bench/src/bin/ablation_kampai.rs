//! KAMPAI — non-contiguous masks vs buddy doubling (paper §4.3.3/§7:
//! "the use of non-contiguous masks as in Kampai ... would provide even
//! better address space utilization").
//!
//! Fragmentation scenario: tenants are packed adjacently (the state a
//! space reaches after churn), then one tenant keeps growing. Buddy
//! doubling is blocked the moment the grower's buddy is occupied;
//! Kampai frees *any* mask bit and keeps absorbing whatever free space
//! exists.
//!
//! Usage: `ablation_kampai`

use masc_bgmp_bench::{banner, results_dir};
use mcast_addr::kampai::KampaiSpace;
use mcast_addr::{Prefix, SpaceTracker};
use metrics::{emit, Series};

/// Packs `tenants` /28 ranges adjacently from the base of a /20, then
/// grows tenant 0 by buddy doubling until stuck. Returns tenant 0's
/// final size.
fn buddy_grow_one(tenants: usize) -> u64 {
    let root: Prefix = "224.0.0.0/20".parse().unwrap();
    let mut t = SpaceTracker::new(root);
    let mut held: Vec<Prefix> = Vec::new();
    for i in 0..tenants {
        let base = root.base_u32() + (i as u32) * 16;
        let p = Prefix::new(base, 28).expect("aligned");
        assert!(t.insert(p));
        held.push(p);
    }
    let mut mine = held[0];
    while let Some(parent) = t.expansion_of(&mine) {
        t.remove(&mine);
        t.insert(parent);
        mine = parent;
    }
    mine.size()
}

/// Same packing with Kampai ranges; grows allocation 0 by freeing mask
/// bits until stuck. Returns its final size.
fn kampai_grow_one(tenants: usize) -> u64 {
    let root: Prefix = "224.0.0.0/20".parse().unwrap();
    let mut s = KampaiSpace::new(root);
    let mut size = 0;
    for i in 0..tenants {
        let (_, r) = s.alloc(4).expect("room for tenants");
        if i == 0 {
            size = r.size();
        }
    }
    while let Some(r) = s.double(0) {
        size = r.size();
    }
    size
}

fn main() {
    banner(
        "KAMPAI",
        "growth under fragmentation: buddy (contiguous) vs Kampai (non-contiguous) masks",
    );

    let mut s_buddy = Series::new("buddy_final_size");
    let mut s_kampai = Series::new("kampai_final_size");
    println!(
        "{:>8} {:>18} {:>18} {:>8}",
        "tenants", "buddy final size", "kampai final size", "gain"
    );
    for t in [2usize, 3, 4, 6, 8, 12] {
        let b = buddy_grow_one(t);
        let k = kampai_grow_one(t);
        println!("{:>8} {:>18} {:>18} {:>7.1}x", t, b, k, k as f64 / b as f64);
        s_buddy.push(t as f64, b as f64);
        s_kampai.push(t as f64, k as f64);
        assert!(k >= b, "Kampai must never grow less than buddy");
    }
    emit::write_results(&results_dir(), "ablation_kampai", &[s_buddy, s_kampai]).expect("write");
    println!();
    println!("shape: adjacent packing blocks buddy doubling immediately (the buddy is the");
    println!("next tenant), while Kampai keeps freeing higher mask bits and absorbs the");
    println!("free tail of the space — the utilization gain the paper anticipates from");
    println!("non-contiguous masks, at the operational cost it also warns about (§4.3.3).");
}
