//! FAULTS — fault-tolerance ablation over the deterministic chaos
//! harness: a (loss × flap-count) grid of full-protocol chaos runs
//! (per-message loss/dup/jitter, silent link flaps, one fail-stop
//! crash/restart each), reporting end-to-end delivery ratio during the
//! chaos phase and re-convergence time after the faults cease.
//!
//! Each cell is independently seeded, so the emitted CSV is
//! byte-identical across `--threads` values and reruns; CI regenerates
//! the `--smoke` grid and diffs it against the committed golden file
//! (`crates/bench/tests/golden/faults_small_serial.csv`). Mid-run
//! invariants are asserted inside every cell — a chaos run that
//! corrupts tree state aborts the sweep instead of producing numbers.
//!
//! Usage: `ablation_faults [--smoke] [--threads N] [--seed S]
//!         [--domains D] [--secs T] [--shards K]`
//!
//! `--shards K` (default 0) runs every cell's engine sharded with
//! conservative lookahead; the CSV is byte-identical for any K ≥ 1
//! (CI diffs `--shards 4` against
//! `crates/bench/tests/golden/faults_small_shard.csv`), while K = 0
//! keeps the legacy serial engine and the historical golden.

use masc_bgmp_bench::faults::{flap_grid, run, series, FaultsParams};
use masc_bgmp_bench::{banner, results_dir, Args};
use metrics::emit;

fn main() {
    let args = Args::parse();
    let smoke = args.flag("smoke");
    let p = FaultsParams {
        domains: args.usize("domains", if smoke { 5 } else { 6 }),
        chaos_secs: args.u64("secs", if smoke { 60 } else { 120 }),
        seed: args.seed(7),
        threads: args.threads(),
        smoke,
        shards: args.usize("shards", 0),
    };
    banner(
        "FAULTS",
        &format!(
            "loss x flaps chaos sweep ({} domains, {} s chaos, seed {}, {} engine{})",
            p.domains,
            p.chaos_secs,
            p.seed,
            if p.shards == 0 {
                "serial".to_string()
            } else {
                format!("{}-shard", p.shards)
            },
            if smoke { ", smoke grid" } else { "" }
        ),
    );

    let cells = run(&p);
    println!(
        "{:>8} {:>7} {:>14} {:>14} {:>6} | {:>9} {:>9} {:>9} {:>9}",
        "loss",
        "flaps",
        "bgmp_deliv",
        "bgmp_conv_ms",
        "probe",
        "bier_dlv",
        "bier_rec",
        "menc_dlv",
        "menc_rec"
    );
    for c in &cells {
        println!(
            "{:>8.2} {:>7} {:>14.4} {:>14} {:>6} | {:>9.4} {:>9} {:>9.4} {:>9}",
            c.loss,
            c.flaps,
            c.delivery_ratio,
            c.convergence_ms,
            c.probe_clean,
            c.bier_delivery,
            c.bier_recovery_ms,
            c.mapencap_delivery,
            c.mapencap_recovery_ms
        );
        assert!(c.probe_clean, "post-quiesce probe lost or duplicated");
    }
    // One series pair per flap count, loss on the x axis.
    assert_eq!(cells.len() % flap_grid(smoke).len(), 0);
    emit::write_results(&results_dir(), "ablation_faults", &series(&cells, smoke))
        .expect("write results");
    println!();
    println!("shape: delivery ratio degrades smoothly with loss (chaos-phase packets ride");
    println!("the faulted links), while convergence time is dominated by the hold/retry");
    println!("timers — flaps stretch it, loss barely moves it, and every cell still ends");
    println!("invariant-clean with an exactly-once probe: repair is lossy-channel-proof.");
    println!();
    println!("BIER columns replay the same derived flap/crash schedule through the");
    println!("stateless planes: with 1:1 backup paths a flap costs only the detection");
    println!("delay (bier_rec), while map-and-encap waits out the outage plus");
    println!("reconvergence (menc_rec); crashes are unprotected under both and show up");
    println!("in the delivery columns instead.");
}
