//! WAIT-48 — the waiting-period vs network-partition ablation (paper
//! §4.1: the claimer "waits for collision announcements for a waiting
//! period long enough to span network partitions"; 48 h suggested).
//!
//! Two sibling domains claim the same range while the link between
//! them is partitioned. We sweep the partition duration against the
//! waiting period and report, for each case, whether the collision was
//! caught *during* waiting (clean: one winner before any grant) or
//! only after both domains had finalized (dirty: established-vs-
//! established conflict resolved by the domain-id tiebreak, with a
//! range loss).
//!
//! Usage: `ablation_partition [--wait 3600]`

use masc::msg::{DomainAsn, MascAction, MascMsg};
use masc::{MascConfig, MascNode};
use masc_bgmp_bench::{banner, results_dir, Args};
use mcast_addr::{Prefix, Secs};
use metrics::{emit, Series};
use std::collections::VecDeque;

struct Outcome {
    dirty: bool,
    lost_ranges: u64,
    final_disjoint: bool,
}

/// Runs two siblings claiming at t=0 with the link down until
/// `heal_at`; messages sent while partitioned are dropped.
fn run(wait: Secs, heal_at: Secs, seed: u64) -> Outcome {
    let cfg = MascConfig {
        wait_period: wait,
        range_lifetime: 50 * wait,
        renew_margin: 10 * wait,
        claim_retry_backoff: wait / 10,
        min_claim_len: 24,
        ..MascConfig::default()
    };
    let mk = |asn: DomainAsn, sib: DomainAsn| {
        let mut n = MascNode::new(asn, None, vec![], vec![sib], cfg.clone(), seed);
        n.bootstrap_ranges(&[(Prefix::new(0xE000_0000, 16).unwrap(), Secs::MAX)]);
        n
    };
    let mut a = mk(1, 2);
    let mut b = mk(2, 1);

    let mut inbox: VecDeque<(DomainAsn, DomainAsn, MascMsg, Secs)> = VecDeque::new();
    let mut lost: u64 = 0;
    let route = |acts: Vec<MascAction>,
                 from: DomainAsn,
                 now: Secs,
                 heal_at: Secs,
                 inbox: &mut VecDeque<(DomainAsn, DomainAsn, MascMsg, Secs)>,
                 lost: &mut u64| {
        for act in acts {
            match act {
                MascAction::Send { to, msg } if now >= heal_at => {
                    inbox.push_back((to, from, msg, now));
                } // else: partitioned, dropped
                MascAction::RangeLost { .. } => *lost += 1,
                _ => {}
            }
        }
    };

    // Both request at t=0 (identical demand → identical candidate).
    let mut acts = Vec::new();
    a.request_block(0, 24, 10 * wait, &mut acts);
    route(acts, 1, 0, heal_at, &mut inbox, &mut lost);
    let mut acts = Vec::new();
    b.request_block(0, 24, 10 * wait, &mut acts);
    route(acts, 2, 0, heal_at, &mut inbox, &mut lost);

    let mut now: Secs = 0;
    let mut dirty = false;
    let mut guard = 0;
    let horizon = heal_at + 30 * wait;
    loop {
        guard += 1;
        if guard > 500_000 {
            break;
        }
        if let Some((to, from, msg, _)) = inbox.pop_front() {
            let node = if to == 1 { &mut a } else { &mut b };
            let acts = node.on_message(now, from, msg);
            route(acts, to, now, heal_at, &mut inbox, &mut lost);
            continue;
        }
        // Detect the dirty state: both sides granted overlapping
        // ranges (only possible while partitioned past the wait).
        for (pa, _) in a.granted_ranges() {
            for (pb, _) in b.granted_ranges() {
                if pa.overlaps(&pb) {
                    dirty = true;
                }
            }
        }
        let next = [a.next_deadline(), b.next_deadline(), Some(heal_at)]
            .into_iter()
            .flatten()
            .filter(|t| *t > now)
            .min();
        let Some(next) = next else { break };
        now = next;
        if now > horizon {
            break;
        }
        if now == heal_at {
            // On heal, both sides re-announce their state (renewals are
            // the natural heal-time traffic; force one early here).
            for (node, asn) in [(&mut a, 1), (&mut b, 2)] {
                let ranges = node.granted_ranges();
                for (p, e) in ranges {
                    let msg = MascMsg::Renew {
                        claimer: asn,
                        prefix: p,
                        expires: e,
                    };
                    inbox.push_back((3 - asn, asn, msg, now));
                }
            }
        }
        for (node, asn) in [(&mut a, 1u32), (&mut b, 2u32)] {
            if node.next_deadline().is_some_and(|d| d <= now) {
                let acts = node.on_tick(now);
                route(acts, asn, now, heal_at, &mut inbox, &mut lost);
            }
        }
        // Quiesce condition: both granted, disjoint, no messages.
        let disjoint = a
            .granted_ranges()
            .iter()
            .all(|(pa, _)| b.granted_ranges().iter().all(|(pb, _)| !pa.overlaps(pb)));
        if inbox.is_empty()
            && disjoint
            && !a.granted_ranges().is_empty()
            && !b.granted_ranges().is_empty()
            && now > heal_at
            && !a.claim_in_flight()
            && !b.claim_in_flight()
        {
            break;
        }
    }

    let final_disjoint = a
        .granted_ranges()
        .iter()
        .all(|(pa, _)| b.granted_ranges().iter().all(|(pb, _)| !pa.overlaps(pb)));
    Outcome {
        dirty,
        lost_ranges: lost,
        final_disjoint,
    }
}

fn main() {
    let args = Args::parse();
    let wait = args.u64("wait", 3600);
    banner(
        "WAIT-48",
        &format!(
            "partition vs waiting period (wait = {wait}s; paper recommends 48h in deployment)"
        ),
    );

    let mut s_dirty = Series::new("both_finalized");
    let mut s_lost = Series::new("ranges_lost");
    println!(
        "{:>16} {:>18} {:>12} {:>16}",
        "partition/wait", "both_finalized?", "ranges_lost", "final_disjoint?"
    );
    for frac in [0u64, 1, 5, 9, 12, 20, 40] {
        let heal_at = wait * frac / 10;
        let o = run(wait, heal_at, 11);
        println!(
            "{:>15.1}x {:>18} {:>12} {:>16}",
            frac as f64 / 10.0,
            if o.dirty { "YES (dirty)" } else { "no (clean)" },
            o.lost_ranges,
            o.final_disjoint
        );
        s_dirty.push(frac as f64 / 10.0, if o.dirty { 1.0 } else { 0.0 });
        s_lost.push(frac as f64 / 10.0, o.lost_ranges as f64);
        assert!(
            o.final_disjoint,
            "partition healing must always end disjoint"
        );
    }
    emit::write_results(&results_dir(), "ablation_partition", &[s_dirty, s_lost]).expect("write");
    println!();
    println!("shape: partitions shorter than the waiting period are caught cleanly during");
    println!("waiting (no grant conflict); longer partitions produce an established-vs-");
    println!("established conflict that costs the higher-id domain its range — exactly why");
    println!("the paper sizes the waiting period to span realistic partitions (48 h).");
}
