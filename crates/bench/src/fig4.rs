//! FIG4 computation (paper §5.4): tree-quality ratios over a
//! (receiver-count × trial) grid, factored out of the binary so the
//! parallel harness and the determinism regression test share one code
//! path.
//!
//! Every grid cell is an independent task seeded with
//! [`task_seed`]`(seed, cell-index)`, so the result — and hence the
//! emitted CSV/JSON — is byte-identical for any `--threads` value.

use bier::state::{bier_link_copies, mapencap_link_copies};
use bier::{GroupState, SubDomain, DEFAULT_BSL};
use masc_bgmp_core::trees::compare_trees_full;
use metrics::Series;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use topology::{internet_like, DomainGraph, DomainId, InternetSpec};

use crate::par::{run_tasks, task_seed};

/// Inputs of a FIG4 run (`fig4_trees` CLI defaults in brackets).
#[derive(Clone, Copy, Debug)]
pub struct Fig4Params {
    /// Topology size [3326].
    pub domains: usize,
    /// Trials per receiver-count point [10].
    pub trials: usize,
    /// Base seed; cell seeds derive via [`task_seed`] [7].
    pub seed: u64,
    /// Largest receiver set swept [1000].
    pub maxrx: usize,
    /// Harness workers; 1 = serial [1].
    pub threads: usize,
}

/// One receiver-count point: per-protocol average and worst ratios,
/// protocol order `[unidirectional, bidirectional, hybrid]`, plus the
/// three-architecture ablation columns (BGMP shared tree vs BIER vs
/// map-and-encap ingress replication).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Fig4Point {
    pub recv: usize,
    pub avg: [f64; 3],
    pub max: [f64; 3],
    /// Mean per-group control-state entries `[bgmp, bier, mapencap]`:
    /// routers on the shared tree vs ingress bitstrings vs ingress
    /// encapsulations.
    pub state: [f64; 3],
    /// Mean path stretch over SPT `[bier, mapencap]` — both ride
    /// unicast shortest paths, so both are exactly 1.0; emitted so the
    /// CSV states it rather than implying it.
    pub stretch: [f64; 2],
    /// Mean data-plane link copies per delivery `[bier, mapencap]`:
    /// SPT-subtree edges per touched set vs sum of unicast path
    /// lengths.
    pub copies: [f64; 2],
}

/// Per-trial sample for one grid cell.
#[derive(Clone, Copy, Debug, PartialEq)]
struct TrialStats {
    avg: [f64; 3],
    max: [f64; 3],
    state: [f64; 3],
    stretch: [f64; 2],
    copies: [f64; 2],
}

/// Receiver counts swept: the paper's 1..1000 with log-ish spacing.
pub fn receiver_sizes(n: usize, maxrx: usize) -> Vec<usize> {
    [1usize, 2, 5, 10, 20, 50, 100, 200, 350, 500, 700, 850, 1000]
        .into_iter()
        .filter(|s| *s <= maxrx && *s < n)
        .collect()
}

/// Runs the full grid and folds per-point stats in task order.
pub fn run(p: &Fig4Params) -> Vec<Fig4Point> {
    let graph = internet_like(&InternetSpec {
        n: p.domains,
        backbones: 10,
        attach: 2,
        extra_peerings: 30,
        seed: p.seed,
    });
    let all: Vec<DomainId> = graph.domains().collect();
    let sizes = receiver_sizes(p.domains, p.maxrx);

    // One task per (receiver-count, trial) cell, row-major.
    let tasks: Vec<usize> = sizes
        .iter()
        .flat_map(|&k| std::iter::repeat_n(k, p.trials))
        .collect();
    let cells = run_tasks(p.threads, &tasks, |i, &k| {
        trial(&graph, &all, k, task_seed(p.seed, i as u64))
    });

    // Fold trials into points. Task-order merge makes the float
    // summation order independent of scheduling.
    sizes
        .iter()
        .zip(cells.chunks(p.trials))
        .map(|(&k, chunk)| {
            let mut avg = [0.0f64; 3];
            let mut max = [0.0f64; 3];
            let mut state = [0.0f64; 3];
            let mut stretch = [0.0f64; 2];
            let mut copies = [0.0f64; 2];
            for s in chunk {
                for i in 0..3 {
                    avg[i] += s.avg[i];
                    max[i] = max[i].max(s.max[i]);
                    state[i] += s.state[i];
                }
                for i in 0..2 {
                    stretch[i] += s.stretch[i];
                    copies[i] += s.copies[i];
                }
            }
            let t = p.trials as f64;
            Fig4Point {
                recv: k,
                avg: avg.map(|v| v / t),
                max,
                state: state.map(|v| v / t),
                stretch: stretch.map(|v| v / t),
                copies: copies.map(|v| v / t),
            }
        })
        .collect()
}

/// One grid cell: sample a scenario from `seed`, compare the trees and
/// the three architectures' state/traffic footprints. The RNG draw
/// order (source, receiver shuffle, RP) is load-bearing: the first six
/// output series are pinned by committed goldens, and every BIER /
/// map-and-encap metric is computed *after* the draws so they stay
/// byte-identical.
fn trial(graph: &DomainGraph, all: &[DomainId], k: usize, seed: u64) -> TrialStats {
    let mut rng = StdRng::seed_from_u64(seed);
    // Random source; receivers sampled without replacement;
    // root = the initiator's domain (first receiver, §5.1);
    // RP = a hash-random third-party domain (§5.1).
    let source = all[rng.gen_range(0..all.len())];
    let mut pool = all.to_vec();
    pool.retain(|d| *d != source);
    pool.shuffle(&mut rng);
    let receivers: Vec<DomainId> = pool[..k].to_vec();
    let root = receivers[0];
    let rp = all[rng.gen_range(0..all.len())];
    let tc = compare_trees_full(graph, source, &receivers, root, rp);
    let pl = &tc.paths;

    let sub = SubDomain::new(all.len(), DEFAULT_BSL);
    let gs = GroupState::compute(&sub, tc.shared_tree_size, &receivers);
    // BIER and map-and-encap both forward on unicast shortest paths, so
    // their stretch over SPT is 1.0 by construction (the forwarding
    // tests pin hops == BFS distances); `avg_ratio(&pl.spt)` states it
    // from the same code path as the tree ratios.
    let unicast_stretch = pl.avg_ratio(&pl.spt);
    TrialStats {
        avg: [
            pl.avg_ratio(&pl.unidirectional),
            pl.avg_ratio(&pl.bidirectional),
            pl.avg_ratio(&pl.hybrid),
        ],
        max: [
            pl.max_ratio(&pl.unidirectional),
            pl.max_ratio(&pl.bidirectional),
            pl.max_ratio(&pl.hybrid),
        ],
        state: [
            gs.bgmp_entries as f64,
            gs.bier_ingress_entries as f64,
            gs.mapencap_ingress_entries as f64,
        ],
        stretch: [unicast_stretch, unicast_stretch],
        copies: [
            bier_link_copies(&tc.from_source, &sub, &receivers) as f64,
            mapencap_link_copies(&tc.from_source, &receivers) as f64,
        ],
    }
}

/// The output series (`fig4_tree_quality`) from the folded points: the
/// paper's six tree-quality columns first (order pinned by goldens),
/// then the architecture-ablation columns.
pub fn series(points: &[Fig4Point]) -> Vec<Series> {
    let mut out = vec![
        Series::new("unidirectional_avg"),
        Series::new("unidirectional_max"),
        Series::new("bidirectional_avg"),
        Series::new("bidirectional_max"),
        Series::new("hybrid_avg"),
        Series::new("hybrid_max"),
        Series::new("bgmp_state_avg"),
        Series::new("bier_state_avg"),
        Series::new("mapencap_state_avg"),
        Series::new("bier_stretch_avg"),
        Series::new("mapencap_stretch_avg"),
        Series::new("bier_link_copies_avg"),
        Series::new("mapencap_link_copies_avg"),
    ];
    for pt in points {
        let x = pt.recv as f64;
        for i in 0..3 {
            out[2 * i].push(x, pt.avg[i]);
            out[2 * i + 1].push(x, pt.max[i]);
            out[6 + i].push(x, pt.state[i]);
        }
        for i in 0..2 {
            out[9 + i].push(x, pt.stretch[i]);
            out[11 + i].push(x, pt.copies[i]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_runs_are_identical() {
        let base = Fig4Params {
            domains: 120,
            trials: 3,
            seed: 7,
            maxrx: 20,
            threads: 1,
        };
        let serial = run(&base);
        let par = run(&Fig4Params { threads: 4, ..base });
        assert_eq!(serial, par);
        assert_eq!(serial.len(), receiver_sizes(120, 20).len());
    }

    #[test]
    fn ablation_columns_follow_the_architecture_model() {
        let points = run(&Fig4Params {
            domains: 120,
            trials: 3,
            seed: 7,
            maxrx: 20,
            threads: 1,
        });
        for pt in &points {
            // Stateless planes ride unicast shortest paths: stretch is
            // exactly 1.0, not approximately.
            assert_eq!(pt.stretch, [1.0, 1.0], "recv={}", pt.recv);
            // Map-and-encap ingress state is exactly the receiver count;
            // 120 domains fit one 256-bit set, so BIER holds one entry.
            assert_eq!(pt.state[2], pt.recv as f64);
            assert_eq!(pt.state[1], 1.0);
            // Ingress replication can never use fewer link copies than
            // the shared-subtree forwarding over the same SPT.
            assert!(pt.copies[1] >= pt.copies[0], "recv={}", pt.recv);
        }
        // BGMP's shared tree grows with the receiver set while BIER's
        // ingress state stays flat — the ablation's headline.
        let first = &points[0];
        let last = points.last().unwrap();
        assert!(last.state[0] > first.state[0]);
    }

    #[test]
    fn series_order_keeps_golden_prefix() {
        let names: Vec<String> = series(&[]).into_iter().map(|s| s.name).collect();
        assert_eq!(
            &names[..6],
            &[
                "unidirectional_avg",
                "unidirectional_max",
                "bidirectional_avg",
                "bidirectional_max",
                "hybrid_avg",
                "hybrid_max"
            ]
        );
        assert_eq!(names.len(), 13);
    }
}
