//! FIG4 computation (paper §5.4): tree-quality ratios over a
//! (receiver-count × trial) grid, factored out of the binary so the
//! parallel harness and the determinism regression test share one code
//! path.
//!
//! Every grid cell is an independent task seeded with
//! [`task_seed`]`(seed, cell-index)`, so the result — and hence the
//! emitted CSV/JSON — is byte-identical for any `--threads` value.

use masc_bgmp_core::trees::compare_trees;
use metrics::Series;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use topology::{internet_like, DomainGraph, DomainId, InternetSpec};

use crate::par::{run_tasks, task_seed};

/// Inputs of a FIG4 run (`fig4_trees` CLI defaults in brackets).
#[derive(Clone, Copy, Debug)]
pub struct Fig4Params {
    /// Topology size [3326].
    pub domains: usize,
    /// Trials per receiver-count point [10].
    pub trials: usize,
    /// Base seed; cell seeds derive via [`task_seed`] [7].
    pub seed: u64,
    /// Largest receiver set swept [1000].
    pub maxrx: usize,
    /// Harness workers; 1 = serial [1].
    pub threads: usize,
}

/// One receiver-count point: per-protocol average and worst ratios,
/// protocol order `[unidirectional, bidirectional, hybrid]`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Fig4Point {
    pub recv: usize,
    pub avg: [f64; 3],
    pub max: [f64; 3],
}

/// Receiver counts swept: the paper's 1..1000 with log-ish spacing.
pub fn receiver_sizes(n: usize, maxrx: usize) -> Vec<usize> {
    [1usize, 2, 5, 10, 20, 50, 100, 200, 350, 500, 700, 850, 1000]
        .into_iter()
        .filter(|s| *s <= maxrx && *s < n)
        .collect()
}

/// Runs the full grid and folds per-point stats in task order.
pub fn run(p: &Fig4Params) -> Vec<Fig4Point> {
    let graph = internet_like(&InternetSpec {
        n: p.domains,
        backbones: 10,
        attach: 2,
        extra_peerings: 30,
        seed: p.seed,
    });
    let all: Vec<DomainId> = graph.domains().collect();
    let sizes = receiver_sizes(p.domains, p.maxrx);

    // One task per (receiver-count, trial) cell, row-major.
    let tasks: Vec<usize> = sizes
        .iter()
        .flat_map(|&k| std::iter::repeat_n(k, p.trials))
        .collect();
    let cells = run_tasks(p.threads, &tasks, |i, &k| {
        trial(&graph, &all, k, task_seed(p.seed, i as u64))
    });

    // Fold trials into points. Task-order merge makes the float
    // summation order independent of scheduling.
    sizes
        .iter()
        .zip(cells.chunks(p.trials))
        .map(|(&k, chunk)| {
            let mut avg = [0.0f64; 3];
            let mut max = [0.0f64; 3];
            for (a, m) in chunk {
                for i in 0..3 {
                    avg[i] += a[i];
                    max[i] = max[i].max(m[i]);
                }
            }
            let t = p.trials as f64;
            Fig4Point {
                recv: k,
                avg: [avg[0] / t, avg[1] / t, avg[2] / t],
                max,
            }
        })
        .collect()
}

/// One grid cell: sample a scenario from `seed`, compare the trees.
/// Returns (avg ratios, max ratios) in protocol order.
fn trial(graph: &DomainGraph, all: &[DomainId], k: usize, seed: u64) -> ([f64; 3], [f64; 3]) {
    let mut rng = StdRng::seed_from_u64(seed);
    // Random source; receivers sampled without replacement;
    // root = the initiator's domain (first receiver, §5.1);
    // RP = a hash-random third-party domain (§5.1).
    let source = all[rng.gen_range(0..all.len())];
    let mut pool = all.to_vec();
    pool.retain(|d| *d != source);
    pool.shuffle(&mut rng);
    let receivers: Vec<DomainId> = pool[..k].to_vec();
    let root = receivers[0];
    let rp = all[rng.gen_range(0..all.len())];
    let pl = compare_trees(graph, source, &receivers, root, rp);
    (
        [
            pl.avg_ratio(&pl.unidirectional),
            pl.avg_ratio(&pl.bidirectional),
            pl.avg_ratio(&pl.hybrid),
        ],
        [
            pl.max_ratio(&pl.unidirectional),
            pl.max_ratio(&pl.bidirectional),
            pl.max_ratio(&pl.hybrid),
        ],
    )
}

/// The six output series (`fig4_tree_quality`) from the folded points.
pub fn series(points: &[Fig4Point]) -> Vec<Series> {
    let mut out = vec![
        Series::new("unidirectional_avg"),
        Series::new("unidirectional_max"),
        Series::new("bidirectional_avg"),
        Series::new("bidirectional_max"),
        Series::new("hybrid_avg"),
        Series::new("hybrid_max"),
    ];
    for pt in points {
        let x = pt.recv as f64;
        for i in 0..3 {
            out[2 * i].push(x, pt.avg[i]);
            out[2 * i + 1].push(x, pt.max[i]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_runs_are_identical() {
        let base = Fig4Params {
            domains: 120,
            trials: 3,
            seed: 7,
            maxrx: 20,
            threads: 1,
        };
        let serial = run(&base);
        let par = run(&Fig4Params { threads: 4, ..base });
        assert_eq!(serial, par);
        assert_eq!(serial.len(), receiver_sizes(120, 20).len());
    }
}
