//! Determinism-preserving parallel task runner for experiment sweeps.
//!
//! The paper's evaluation is built from *independent* simulation
//! instances — FIG4's (receiver-count × trial) grid, multi-seed FIG2
//! runs, the ablation parameter sweeps. [`run_tasks`] fans such tasks
//! across `--threads N` scoped workers (std only, no extra deps) and
//! merges results **in task order**, so the emitted CSV/JSON is
//! byte-identical to the serial run.
//!
//! Determinism contract: the task function must depend only on its
//! task index and the task description — never on shared mutable state
//! or a sequentially-threaded RNG. Derive per-task seeds with
//! [`task_seed`] (`seed ^ hash(task-index)`), which is what keeps a
//! task's randomness identical whether it runs first on one thread or
//! last on eight.

use std::sync::atomic::{AtomicUsize, Ordering};

/// SplitMix64 finalizer: a cheap, well-mixed u64 hash.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The RNG seed for task `index` of a sweep run with base `seed`:
/// `seed ^ hash(index)`. Stable across thread counts and schedules.
pub fn task_seed(seed: u64, index: u64) -> u64 {
    seed ^ splitmix64(index)
}

/// Runs `f(index, &tasks[index])` for every task, fanned across
/// `threads` scoped workers, and returns the results in task order.
///
/// `threads <= 1` (or a single task) degenerates to a plain serial
/// loop — same code path the determinism regression test compares
/// against. Worker panics propagate.
pub fn run_tasks<T, R, F>(threads: usize, tasks: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.max(1).min(tasks.len().max(1));
    if threads <= 1 {
        return tasks.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, R)> = Vec::with_capacity(tasks.len());
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= tasks.len() {
                            break;
                        }
                        out.push((i, f(i, &tasks[i])));
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            indexed.extend(h.join().expect("sweep worker panicked"));
        }
    });
    // Merge in task order: output must not depend on scheduling.
    indexed.sort_by_key(|(i, _)| *i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_task_order() {
        let tasks: Vec<u64> = (0..100).collect();
        let serial = run_tasks(1, &tasks, |i, t| (i as u64) * 1000 + t);
        let par = run_tasks(4, &tasks, |i, t| (i as u64) * 1000 + t);
        assert_eq!(serial, par);
        assert_eq!(serial[7], 7007);
    }

    #[test]
    fn task_seed_is_stable_and_spread() {
        assert_eq!(task_seed(7, 3), task_seed(7, 3));
        assert_ne!(task_seed(7, 3), task_seed(7, 4));
        assert_ne!(task_seed(7, 0), 7); // index 0 is still mixed
                                        // Different base seeds stay different at every index.
        for i in 0..50 {
            assert_ne!(task_seed(1, i), task_seed(2, i));
        }
    }

    #[test]
    fn more_threads_than_tasks_is_fine() {
        let tasks = vec![1u32, 2];
        assert_eq!(run_tasks(16, &tasks, |_, t| t * 2), vec![2, 4]);
        let none: Vec<u32> = Vec::new();
        assert!(run_tasks(4, &none, |_, t: &u32| *t).is_empty());
    }
}
