//! Shared plumbing for the experiment binaries that regenerate every
//! figure in the paper (see DESIGN.md §4 for the experiment index and
//! EXPERIMENTS.md for paper-vs-measured results).

pub mod args;
pub mod checkpoint;
pub mod faults;
pub mod fig4;
pub mod par;
pub mod perf;

pub use args::{arg_flag, arg_u64, Args};
pub use checkpoint::{Fig2Checkpoint, Fig2Row, SNAP_KIND_FIG2_RUN};
pub use par::{run_tasks, task_seed};

use std::path::PathBuf;

/// Where experiment outputs (CSV/JSON) land: `results/` under the
/// workspace root, overridable with `MASC_BGMP_RESULTS`.
pub fn results_dir() -> PathBuf {
    std::env::var_os("MASC_BGMP_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            // target dir layout: <root>/target/...; binaries run from
            // anywhere, so anchor on the manifest of this crate.
            let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
            p.pop(); // crates/
            p.pop(); // workspace root
            p.push("results");
            p
        })
}

/// Prints a banner for an experiment.
pub fn banner(id: &str, what: &str) {
    println!("== {id}: {what}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_is_absolute() {
        assert!(results_dir().is_absolute());
    }
}
