//! Shared plumbing for the experiment binaries that regenerate every
//! figure in the paper (see DESIGN.md §4 for the experiment index and
//! EXPERIMENTS.md for paper-vs-measured results).

use std::path::PathBuf;

/// Where experiment outputs (CSV/JSON) land: `results/` under the
/// workspace root, overridable with `MASC_BGMP_RESULTS`.
pub fn results_dir() -> PathBuf {
    std::env::var_os("MASC_BGMP_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            // target dir layout: <root>/target/...; binaries run from
            // anywhere, so anchor on the manifest of this crate.
            let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
            p.pop(); // crates/
            p.pop(); // workspace root
            p.push("results");
            p
        })
}

/// Parses `--key value` style args (numbers) with a default.
pub fn arg_u64(name: &str, default: u64) -> u64 {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == format!("--{name}") {
            if let Some(v) = args.next() {
                if let Ok(n) = v.parse() {
                    return n;
                }
            }
        }
    }
    default
}

/// True when `--flag` is present.
pub fn arg_flag(name: &str) -> bool {
    std::env::args().any(|a| a == format!("--{name}"))
}

/// Prints a banner for an experiment.
pub fn banner(id: &str, what: &str) {
    println!("== {id}: {what}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_is_absolute() {
        assert!(results_dir().is_absolute());
    }
}
