//! FAULTS — the fault-tolerance ablation: convergence time and
//! end-to-end delivery ratio over a (loss × flap-count) grid of
//! deterministic chaos runs ([`masc_bgmp_core::chaos::run_chaos`]),
//! factored out of the `ablation_faults` binary so the parallel
//! harness and the determinism regression test share one code path.
//!
//! Every grid cell is an independent chaos scenario seeded with
//! [`task_seed`]`(seed, cell-index)`, so the result — and hence the
//! emitted CSV/JSON — is byte-identical for any `--threads` value.
//! Mid-run invariants stay asserted inside the harness: a cell that
//! corrupts tree state panics the sweep instead of emitting numbers.

use bier::sim::{replay, Crash, FaultTimeline, Flap, ReplayParams, Send};
use bier::{SubDomain, DEFAULT_BSL};
use masc_bgmp_core::chaos::{derive_schedule, ring_graph, run_chaos, ChaosConfig, ChaosSchedule};
use metrics::Series;
use topology::DomainId;

use crate::par::{run_tasks, task_seed};

/// Local failure-detection delay charged to the protection plane
/// (BFD-style liveness on the adjacency).
const DETECT_MS: u64 = 50;
/// Routing reconvergence delay charged when a fault has no 1:1 backup
/// and repair must wait for the control plane.
const REROUTE_MS: u64 = 1_000;

/// Inputs of a FAULTS run (`ablation_faults` CLI defaults in
/// brackets; `--smoke` switches to the small committed-golden grid).
#[derive(Clone, Copy, Debug)]
pub struct FaultsParams {
    /// Ring size per chaos cell [6; smoke 5].
    pub domains: usize,
    /// Chaos-phase length per cell, seconds [120; smoke 60].
    pub chaos_secs: u64,
    /// Base seed; cell seeds derive via [`task_seed`] [7].
    pub seed: u64,
    /// Harness workers; 1 = serial [1].
    pub threads: usize,
    /// Small grid for CI (diffed against the committed golden CSV).
    pub smoke: bool,
    /// Engine shards per cell (0 = legacy serial engine; ≥ 1 = the
    /// sharded engine, byte-identical across shard counts) [0].
    pub shards: usize,
}

/// One grid cell's outcome.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultCell {
    /// Per-message loss probability swept on the x axis.
    pub loss: f64,
    /// Silent link flaps injected during the chaos phase.
    pub flaps: usize,
    /// `delivered / expected` for chaos-phase packets.
    pub delivery_ratio: f64,
    /// Simulated ms from fault cessation to a clean quiescent check.
    pub convergence_ms: u64,
    /// Whether the post-quiesce probe reached every member once.
    pub probe_clean: bool,
    /// Engine events processed in the cell (deterministic per seed).
    pub events: u64,
    /// BIER delivery ratio over the same fault schedule, with the
    /// BIER-TE 1:1 backup-path protection plane active.
    pub bier_delivery: f64,
    /// Worst *link*-fault repair latency (ms) with protection:
    /// detection-only for covered flaps. Link-only on purpose — the
    /// cell's crash is unprotected under every plane and would swamp
    /// the column (see `ReplayOutcome::max_link_recovery_ms`).
    pub bier_recovery_ms: u64,
    /// Map-and-encap delivery ratio over the same schedule — ingress
    /// replication on unicast routes, no protection plane, so every
    /// fault waits for reconvergence.
    pub mapencap_delivery: f64,
    /// Worst link-fault repair latency (ms) without protection: full
    /// outage + reconvergence.
    pub mapencap_recovery_ms: u64,
}

/// Loss probabilities swept (x axis).
pub fn loss_grid(smoke: bool) -> Vec<f64> {
    if smoke {
        vec![0.0, 0.10]
    } else {
        vec![0.0, 0.05, 0.10, 0.20]
    }
}

/// Flap counts swept (one series pair per count).
pub fn flap_grid(smoke: bool) -> Vec<usize> {
    if smoke {
        vec![0, 5]
    } else {
        vec![0, 3, 5, 8]
    }
}

/// Runs the full (loss × flaps) grid; cells come back row-major in
/// loss-then-flaps order. Every cell must re-converge — a cell that
/// never comes back clean is an invariant failure, not a data point.
pub fn run(p: &FaultsParams) -> Vec<FaultCell> {
    let losses = loss_grid(p.smoke);
    let flaps = flap_grid(p.smoke);
    let tasks: Vec<(f64, usize)> = losses
        .iter()
        .flat_map(|&l| flaps.iter().map(move |&f| (l, f)))
        .collect();
    run_tasks(p.threads, &tasks, |i, &(loss, flaps)| {
        let cfg = ChaosConfig {
            domains: p.domains,
            loss,
            dup: loss / 2.0,
            jitter_ms: 40,
            flaps,
            crashes: 1,
            chaos_secs: p.chaos_secs,
            seed: task_seed(p.seed, i as u64),
            check_mid_run: true,
            shards: p.shards,
        };
        let out = run_chaos(&cfg);
        assert!(
            out.quiescent_violations.is_empty(),
            "cell (loss={loss}, flaps={flaps}) left violations: {:?}",
            out.quiescent_violations
        );

        // Replay the *same* derived fault schedule through the two
        // stateless planes: BIER with 1:1 protection on, map-and-encap
        // with reconvergence-only repair. Same ring, same flap/crash
        // windows, same send times as the BGMP chaos run above.
        let ring = ring_graph(p.domains);
        let sub = SubDomain::new(p.domains, DEFAULT_BSL);
        let timeline = timeline_of(&derive_schedule(&cfg), p.domains);
        let base = ReplayParams {
            loss,
            detect_ms: DETECT_MS,
            reroute_ms: REROUTE_MS,
            protection: true,
            seed: cfg.seed,
        };
        let bier = replay(&ring, &sub, &timeline, &base);
        let mapencap = replay(
            &ring,
            &sub,
            &timeline,
            &ReplayParams {
                protection: false,
                ..base
            },
        );

        FaultCell {
            loss,
            flaps,
            delivery_ratio: out.delivery_ratio,
            convergence_ms: out
                .convergence_ms
                .unwrap_or_else(|| panic!("cell (loss={loss}, flaps={flaps}) never re-converged")),
            probe_clean: out.probe_clean,
            events: out.events,
            bier_delivery: bier.delivery_ratio,
            bier_recovery_ms: bier.max_link_recovery_ms,
            mapencap_delivery: mapencap.delivery_ratio,
            mapencap_recovery_ms: mapencap.max_link_recovery_ms,
        }
    })
}

/// Converts a chaos schedule into the BIER replay timeline: ring edge
/// `e` connects domains `e` and `(e + 1) % n`.
fn timeline_of(s: &ChaosSchedule, n: usize) -> FaultTimeline {
    FaultTimeline {
        flaps: s
            .flaps
            .iter()
            .map(|f| Flap {
                a: DomainId(f.edge),
                b: DomainId((f.edge + 1) % n),
                at: f.at,
                dur: f.dur,
            })
            .collect(),
        crashes: s
            .crashes
            .iter()
            .map(|c| Crash {
                d: DomainId(c.domain),
                at: c.at,
                dur: c.down,
            })
            .collect(),
        sends: s
            .sends
            .iter()
            .map(|&(at, idx)| Send {
                at,
                from: DomainId(idx),
            })
            .collect(),
    }
}

/// The output series (`ablation_faults`): per flap count, delivery
/// ratio and convergence time against loss on the x axis — BGMP's
/// columns first (pinned column order), then the BIER and map-and-encap
/// replay columns for the same flap counts.
pub fn series(cells: &[FaultCell], smoke: bool) -> Vec<Series> {
    let flaps = flap_grid(smoke);
    let mut out = Vec::new();
    for &f in &flaps {
        let mut d = Series::new(format!("delivery_f{f}"));
        let mut c = Series::new(format!("convergence_ms_f{f}"));
        for cell in cells.iter().filter(|x| x.flaps == f) {
            d.push(cell.loss, cell.delivery_ratio);
            c.push(cell.loss, cell.convergence_ms as f64);
        }
        out.push(d);
        out.push(c);
    }
    for &f in &flaps {
        let mut bd = Series::new(format!("bier_delivery_f{f}"));
        let mut br = Series::new(format!("bier_recovery_ms_f{f}"));
        let mut md = Series::new(format!("mapencap_delivery_f{f}"));
        let mut mr = Series::new(format!("mapencap_recovery_ms_f{f}"));
        for cell in cells.iter().filter(|x| x.flaps == f) {
            bd.push(cell.loss, cell.bier_delivery);
            br.push(cell.loss, cell.bier_recovery_ms as f64);
            md.push(cell.loss, cell.mapencap_delivery);
            mr.push(cell.loss, cell.mapencap_recovery_ms as f64);
        }
        out.push(bd);
        out.push(br);
        out.push(md);
        out.push(mr);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_cover_the_issue_floor() {
        // The acceptance scenario needs loss >= 10% with flaps and a
        // crash in at least one cell of even the smoke grid.
        assert!(loss_grid(true).iter().any(|l| *l >= 0.10));
        assert!(flap_grid(true).iter().any(|f| *f >= 5));
        assert!(loss_grid(false).len() * flap_grid(false).len() >= 16);
    }
}
