//! PERF — pinned performance workloads emitting `BENCH_<area>.json`.
//!
//! The paper's scalability claim (§1, §6) is only testable if the
//! simulator itself scales, so events/sec is a first-class, regression
//! gated metric: every workload here is pinned (fixed seed, fixed
//! horizon, fixed grid) and emits one JSON record with events/sec,
//! ns/event, event counts, peak RSS and wall-clock. CI's `perf-smoke`
//! job runs the `--quick` variants and fails when events/sec regresses
//! more than the tolerance against the committed baseline (see
//! [`check_against_baseline`]).
//!
//! Wall-clock here measures the *host*, not the simulation — the only
//! place in the workspace allowed to look at a real clock (the
//! `wall-clock` repolint rule is suppressed line-by-line below).
//! Event counts, by contrast, come from the deterministic engines and
//! must be byte-stable for a fixed mode and seed: a changed count
//! means the schedule changed, which the checker reports loudly even
//! when throughput is fine.
//!
//! Areas:
//! * `fig2`  — the default 50×50 MASC hierarchy (the paper's figure-2
//!   setup), short fixed horizon; unit = engine events.
//! * `fig4`  — the small tree-quality grid (same shape CI's
//!   bench-smoke diffs); unit = grid cells.
//! * `faults` — the smoke chaos grid (loss × flaps with a crash);
//!   unit = engine events summed over cells.
//! * `wheel` — a timer-mix micro-workload exercising the bucket-wheel
//!   event queue (short periodic timers, mid-range timers, overflow
//!   timers beyond the wheel span, plus ring messages); unit = engine
//!   events.
//! * `shard` — the scale workload: a ≥100k-domain MASC hierarchy on
//!   the sharded engine (4 shards) with a serial reference run of the
//!   same population; unit = sharded engine events, with the serial
//!   rate and speedup recorded in `params`.
//! * `bier` — BIFT construction for every ingress of an Internet-like
//!   graph plus bitstring forwarding to a fixed membership; unit =
//!   BIFT entries built + link copies forwarded (both deterministic).

use std::path::{Path, PathBuf};
use std::time::Duration;
use std::time::Instant;

use bier::{Network, SubDomain, DEFAULT_BSL};
use masc::sim::{HierarchySim, HierarchySimParams, Workload};
use masc::MascConfig;
use serde::{Deserialize, Serialize};
use simnet::{Engine, NodeId, SimDuration, SimTime};
use topology::{internet_like, DomainId, InternetSpec};

use crate::faults::{self, FaultsParams};
use crate::fig4::{self, Fig4Params};

/// Fixed knobs of a perf run.
#[derive(Clone, Copy, Debug)]
pub struct PerfConfig {
    /// Small CI-sized variants of every workload.
    pub quick: bool,
    /// Base seed for all workloads.
    pub seed: u64,
}

impl Default for PerfConfig {
    fn default() -> Self {
        PerfConfig {
            quick: false,
            seed: 1,
        }
    }
}

/// One emitted `BENCH_<area>.json` record.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BenchRecord {
    /// Workload id (`fig2`, `fig4`, `faults`, `wheel`).
    pub area: String,
    /// Human-readable pinned parameters.
    pub params: String,
    /// What one "event" is for this area.
    pub unit: String,
    /// Whether this was the `--quick` variant.
    pub quick: bool,
    /// Base seed.
    pub seed: u64,
    /// Deterministic work-unit count (engine events or grid cells).
    pub events: u64,
    /// Host wall-clock for the measured section, milliseconds.
    pub wall_ms: f64,
    /// `events / wall seconds`.
    pub events_per_sec: f64,
    /// `wall nanoseconds / events`.
    pub ns_per_event: f64,
    /// Peak resident set (`VmHWM`) after the workload, in kB. Process
    /// wide and monotonic, so only the first workload in a process
    /// attributes it cleanly; still recorded per area for trend lines.
    /// `null` when the reading is unavailable (non-Linux, or a
    /// restricted `/proc`) — never a fabricated `0`, which would read
    /// as an impossibly good number in trend tooling.
    pub peak_rss_kb: Option<u64>,
}

impl BenchRecord {
    fn new(
        area: &str,
        params: String,
        unit: &str,
        cfg: &PerfConfig,
        events: u64,
        wall: Duration,
    ) -> Self {
        let wall_ns = wall.as_nanos().max(1) as f64;
        BenchRecord {
            area: area.to_string(),
            params,
            unit: unit.to_string(),
            quick: cfg.quick,
            seed: cfg.seed,
            events,
            wall_ms: wall_ns / 1e6,
            events_per_sec: events as f64 * 1e9 / wall_ns,
            ns_per_event: wall_ns / events.max(1) as f64,
            peak_rss_kb: peak_rss_kb(),
        }
    }

    /// File name this record is written to.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.area)
    }
}

/// Reads the process peak resident set size (`VmHWM`) in kB from
/// `/proc/self/status`. Std-only; returns `None` off Linux.
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest.trim().trim_end_matches("kB").trim().parse().ok();
        }
    }
    None
}

/// All known areas, in run order.
pub const AREAS: [&str; 6] = ["fig2", "fig4", "faults", "wheel", "shard", "bier"];

/// Runs one area by name. Panics on an unknown area (the CLI validates
/// first).
pub fn run_area(area: &str, cfg: &PerfConfig) -> BenchRecord {
    match area {
        "fig2" => run_fig2(cfg),
        "fig4" => run_fig4(cfg),
        "faults" => run_faults(cfg),
        "wheel" => run_wheel(cfg),
        "shard" => run_shard(cfg),
        "bier" => run_bier(cfg),
        other => panic!("unknown perf area `{other}` (known: {})", AREAS.join(", ")),
    }
}

/// FIG2: the default paper hierarchy (50 tops × 50 children) run to a
/// fixed short horizon. This is the headline events/sec number the
/// perf trajectory tracks (ROADMAP item 5).
pub fn run_fig2(cfg: &PerfConfig) -> BenchRecord {
    let days = if cfg.quick { 20 } else { 120 };
    let mut sim = HierarchySim::new(HierarchySimParams::paper_fig2(cfg.seed));
    let t0 = Instant::now(); // lint:allow(wall-clock) — host-side throughput measurement is this harness's purpose
    sim.run_to_day(days);
    let wall = t0.elapsed();
    let events = sim.engine.stats().events;
    BenchRecord::new(
        "fig2",
        format!("50x50 hierarchy, {days} days, seed {}", cfg.seed),
        "engine-events",
        cfg,
        events,
        wall,
    )
}

/// FIG4: the small tree-quality grid (the same shape CI's bench-smoke
/// golden uses), repeated enough times to be measurable — one grid
/// pass is sub-millisecond after the incremental-SPF work of earlier
/// PRs. Cells per second; dominated by graph/tree construction.
pub fn run_fig4(cfg: &PerfConfig) -> BenchRecord {
    let p = Fig4Params {
        domains: 200,
        trials: 4,
        seed: cfg.seed.wrapping_add(6), // the CI golden pins seed 7
        maxrx: 50,
        threads: 1,
    };
    let reps: usize = if cfg.quick { 40 } else { 200 };
    let t0 = Instant::now(); // lint:allow(wall-clock) — host-side throughput measurement is this harness's purpose
    let mut cells = 0u64;
    let mut first: Option<Vec<fig4::Fig4Point>> = None;
    for _ in 0..reps {
        let points = fig4::run(&p);
        cells += (points.len() * p.trials) as u64;
        match &first {
            None => first = Some(points),
            // Repetitions are purely for measurement: they must not
            // disagree, or the workload itself is non-deterministic.
            Some(f) => assert_eq!(*f, points, "fig4 grid must be deterministic across reps"),
        }
    }
    let wall = t0.elapsed();
    BenchRecord::new(
        "fig4",
        format!(
            "{} domains, {} trials, maxrx {}, seed {}, x{reps} reps",
            p.domains, p.trials, p.maxrx, p.seed
        ),
        "grid-cells",
        cfg,
        cells,
        wall,
    )
}

/// FAULTS: the smoke chaos grid (loss × flaps, one crash per cell).
/// Engine events summed over cells; exercises fault draws, restarts
/// and tree repair.
pub fn run_faults(cfg: &PerfConfig) -> BenchRecord {
    let p = FaultsParams {
        domains: if cfg.quick { 5 } else { 6 },
        chaos_secs: if cfg.quick { 60 } else { 240 },
        seed: cfg.seed.wrapping_add(6),
        threads: 1,
        smoke: true,
        shards: 0,
    };
    let t0 = Instant::now(); // lint:allow(wall-clock) — host-side throughput measurement is this harness's purpose
    let cells = faults::run(&p);
    let wall = t0.elapsed();
    let events: u64 = cells.iter().map(|c| c.events).sum();
    BenchRecord::new(
        "faults",
        format!(
            "smoke grid ({} cells), ring of {}, {}s chaos, seed {}",
            cells.len(),
            p.domains,
            p.chaos_secs,
            p.seed
        ),
        "engine-events",
        cfg,
        events,
        wall,
    )
}

/// SHARD: the scale workload. A large MASC hierarchy (full: 100 tops
/// × 1000 children = 100 100 domains; quick: 20 × 100) run on the
/// sharded engine with 4 shards, next to a serial-engine reference of
/// the same population. The record's rate is the sharded run; the
/// serial rate and the resulting speedup are recorded in `params` so
/// the JSON stays honest about the host (a single-core runner shows
/// speedup ≤ 1 — the sharded path then runs its windows inline).
///
/// Quick mode additionally runs the same population at 1 shard and
/// asserts the event totals match the 4-shard run: the perf workload
/// itself double-checks shard-count invariance, not just the CI
/// golden CSVs.
pub fn run_shard(cfg: &PerfConfig) -> BenchRecord {
    let (tops, children, days) = if cfg.quick {
        (20, 100, 8)
    } else {
        (100, 1_000, 10)
    };
    let params = HierarchySimParams {
        top_level: tops,
        children_per: children,
        workload: Workload::paper_fig2(),
        config: MascConfig::default(),
        seed: cfg.seed,
    };
    let domains = tops * (1 + children);

    // Serial reference (the legacy engine, shards = 0).
    let mut serial = HierarchySim::new(params.clone());
    let t0 = Instant::now(); // lint:allow(wall-clock) — host-side throughput measurement is this harness's purpose
    serial.run_to_day(days);
    let serial_wall = t0.elapsed();
    let serial_events = serial.engine.stats().events;
    drop(serial);

    // Measured run: 4 shards.
    let mut sharded = HierarchySim::new_sharded(params.clone(), 4);
    let t0 = Instant::now(); // lint:allow(wall-clock) — host-side throughput measurement is this harness's purpose
    sharded.run_to_day(days);
    let wall = t0.elapsed();
    let events = sharded.engine.stats().events;
    drop(sharded);

    if cfg.quick {
        let mut one = HierarchySim::new_sharded(params, 1);
        one.run_to_day(days);
        assert_eq!(
            one.engine.stats().events,
            events,
            "sharded engine must process identical event totals at any shard count"
        );
    }

    let serial_eps = serial_events as f64 / serial_wall.as_secs_f64().max(1e-9);
    let sharded_eps = events as f64 / wall.as_secs_f64().max(1e-9);
    BenchRecord::new(
        "shard",
        format!(
            "{tops}x{children} hierarchy ({domains} domains), {days} days, seed {}, 4 shards; serial ref {:.0} ev/s ({serial_events} events), speedup {:.2}x",
            cfg.seed,
            serial_eps,
            sharded_eps / serial_eps.max(1e-9)
        ),
        "engine-events",
        cfg,
        events,
        wall,
    )
}

/// BIER: the stateless-plane hot paths. Phase 1 builds a BIFT for
/// every ingress of an Internet-like graph (n BFS passes + F-BM
/// accumulation); phase 2 forwards packets from rotating ingresses to
/// a fixed every-third-domain membership. Both phases are pure
/// functions of the seed, so the event count (BIFT entries built plus
/// link copies forwarded) is deterministic and baseline-checked.
pub fn run_bier(cfg: &PerfConfig) -> BenchRecord {
    let (n, sends) = if cfg.quick {
        (600, 400)
    } else {
        (2_000, 2_000)
    };
    let spec = InternetSpec {
        n,
        backbones: 10,
        attach: 2,
        extra_peerings: 30,
        seed: cfg.seed.wrapping_add(6),
    };
    let graph = internet_like(&spec);
    let sub = SubDomain::new(n, DEFAULT_BSL);
    let receivers: Vec<DomainId> = (0..n).step_by(3).map(DomainId).collect();

    let t0 = Instant::now(); // lint:allow(wall-clock) — host-side throughput measurement is this harness's purpose
    let net = Network::build(&graph, &sub);
    let mut events = net.total_entries() as u64;
    for k in 0..sends {
        let ingress = DomainId(k * 17 % n);
        let d = net.deliver_all(ingress, &receivers, None);
        events += d.link_copies as u64;
    }
    let wall = t0.elapsed();
    BenchRecord::new(
        "bier",
        format!(
            "{n} domains, BSL {DEFAULT_BSL}, {} receivers, {sends} sends, seed {}",
            receivers.len(),
            spec.seed
        ),
        "bift-entries+copies",
        cfg,
        events,
        wall,
    )
}

/// Message type of the wheel micro-workload: a token passed around a
/// ring.
#[derive(Clone)]
struct Token;

/// A node in the wheel micro-workload: re-arms a mix of timers whose
/// delays land in the wheel's near buckets, far buckets, and overflow
/// map, and forwards a ring token, so the measurement covers every
/// queue path (bitmap scan, cursor advance, overflow refill).
struct WheelNode {
    ring_next: NodeId,
}

/// Timer keys and their re-arm delays (ms). Key 3 exceeds the wheel
/// span (16384 one-ms buckets), forcing overflow traffic.
const WHEEL_DELAYS_MS: [u64; 4] = [7, 131, 4099, 20011];

impl simnet::Node<Token> for WheelNode {
    fn on_message(&mut self, ctx: &mut simnet::Ctx<'_, Token>, _from: NodeId, _msg: Token) {
        ctx.send(self.ring_next, Token);
    }

    fn on_timer(&mut self, ctx: &mut simnet::Ctx<'_, Token>, key: u64) {
        let delay = WHEEL_DELAYS_MS[key as usize % WHEEL_DELAYS_MS.len()];
        ctx.set_timer(SimDuration::from_millis(delay), key);
    }

    fn on_start(&mut self, ctx: &mut simnet::Ctx<'_, Token>) {
        for (key, delay) in WHEEL_DELAYS_MS.iter().enumerate() {
            ctx.set_timer(SimDuration::from_millis(*delay), key as u64);
        }
    }
}

/// WHEEL: the timer-mix micro-workload (pure `simnet`, no protocol
/// code), isolating event-queue and dispatch overhead.
pub fn run_wheel(cfg: &PerfConfig) -> BenchRecord {
    let nodes = 64usize;
    let secs: u64 = if cfg.quick { 40 } else { 160 };
    let mut engine: Engine<Token> = Engine::new(cfg.seed, SimDuration::from_millis(3));
    let ids: Vec<NodeId> = (0..nodes)
        .map(|i| {
            engine.add_node(Box::new(WheelNode {
                ring_next: NodeId((i + 1) % nodes),
            }))
        })
        .collect();
    // One circulating token per 8 nodes keeps a message mix in flight.
    for id in ids.iter().step_by(8) {
        engine.schedule_message(SimTime::ZERO, *id, Token);
    }
    let t0 = Instant::now(); // lint:allow(wall-clock) — host-side throughput measurement is this harness's purpose
    engine.run_until(SimTime::ZERO + SimDuration::from_secs(secs));
    let wall = t0.elapsed();
    let events = engine.stats().events;
    BenchRecord::new(
        "wheel",
        format!(
            "{nodes} nodes, {secs}s, timer mix {WHEEL_DELAYS_MS:?} ms, seed {}",
            cfg.seed
        ),
        "engine-events",
        cfg,
        events,
        wall,
    )
}

/// Writes `record` as pretty JSON (plus trailing newline) into `dir`,
/// creating it as needed. Returns the file path.
pub fn write_record(dir: &Path, record: &BenchRecord) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(record.file_name());
    let mut body = serde_json::to_string_pretty(record).expect("record serializes");
    body.push('\n');
    std::fs::write(&path, body)?;
    Ok(path)
}

/// Reads a previously written record.
pub fn read_record(path: &Path) -> Result<BenchRecord, String> {
    let body = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    serde_json::from_str(&body).map_err(|e| format!("{}: {e}", path.display()))
}

/// Outcome of comparing one fresh record against its baseline.
#[derive(Clone, Debug, PartialEq)]
pub enum CheckOutcome {
    /// Within tolerance.
    Ok,
    /// events/sec fell below `baseline * (1 - tolerance)`.
    Regressed { baseline_eps: f64, current_eps: f64 },
    /// No baseline file for this area — informational, not a failure
    /// (new areas land before their first baseline).
    MissingBaseline,
    /// Same mode + seed but a different deterministic event count:
    /// the schedule changed, so the baseline needs a refresh. Reported
    /// but non-fatal (throughput is the gate).
    EventCountChanged { baseline: u64, current: u64 },
}

/// Compares `current` against `<baseline_dir>/BENCH_<area>.json` with
/// the given relative tolerance on events/sec (0.30 = allow a 30%
/// drop).
pub fn check_against_baseline(
    current: &BenchRecord,
    baseline_dir: &Path,
    tolerance: f64,
) -> CheckOutcome {
    let path = baseline_dir.join(current.file_name());
    let Ok(base) = read_record(&path) else {
        return CheckOutcome::MissingBaseline;
    };
    if current.events_per_sec < base.events_per_sec * (1.0 - tolerance) {
        return CheckOutcome::Regressed {
            baseline_eps: base.events_per_sec,
            current_eps: current.events_per_sec,
        };
    }
    if base.quick == current.quick && base.seed == current.seed && base.events != current.events {
        return CheckOutcome::EventCountChanged {
            baseline: base.events,
            current: current.events,
        };
    }
    CheckOutcome::Ok
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(area: &str, eps: f64, events: u64) -> BenchRecord {
        BenchRecord {
            area: area.to_string(),
            params: "test".to_string(),
            unit: "engine-events".to_string(),
            quick: true,
            seed: 1,
            events,
            wall_ms: 1.0,
            events_per_sec: eps,
            ns_per_event: 1e9 / eps.max(1.0),
            peak_rss_kb: None,
        }
    }

    #[test]
    fn rss_reader_parses_self() {
        // On Linux this must parse to a sane non-zero value.
        let kb = peak_rss_kb().expect("VmHWM present");
        assert!(kb > 100, "peak RSS {kb} kB implausibly small");
    }

    #[test]
    fn record_roundtrip_and_check() {
        let dir = std::env::temp_dir().join(format!("perf-check-{}", std::process::id()));
        let base = rec("wheel", 1000.0, 42);
        write_record(&dir, &base).unwrap();
        let read = read_record(&dir.join("BENCH_wheel.json")).unwrap();
        assert_eq!(read.events, 42);

        // Same speed: fine. 20% slower: fine at 30% tolerance.
        assert_eq!(
            check_against_baseline(&rec("wheel", 1000.0, 42), &dir, 0.30),
            CheckOutcome::Ok
        );
        assert_eq!(
            check_against_baseline(&rec("wheel", 800.0, 42), &dir, 0.30),
            CheckOutcome::Ok
        );
        // 40% slower: regression.
        assert!(matches!(
            check_against_baseline(&rec("wheel", 600.0, 42), &dir, 0.30),
            CheckOutcome::Regressed { .. }
        ));
        // Same mode but different deterministic count: flagged.
        assert!(matches!(
            check_against_baseline(&rec("wheel", 1000.0, 43), &dir, 0.30),
            CheckOutcome::EventCountChanged { .. }
        ));
        // Unknown area: missing baseline.
        assert_eq!(
            check_against_baseline(&rec("nope", 1.0, 1), &dir, 0.30),
            CheckOutcome::MissingBaseline
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bier_workload_is_deterministic() {
        let cfg = PerfConfig {
            quick: true,
            seed: 9,
        };
        let a = run_bier(&cfg);
        let b = run_bier(&cfg);
        assert_eq!(a.events, b.events);
        assert!(
            a.events > 10_000,
            "bier workload too small to measure: {}",
            a.events
        );
    }

    #[test]
    fn wheel_workload_is_deterministic() {
        let cfg = PerfConfig {
            quick: true,
            seed: 9,
        };
        let a = run_wheel(&cfg);
        let b = run_wheel(&cfg);
        assert_eq!(a.events, b.events);
        assert!(
            a.events > 100_000,
            "wheel too small to measure: {}",
            a.events
        );
    }
}
