//! On-disk checkpoints for the long-horizon fig2 run.
//!
//! One checkpoint file bundles everything a later invocation needs to
//! continue a replication exactly where it stopped: the run
//! parameters (validated against the resuming command line), the rows
//! sampled so far, the day cursor, and the full [`masc::HierarchySim`]
//! snapshot. Resuming at day T and finishing produces the same CSV,
//! byte for byte, as one uninterrupted run — at any `--threads`.

use std::path::{Path, PathBuf};

use snapshot::{Dec, Enc, SnapError, Snapshot};

/// Snapshot kind tag of a fig2 run checkpoint (engine = 1,
/// hierarchy = 2, internet = 3).
pub const SNAP_KIND_FIG2_RUN: u16 = 4;

/// One sampled day of one replication, all-f64 so replications
/// average without casts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig2Row {
    /// Simulated day of the sample.
    pub day: f64,
    /// Leased / claimed address ratio.
    pub util: f64,
    /// Addresses currently leased to allocation servers.
    pub leased: f64,
    /// Addresses claimed by top-level domains.
    pub claimed: f64,
    /// Mean G-RIB size across top-level domains.
    pub grib_avg: f64,
    /// Largest G-RIB among top-level domains.
    pub grib_max: f64,
    /// Globally advertised prefixes.
    pub global: f64,
    /// Outstanding unsatisfied block requests.
    pub pending: f64,
}

impl Snapshot for Fig2Row {
    fn encode(&self, enc: &mut Enc) {
        enc.f64(self.day);
        enc.f64(self.util);
        enc.f64(self.leased);
        enc.f64(self.claimed);
        enc.f64(self.grib_avg);
        enc.f64(self.grib_max);
        enc.f64(self.global);
        enc.f64(self.pending);
    }
    fn decode(dec: &mut Dec<'_>) -> Result<Self, SnapError> {
        Ok(Fig2Row {
            day: dec.f64()?,
            util: dec.f64()?,
            leased: dec.f64()?,
            claimed: dec.f64()?,
            grib_avg: dec.f64()?,
            grib_max: dec.f64()?,
            global: dec.f64()?,
            pending: dec.f64()?,
        })
    }
}

/// A mid-run fig2 replication, ready to be written to disk.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig2Checkpoint {
    /// Day the simulation has run to (the next sample continues from
    /// here).
    pub day: u64,
    /// Sampling stride the rows were taken on.
    pub sample_every: u64,
    /// Top-level domain count.
    pub tops: usize,
    /// Children per top-level domain.
    pub children: usize,
    /// Seed of this replication (the *task* seed, not the CLI seed).
    pub seed: u64,
    /// Rows sampled so far, on the fixed day grid.
    pub rows: Vec<Fig2Row>,
    /// The [`masc::HierarchySim::checkpoint`] blob.
    pub sim: Vec<u8>,
}

impl Fig2Checkpoint {
    /// Serialises to the canonical snapshot wire format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut enc = Enc::with_header(SNAP_KIND_FIG2_RUN);
        enc.u64(self.day);
        enc.u64(self.sample_every);
        enc.usize(self.tops);
        enc.usize(self.children);
        enc.u64(self.seed);
        self.rows.encode(&mut enc);
        enc.bytes(&self.sim);
        enc.finish()
    }

    /// Decodes a checkpoint, rejecting foreign or damaged bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapError> {
        let mut dec = Dec::new(bytes);
        dec.header(SNAP_KIND_FIG2_RUN)?;
        let ck = Fig2Checkpoint {
            day: dec.u64()?,
            sample_every: dec.u64()?,
            tops: dec.usize()?,
            children: dec.usize()?,
            seed: dec.u64()?,
            rows: Snapshot::decode(&mut dec)?,
            sim: dec.bytes()?.to_vec(),
        };
        dec.finish()?;
        Ok(ck)
    }

    /// File a replication's checkpoint lives in, one per task seed,
    /// overwritten as the run advances (only the newest matters for
    /// resumption).
    pub fn path_for(dir: &Path, seed: u64) -> PathBuf {
        dir.join(format!("fig2_seed{seed}.snap"))
    }

    /// Writes the checkpoint to its well-known path under `dir`.
    pub fn save(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = Self::path_for(dir, self.seed);
        std::fs::write(&path, self.to_bytes())?;
        Ok(path)
    }

    /// Loads the checkpoint for `seed` from `dir`. I/O and decode
    /// problems both surface as errors; nothing panics on bad bytes.
    pub fn load(dir: &Path, seed: u64) -> Result<Self, String> {
        let path = Self::path_for(dir, seed);
        let bytes = std::fs::read(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        Self::from_bytes(&bytes).map_err(|e| format!("decode {}: {e:?}", path.display()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Fig2Checkpoint {
        Fig2Checkpoint {
            day: 40,
            sample_every: 5,
            tops: 4,
            children: 4,
            seed: 9,
            rows: vec![Fig2Row {
                day: 5.0,
                util: 0.5,
                leased: 256.0,
                claimed: 512.0,
                grib_avg: 2.0,
                grib_max: 3.0,
                global: 4.0,
                pending: 0.0,
            }],
            sim: vec![1, 2, 3],
        }
    }

    #[test]
    fn roundtrips() {
        let ck = sample();
        assert_eq!(Fig2Checkpoint::from_bytes(&ck.to_bytes()).unwrap(), ck);
    }

    #[test]
    fn truncations_error() {
        let bytes = sample().to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                Fig2Checkpoint::from_bytes(&bytes[..cut]).is_err(),
                "truncation at {cut} decoded"
            );
        }
    }

    #[test]
    fn wrong_kind_rejected() {
        let mut enc = Enc::with_header(SNAP_KIND_FIG2_RUN - 1);
        enc.u64(0);
        assert!(matches!(
            Fig2Checkpoint::from_bytes(&enc.finish()),
            Err(SnapError::BadKind { .. })
        ));
    }
}
