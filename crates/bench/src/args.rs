//! Shared CLI parsing for the experiment binaries.
//!
//! Every binary accepts `--key value` numeric options plus the uniform
//! trio the parallel harness understands: `--threads N` (worker count,
//! default 1 = serial), `--seed S`, and `--trials T`. Parsing once
//! through [`Args`] replaces the per-binary copies of ad-hoc argv
//! scanning.

/// Parsed command line of an experiment binary.
pub struct Args {
    argv: Vec<String>,
}

impl Args {
    /// Captures the process arguments.
    pub fn parse() -> Self {
        Args {
            argv: std::env::args().collect(),
        }
    }

    /// A parser over an explicit argv (tests).
    pub fn from_vec(argv: Vec<String>) -> Self {
        Args { argv }
    }

    /// `--name value` as a `u64`, or `default`.
    pub fn u64(&self, name: &str, default: u64) -> u64 {
        let key = format!("--{name}");
        let mut it = self.argv.iter();
        while let Some(a) = it.next() {
            if *a == key {
                if let Some(v) = it.next() {
                    if let Ok(n) = v.parse() {
                        return n;
                    }
                }
            }
        }
        default
    }

    /// `--name value` as a `usize`, or `default`.
    pub fn usize(&self, name: &str, default: usize) -> usize {
        self.u64(name, default as u64) as usize
    }

    /// `--name value` as a string, when present with a value.
    pub fn str_opt(&self, name: &str) -> Option<String> {
        let key = format!("--{name}");
        let mut it = self.argv.iter();
        while let Some(a) = it.next() {
            if *a == key {
                return it.next().cloned();
            }
        }
        None
    }

    /// True when `--name` is present.
    pub fn flag(&self, name: &str) -> bool {
        let key = format!("--{name}");
        self.argv.contains(&key)
    }

    /// `--threads N`: parallel harness worker count (default 1,
    /// clamped to at least 1).
    pub fn threads(&self) -> usize {
        self.usize("threads", 1).max(1)
    }

    /// `--seed S` with a binary-specific default.
    pub fn seed(&self, default: u64) -> u64 {
        self.u64("seed", default)
    }

    /// `--trials T` with a binary-specific default.
    pub fn trials(&self, default: usize) -> usize {
        self.usize("trials", default).max(1)
    }
}

/// Parses `--key value` style args (numbers) with a default, from the
/// process argv. Prefer [`Args`] in binaries; this remains for one-off
/// use.
pub fn arg_u64(name: &str, default: u64) -> u64 {
    Args::parse().u64(name, default)
}

/// True when `--flag` is present on the process argv.
pub fn arg_flag(name: &str) -> bool {
    Args::parse().flag(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Args {
        Args::from_vec(s.iter().map(|x| x.to_string()).collect())
    }

    #[test]
    fn parses_named_u64() {
        let a = args(&["bin", "--seed", "9", "--trials", "4"]);
        assert_eq!(a.seed(1), 9);
        assert_eq!(a.trials(10), 4);
        assert_eq!(a.u64("domains", 3326), 3326);
    }

    #[test]
    fn threads_default_and_clamp() {
        assert_eq!(args(&["bin"]).threads(), 1);
        assert_eq!(args(&["bin", "--threads", "4"]).threads(), 4);
        assert_eq!(args(&["bin", "--threads", "0"]).threads(), 1);
    }

    #[test]
    fn flags_and_malformed_values() {
        let a = args(&["bin", "--fast", "--seed", "notanumber"]);
        assert!(a.flag("fast"));
        assert!(!a.flag("slow"));
        assert_eq!(a.seed(7), 7); // malformed value falls back
    }

    #[test]
    fn string_options() {
        let a = args(&["bin", "--resume-from", "cp/dir", "--bare"]);
        assert_eq!(a.str_opt("resume-from").as_deref(), Some("cp/dir"));
        assert_eq!(a.str_opt("missing"), None);
        assert_eq!(a.str_opt("bare"), None); // key with no value
    }
}
