//! Determinism regression for the fault ablation: the chaos sweep is
//! seeded per cell and merged in task order, so its CSV must be
//! byte-identical across thread counts *and* must reproduce the
//! committed golden file — the same file CI regenerates and diffs.
//! The sharded engine is its own determinism family with its own
//! golden: byte-identical across shard counts, but (expectedly)
//! different from serial in the lossy cells, because per-node RNG
//! streams draw a different sequence than the serial single stream.

use masc_bgmp_bench::faults::{run, series, FaultsParams};
use metrics::emit;

fn smoke_csv(threads: usize, shards: usize) -> String {
    let cells = run(&FaultsParams {
        domains: 5,
        chaos_secs: 60,
        seed: 7,
        threads,
        smoke: true,
        shards,
    });
    emit::to_csv(&series(&cells, true))
}

#[test]
fn faults_smoke_is_thread_invariant_and_matches_golden() {
    let serial = smoke_csv(1, 0);
    let par = smoke_csv(4, 0);
    assert_eq!(serial, par, "CSV diverged between --threads 1 and 4");
    // The committed golden is the serial smoke run with the binary's
    // defaults; a mismatch means chaos runs stopped being replayable.
    assert_eq!(
        serial,
        include_str!("golden/faults_small_serial.csv"),
        "smoke sweep no longer reproduces the committed golden CSV"
    );
    assert!(serial.contains("delivery_f5"));
}

#[test]
fn protection_never_recovers_slower_than_reconvergence() {
    let cells = run(&FaultsParams {
        domains: 5,
        chaos_secs: 60,
        seed: 7,
        threads: 4,
        smoke: true,
        shards: 0,
    });
    for c in &cells {
        // Same fault schedule, same detection delay: 1:1 backup paths
        // can only remove the outage+reconvergence term, never add one.
        assert!(
            c.bier_recovery_ms <= c.mapencap_recovery_ms,
            "flaps={} loss={}: protected {}ms > unprotected {}ms",
            c.flaps,
            c.loss,
            c.bier_recovery_ms,
            c.mapencap_recovery_ms
        );
        assert!((0.0..=1.0).contains(&c.bier_delivery));
        assert!((0.0..=1.0).contains(&c.mapencap_delivery));
        if c.flaps == 0 {
            // No link faults: the link-recovery column is exactly zero
            // under both planes (the crash is accounted elsewhere).
            assert_eq!(c.bier_recovery_ms, 0);
            assert_eq!(c.mapencap_recovery_ms, 0);
        }
    }
    // On a 5-ring every adjacency has a way around, so flap cells show
    // the headline gap: detection-only vs outage + reconvergence.
    let flapped = cells.iter().find(|c| c.flaps > 0).unwrap();
    assert!(flapped.bier_recovery_ms < flapped.mapencap_recovery_ms);
}

#[test]
fn faults_smoke_is_shard_count_invariant_and_matches_shard_golden() {
    let one = smoke_csv(1, 1);
    let four = smoke_csv(1, 4);
    assert_eq!(one, four, "CSV diverged between --shards 1 and 4");
    assert_eq!(
        one,
        include_str!("golden/faults_small_shard.csv"),
        "sharded smoke sweep no longer reproduces its committed golden CSV"
    );
}
