//! Determinism regression: the parallel harness must emit CSV/JSON
//! that is **byte-identical** to the serial run — the merge happens in
//! task order and every grid cell is independently seeded, so thread
//! count and scheduling cannot leak into the output.

use masc_bgmp_bench::fig4::{run, series, Fig4Params};
use masc_bgmp_bench::{run_tasks, task_seed};
use metrics::emit;

fn fig4_output(threads: usize) -> (String, String) {
    let points = run(&Fig4Params {
        domains: 150,
        trials: 4,
        seed: 7,
        maxrx: 50,
        threads,
    });
    let s = series(&points);
    (
        emit::to_csv(&s),
        emit::to_json(&s).expect("series serialize"),
    )
}

#[test]
fn fig4_parallel_output_is_byte_identical_to_serial() {
    let (csv1, json1) = fig4_output(1);
    let (csv4, json4) = fig4_output(4);
    assert_eq!(csv1, csv4, "CSV diverged between --threads 1 and 4");
    assert_eq!(json1, json4, "JSON diverged between --threads 1 and 4");
    // Sanity: the output actually contains the swept points.
    assert!(csv1.contains("unidirectional_avg"));
    assert!(csv1.lines().count() > 5);
}

#[test]
fn fig4_rerun_is_reproducible() {
    // Same seed, same thread count, fresh graph build: identical bytes.
    assert_eq!(fig4_output(4), fig4_output(4));
}

#[test]
fn harness_merge_order_is_task_order_under_contention() {
    // Tasks of wildly different cost: with 4 workers the *completion*
    // order scrambles, but the merged result must still be task order.
    let tasks: Vec<u64> = (0..64).collect();
    let out = run_tasks(4, &tasks, |i, &t| {
        // Unbalanced busy-work so late tasks often finish first.
        let spin = if i % 7 == 0 { 200_000 } else { 10 };
        let mut acc = task_seed(1, t);
        for _ in 0..spin {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(t);
        }
        (i, acc)
    });
    let serial: Vec<(usize, u64)> = run_tasks(1, &tasks, |i, &t| {
        let spin = if i % 7 == 0 { 200_000 } else { 10 };
        let mut acc = task_seed(1, t);
        for _ in 0..spin {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(t);
        }
        (i, acc)
    });
    assert_eq!(out, serial);
}
