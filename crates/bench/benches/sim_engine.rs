//! Discrete-event engine throughput: how many message events per
//! second the substrate sustains (bounds every protocol simulation),
//! plus the raw queue on the timer mix real simulations produce —
//! dense near-horizon traffic interleaved with long-lived MASC
//! lifetimes (48 h waiting periods, 30-day leases).

use criterion::{criterion_group, criterion_main, Criterion};
use simnet::{BinaryHeapQueue, Ctx, Engine, Event, EventQueue, Node, NodeId, SimDuration, SimTime};
use std::hint::black_box;

/// The MASC-like timer mix: a standing population of far timers (every
/// allocation server holds a 30-day lease expiry / 48 h waiting-period
/// deadline — fig2 runs ~2500 of them) while near-horizon protocol
/// chatter churns at the front of the queue. `push`/`pop` are closures
/// so both queue types share the workload.
fn timer_mix<Q>(
    mut push: impl FnMut(&mut Q, SimTime),
    mut pop: impl FnMut(&mut Q) -> Option<SimTime>,
    q: &mut Q,
) -> u64 {
    let mut rng: u64 = 0x9E3779B97F4A7C15;
    let mut next = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    // Standing far timers: uniform over [48 h, 30 d].
    for _ in 0..8_192u64 {
        push(
            q,
            SimTime(172_800_000 + next() % (2_592_000_000 - 172_800_000)),
        );
    }
    let mut now = 0u64;
    let mut popped = 0u64;
    // Steady state: long sims push orders of magnitude more near
    // events past the standing far population than they ever hold far
    // timers (800 fig2 days of chatter vs one lease per server).
    for step in 0..16_000u64 {
        // Burst of near events (chatter within ~1 s of now).
        for _ in 0..3 {
            push(q, SimTime(now + next() % 1_000));
        }
        // Occasional fresh far timer (a renewal).
        if step % 64 == 0 {
            push(q, SimTime(now + 172_800_000));
        }
        // Drain a few, advancing the clock.
        for _ in 0..3 {
            if let Some(t) = pop(q) {
                now = t.0;
                popped += 1;
            }
        }
    }
    while pop(q).is_some() {
        popped += 1;
    }
    popped
}

fn queue_benches(c: &mut Criterion) {
    c.bench_function("queue_timer_mix_wheel", |b| {
        b.iter(|| {
            let mut q: EventQueue<u32> = EventQueue::new();
            black_box(timer_mix(
                |q, t| q.push_timer(t, NodeId(0), 0),
                |q| q.pop().map(|(t, _)| t),
                &mut q,
            ))
        });
    });
    c.bench_function("queue_timer_mix_binaryheap", |b| {
        b.iter(|| {
            let mut q: BinaryHeapQueue<u32> = BinaryHeapQueue::new();
            black_box(timer_mix(
                |q, t| q.push_timer(t, NodeId(0), 0),
                |q| q.pop().map(|(t, _)| t),
                &mut q,
            ))
        });
    });
    // Same-timestamp batches: the run_until fast path's common case.
    c.bench_function("queue_same_time_batches_wheel", |b| {
        b.iter(|| {
            let mut q: EventQueue<u32> = EventQueue::new();
            for batch in 0..1_000u64 {
                for i in 0..16u32 {
                    q.push(
                        SimTime(batch * 10),
                        Event::Timer {
                            node: NodeId(0),
                            key: i as u64,
                        },
                    );
                }
            }
            let mut n = 0u64;
            while q.pop_le(SimTime(u64::MAX)).is_some() {
                n += 1;
            }
            black_box(n)
        });
    });
}

struct Relay {
    next: NodeId,
    left: u32,
}
impl Node<u32> for Relay {
    fn on_message(&mut self, ctx: &mut Ctx<'_, u32>, _from: NodeId, msg: u32) {
        if self.left > 0 {
            self.left -= 1;
            ctx.send(self.next, msg + 1);
        }
    }
}

fn benches(c: &mut Criterion) {
    c.bench_function("engine_10k_events", |b| {
        b.iter(|| {
            let mut eng: Engine<u32> = Engine::new(1, SimDuration::from_millis(1));
            let a = eng.add_node(Box::new(Relay {
                next: NodeId(1),
                left: 5000,
            }));
            let bb = eng.add_node(Box::new(Relay {
                next: NodeId(0),
                left: 5000,
            }));
            let _ = (a, bb);
            eng.schedule_message(simnet::SimTime(0), a, 0);
            black_box(eng.run_until_idle(20_000))
        });
    });
}

criterion_group!(b, benches, queue_benches);
criterion_main!(b);
