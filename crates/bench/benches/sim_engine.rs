//! Discrete-event engine throughput: how many message events per
//! second the substrate sustains (bounds every protocol simulation).

use criterion::{criterion_group, criterion_main, Criterion};
use simnet::{Ctx, Engine, Node, NodeId, SimDuration};
use std::hint::black_box;

struct Relay {
    next: NodeId,
    left: u32,
}
impl Node<u32> for Relay {
    fn on_message(&mut self, ctx: &mut Ctx<'_, u32>, _from: NodeId, msg: u32) {
        if self.left > 0 {
            self.left -= 1;
            ctx.send(self.next, msg + 1);
        }
    }
}

fn benches(c: &mut Criterion) {
    c.bench_function("engine_10k_events", |b| {
        b.iter(|| {
            let mut eng: Engine<u32> = Engine::new(1, SimDuration::from_millis(1));
            let a = eng.add_node(Box::new(Relay {
                next: NodeId(1),
                left: 5000,
            }));
            let bb = eng.add_node(Box::new(Relay {
                next: NodeId(0),
                left: 5000,
            }));
            let _ = (a, bb);
            eng.schedule_message(simnet::SimTime(0), a, 0);
            black_box(eng.run_until_idle(20_000))
        });
    });
}

criterion_group!(b, benches);
criterion_main!(b);
