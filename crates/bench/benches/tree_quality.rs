//! The figure-4 computation itself as a benchmark: building a
//! bidirectional tree and comparing all four tree types on the
//! 3326-domain topology.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use masc_bgmp_core::trees::{compare_trees, BidirTree};
use std::hint::black_box;
use topology::{internet_like, DomainId, InternetSpec};

fn benches(c: &mut Criterion) {
    let graph = internet_like(&InternetSpec::paper_fig4(7));
    let mut group = c.benchmark_group("fig4_point");
    group.sample_size(20);
    for k in [10usize, 100, 1000] {
        let receivers: Vec<DomainId> = (100..100 + k).map(DomainId).collect();
        group.bench_with_input(BenchmarkId::new("compare_trees", k), &receivers, |b, rx| {
            b.iter(|| {
                black_box(compare_trees(
                    &graph,
                    DomainId(5),
                    rx,
                    rx[0],
                    DomainId(2000),
                ))
            });
        });
        group.bench_with_input(BenchmarkId::new("bidir_build", k), &receivers, |b, rx| {
            b.iter(|| black_box(BidirTree::build(&graph, rx[0], rx)));
        });
    }
    group.finish();
}

criterion_group!(b, benches);
criterion_main!(b);
