//! Microbenchmarks of the G-RIB: longest-prefix match and update
//! processing at growing table sizes — the per-packet cost §3 worries
//! about ("any required computation at the router to forward data
//! packets to groups [must] be fast enough").

use bgp::{Nlri, Rib, Route};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcast_addr::{McastAddr, Prefix};
use std::hint::black_box;

fn filled_rib(n: usize) -> Rib {
    let mut rib = Rib::new();
    let mut it = Prefix::MULTICAST.subprefixes(24);
    for i in 0..n {
        let p = it.next().expect("enough /24s");
        rib.update_from(
            1,
            Route {
                nlri: Nlri::Group(p),
                as_path: vec![i as u32 + 2].into(),
                next_hop: 1,
                local: false,
                ebgp: true,
            },
        );
    }
    rib
}

fn lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("grib_lookup");
    for n in [10usize, 100, 1000, 5000, 10000] {
        let rib = filled_rib(n);
        let addr = McastAddr::from_octets(224, 0, (n as u8).wrapping_sub(1), 7);
        group.bench_with_input(BenchmarkId::from_parameter(n), &rib, |b, rib| {
            b.iter(|| black_box(rib.lookup_group(addr)));
        });
    }
    group.finish();
}

fn update(c: &mut Criterion) {
    c.bench_function("grib_update_replace", |b| {
        let mut rib = filled_rib(1000);
        let p: Prefix = "224.0.99.0/24".parse().unwrap();
        let mut flip = 0u32;
        b.iter(|| {
            flip += 1;
            let changed = rib
                .update_from(
                    2,
                    Route {
                        nlri: Nlri::Group(p),
                        as_path: vec![flip % 7 + 2].into(),
                        next_hop: 2,
                        local: false,
                        ebgp: true,
                    },
                )
                .is_some();
            black_box(changed)
        });
    });
}

criterion_group!(benches, lookup, update);
criterion_main!(benches);
