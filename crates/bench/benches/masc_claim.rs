//! Microbenchmarks of the MASC claim algorithm (§4.3.3): candidate
//! computation over increasingly fragmented spaces, and a full
//! claim-to-grant round.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use masc::msg::MascAction;
use masc::{MascConfig, MascNode};
use mcast_addr::{Prefix, SpaceTracker};
use std::hint::black_box;

fn candidates(c: &mut Criterion) {
    let mut group = c.benchmark_group("claim_candidates");
    for frag in [16usize, 64, 256, 1024] {
        // Fragment 224/4 with `frag` scattered /24 claims.
        let mut t = SpaceTracker::new(Prefix::MULTICAST);
        for i in 0..frag {
            let base = 0xE000_0000u32 | ((i as u32).wrapping_mul(2654435761) & 0x0FFF_FF00);
            if let Ok(p) = Prefix::new(base, 24) {
                t.insert(p);
            }
        }
        group.bench_with_input(BenchmarkId::from_parameter(frag), &t, |b, t| {
            b.iter(|| black_box(t.claim_candidates(20)));
        });
    }
    group.finish();
}

fn claim_round(c: &mut Criterion) {
    c.bench_function("claim_to_grant_round", |b| {
        b.iter(|| {
            let cfg = MascConfig::fast_test();
            let mut n = MascNode::new(1, None, vec![], vec![2], cfg, 7);
            n.bootstrap_ranges(&[(Prefix::MULTICAST, u64::MAX)]);
            let mut acts: Vec<MascAction> = Vec::new();
            n.request_block(0, 24, 100_000, &mut acts);
            let grant_at = n.next_deadline().unwrap();
            black_box(n.on_tick(grant_at))
        });
    });
}

criterion_group!(benches, candidates, claim_round);
criterion_main!(benches);
