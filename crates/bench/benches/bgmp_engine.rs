//! BGMP engine microbenchmarks: join processing and the per-packet
//! forwarding decision.

use bgmp::{BgmpRouter, NextHop, RouteLookup, SourceId, Target};
use criterion::{criterion_group, criterion_main, Criterion};
use mcast_addr::McastAddr;
use std::hint::black_box;

struct Fixed;
impl RouteLookup for Fixed {
    fn toward_group(&self, _g: McastAddr) -> Option<NextHop> {
        Some(NextHop::ExternalPeer(99))
    }
    fn toward_domain(&self, _asn: bgp::Asn) -> Option<NextHop> {
        Some(NextHop::ExternalPeer(98))
    }
}

fn benches(c: &mut Criterion) {
    c.bench_function("bgmp_join_new_group", |b| {
        let mut g = 0u32;
        let mut r = BgmpRouter::new(1);
        b.iter(|| {
            g = g.wrapping_add(1);
            let addr = McastAddr(0xE100_0000 | (g & 0xFF_FFFF));
            black_box(r.join(Target::Peer(2), addr, &Fixed))
        });
    });

    c.bench_function("bgmp_forward_decision", |b| {
        let mut r = BgmpRouter::new(1);
        // 1000 groups of state, then time the hot-path decision.
        for i in 0..1000u32 {
            r.join(Target::Peer(2), McastAddr(0xE100_0000 | i), &Fixed);
        }
        let s = SourceId { domain: 7, host: 1 };
        let g = McastAddr(0xE100_01F4);
        b.iter(|| black_box(r.forward(Some(Target::Peer(99)), s, g, &Fixed)));
    });
}

criterion_group!(b, benches);
criterion_main!(b);
