//! Per-group control-state accounting for the three architectures.
//!
//! The fig4 ablation's central question is *where multicast state
//! lives and how it scales with groups and receivers*:
//!
//! * **BGMP shared tree** — every on-tree border router holds one
//!   `(group → target list)` entry, so per-group state = tree size
//!   (the paper's G-RIB column);
//! * **BIER** — transit routers hold zero per-group state (the BIFT is
//!   group-independent); the ingress holds one bitstring per set the
//!   receiver set touches;
//! * **map-and-encap (ingress replication)** — transit routers hold
//!   zero state, but the ingress holds one unicast encapsulation per
//!   receiver and sends one copy each — state and traffic both linear
//!   in receivers.
//!
//! [`GroupState`] packages those three counts for one group so the
//! bench can aggregate them without re-deriving the model in two
//! places.

use std::collections::BTreeMap;

use crate::bitstring::SubDomain;
use snapshot::{Dec, Enc, SnapError, Snapshot};
use topology::{DomainId, SpTree};

/// Control-state footprint of one multicast group under each
/// architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupState {
    /// BGMP: G-RIB entries = routers on the bidirectional shared tree.
    pub bgmp_entries: usize,
    /// BIER: ingress bitstrings = sets the receiver list touches
    /// (transit entries are zero by construction).
    pub bier_ingress_entries: usize,
    /// Map-and-encap: ingress encapsulation entries = receiver count.
    pub mapencap_ingress_entries: usize,
}

impl GroupState {
    /// Computes the three footprints for one group.
    ///
    /// `shared_tree_size` is the BGMP bidirectional tree's router count
    /// (from `core::trees`); `receivers` the group's member domains.
    pub fn compute(sub: &SubDomain, shared_tree_size: usize, receivers: &[DomainId]) -> Self {
        GroupState {
            bgmp_entries: shared_tree_size,
            bier_ingress_entries: sub.sets_touched(receivers),
            mapencap_ingress_entries: receivers.len(),
        }
    }
}

/// Link copies one BIER delivery to `receivers` costs, from the
/// ingress's shortest-path tree `t`: one packet per touched set, each
/// traversing the SPT subtree spanning that set's receivers (forwarding
/// follows unicast next hops and shares links until bits diverge —
/// pinned by the forwarding tests). Mark-walk per set, O(k·depth);
/// unreachable receivers contribute nothing.
pub fn bier_link_copies(t: &SpTree, sub: &SubDomain, receivers: &[DomainId]) -> usize {
    let mut by_set: BTreeMap<u32, Vec<DomainId>> = BTreeMap::new();
    for &r in receivers {
        if t.dist_to(r).is_none() {
            continue;
        }
        let (si, _) = sub.position(sub.bfr_of(r));
        by_set.entry(si.0).or_default().push(r);
    }
    let mut total = 0usize;
    for rs in by_set.values() {
        let mut marked = vec![false; t.dist.len()];
        for &r in rs {
            let mut cur = r;
            while cur != t.src && !marked[cur.0] {
                marked[cur.0] = true;
                total += 1;
                match t.toward_src[cur.0] {
                    Some(p) => cur = p,
                    None => break,
                }
            }
        }
    }
    total
}

/// Link copies ingress replication (map-and-encap) costs: one unicast
/// copy per receiver, each traversing its full shortest path — no
/// sharing, the whole reason the hybrid loses on traffic.
pub fn mapencap_link_copies(t: &SpTree, receivers: &[DomainId]) -> usize {
    receivers
        .iter()
        .filter_map(|r| t.dist_to(*r))
        .map(|d| d as usize)
        .sum()
}

impl Snapshot for GroupState {
    fn encode(&self, enc: &mut Enc) {
        enc.usize(self.bgmp_entries);
        enc.usize(self.bier_ingress_entries);
        enc.usize(self.mapencap_ingress_entries);
    }
    fn decode(dec: &mut Dec<'_>) -> Result<Self, SnapError> {
        let bgmp_entries = dec.usize()?;
        let bier_ingress_entries = dec.usize()?;
        let mapencap_ingress_entries = dec.usize()?;
        Ok(GroupState {
            bgmp_entries,
            bier_ingress_entries,
            mapencap_ingress_entries,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topology::{bfs, DomainGraph};

    /// Star: hub 0 with leaves 1..=4, plus a chain 4-5-6 hanging off
    /// one leaf.
    fn star_chain() -> DomainGraph {
        let mut g = DomainGraph::new();
        for i in 0..7 {
            g.add_domain(format!("D{i}"));
        }
        for leaf in 1..=4usize {
            g.add_peering(DomainId(0), DomainId(leaf));
        }
        g.add_peering(DomainId(4), DomainId(5));
        g.add_peering(DomainId(5), DomainId(6));
        g
    }

    #[test]
    fn bier_copies_count_spt_subtree_edges_once() {
        let g = star_chain();
        let t = bfs(&g, DomainId(0));
        let sub = SubDomain::new(7, 256);
        // Receivers 1 and 2: two disjoint one-hop branches.
        assert_eq!(bier_link_copies(&t, &sub, &[DomainId(1), DomainId(2)]), 2);
        // Receivers 5 and 6 share the 0-4-5 prefix: edges {0-4,4-5,5-6}.
        assert_eq!(bier_link_copies(&t, &sub, &[DomainId(5), DomainId(6)]), 3);
        // Duplicate receivers don't double-count the shared edges.
        assert_eq!(
            bier_link_copies(&t, &sub, &[DomainId(6), DomainId(6), DomainId(5)]),
            3
        );
    }

    #[test]
    fn small_bsl_splits_the_subtree_per_set() {
        let g = star_chain();
        let t = bfs(&g, DomainId(0));
        // BSL 5 (BFR-ids are 1-based): domains 0..=4 fill set 0 and
        // domains 5..=6 spill into set 1, so the shared 0-4 prefix is
        // traversed by both set packets.
        let sub = SubDomain::new(7, 5);
        assert_eq!(bier_link_copies(&t, &sub, &[DomainId(3), DomainId(5)]), 3);
        let wide = SubDomain::new(7, 256);
        assert_eq!(bier_link_copies(&t, &wide, &[DomainId(3), DomainId(5)]), 3);
        // Where the paths *do* overlap, the split costs extra.
        assert_eq!(bier_link_copies(&t, &sub, &[DomainId(4), DomainId(5)]), 3);
        assert_eq!(bier_link_copies(&t, &wide, &[DomainId(4), DomainId(5)]), 2);
    }

    #[test]
    fn mapencap_copies_are_sum_of_path_lengths() {
        let g = star_chain();
        let t = bfs(&g, DomainId(0));
        let rs = [DomainId(1), DomainId(5), DomainId(6)];
        assert_eq!(mapencap_link_copies(&t, &rs), 1 + 2 + 3);
        // The same receiver set costs BIER only the subtree.
        let sub = SubDomain::new(7, 256);
        assert_eq!(bier_link_copies(&t, &sub, &rs), 4);
    }

    #[test]
    fn unreachable_receivers_cost_nothing() {
        let mut g = star_chain();
        g.add_domain("island");
        let t = bfs(&g, DomainId(0));
        let sub = SubDomain::new(8, 256);
        assert_eq!(bier_link_copies(&t, &sub, &[DomainId(7)]), 0);
        assert_eq!(mapencap_link_copies(&t, &[DomainId(7)]), 0);
    }

    #[test]
    fn footprints_follow_the_model() {
        let sub = SubDomain::new(600, 256);
        let receivers: Vec<DomainId> = vec![DomainId(1), DomainId(300), DomainId(599)];
        let gs = GroupState::compute(&sub, 42, &receivers);
        assert_eq!(gs.bgmp_entries, 42);
        assert_eq!(gs.bier_ingress_entries, 3); // sets 0, 1, 2
        assert_eq!(gs.mapencap_ingress_entries, 3);

        // Dense receiver set in one set: BIER state stays at 1.
        let dense: Vec<DomainId> = (0..200).map(DomainId).collect();
        let gs = GroupState::compute(&sub, 250, &dense);
        assert_eq!(gs.bier_ingress_entries, 1);
        assert_eq!(gs.mapencap_ingress_entries, 200);
    }

    #[test]
    fn snapshot_roundtrip() {
        let gs = GroupState {
            bgmp_entries: 7,
            bier_ingress_entries: 2,
            mapencap_ingress_entries: 19,
        };
        let mut e = Enc::new();
        gs.encode(&mut e);
        let bytes = e.finish();
        let mut d = Dec::new(&bytes);
        assert_eq!(GroupState::decode(&mut d).unwrap(), gs);
        d.finish().unwrap();
    }
}
