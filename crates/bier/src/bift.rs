//! The Bit Index Forwarding Table (BIFT).
//!
//! One BIFT per router (domain). For each destination bit it stores the
//! neighbor the unicast shortest path exits through; from that, a
//! per-(set, neighbor) **forwarding bit mask** (F-BM) — the union of
//! all bits reached via that neighbor — drives forwarding: copy the
//! packet to each neighbor whose F-BM intersects the packet bitstring,
//! AND the copy's bitstring with the F-BM, clear those bits from the
//! original. Crucially the BIFT is a pure function of unicast routing
//! ([`topology::bfs_first_hops`]): it holds **zero per-group state**,
//! which is the whole point of the BIER column in the ablation.

use crate::bitstring::{BitString, SubDomain};
use snapshot::{Dec, Enc, SnapError, Snapshot};
use topology::{DomainGraph, DomainId};

/// One forwarding entry: a neighbor and the mask of destination bits
/// (within one set) routed via it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BiftEntry {
    /// Neighbor the packet copy is sent to.
    pub neighbor: DomainId,
    /// Union of destination bits (in this entry's set) whose shortest
    /// path from this router exits via `neighbor`.
    pub fbm: BitString,
}

impl Snapshot for BiftEntry {
    fn encode(&self, enc: &mut Enc) {
        enc.usize(self.neighbor.0);
        self.fbm.encode(enc);
    }
    fn decode(dec: &mut Dec<'_>) -> Result<Self, SnapError> {
        let neighbor = DomainId(dec.usize()?);
        let fbm = BitString::decode(dec)?;
        Ok(BiftEntry { neighbor, fbm })
    }
}

/// The BIFT of one router: per set, the F-BM entries keyed by neighbor.
///
/// Entries are kept in `(set, neighbor)` order so iteration — and thus
/// forwarding copy order, link-copy accounting, and snapshots — is
/// deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bift {
    /// Router this table belongs to.
    pub at: DomainId,
    /// `sets[si]` = F-BM entries for set `si`, sorted by neighbor id.
    sets: Vec<Vec<BiftEntry>>,
}

impl Bift {
    /// Builds the BIFT at router `at` from unicast first hops.
    ///
    /// A destination bit for domain `d` maps to the first hop of the
    /// shortest path `at → d`; all bits sharing a first hop fold into
    /// one F-BM. Unreachable domains (and `at` itself — local delivery
    /// needs no entry) get no bit anywhere.
    pub fn build(g: &DomainGraph, sub: &SubDomain, at: DomainId) -> Self {
        let first = topology::bfs_first_hops(g, at);
        let mut sets: Vec<Vec<BiftEntry>> = vec![Vec::new(); sub.sets()];
        for d in g.domains() {
            let Some(hop) = first[d.0] else { continue };
            let (si, pos) = sub.position(sub.bfr_of(d));
            let entries = &mut sets[si.0 as usize];
            match entries.iter_mut().find(|e| e.neighbor == hop) {
                Some(e) => e.fbm.set(pos),
                None => {
                    let mut fbm = BitString::new(sub.bsl());
                    fbm.set(pos);
                    entries.push(BiftEntry { neighbor: hop, fbm });
                }
            }
        }
        for entries in &mut sets {
            entries.sort_by_key(|e| e.neighbor.0);
        }
        Bift { at, sets }
    }

    /// F-BM entries for one set, sorted by neighbor.
    pub fn entries(&self, si: u32) -> &[BiftEntry] {
        static EMPTY: &[BiftEntry] = &[];
        self.sets.get(si as usize).map_or(EMPTY, |v| v.as_slice())
    }

    /// Number of sets this table partitions into.
    pub fn set_count(&self) -> usize {
        self.sets.len()
    }

    /// Total (set, neighbor) entries — the per-router forwarding state
    /// the fig4 state-size column counts. Independent of group count.
    pub fn entry_count(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }
}

impl Snapshot for Bift {
    fn encode(&self, enc: &mut Enc) {
        enc.usize(self.at.0);
        self.sets.encode(enc);
    }
    fn decode(dec: &mut Dec<'_>) -> Result<Self, SnapError> {
        let at = DomainId(dec.usize()?);
        let sets: Vec<Vec<BiftEntry>> = Snapshot::decode(dec)?;
        Ok(Bift { at, sets })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topology::{internet_like, InternetSpec};

    /// Line topology a-b-c-d.
    fn line() -> (DomainGraph, [DomainId; 4]) {
        let mut g = DomainGraph::new();
        let a = g.add_domain("a");
        let b = g.add_domain("b");
        let c = g.add_domain("c");
        let d = g.add_domain("d");
        g.add_peering(a, b);
        g.add_peering(b, c);
        g.add_peering(c, d);
        (g, [a, b, c, d])
    }

    #[test]
    fn line_folds_bits_into_one_fbm_per_direction() {
        let (g, [a, b, c, d]) = line();
        let sub = SubDomain::new(4, 256);
        let bift = Bift::build(&g, &sub, b);
        // From b: bit(a) via a; bits(c, d) via c → exactly 2 entries.
        let entries = bift.entries(0);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].neighbor, a);
        assert_eq!(entries[0].fbm.ones().collect::<Vec<_>>(), vec![a.0]);
        assert_eq!(entries[1].neighbor, c);
        let mut via_c: Vec<usize> = entries[1].fbm.ones().collect();
        via_c.sort_unstable();
        assert_eq!(via_c, vec![c.0, d.0]);
        assert_eq!(bift.entry_count(), 2);
    }

    #[test]
    fn no_entry_for_self_or_unreachable() {
        let mut g = DomainGraph::new();
        let a = g.add_domain("a");
        let b = g.add_domain("b");
        let _island = g.add_domain("island");
        g.add_peering(a, b);
        let sub = SubDomain::new(3, 256);
        let bift = Bift::build(&g, &sub, a);
        let entries = bift.entries(0);
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].neighbor, b);
        assert_eq!(entries[0].fbm.ones().collect::<Vec<_>>(), vec![b.0]);
    }

    #[test]
    fn fbm_bits_are_disjoint_across_neighbors_and_total() {
        // On a real topology every reachable bit appears in exactly one
        // F-BM (unique first hop per destination).
        let g = internet_like(&InternetSpec {
            n: 200,
            backbones: 5,
            attach: 2,
            extra_peerings: 5,
            seed: 11,
        });
        let n = g.len();
        let sub = SubDomain::new(n, 64); // small BSL → multiple sets
        let at = DomainId(0);
        let bift = Bift::build(&g, &sub, at);
        assert_eq!(bift.set_count(), n.div_ceil(64));
        let mut seen = vec![false; n];
        for si in 0..bift.set_count() {
            for e in bift.entries(si as u32) {
                for pos in e.fbm.ones() {
                    let id = si * 64 + pos;
                    assert!(!seen[id], "bit {id} in two F-BMs");
                    seen[id] = true;
                }
            }
        }
        // Everything but `at` itself must be covered (graph is connected).
        for d in g.domains() {
            assert_eq!(seen[d.0], d != at, "coverage of {d:?}");
        }
    }

    #[test]
    fn snapshot_roundtrip() {
        let (g, [_a, b, ..]) = line();
        let sub = SubDomain::new(4, 256);
        let bift = Bift::build(&g, &sub, b);
        let mut e = Enc::new();
        bift.encode(&mut e);
        let bytes = e.finish();
        let mut d = Dec::new(&bytes);
        assert_eq!(Bift::decode(&mut d).unwrap(), bift);
        d.finish().unwrap();
    }
}
