//! Deterministic analytic replay of a fault timeline.
//!
//! The fault ablation drives the BGMP stack through `core::chaos` —
//! link flap windows, node crash windows, timed sends — and measures
//! delivery ratio and convergence. This module replays the *same*
//! timeline against the BIER plane: for each send it applies the fault
//! view active at that instant, forwards a bitstring packet to every
//! member, applies seeded per-hop loss, and accounts delivery. Repair
//! is modeled analytically:
//!
//! * **BIER-TE 1:1 protection** — a protected adjacency switches to its
//!   precomputed backup path after a fixed local-detection delay
//!   ([`ReplayParams::detect_ms`], ~tens of ms), so a flap window costs
//!   only the detection gap, not the window;
//! * **unprotected / reconvergence repair** (map-and-encap's unicast
//!   reroute, or BIER without protection) — traffic through the failed
//!   element is lost until routing reconverges
//!   ([`ReplayParams::reroute_ms`] after detection);
//! * **node crashes** — 1:1 *link* protection does not cover them; every
//!   architecture waits out the crash window plus reconvergence.
//!
//! Everything is a pure function of (graph, timeline, params): replay
//! twice, get identical numbers — same contract as the rest of the
//! workspace.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::bitstring::SubDomain;
use crate::forward::Network;
use crate::protect::Protection;
use topology::{DomainGraph, DomainId};

/// A link down-window: `a–b` is out during `[at, at + dur)` (seconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flap {
    /// One endpoint.
    pub a: DomainId,
    /// Other endpoint.
    pub b: DomainId,
    /// Start second.
    pub at: u64,
    /// Duration in seconds.
    pub dur: u64,
}

/// A router down-window: `d` is out during `[at, at + dur)` (seconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crash {
    /// The crashed router.
    pub d: DomainId,
    /// Start second.
    pub at: u64,
    /// Duration in seconds.
    pub dur: u64,
}

/// A timed multicast send: `from` transmits to the whole group at `at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Send {
    /// Send second.
    pub at: u64,
    /// Sending domain.
    pub from: DomainId,
}

/// The full fault + traffic schedule, shared verbatim with the BGMP
/// chaos run so the architectures face identical conditions.
#[derive(Debug, Clone, Default)]
pub struct FaultTimeline {
    /// Link flap windows.
    pub flaps: Vec<Flap>,
    /// Node crash windows.
    pub crashes: Vec<Crash>,
    /// Timed sends, in time order.
    pub sends: Vec<Send>,
}

/// Replay knobs.
#[derive(Debug, Clone, Copy)]
pub struct ReplayParams {
    /// Per-hop packet loss probability (matches the chaos `loss` knob).
    pub loss: f64,
    /// Local failure-detection delay in milliseconds (BFD-style).
    pub detect_ms: u64,
    /// Routing reconvergence delay in milliseconds, paid when 1:1
    /// protection is absent or does not cover the failure.
    pub reroute_ms: u64,
    /// Whether the 1:1 backup-path protection plane is active.
    pub protection: bool,
    /// Seed for the per-hop loss draws.
    pub seed: u64,
}

/// What the replay measured.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplayOutcome {
    /// `(sender, receiver)` deliveries attempted.
    pub expected: usize,
    /// Deliveries that arrived (survived faults and loss).
    pub delivered: usize,
    /// `delivered / expected` (1.0 when nothing was attempted).
    pub delivery_ratio: f64,
    /// Worst-case repair latency across fault events (ms): detection
    /// gap for protected link failures, window + reconvergence
    /// otherwise. Zero when the timeline has no faults.
    pub max_recovery_ms: u64,
    /// Worst-case repair latency over *link* events only (ms). This is
    /// the protection plane's headline: crashes are unprotected under
    /// both planes (1:1 backup paths cover adjacencies, not nodes), so
    /// `max_recovery_ms` is crash-dominated whenever the timeline has
    /// one — this column isolates what protection actually buys.
    pub max_link_recovery_ms: u64,
    /// Fault windows that were fully covered by 1:1 protection.
    pub protected_events: usize,
    /// Fault windows that needed reconvergence.
    pub unprotected_events: usize,
}

/// Replays `timeline` over `g` and returns delivery/repair metrics.
///
/// Group membership is every domain (mirroring the chaos harness,
/// where each domain hosts one member): each send fans out to all
/// other domains.
pub fn replay(
    g: &DomainGraph,
    sub: &SubDomain,
    timeline: &FaultTimeline,
    params: &ReplayParams,
) -> ReplayOutcome {
    let mut net = Network::build(g, sub);
    let prot = params.protection.then(|| Protection::build(g));
    let mut rng = StdRng::seed_from_u64(params.seed ^ 0xB1E5_7A7E_5EED_0001);

    let all: Vec<DomainId> = g.domains().collect();
    let mut expected = 0usize;
    let mut delivered = 0usize;

    for send in &timeline.sends {
        net.clear_faults();
        for f in &timeline.flaps {
            if send.at >= f.at && send.at < f.at + f.dur {
                net.set_link_down(f.a, f.b);
            }
        }
        for c in &timeline.crashes {
            if send.at >= c.at && send.at < c.at + c.dur {
                net.set_node_down(c.d);
            }
        }
        let receivers: Vec<DomainId> = all.iter().copied().filter(|d| *d != send.from).collect();
        expected += receivers.len();
        let got = net.deliver_all(send.from, &receivers, prot.as_ref());
        for (_r, hops) in &got.reached {
            let p_survive = (1.0 - params.loss).powi(*hops as i32);
            if rng.gen_bool(p_survive.clamp(0.0, 1.0)) {
                delivered += 1;
            }
        }
    }

    // Repair latency per fault window, independent of traffic timing.
    let mut max_recovery_ms = 0u64;
    let mut max_link_recovery_ms = 0u64;
    let mut protected_events = 0usize;
    let mut unprotected_events = 0usize;
    let reconverge = |dur_s: u64| dur_s * 1000 + params.detect_ms + params.reroute_ms;
    for f in &timeline.flaps {
        let covered = prot.as_ref().is_some_and(|p| {
            p.backup_path(f.a, f.b).is_some() && p.backup_path(f.b, f.a).is_some()
        });
        let ms = if covered {
            protected_events += 1;
            params.detect_ms
        } else {
            unprotected_events += 1;
            reconverge(f.dur)
        };
        max_recovery_ms = max_recovery_ms.max(ms);
        max_link_recovery_ms = max_link_recovery_ms.max(ms);
    }
    for c in &timeline.crashes {
        unprotected_events += 1;
        max_recovery_ms = max_recovery_ms.max(reconverge(c.dur));
    }

    ReplayOutcome {
        expected,
        delivered,
        delivery_ratio: if expected == 0 {
            1.0
        } else {
            delivered as f64 / expected as f64
        },
        max_recovery_ms,
        max_link_recovery_ms,
        protected_events,
        unprotected_events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitstring::DEFAULT_BSL;

    fn ring(n: usize) -> DomainGraph {
        let mut g = DomainGraph::new();
        let ids: Vec<DomainId> = (0..n).map(|i| g.add_domain(format!("d{i}"))).collect();
        for i in 0..n {
            g.add_peering(ids[i], ids[(i + 1) % n]);
        }
        g
    }

    fn params(loss: f64, protection: bool) -> ReplayParams {
        ReplayParams {
            loss,
            detect_ms: 50,
            reroute_ms: 1000,
            protection,
            seed: 7,
        }
    }

    fn sends_every_2s(n: usize, horizon: u64) -> Vec<Send> {
        let mut out = Vec::new();
        let mut t = 4;
        let mut k = 0usize;
        while t < horizon {
            out.push(Send {
                at: t,
                from: DomainId((k * 7 + 3) % n),
            });
            t += 2;
            k += 1;
        }
        out
    }

    #[test]
    fn clean_timeline_delivers_everything() {
        let g = ring(8);
        let sub = SubDomain::new(8, DEFAULT_BSL);
        let tl = FaultTimeline {
            flaps: vec![],
            crashes: vec![],
            sends: sends_every_2s(8, 20),
        };
        let out = replay(&g, &sub, &tl, &params(0.0, false));
        assert_eq!(out.expected, 8 * 7);
        assert_eq!(out.delivered, out.expected);
        assert_eq!(out.delivery_ratio, 1.0);
        assert_eq!(out.max_recovery_ms, 0);
    }

    #[test]
    fn protection_turns_flap_loss_into_detection_blip() {
        let g = ring(8);
        let sub = SubDomain::new(8, DEFAULT_BSL);
        let tl = FaultTimeline {
            flaps: vec![Flap {
                a: DomainId(0),
                b: DomainId(1),
                at: 0,
                dur: 30,
            }],
            crashes: vec![],
            sends: sends_every_2s(8, 20),
        };
        // Unprotected: sends during the window lose the receivers
        // behind the cut (ring → the other way is longer but BIFT
        // still points through the dead link for some bits).
        let unprot = replay(&g, &sub, &tl, &params(0.0, false));
        assert!(unprot.delivery_ratio < 1.0);
        assert_eq!(unprot.unprotected_events, 1);
        assert_eq!(unprot.max_recovery_ms, 30 * 1000 + 50 + 1000);
        // Protected: the ring minus one link is still connected, so the
        // backup path restores every delivery.
        let prot = replay(&g, &sub, &tl, &params(0.0, true));
        assert_eq!(prot.delivery_ratio, 1.0, "1:1 repair covers the flap");
        assert_eq!(prot.protected_events, 1);
        assert_eq!(prot.max_recovery_ms, 50);
        assert_eq!(prot.max_link_recovery_ms, 50);
    }

    #[test]
    fn crash_is_not_covered_by_link_protection() {
        let g = ring(8);
        let sub = SubDomain::new(8, DEFAULT_BSL);
        let tl = FaultTimeline {
            flaps: vec![],
            crashes: vec![Crash {
                d: DomainId(2),
                at: 0,
                dur: 20,
            }],
            sends: sends_every_2s(8, 20),
        };
        let out = replay(&g, &sub, &tl, &params(0.0, true));
        assert!(out.delivery_ratio < 1.0);
        assert_eq!(out.unprotected_events, 1);
        assert_eq!(out.max_recovery_ms, 20 * 1000 + 50 + 1000);
        // The link-only column excludes the crash: nothing to repair at
        // the adjacency layer, so it stays at zero.
        assert_eq!(out.max_link_recovery_ms, 0);
    }

    #[test]
    fn loss_draws_are_deterministic_in_seed() {
        let g = ring(10);
        let sub = SubDomain::new(10, DEFAULT_BSL);
        let tl = FaultTimeline {
            flaps: vec![],
            crashes: vec![],
            sends: sends_every_2s(10, 60),
        };
        let a = replay(&g, &sub, &tl, &params(0.10, false));
        let b = replay(&g, &sub, &tl, &params(0.10, false));
        assert_eq!(a, b);
        assert!(a.delivered < a.expected, "10% loss must bite");
        assert!(a.delivery_ratio > 0.5);
    }

    #[test]
    fn sends_outside_fault_windows_are_unaffected() {
        let g = ring(6);
        let sub = SubDomain::new(6, DEFAULT_BSL);
        let tl = FaultTimeline {
            flaps: vec![Flap {
                a: DomainId(0),
                b: DomainId(1),
                at: 100,
                dur: 5,
            }],
            crashes: vec![],
            sends: sends_every_2s(6, 20), // all before the window
        };
        let out = replay(&g, &sub, &tl, &params(0.0, false));
        assert_eq!(out.delivery_ratio, 1.0);
        // The window still counts as a repair event.
        assert_eq!(out.unprotected_events, 1);
    }
}
