//! Bitstrings, BFR-ids, and sub-domain set partitioning.
//!
//! Every domain that can receive traffic (a BFER in RFC 8279 terms) is
//! assigned a 1-based **BFR-id**. A packet's receiver set is a
//! **bitstring** of at most `bsl` bits (the BitStringLength); domains
//! whose BFR-id exceeds the BSL fall into higher **sets**: bit position
//! `(id-1) % bsl` of set `(id-1) / bsl`. A packet addressed to
//! receivers in k distinct sets is sent as k copies, one per set —
//! that is the header-size / copy-count tradeoff the BIER-TE paper
//! partitions around, and what keeps this plane viable on the
//! 3326-domain figure-4 topology at a 256-bit BSL.

use topology::DomainId;

/// Default BitStringLength: RFC 8296's common hardware size.
pub const DEFAULT_BSL: usize = 256;

/// A 1-based bit-forwarding router id (0 is reserved / invalid).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct BfrId(pub u32);

/// A set index (SI): which `bsl`-sized block of BFR-ids a bit lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct SetId(pub u32);

/// A fixed-capacity bitstring of `bsl` bits, backed by u64 words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitString {
    /// Capacity in bits.
    bsl: usize,
    /// Little-endian bit storage: bit `i` is word `i / 64`, bit `i % 64`.
    words: Vec<u64>,
}

impl BitString {
    /// An all-zero bitstring of `bsl` bits.
    pub fn new(bsl: usize) -> Self {
        BitString {
            bsl,
            words: vec![0; bsl.div_ceil(64)],
        }
    }

    /// Capacity in bits.
    pub fn bsl(&self) -> usize {
        self.bsl
    }

    /// Sets bit `pos` (0-based; must be `< bsl`).
    pub fn set(&mut self, pos: usize) {
        assert!(pos < self.bsl, "bit {pos} out of range (bsl {})", self.bsl);
        self.words[pos / 64] |= 1u64 << (pos % 64);
    }

    /// Clears bit `pos`.
    pub fn clear(&mut self, pos: usize) {
        assert!(pos < self.bsl, "bit {pos} out of range (bsl {})", self.bsl);
        self.words[pos / 64] &= !(1u64 << (pos % 64));
    }

    /// Whether bit `pos` is set.
    pub fn get(&self, pos: usize) -> bool {
        pos < self.bsl && self.words[pos / 64] & (1u64 << (pos % 64)) != 0
    }

    /// Whether no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `self |= other` (capacities must match).
    pub fn or_assign(&mut self, other: &BitString) {
        debug_assert_eq!(self.bsl, other.bsl);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// `self & other` as a new bitstring (capacities must match).
    pub fn and(&self, other: &BitString) -> BitString {
        debug_assert_eq!(self.bsl, other.bsl);
        BitString {
            bsl: self.bsl,
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a & b)
                .collect(),
        }
    }

    /// `self &= !other`: clears every bit set in `other` (RFC 8279's
    /// post-copy bit clearing — the step that makes delivery
    /// exactly-once and termination unconditional).
    pub fn and_not_assign(&mut self, other: &BitString) {
        debug_assert_eq!(self.bsl, other.bsl);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Whether `self & other` has any bit set (no allocation).
    pub fn intersects(&self, other: &BitString) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Iterates set bit positions in ascending order.
    pub fn ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, w)| {
            let mut w = *w;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let bit = w.trailing_zeros() as usize;
                w &= w - 1;
                Some(wi * 64 + bit)
            })
        })
    }
}

impl snapshot::Snapshot for BfrId {
    fn encode(&self, enc: &mut snapshot::Enc) {
        enc.u32(self.0);
    }
    fn decode(dec: &mut snapshot::Dec<'_>) -> Result<Self, snapshot::SnapError> {
        let v = dec.u32()?;
        if v == 0 {
            return Err(snapshot::SnapError::Invalid("BfrId zero"));
        }
        Ok(BfrId(v))
    }
}

impl snapshot::Snapshot for SetId {
    fn encode(&self, enc: &mut snapshot::Enc) {
        enc.u32(self.0);
    }
    fn decode(dec: &mut snapshot::Dec<'_>) -> Result<Self, snapshot::SnapError> {
        Ok(SetId(dec.u32()?))
    }
}

impl snapshot::Snapshot for BitString {
    fn encode(&self, enc: &mut snapshot::Enc) {
        enc.usize(self.bsl);
        self.words.encode(enc);
    }
    fn decode(dec: &mut snapshot::Dec<'_>) -> Result<Self, snapshot::SnapError> {
        let bsl = dec.usize()?;
        let words: Vec<u64> = snapshot::Snapshot::decode(dec)?;
        if words.len() != bsl.div_ceil(64) {
            return Err(snapshot::SnapError::Invalid("BitString word count"));
        }
        // Canonical form: no bits above bsl (encode can't produce them,
        // so decode rejects them rather than silently masking).
        if bsl % 64 != 0 {
            if let Some(last) = words.last() {
                if last >> (bsl % 64) != 0 {
                    return Err(snapshot::SnapError::Invalid("BitString stray high bits"));
                }
            }
        }
        Ok(BitString { bsl, words })
    }
}

/// The BIER sub-domain: the deterministic DomainId ↔ BFR-id assignment
/// for one topology, plus the set partitioning parameters.
///
/// Assignment is positional (`BfrId = DomainId + 1`), which is exactly
/// what an IGP extension flooding BFR-ids in domain order would
/// produce, and keeps every derived table reproducible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubDomain {
    /// Number of domains (BFR-id space is `1..=n`).
    n: usize,
    /// BitStringLength: bits per set.
    bsl: usize,
}

impl SubDomain {
    /// A sub-domain over `n` domains at BitStringLength `bsl`.
    pub fn new(n: usize, bsl: usize) -> Self {
        assert!(bsl > 0, "BSL must be positive");
        SubDomain { n, bsl }
    }

    /// Number of domains.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the sub-domain is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The BitStringLength.
    pub fn bsl(&self) -> usize {
        self.bsl
    }

    /// Number of sets needed to address every domain.
    pub fn sets(&self) -> usize {
        self.n.div_ceil(self.bsl)
    }

    /// The BFR-id of a domain.
    pub fn bfr_of(&self, d: DomainId) -> BfrId {
        debug_assert!(d.0 < self.n);
        BfrId(d.0 as u32 + 1)
    }

    /// The domain of a BFR-id, if in range.
    pub fn domain_of(&self, b: BfrId) -> Option<DomainId> {
        (b.0 >= 1 && (b.0 as usize) <= self.n).then(|| DomainId(b.0 as usize - 1))
    }

    /// Which (set, bit position) a BFR-id maps to.
    pub fn position(&self, b: BfrId) -> (SetId, usize) {
        let z = b.0 as usize - 1;
        (SetId((z / self.bsl) as u32), z % self.bsl)
    }

    /// Encodes a receiver set as one bitstring per touched set, in
    /// ascending set order. This is the ingress's only per-group state:
    /// the group → bitstring mapping.
    pub fn bitstrings_for(&self, receivers: &[DomainId]) -> Vec<(SetId, BitString)> {
        let mut out: Vec<(SetId, BitString)> = Vec::new();
        let mut sorted: Vec<DomainId> = receivers.to_vec();
        sorted.sort();
        sorted.dedup();
        for d in sorted {
            let (si, pos) = self.position(self.bfr_of(d));
            match out.iter_mut().find(|(s, _)| *s == si) {
                Some((_, bs)) => bs.set(pos),
                None => {
                    let mut bs = BitString::new(self.bsl);
                    bs.set(pos);
                    out.push((si, bs));
                }
            }
        }
        out.sort_by_key(|(s, _)| *s);
        out
    }

    /// Number of distinct sets a receiver list touches (= packet copies
    /// the ingress must emit).
    pub fn sets_touched(&self, receivers: &[DomainId]) -> usize {
        let mut sis: Vec<u32> = receivers
            .iter()
            .map(|d| self.position(self.bfr_of(*d)).0 .0)
            .collect();
        sis.sort_unstable();
        sis.dedup();
        sis.len()
    }
}

impl snapshot::Snapshot for SubDomain {
    fn encode(&self, enc: &mut snapshot::Enc) {
        enc.usize(self.n);
        enc.usize(self.bsl);
    }
    fn decode(dec: &mut snapshot::Dec<'_>) -> Result<Self, snapshot::SnapError> {
        let n = dec.usize()?;
        let bsl = dec.usize()?;
        if bsl == 0 {
            return Err(snapshot::SnapError::Invalid("SubDomain zero BSL"));
        }
        Ok(SubDomain { n, bsl })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snapshot::{Dec, Enc, Snapshot};

    #[test]
    fn set_clear_get_count() {
        let mut bs = BitString::new(100);
        assert!(bs.is_empty());
        bs.set(0);
        bs.set(63);
        bs.set(64);
        bs.set(99);
        assert!(bs.get(63) && bs.get(64) && bs.get(99));
        assert!(!bs.get(1));
        assert_eq!(bs.count_ones(), 4);
        bs.clear(63);
        assert!(!bs.get(63));
        assert_eq!(bs.ones().collect::<Vec<_>>(), vec![0, 64, 99]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_panics() {
        BitString::new(8).set(8);
    }

    #[test]
    fn and_not_and_intersect() {
        let mut a = BitString::new(130);
        a.set(1);
        a.set(65);
        a.set(129);
        let mut b = BitString::new(130);
        b.set(65);
        assert!(a.intersects(&b));
        assert_eq!(a.and(&b).ones().collect::<Vec<_>>(), vec![65]);
        a.and_not_assign(&b);
        assert_eq!(a.ones().collect::<Vec<_>>(), vec![1, 129]);
        assert!(!a.intersects(&b));
    }

    #[test]
    fn or_assign_unions() {
        let mut a = BitString::new(16);
        a.set(3);
        let mut b = BitString::new(16);
        b.set(9);
        a.or_assign(&b);
        assert_eq!(a.ones().collect::<Vec<_>>(), vec![3, 9]);
    }

    #[test]
    fn subdomain_partitions_past_bsl() {
        // 700 domains at BSL 256 → 3 sets.
        let sub = SubDomain::new(700, 256);
        assert_eq!(sub.sets(), 3);
        assert_eq!(sub.bfr_of(DomainId(0)), BfrId(1));
        assert_eq!(sub.position(BfrId(1)), (SetId(0), 0));
        assert_eq!(sub.position(BfrId(256)), (SetId(0), 255));
        assert_eq!(sub.position(BfrId(257)), (SetId(1), 0));
        assert_eq!(sub.position(BfrId(700)), (SetId(2), 187));
        assert_eq!(sub.domain_of(BfrId(700)), Some(DomainId(699)));
        assert_eq!(sub.domain_of(BfrId(0)), None);
        assert_eq!(sub.domain_of(BfrId(701)), None);
    }

    #[test]
    fn bitstrings_split_by_set_and_dedup() {
        let sub = SubDomain::new(600, 256);
        let rx = [DomainId(5), DomainId(300), DomainId(5), DomainId(599)];
        let per_set = sub.bitstrings_for(&rx);
        assert_eq!(per_set.len(), 3);
        assert_eq!(per_set[0].0, SetId(0));
        assert_eq!(per_set[0].1.ones().collect::<Vec<_>>(), vec![5]);
        assert_eq!(per_set[1].0, SetId(1));
        assert_eq!(per_set[1].1.ones().collect::<Vec<_>>(), vec![300 - 256]);
        assert_eq!(per_set[2].0, SetId(2));
        assert_eq!(per_set[2].1.ones().collect::<Vec<_>>(), vec![599 - 512]);
        assert_eq!(sub.sets_touched(&rx), 3);
        assert_eq!(sub.sets_touched(&[DomainId(1), DomainId(2)]), 1);
    }

    #[test]
    fn snapshot_roundtrip() {
        let mut bs = BitString::new(100);
        bs.set(7);
        bs.set(99);
        let sub = SubDomain::new(700, 256);
        let mut e = Enc::new();
        bs.encode(&mut e);
        sub.encode(&mut e);
        let bytes = e.finish();
        let mut d = Dec::new(&bytes);
        assert_eq!(BitString::decode(&mut d).unwrap(), bs);
        assert_eq!(SubDomain::decode(&mut d).unwrap(), sub);
        d.finish().unwrap();
    }

    #[test]
    fn snapshot_rejects_stray_high_bits_and_bad_lengths() {
        let mut bs = BitString::new(10);
        bs.set(9);
        let mut e = Enc::new();
        bs.encode(&mut e);
        let mut bytes = e.finish();
        // Corrupt the stored word: set a bit above bsl.
        let last = bytes.len() - 1;
        bytes[last] |= 0x80;
        assert!(BitString::decode(&mut Dec::new(&bytes)).is_err());

        let mut e = Enc::new();
        e.usize(100); // bsl says 2 words
        vec![0u64].encode(&mut e); // but only 1 present
        let bytes = e.finish();
        assert!(BitString::decode(&mut Dec::new(&bytes)).is_err());
    }
}
