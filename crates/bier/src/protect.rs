//! BIER-TE-style 1:1 link protection.
//!
//! For every directed adjacency `a → b` we precompute one backup path
//! from `a` to `b` that avoids the direct link (draft-ietf-bier-te-arch
//! §5: the BitString can carry an explicit backup path's adjacency
//! bits, so a point of local repair switches to it immediately on
//! detecting the failure, no reconvergence). Forwarding tunnels the
//! affected copy along the backup path to the adjacency's far end and
//! resumes normal BIFT forwarding there — terminating at the far end is
//! what makes repair loop-free by construction, where a single backup
//! *next hop* could microloop (the neighbor's own BIFT may point back).
//!
//! This is *link* protection: if the far-end router itself is down, or
//! the backup path shares the failure, the copy is dropped — 1:1
//! protection covers single link failures, and the fault ablation is
//! honest about that (node crashes need reconvergence in every
//! architecture compared).

use std::collections::BTreeMap;

use topology::{DomainGraph, DomainId};

/// Precomputed backup paths, one per directed adjacency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Protection {
    /// `(a, b) → [a, x1, …, b]`: the backup path for adjacency `a → b`,
    /// avoiding the direct link. Adjacencies on bridges (no alternate
    /// path) are absent.
    paths: BTreeMap<(usize, usize), Vec<DomainId>>,
}

impl Protection {
    /// Computes a backup path for every directed adjacency in `g`.
    ///
    /// Each path is the shortest `a → b` path in `g` minus the link
    /// `a–b` (BFS, adjacency-order tie-break — deterministic).
    pub fn build(g: &DomainGraph) -> Self {
        let mut paths = BTreeMap::new();
        for a in g.domains() {
            for &(b, _) in g.neighbors(a) {
                if let Some(p) = detour(g, a, b) {
                    paths.insert((a.0, b.0), p);
                }
            }
        }
        Protection { paths }
    }

    /// The backup path `[a, …, b]` for adjacency `a → b`, if one exists.
    pub fn backup_path(&self, a: DomainId, b: DomainId) -> Option<&[DomainId]> {
        self.paths.get(&(a.0, b.0)).map(Vec::as_slice)
    }

    /// Number of protected directed adjacencies.
    pub fn protected_count(&self) -> usize {
        self.paths.len()
    }

    /// Total path entries stored — the control-state cost of 1:1
    /// protection (reported alongside BIFT size in the perf area).
    pub fn total_path_hops(&self) -> usize {
        self.paths.values().map(|p| p.len().saturating_sub(1)).sum()
    }
}

/// Shortest path `a → b` in `g` with the direct link `a–b` removed.
fn detour(g: &DomainGraph, a: DomainId, b: DomainId) -> Option<Vec<DomainId>> {
    let n = g.len();
    let mut parent: Vec<Option<DomainId>> = vec![None; n];
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    seen[a.0] = true;
    queue.push_back(a);
    while let Some(d) = queue.pop_front() {
        for &(nb, _) in g.neighbors(d) {
            // Skip the protected link itself (both directions).
            if (d == a && nb == b) || (d == b && nb == a) {
                continue;
            }
            if !seen[nb.0] {
                seen[nb.0] = true;
                parent[nb.0] = Some(d);
                if nb == b {
                    let mut path = vec![b];
                    let mut cur = b;
                    while let Some(p) = parent[cur.0] {
                        path.push(p);
                        cur = p;
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(nb);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diamond_detours_around_each_link() {
        // a - b - d, a - c - d
        let mut g = DomainGraph::new();
        let a = g.add_domain("a");
        let b = g.add_domain("b");
        let c = g.add_domain("c");
        let d = g.add_domain("d");
        g.add_peering(a, b);
        g.add_peering(a, c);
        g.add_peering(b, d);
        g.add_peering(c, d);
        let prot = Protection::build(&g);
        assert_eq!(prot.backup_path(a, b).unwrap(), &[a, c, d, b]);
        assert_eq!(prot.backup_path(b, a).unwrap(), &[b, d, c, a]);
        // Every directed adjacency is protected in a cycle.
        assert_eq!(prot.protected_count(), 8);
        assert!(prot.total_path_hops() >= 8);
    }

    #[test]
    fn bridge_has_no_backup() {
        // a - b - c: every link is a bridge.
        let mut g = DomainGraph::new();
        let a = g.add_domain("a");
        let b = g.add_domain("b");
        let c = g.add_domain("c");
        g.add_peering(a, b);
        g.add_peering(b, c);
        let prot = Protection::build(&g);
        assert_eq!(prot.backup_path(a, b), None);
        assert_eq!(prot.backup_path(b, c), None);
        assert_eq!(prot.protected_count(), 0);
    }

    #[test]
    fn triangle_backup_is_the_two_hop_way_around() {
        let mut g = DomainGraph::new();
        let a = g.add_domain("a");
        let b = g.add_domain("b");
        let c = g.add_domain("c");
        g.add_peering(a, b);
        g.add_peering(b, c);
        g.add_peering(a, c);
        let prot = Protection::build(&g);
        assert_eq!(prot.backup_path(a, b).unwrap(), &[a, c, b]);
        assert_eq!(prot.backup_path(c, a).unwrap(), &[c, b, a]);
    }
}
