//! BIER wire messages, house codec style.
//!
//! Two planes share the frame type:
//!
//! * **overlay signaling** — receivers subscribe/unsubscribe a group at
//!   the ingress (the role BGP-based BIER overlay signaling or mLDP
//!   plays in deployments; the only per-group state anywhere);
//! * **data + fault notification** — the RFC 8296-shaped packet header
//!   (sub-domain implicit, SI + bitstring) and the adjacency up/down
//!   events the 1:1 protection switchover reacts to.
//!
//! Decoding is total: this file is in repolint's `panicky-decode`
//! scope, so malformed frames surface as [`snapshot::SnapError`], never
//! a panic. Roundtrip and corruption tests live in
//! `tests/wire_roundtrip.rs` (asserts are banned in decode files).

use crate::bitstring::{BfrId, BitString, SetId};
use snapshot::{Dec, Enc, SnapError, Snapshot};

/// A BIER frame: overlay signaling, a data packet header, or an
/// adjacency fault notification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BierMsg {
    /// Receiver `bfr` joins `group` (overlay signaling to the ingress).
    Subscribe {
        /// Group identifier (overlay-assigned, opaque to the plane).
        group: u32,
        /// The subscribing receiver's BFR-id.
        bfr: BfrId,
    },
    /// Receiver `bfr` leaves `group`.
    Unsubscribe {
        /// Group identifier.
        group: u32,
        /// The leaving receiver's BFR-id.
        bfr: BfrId,
    },
    /// A data packet header: which set the bitstring addresses, and the
    /// bitstring itself.
    Packet {
        /// Group identifier (for accounting; forwarding ignores it).
        group: u32,
        /// Set index the bitstring is relative to.
        si: SetId,
        /// Destination bits.
        bits: BitString,
    },
    /// Local detection of a failed adjacency (triggers 1:1 protection
    /// switchover at the point of local repair).
    AdjDown {
        /// Detecting router's BFR-id.
        from: BfrId,
        /// Far end of the failed adjacency.
        to: BfrId,
    },
    /// The adjacency came back; revert to the primary path.
    AdjUp {
        /// Detecting router's BFR-id.
        from: BfrId,
        /// Far end of the restored adjacency.
        to: BfrId,
    },
}

impl Snapshot for BierMsg {
    fn encode(&self, enc: &mut Enc) {
        match self {
            BierMsg::Subscribe { group, bfr } => {
                enc.u8(0);
                enc.u32(*group);
                bfr.encode(enc);
            }
            BierMsg::Unsubscribe { group, bfr } => {
                enc.u8(1);
                enc.u32(*group);
                bfr.encode(enc);
            }
            BierMsg::Packet { group, si, bits } => {
                enc.u8(2);
                enc.u32(*group);
                si.encode(enc);
                bits.encode(enc);
            }
            BierMsg::AdjDown { from, to } => {
                enc.u8(3);
                from.encode(enc);
                to.encode(enc);
            }
            BierMsg::AdjUp { from, to } => {
                enc.u8(4);
                from.encode(enc);
                to.encode(enc);
            }
        }
    }
    fn decode(dec: &mut Dec<'_>) -> Result<Self, SnapError> {
        match dec.u8()? {
            0 => Ok(BierMsg::Subscribe {
                group: dec.u32()?,
                bfr: BfrId::decode(dec)?,
            }),
            1 => Ok(BierMsg::Unsubscribe {
                group: dec.u32()?,
                bfr: BfrId::decode(dec)?,
            }),
            2 => Ok(BierMsg::Packet {
                group: dec.u32()?,
                si: SetId::decode(dec)?,
                bits: BitString::decode(dec)?,
            }),
            3 => Ok(BierMsg::AdjDown {
                from: BfrId::decode(dec)?,
                to: BfrId::decode(dec)?,
            }),
            4 => Ok(BierMsg::AdjUp {
                from: BfrId::decode(dec)?,
                to: BfrId::decode(dec)?,
            }),
            _ => Err(SnapError::Invalid("BierMsg tag")),
        }
    }
}
