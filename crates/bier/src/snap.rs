//! Checkpointing for the BIER plane.
//!
//! [`BierPlane`] is the control-plane state the overlay signaling
//! builds up — the group → receiver-set map held at the ingress, plus
//! the sub-domain parameters. It is the *only* per-group state in the
//! architecture, so it is also the only thing worth checkpointing
//! beyond the [`Network`](crate::forward::Network) fault view (restored
//! via `SnapshotState`, with the BIFTs rebuilt from topology).

use std::collections::{BTreeMap, BTreeSet};

use crate::bitstring::{BfrId, SubDomain};
use crate::msg::BierMsg;
use snapshot::{Dec, Enc, SnapError, Snapshot};
use topology::DomainId;

/// Snapshot kind tag for [`BierPlane::checkpoint`] blobs.
pub const SNAP_KIND_BIER: u16 = 5;

/// Ingress control state: which receivers subscribed to which group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BierPlane {
    /// Sub-domain parameters (BFR-id space and BSL).
    sub: SubDomain,
    /// Per-group subscriber sets, keyed by overlay group id.
    groups: BTreeMap<u32, BTreeSet<BfrId>>,
}

impl BierPlane {
    /// An empty plane over `sub`.
    pub fn new(sub: SubDomain) -> Self {
        BierPlane {
            sub,
            groups: BTreeMap::new(),
        }
    }

    /// The sub-domain parameters.
    pub fn sub(&self) -> &SubDomain {
        &self.sub
    }

    /// Applies an overlay signaling message; returns whether state
    /// changed. Data packets and adjacency events carry no control
    /// state and return `false`.
    pub fn apply(&mut self, msg: &BierMsg) -> bool {
        match msg {
            BierMsg::Subscribe { group, bfr } => {
                self.groups.entry(*group).or_default().insert(*bfr)
            }
            BierMsg::Unsubscribe { group, bfr } => {
                let Some(set) = self.groups.get_mut(group) else {
                    return false;
                };
                let removed = set.remove(bfr);
                if set.is_empty() {
                    self.groups.remove(group);
                }
                removed
            }
            BierMsg::Packet { .. } | BierMsg::AdjDown { .. } | BierMsg::AdjUp { .. } => false,
        }
    }

    /// Receivers of `group`, as domains, in BFR-id order.
    pub fn receivers(&self, group: u32) -> Vec<DomainId> {
        self.groups
            .get(&group)
            .map(|set| set.iter().filter_map(|b| self.sub.domain_of(*b)).collect())
            .unwrap_or_default()
    }

    /// Number of groups with at least one subscriber.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Total ingress state entries: per group, one bitstring per set
    /// its receivers touch (the BIER column of the state comparison).
    pub fn ingress_entries(&self) -> usize {
        self.groups
            .values()
            .map(|set| {
                let rx: Vec<DomainId> = set.iter().filter_map(|b| self.sub.domain_of(*b)).collect();
                self.sub.sets_touched(&rx)
            })
            .sum()
    }

    /// Serializes with the versioned snapshot header.
    pub fn checkpoint(&self) -> Vec<u8> {
        let mut enc = Enc::with_header(SNAP_KIND_BIER);
        self.encode(&mut enc);
        enc.finish()
    }

    /// Rebuilds a plane from [`BierPlane::checkpoint`] bytes.
    pub fn resume(bytes: &[u8]) -> Result<Self, SnapError> {
        let mut dec = Dec::new(bytes);
        dec.header(SNAP_KIND_BIER)?;
        let plane = Self::decode(&mut dec)?;
        dec.finish()?;
        Ok(plane)
    }
}

impl Snapshot for BierPlane {
    fn encode(&self, enc: &mut Enc) {
        self.sub.encode(enc);
        self.groups.encode(enc);
    }
    fn decode(dec: &mut Dec<'_>) -> Result<Self, SnapError> {
        let sub = SubDomain::decode(dec)?;
        let groups: BTreeMap<u32, BTreeSet<BfrId>> = Snapshot::decode(dec)?;
        for set in groups.values() {
            for b in set {
                if sub.domain_of(*b).is_none() {
                    return Err(SnapError::Invalid("BierPlane subscriber out of range"));
                }
            }
        }
        Ok(BierPlane { sub, groups })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitstring::{BitString, DEFAULT_BSL};
    use crate::forward::Network;
    use topology::DomainGraph;

    fn plane_with_state() -> BierPlane {
        let mut p = BierPlane::new(SubDomain::new(600, DEFAULT_BSL));
        for (g, b) in [(9, 1), (9, 300), (9, 599), (11, 42)] {
            assert!(p.apply(&BierMsg::Subscribe {
                group: g,
                bfr: BfrId(b),
            }));
        }
        p
    }

    #[test]
    fn apply_tracks_membership() {
        let mut p = plane_with_state();
        assert_eq!(p.group_count(), 2);
        assert_eq!(
            p.receivers(9),
            vec![DomainId(0), DomainId(299), DomainId(598)]
        );
        // Group 9 spans sets {0, 1, 2}; group 11 one set.
        assert_eq!(p.ingress_entries(), 4);
        // Duplicate subscribe is a no-op.
        assert!(!p.apply(&BierMsg::Subscribe {
            group: 9,
            bfr: BfrId(1),
        }));
        // Unsubscribe down to empty removes the group.
        assert!(p.apply(&BierMsg::Unsubscribe {
            group: 11,
            bfr: BfrId(42),
        }));
        assert_eq!(p.group_count(), 1);
        assert!(!p.apply(&BierMsg::Unsubscribe {
            group: 11,
            bfr: BfrId(42),
        }));
        // Data/fault frames never mutate control state.
        assert!(!p.apply(&BierMsg::Packet {
            group: 9,
            si: crate::bitstring::SetId(0),
            bits: BitString::new(DEFAULT_BSL),
        }));
        assert!(!p.apply(&BierMsg::AdjDown {
            from: BfrId(1),
            to: BfrId(2),
        }));
        assert!(!p.apply(&BierMsg::AdjUp {
            from: BfrId(1),
            to: BfrId(2),
        }));
    }

    #[test]
    fn checkpoint_resume_roundtrip() {
        let p = plane_with_state();
        let bytes = p.checkpoint();
        let back = BierPlane::resume(&bytes).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn resume_rejects_corruption() {
        let p = plane_with_state();
        let bytes = p.checkpoint();
        // Wrong kind tag.
        let engine_hdr = Enc::with_header(1).finish();
        assert!(BierPlane::resume(&engine_hdr).is_err());
        // Every strict prefix fails cleanly.
        for cut in 0..bytes.len() {
            assert!(BierPlane::resume(&bytes[..cut]).is_err(), "prefix {cut}");
        }
        // Out-of-range subscriber (bfr beyond n).
        let mut small = BierPlane::new(SubDomain::new(4, DEFAULT_BSL));
        small.apply(&BierMsg::Subscribe {
            group: 1,
            bfr: BfrId(4),
        });
        let mut enc = Enc::with_header(SNAP_KIND_BIER);
        SubDomain::new(2, DEFAULT_BSL).encode(&mut enc); // shrink the id space
        small.groups.encode(&mut enc);
        assert!(BierPlane::resume(&enc.finish()).is_err());
    }

    #[test]
    fn network_fault_view_restores_via_snapshot_state() {
        use snapshot::SnapshotState;
        let mut g = DomainGraph::new();
        let a = g.add_domain("a");
        let b = g.add_domain("b");
        let c = g.add_domain("c");
        g.add_peering(a, b);
        g.add_peering(b, c);
        g.add_peering(a, c);
        let sub = SubDomain::new(3, DEFAULT_BSL);
        let mut net = Network::build(&g, &sub);
        net.set_link_down(a, b);
        net.set_node_down(c);
        let mut enc = Enc::new();
        net.encode_state(&mut enc);
        let bytes = enc.finish();
        // Rebuild from topology (static side), restore dynamic state.
        let mut fresh = Network::build(&g, &sub);
        let mut dec = Dec::new(&bytes);
        fresh.restore_state(&mut dec).unwrap();
        dec.finish().unwrap();
        let before = net.deliver_all(a, &[b, c], None);
        let after = fresh.deliver_all(a, &[b, c], None);
        assert_eq!(before, after);
    }
}
