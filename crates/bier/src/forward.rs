//! Hop-by-hop bitstring forwarding across a network of BIFTs.
//!
//! The RFC 8279 forwarding loop, per router: for each BIFT entry whose
//! F-BM intersects the packet's bitstring, emit one copy carrying
//! `bitstring & F-BM` to that neighbor, then clear those bits from the
//! working bitstring. Local delivery is just "my own bit is set".
//! Because every copy's bitstring is a strict subset disjoint from its
//! siblings', delivery is exactly-once and the walk terminates without
//! any duplicate-suppression state — properties the tests pin down.
//!
//! [`Network`] also accepts a *fault view* (down links / down routers)
//! and an optional [`Protection`] table so the fault ablation can
//! replay flap windows: on a down link the router tunnels the copy
//! along its precomputed 1:1 backup path to the adjacency's far end,
//! modeling BIER-TE fast reroute after local detection. Tunneling to
//! the far end (rather than handing to an arbitrary alternate next
//! hop) is what keeps repair loop-free.

use crate::bift::Bift;
use crate::bitstring::{BitString, SetId, SubDomain};
use crate::protect::Protection;
use topology::{DomainGraph, DomainId};

/// Outcome of forwarding one (set, bitstring) packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    /// `(receiver, hops from ingress)` for every delivered bit, in
    /// delivery order (deterministic).
    pub reached: Vec<(DomainId, u32)>,
    /// Total copies placed on links (the traffic-cost metric fig4's
    /// link-copy column reports).
    pub link_copies: usize,
    /// Bits that were requested but never delivered (down routers,
    /// partitioned topology).
    pub lost: Vec<DomainId>,
}

/// A full set of BIFTs plus the fault view they forward under.
#[derive(Debug, Clone)]
pub struct Network {
    sub: SubDomain, // lint:allow(snapshot-field-coverage) — static; rebuilt from topology on restore
    /// `bifts[d]` = the BIFT at domain `d`.
    bifts: Vec<Bift>, // lint:allow(snapshot-field-coverage) — pure function of topology; rebuilt on restore
    /// Links administratively/faultily down, stored with endpoints
    /// ordered low-high.
    down_links: Vec<(DomainId, DomainId)>,
    /// Routers currently down.
    down_nodes: Vec<DomainId>,
}

impl Network {
    /// Builds every router's BIFT over `g`.
    pub fn build(g: &DomainGraph, sub: &SubDomain) -> Self {
        let bifts = g.domains().map(|d| Bift::build(g, sub, d)).collect();
        Network {
            sub: sub.clone(),
            bifts,
            down_links: Vec::new(),
            down_nodes: Vec::new(),
        }
    }

    /// The sub-domain this network partitions by.
    pub fn sub(&self) -> &SubDomain {
        &self.sub
    }

    /// The BIFT at `d`.
    pub fn bift(&self, d: DomainId) -> &Bift {
        &self.bifts[d.0]
    }

    /// Total BIFT entries across all routers (aggregate forwarding
    /// state, the BIER analogue of fig4's G-RIB size column).
    pub fn total_entries(&self) -> usize {
        self.bifts.iter().map(Bift::entry_count).sum()
    }

    /// Marks a link down (order-insensitive). No-op if already down.
    pub fn set_link_down(&mut self, a: DomainId, b: DomainId) {
        let key = if a.0 <= b.0 { (a, b) } else { (b, a) };
        if !self.down_links.contains(&key) {
            self.down_links.push(key);
        }
    }

    /// Marks a link back up.
    pub fn set_link_up(&mut self, a: DomainId, b: DomainId) {
        let key = if a.0 <= b.0 { (a, b) } else { (b, a) };
        self.down_links.retain(|k| *k != key);
    }

    /// Marks a router down / up.
    pub fn set_node_down(&mut self, d: DomainId) {
        if !self.down_nodes.contains(&d) {
            self.down_nodes.push(d);
        }
    }

    /// Marks a router back up.
    pub fn set_node_up(&mut self, d: DomainId) {
        self.down_nodes.retain(|n| *n != d);
    }

    /// Clears the whole fault view.
    pub fn clear_faults(&mut self) {
        self.down_links.clear();
        self.down_nodes.clear();
    }

    fn link_ok(&self, a: DomainId, b: DomainId) -> bool {
        let key = if a.0 <= b.0 { (a, b) } else { (b, a) };
        !self.down_links.contains(&key)
    }

    fn node_ok(&self, d: DomainId) -> bool {
        !self.down_nodes.contains(&d)
    }

    /// Forwards one packet for set `si` with bitstring `bs` from
    /// `ingress`, optionally protected by `prot` (1:1 backup next hops
    /// consulted when the primary adjacency is down).
    ///
    /// Deterministic: the work queue is FIFO and BIFT entries are
    /// iterated in neighbor order, so `reached`, `lost`, and
    /// `link_copies` are reproducible bit-for-bit.
    pub fn deliver(
        &self,
        ingress: DomainId,
        si: SetId,
        bs: &BitString,
        prot: Option<&Protection>,
    ) -> Delivery {
        let mut reached = Vec::new();
        let mut link_copies = 0usize;
        let mut undelivered = bs.clone();
        if !self.node_ok(ingress) {
            return Delivery {
                reached,
                link_copies,
                lost: self.owners(si, &undelivered),
            };
        }
        let mut queue = std::collections::VecDeque::new();
        queue.push_back((ingress, bs.clone(), 0u32));
        while let Some((at, mut cur, hops)) = queue.pop_front() {
            // Local delivery: my own bit.
            if let Some(owner_bit) = self.bit_of(si, at) {
                if cur.get(owner_bit) {
                    reached.push((at, hops));
                    cur.clear(owner_bit);
                    undelivered.clear(owner_bit);
                }
            }
            if cur.is_empty() {
                continue;
            }
            for entry in self.bifts[at.0].entries(si.0) {
                let send = cur.and(&entry.fbm);
                if send.is_empty() {
                    continue;
                }
                cur.and_not_assign(&entry.fbm);
                if !self.node_ok(entry.neighbor) {
                    // 1:1 protection covers links, not a dead far end.
                    continue;
                }
                if self.link_ok(at, entry.neighbor) {
                    link_copies += 1;
                    queue.push_back((entry.neighbor, send, hops + 1));
                    continue;
                }
                // Primary link down: tunnel along the 1:1 backup path
                // to the adjacency's far end, if the whole detour is
                // healthy (single-failure coverage).
                let Some(path) = prot.and_then(|p| p.backup_path(at, entry.neighbor)) else {
                    continue;
                };
                let healthy = path.windows(2).all(|w| self.link_ok(w[0], w[1]))
                    && path.iter().skip(1).all(|d| self.node_ok(*d));
                if healthy {
                    let detour_links = (path.len() - 1) as u32;
                    link_copies += detour_links as usize;
                    queue.push_back((entry.neighbor, send, hops + detour_links));
                }
            }
        }
        Delivery {
            reached,
            link_copies,
            lost: self.owners(si, &undelivered),
        }
    }

    /// Forwards to an arbitrary receiver list: encodes it into per-set
    /// bitstrings and delivers each set's packet.
    pub fn deliver_all(
        &self,
        ingress: DomainId,
        receivers: &[DomainId],
        prot: Option<&Protection>,
    ) -> Delivery {
        let mut out = Delivery {
            reached: Vec::new(),
            link_copies: 0,
            lost: Vec::new(),
        };
        for (si, bs) in self.sub.bitstrings_for(receivers) {
            let d = self.deliver(ingress, si, &bs, prot);
            out.reached.extend(d.reached);
            out.link_copies += d.link_copies;
            out.lost.extend(d.lost);
        }
        out
    }

    /// Bit position of `d` within set `si`, if it belongs to that set.
    fn bit_of(&self, si: SetId, d: DomainId) -> Option<usize> {
        let (dsi, pos) = self.sub.position(self.sub.bfr_of(d));
        (dsi == si).then_some(pos)
    }

    /// Domains owning the set bits of `bs` in set `si`.
    fn owners(&self, si: SetId, bs: &BitString) -> Vec<DomainId> {
        bs.ones()
            .map(|pos| DomainId(si.0 as usize * self.sub.bsl() + pos))
            .collect()
    }
}

impl snapshot::SnapshotState for Network {
    fn encode_state(&self, enc: &mut snapshot::Enc) {
        enc.seq(self.down_links.len());
        for (a, b) in &self.down_links {
            enc.usize(a.0);
            enc.usize(b.0);
        }
        enc.seq(self.down_nodes.len());
        for d in &self.down_nodes {
            enc.usize(d.0);
        }
    }
    fn restore_state(&mut self, dec: &mut snapshot::Dec<'_>) -> Result<(), snapshot::SnapError> {
        let n = dec.seq()?;
        let mut down_links = Vec::with_capacity(n);
        for _ in 0..n {
            down_links.push((DomainId(dec.usize()?), DomainId(dec.usize()?)));
        }
        let n = dec.seq()?;
        let mut down_nodes = Vec::with_capacity(n);
        for _ in 0..n {
            down_nodes.push(DomainId(dec.usize()?));
        }
        self.down_links = down_links;
        self.down_nodes = down_nodes;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topology::{internet_like, InternetSpec};

    fn diamond() -> (DomainGraph, [DomainId; 4]) {
        // a - b - d and a - c - d
        let mut g = DomainGraph::new();
        let a = g.add_domain("a");
        let b = g.add_domain("b");
        let c = g.add_domain("c");
        let d = g.add_domain("d");
        g.add_peering(a, b);
        g.add_peering(a, c);
        g.add_peering(b, d);
        g.add_peering(c, d);
        (g, [a, b, c, d])
    }

    #[test]
    fn delivers_exactly_once_with_shared_prefix() {
        let (g, [a, b, _c, d]) = diamond();
        let sub = SubDomain::new(4, 256);
        let net = Network::build(&g, &sub);
        let got = net.deliver_all(a, &[b, d], None);
        assert!(got.lost.is_empty());
        let mut names: Vec<DomainId> = got.reached.iter().map(|(r, _)| *r).collect();
        names.sort();
        assert_eq!(names, vec![b, d]);
        // b at 1 hop, d at 2; the b→d leg rides the copy already sent
        // to b, so only 2 link copies total.
        for (r, h) in &got.reached {
            let want = if *r == b { 1 } else { 2 };
            assert_eq!(*h, want, "hops to {r:?}");
        }
        assert_eq!(got.link_copies, 2);
    }

    #[test]
    fn down_link_loses_without_protection_recovers_with() {
        let (g, [a, b, _c, d]) = diamond();
        let sub = SubDomain::new(4, 256);
        let mut net = Network::build(&g, &sub);
        net.set_link_down(a, b);
        // Unprotected: b unreachable (its only shortest path used a-b),
        // d still delivered? d's first hop from a ties to b (adjacency
        // order) — so both ride a-b and both are lost.
        let got = net.deliver_all(a, &[b, d], None);
        assert_eq!(got.reached, vec![]);
        let mut lost = got.lost.clone();
        lost.sort();
        assert_eq!(lost, vec![b, d]);
        // Protected: the a→b copy tunnels the backup path a-c-d-b
        // (3 links), then d is reached from b over the healthy b-d
        // link — suboptimal paths, zero loss, exactly the FRR tradeoff.
        let prot = Protection::build(&g);
        let got = net.deliver_all(a, &[b, d], Some(&prot));
        assert!(got.lost.is_empty(), "lost {:?}", got.lost);
        let mut reached = got.reached.clone();
        reached.sort();
        assert_eq!(reached, vec![(b, 3), (d, 4)]);
    }

    #[test]
    fn down_node_drops_bits_routed_through_it() {
        // Node (not link) failure: 1:1 link protection does not apply,
        // so the crashed router's bit AND bits routed through it are
        // lost until reconvergence — the honest limit of FRR.
        let (g, [a, b, c, d]) = diamond();
        let sub = SubDomain::new(4, 256);
        let mut net = Network::build(&g, &sub);
        net.set_node_down(b);
        let prot = Protection::build(&g);
        let got = net.deliver_all(a, &[b, c, d], Some(&prot));
        let mut lost = got.lost.clone();
        lost.sort();
        assert_eq!(lost, vec![b, d], "b's copy carried d's bit too");
        let names: Vec<DomainId> = got.reached.iter().map(|(r, _)| *r).collect();
        assert_eq!(names, vec![c]);
    }

    #[test]
    fn multi_set_delivery_covers_every_receiver() {
        let g = internet_like(&InternetSpec {
            n: 150,
            backbones: 4,
            attach: 2,
            extra_peerings: 4,
            seed: 5,
        });
        let sub = SubDomain::new(150, 64); // 3 sets
        let net = Network::build(&g, &sub);
        let receivers: Vec<DomainId> = (0..150).step_by(7).map(DomainId).collect();
        let ingress = DomainId(3);
        let got = net.deliver_all(ingress, &receivers, None);
        assert!(got.lost.is_empty());
        let mut names: Vec<DomainId> = got.reached.iter().map(|(r, _)| *r).collect();
        names.sort();
        names.dedup();
        let mut want = receivers.clone();
        want.sort();
        assert_eq!(names.len(), want.len(), "exactly-once delivery");
        assert_eq!(names, want);
        // Hop counts equal unicast shortest-path distances: BIER rides
        // the SPT, so its path stretch over unicast is exactly 1.
        let t = topology::bfs(&g, ingress);
        for (r, h) in &got.reached {
            let want = if *r == ingress {
                0
            } else {
                t.dist_to(*r).unwrap()
            };
            assert_eq!(*h, want, "hops to {r:?}");
        }
    }

    #[test]
    fn ingress_in_receiver_set_self_delivers_at_zero_hops() {
        let (g, [a, b, ..]) = diamond();
        let sub = SubDomain::new(4, 256);
        let net = Network::build(&g, &sub);
        let got = net.deliver_all(a, &[a, b], None);
        assert!(got.reached.contains(&(a, 0)));
        assert!(got.reached.contains(&(b, 1)));
    }

    #[test]
    fn link_flap_restores_cleanly() {
        let (g, [a, b, _c, _d]) = diamond();
        let sub = SubDomain::new(4, 256);
        let mut net = Network::build(&g, &sub);
        net.set_link_down(a, b);
        net.set_link_down(a, b); // idempotent
        net.set_link_up(a, b);
        let got = net.deliver_all(a, &[b], None);
        assert_eq!(got.reached, vec![(b, 1)]);
        net.set_node_down(b);
        net.set_node_up(b);
        net.clear_faults();
        let got = net.deliver_all(a, &[b], None);
        assert_eq!(got.reached, vec![(b, 1)]);
    }
}
