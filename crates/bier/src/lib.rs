//! BIER / BIER-TE stateless bitstring forwarding over the inter-domain
//! topology — the third architecture in the multicast-scalability
//! ablation (ROADMAP item 2).
//!
//! The paper's core tension is per-group tree state at border routers
//! (BGMP shared trees) against multicast address-space burn (MASC).
//! The modern answer to the *state* half of that tension is Bit Index
//! Explicit Replication (RFC 8279): the ingress router encodes the
//! receiver set as a bitstring in the packet header, and transit
//! routers forward by ANDing that bitstring against a Bit Index
//! Forwarding Table (BIFT) derived purely from unicast routing — no
//! per-group, per-tree, or per-flow state anywhere but the ingress.
//!
//! What this crate models (and what it deliberately simplifies vs
//! RFC 8279 / RFC 8296 — see DESIGN.md §14):
//!
//! * [`bitstring`] — bitstrings, 1-based BFR-ids, and the
//!   sub-domain/set partitioning that keeps headers bounded when the
//!   domain count exceeds the bitstring length (SI = (id-1)/BSL, one
//!   packet copy per set touched);
//! * [`bift`] — the BIFT: per destination bit, the forwarding bit mask
//!   (F-BM) and neighbor, derived from [`topology::bfs_first_hops`]
//!   (the M-RIB's unicast next hops on these topologies);
//! * [`forward`] — hop-by-hop forwarding of a bitstring packet across
//!   a network of BIFTs, with per-receiver hop counts, link-copy
//!   accounting, and exactly-once delivery by construction;
//! * [`protect`] — BIER-TE-style 1:1 link protection (per-adjacency
//!   precomputed backup *paths*, used after a fixed detection delay
//!   instead of a routing reconvergence);
//! * [`state`] — the per-group control-state model compared in fig4
//!   (BGMP shared tree vs BIER vs map-and-encap ingress replication);
//! * [`sim`] — a deterministic analytic replay of a fault timeline
//!   (link flap windows, node crash windows, timed sends) yielding
//!   delivery ratio and recovery time for the fault ablation;
//! * [`msg`] — the wire codec for BIER messages in the house style
//!   (total decode, no panics; repolint `panicky-decode` scope);
//! * [`snap`] — `Snapshot`/`SnapshotState` impls and the checkpoint
//!   kind tag, so checkpoints carry BIER plane state like everything
//!   else.

pub mod bift;
pub mod bitstring;
pub mod forward;
pub mod msg;
pub mod protect;
pub mod sim;
pub mod snap;
pub mod state;

pub use bift::Bift;
pub use bitstring::{BfrId, BitString, SetId, SubDomain, DEFAULT_BSL};
pub use forward::{Delivery, Network};
pub use msg::BierMsg;
pub use protect::Protection;
pub use sim::{FaultTimeline, ReplayOutcome, ReplayParams};
pub use snap::{BierPlane, SNAP_KIND_BIER};
pub use state::GroupState;
