//! BIER wire-codec tests: roundtrip of every frame variant, a committed
//! golden byte image, and corruption totality. They live here — not in
//! `src/msg.rs` — because that file is in repolint's `panicky-decode`
//! scope, where assert macros are banned.

use bier::bitstring::{BfrId, BitString, SetId};
use bier::BierMsg;
use snapshot::{Dec, Enc, Snapshot};

const GOLDEN: &[u8] = include_bytes!("golden/bier_wire.bin");

/// One frame of every variant, with a multi-word bitstring.
fn exemplars() -> Vec<BierMsg> {
    let mut bits = BitString::new(256);
    bits.set(0);
    bits.set(63);
    bits.set(64);
    bits.set(255);
    vec![
        BierMsg::Subscribe {
            group: 9,
            bfr: BfrId(1),
        },
        BierMsg::Unsubscribe {
            group: 9,
            bfr: BfrId(300),
        },
        BierMsg::Packet {
            group: 0x0102_0304,
            si: SetId(2),
            bits,
        },
        BierMsg::AdjDown {
            from: BfrId(7),
            to: BfrId(8),
        },
        BierMsg::AdjUp {
            from: BfrId(7),
            to: BfrId(8),
        },
    ]
}

fn encode_all() -> Vec<u8> {
    let mut enc = Enc::new();
    let msgs = exemplars();
    enc.seq(msgs.len());
    for m in &msgs {
        m.encode(&mut enc);
    }
    enc.finish()
}

#[test]
fn every_variant_roundtrips() {
    for msg in exemplars() {
        let mut enc = Enc::new();
        msg.encode(&mut enc);
        let bytes = enc.finish();
        let mut dec = Dec::new(&bytes);
        assert_eq!(BierMsg::decode(&mut dec).unwrap(), msg);
        dec.finish().unwrap();
    }
}

#[test]
fn wire_format_matches_committed_golden() {
    assert_eq!(
        encode_all(),
        GOLDEN,
        "BIER wire format drifted from the committed golden; if intentional, \
         regenerate with `cargo test -p bier --test wire_roundtrip -- --ignored regen_golden`"
    );
}

#[test]
fn golden_decodes_back_to_the_exemplars() {
    let mut dec = Dec::new(GOLDEN);
    let n = dec.seq().unwrap();
    let want = exemplars();
    assert_eq!(n, want.len());
    for w in &want {
        assert_eq!(BierMsg::decode(&mut dec).unwrap(), *w);
    }
    dec.finish().unwrap();
}

#[test]
fn truncation_is_an_error_never_a_panic() {
    let bytes = encode_all();
    for cut in 0..bytes.len() {
        let mut dec = Dec::new(&bytes[..cut]);
        let mut ok = true;
        if let Ok(n) = dec.seq() {
            for _ in 0..n {
                if BierMsg::decode(&mut dec).is_err() {
                    ok = false;
                    break;
                }
            }
        } else {
            ok = false;
        }
        // A strict prefix can never decode the full frame list and
        // also consume every byte.
        assert!(!(ok && dec.finish().is_ok()), "prefix {cut} decoded fully");
    }
}

#[test]
fn bad_tags_and_zero_bfr_are_rejected() {
    // Unknown frame tag.
    let mut dec = Dec::new(&[9u8]);
    assert!(BierMsg::decode(&mut dec).is_err());
    // BFR-id zero is reserved/invalid on the wire.
    let mut enc = Enc::new();
    enc.u8(0); // Subscribe
    enc.u32(1); // group
    enc.u32(0); // bfr = 0
    let bytes = enc.finish();
    let mut dec = Dec::new(&bytes);
    assert!(BierMsg::decode(&mut dec).is_err());
}

/// Writes the committed golden. Run explicitly after an intentional
/// format change:
/// `cargo test -p bier --test wire_roundtrip -- --ignored regen_golden`
#[test]
#[ignore]
fn regen_golden() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/bier_wire.bin");
    std::fs::write(path, encode_all()).unwrap();
}
