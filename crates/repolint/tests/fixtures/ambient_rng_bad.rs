// Fixture: ambient randomness fires wherever it appears.
fn bad() {
    let mut rng = rand::thread_rng();
    let _x: u64 = rand::random();
    let _ = rng;
}
