// Fixture: keyed lookups on a hash container stay legal in
// deterministic crates — only iteration is order-sensitive.
use std::collections::HashMap;

struct Memo {
    cache: HashMap<u64, u64>,
}

impl Memo {
    fn get(&self, k: u64) -> Option<&u64> {
        self.cache.get(&k)
    }
    fn put(&mut self, k: u64, v: u64) {
        self.cache.insert(k, v);
        self.cache.entry(k).or_insert(v);
    }
    fn has(&self, k: u64) -> bool {
        self.cache.contains_key(&k)
    }
}
