// The legal twin: justified allows, slab-key passing, and clones of
// cold types. Must produce zero findings in a hot-path module.
fn select(best: Route) -> (u32, Route) {
    let peer = 7u32;
    // The decision process hands ownership to loc; one clone per
    // *selection change*, not per event.
    let kept = best.clone(); // lint:allow(hot-alloc) — one clone per selection change, amortized by the delta log
    (peer, kept)
}

struct Table {
    star: Vec<u32>,
}

impl Table {
    fn lookup(&self, i: usize) -> u32 {
        // Slab keys are Copy: no entry clone on the lookup path.
        self.star[i]
    }
    fn names(&self) -> Vec<u32> {
        // Cold container clone: not a hot type.
        self.star.clone()
    }
}
