// Fixture: a naive fault plane — ambient RNG draws plus hash-order
// link-model iteration — must be fully covered by the determinism
// lints: chaos runs are only byte-replayable because `simnet::fault`
// draws from the engine's seeded RNG and keys models in ordered maps.
use std::collections::HashMap;

struct NaiveFaultPlane {
    models: HashMap<(u32, u32), f64>,
}

impl NaiveFaultPlane {
    fn roll(&self) -> bool {
        let mut rng = rand::thread_rng();
        let draw: f64 = rand::random();
        for (_link, loss) in self.models.iter() {
            if draw < *loss {
                let _ = &mut rng;
                return true;
            }
        }
        false
    }
}
