// Fixture: raw OS threads outside bench::par fire.
fn bad() {
    let h = std::thread::spawn(|| 1 + 1);
    let _ = h.join();
}
