// Fixture: forbidden tokens inside comments, strings, and raw strings
// must never fire. Instant::now, SystemTime::now, thread_rng — none of
// these count, and neither do the ones below.
fn clean() -> (&'static str, &'static str, char) {
    let a = "std::time::Instant::now() and rand::thread_rng()";
    let b = r#"for k in map.keys() { std::thread::spawn(SystemTime::now) }"#;
    let c = '[';
    (a, b, c)
}
