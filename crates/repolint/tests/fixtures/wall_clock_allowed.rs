// Fixture: a justified allow suppresses the finding.
fn allowed() {
    // lint:allow(wall-clock) — measuring host wall time for a log line only; no sim state derives from it
    let _t = std::time::Instant::now();
}
