pub fn tick() -> u64 {
    // lint:allow(wall-clock) — leftover: the Instant::now() call below was removed
    let steps = 1;
    steps
}
