pub enum BierMsg {
    Join(u32),
    Prune(u32),
}

// lint:allow(wire-variant-coverage) — host-side effect enum, never serialized
pub enum BierAction {
    Deliver(u32),
}

impl snapshot::Snapshot for BierMsg {
    fn encode(&self, enc: &mut snapshot::Enc) {
        match self {
            BierMsg::Join(g) => {
                enc.u8(0);
                enc.u32(*g);
            }
            BierMsg::Prune(g) => {
                enc.u8(1);
                enc.u32(*g);
            }
        }
    }
    fn decode(dec: &mut snapshot::Dec<'_>) -> Result<Self, snapshot::SnapError> {
        match dec.u8()? {
            0 => Ok(BierMsg::Join(dec.u32()?)),
            1 => Ok(BierMsg::Prune(dec.u32()?)),
            _ => Err(snapshot::SnapError::Invalid("BierMsg tag")),
        }
    }
}
