// Naive hot-path code: owned copies of arena-backed state on every
// event. Each site below must produce one `hot-alloc` finding.
fn select(best: Route) -> Route {
    let path: AsPath = best.as_path.clone();
    let again = best.clone();
    let _ = path;
    again
}

struct Table {
    entry: GroupEntry,
}

impl Table {
    fn duplicate(&self) -> GroupEntry {
        let e: GroupEntry = self.entry.clone_inner();
        let copy = GroupEntry::clone(&e);
        let _ = e;
        copy
    }
}
