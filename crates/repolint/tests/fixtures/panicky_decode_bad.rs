// Fixture: panics and indexing in a decode path fire, one per site.
fn decode(buf: &[u8]) -> u32 {
    let first = buf[0];
    if first == 0 {
        panic!("empty");
    }
    let n: Option<u32> = None;
    n.unwrap()
}
