pub struct Counters {
    pub sent: u64,
    // lint:allow(snapshot-field-coverage) — derived tally, recomputed from the log on decode
    pub lost: u64,
}

impl snapshot::Snapshot for Counters {
    fn encode(&self, enc: &mut snapshot::Enc) {
        enc.u64(self.sent);
    }
    fn decode(dec: &mut snapshot::Dec<'_>) -> Result<Self, snapshot::SnapError> {
        Ok(Counters {
            sent: dec.u64()?,
            lost: 0,
        })
    }
}
