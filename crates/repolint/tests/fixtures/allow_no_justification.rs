// Fixture: an allow with no justification is itself a finding and
// suppresses nothing.
fn bad() {
    // lint:allow(wall-clock)
    let _t = std::time::Instant::now();
}
