// Fixture: a naive snapshot encoder — hash-ordered iteration would
// make the "same state, same bytes" contract a coin flip, and a
// panicking decoder turns damaged bytes into a crash instead of a
// typed error. Every site fires.
use std::collections::HashMap;

struct NaiveEnc {
    buf: Vec<u8>,
    table: HashMap<u32, u64>,
}

fn encode_table(enc: &mut NaiveEnc) {
    for (k, v) in enc.table.iter() {
        enc.buf.extend_from_slice(&k.to_le_bytes());
        enc.buf.extend_from_slice(&v.to_le_bytes());
    }
}

fn decode_entry(buf: &[u8]) -> (u32, u64) {
    let k = u32::from_le_bytes(buf[0..4].try_into().unwrap());
    let v = u64::from_le_bytes(buf[4..12].try_into().unwrap());
    (k, v)
}
