pub enum BierMsg {
    Join(u32),
    Prune(u32),
    Refresh(u32),
}

pub enum BierAction {
    Deliver(u32),
}

pub const SNAP_KIND_BIER: u16 = 9;

impl snapshot::Snapshot for BierMsg {
    fn encode(&self, enc: &mut snapshot::Enc) {
        match self {
            BierMsg::Join(g) => {
                enc.u8(0);
                enc.u32(*g);
            }
            BierMsg::Prune(g) => {
                enc.u8(1);
                enc.u32(*g);
            }
            BierMsg::Refresh(g) => {
                enc.u8(2);
                enc.u32(*g);
            }
        }
    }
    fn decode(dec: &mut snapshot::Dec<'_>) -> Result<Self, snapshot::SnapError> {
        match dec.u8()? {
            0 => Ok(BierMsg::Join(dec.u32()?)),
            1 => Ok(BierMsg::Prune(dec.u32()?)),
            _ => Err(snapshot::SnapError::Invalid("BierMsg tag")),
        }
    }
}

pub fn checkpoint(msgs: &[BierMsg]) -> Vec<u8> {
    let mut enc = snapshot::Enc::with_header(SNAP_KIND_BIER);
    for m in msgs {
        m.encode(&mut enc);
    }
    enc.finish()
}
