// Fixture: iterating a hash container in a deterministic crate fires;
// one finding per iteration site.
use std::collections::{HashMap, HashSet};

struct Tables {
    routes: HashMap<u32, u32>,
}

fn bad(tables: &mut Tables, seen: HashSet<u32>) {
    for r in tables.routes.values() {
        let _ = r;
    }
    for s in &seen {
        let _ = s;
    }
    let extracted: Vec<u32> = seen.drain().collect();
    let _ = extracted;
}
