// Fixture: wall-clock reads in a sim crate must fire, one per site.
fn bad() {
    let _t = std::time::Instant::now();
    let _w = std::time::SystemTime::now();
}
