// Fixture: a justified allow suppresses a decode-path finding, and
// cfg(test) code is exempt without any allow.
fn encode_side(v: &[u8]) -> u8 {
    // lint:allow(panicky-decode) — encode side: length was validated by the caller against MAX_FRAME
    v[0]
}

#[cfg(test)]
mod tests {
    #[test]
    fn unit_tests_may_unwrap() {
        let x: Option<u8> = Some(1);
        assert_eq!(x.unwrap(), 1);
    }
}
