// Mutation twin of simnet's FaultStats snapshot impl: the
// `enc.u64(self.jittered);` line has been deleted from encode while
// decode still reads the field. snapshot-field-coverage must catch the
// missing encode reference at the field's definition line.
pub struct FaultStats {
    pub lost: u64,
    pub duplicated: u64,
    pub jittered: u64,
    pub dropped_at_down_node: u64,
}

impl snapshot::Snapshot for FaultStats {
    fn encode(&self, enc: &mut snapshot::Enc) {
        enc.u64(self.lost);
        enc.u64(self.duplicated);
        enc.u64(self.dropped_at_down_node);
    }
    fn decode(dec: &mut snapshot::Dec<'_>) -> Result<Self, snapshot::SnapError> {
        Ok(FaultStats {
            lost: dec.u64()?,
            duplicated: dec.u64()?,
            jittered: dec.u64()?,
            dropped_at_down_node: dec.u64()?,
        })
    }
}
