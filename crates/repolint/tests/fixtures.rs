//! Per-rule fixture tests: every rule proves it fires on known-bad
//! input (exact rule + line assertions) and stays silent on the
//! allowed/negative twin.

use repolint::lint_source;

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

/// (rule, line) pairs of the findings, sorted.
fn hits(rel_path: &str, name: &str) -> Vec<(String, usize)> {
    let mut v: Vec<(String, usize)> = lint_source(rel_path, &fixture(name))
        .into_iter()
        .map(|f| (f.rule.to_string(), f.line))
        .collect();
    v.sort();
    v
}

#[test]
fn wall_clock_fires_per_site() {
    assert_eq!(
        hits("crates/simnet/src/fixture.rs", "wall_clock_bad.rs"),
        vec![("wall-clock".into(), 3), ("wall-clock".into(), 4)]
    );
}

#[test]
fn wall_clock_justified_allow_is_silent() {
    assert_eq!(
        hits("crates/simnet/src/fixture.rs", "wall_clock_allowed.rs"),
        vec![]
    );
}

#[test]
fn unordered_iter_fires_on_iteration_only() {
    assert_eq!(
        hits("crates/simnet/src/fixture.rs", "unordered_iter_bad.rs"),
        vec![
            ("unordered-iter".into(), 10),
            ("unordered-iter".into(), 13),
            ("unordered-iter".into(), 16),
        ]
    );
}

#[test]
fn unordered_iter_keyed_lookup_is_legal() {
    assert_eq!(
        hits("crates/simnet/src/fixture.rs", "unordered_iter_allowed.rs"),
        vec![]
    );
}

#[test]
fn unordered_iter_scoped_to_deterministic_crates() {
    // Same bad source, non-deterministic crate: no findings.
    assert_eq!(
        hits("crates/repolint/src/fixture.rs", "unordered_iter_bad.rs"),
        vec![]
    );
}

#[test]
fn ambient_rng_fires_per_site() {
    assert_eq!(
        hits("crates/masc/src/fixture.rs", "ambient_rng_bad.rs"),
        vec![("ambient-rng".into(), 3), ("ambient-rng".into(), 4)]
    );
}

#[test]
fn fault_plane_code_is_covered_by_determinism_lints() {
    // The fault layer is the highest-risk spot for determinism rot: a
    // naive implementation (ambient RNG, hash-ordered link models)
    // would silently break byte-replayable chaos runs. Both lints
    // must fire on such code when it sits in the fault module.
    assert_eq!(
        hits("crates/simnet/src/fault.rs", "fault_plane_bad.rs"),
        vec![
            ("ambient-rng".into(), 13),
            ("ambient-rng".into(), 14),
            ("unordered-iter".into(), 15),
        ]
    );
}

#[test]
fn raw_spawn_fires_outside_bench_par() {
    assert_eq!(
        hits("crates/core/src/fixture.rs", "raw_spawn_bad.rs"),
        vec![("raw-spawn".into(), 3)]
    );
}

#[test]
fn raw_spawn_exempt_in_bench_par() {
    assert_eq!(hits("crates/bench/src/par.rs", "raw_spawn_bad.rs"), vec![]);
}

#[test]
fn panicky_decode_fires_per_site() {
    assert_eq!(
        hits("crates/bgp/src/msg.rs", "panicky_decode_bad.rs"),
        vec![
            ("panicky-decode".into(), 3),
            ("panicky-decode".into(), 5),
            ("panicky-decode".into(), 8),
        ]
    );
}

#[test]
fn panicky_decode_scoped_to_decode_paths() {
    // Same source outside a decode module: silent.
    assert_eq!(
        hits("crates/bgp/src/speaker.rs", "panicky_decode_bad.rs"),
        vec![]
    );
}

#[test]
fn panicky_decode_allow_and_cfg_test_are_silent() {
    assert_eq!(
        hits("crates/bgp/src/msg.rs", "panicky_decode_allowed.rs"),
        vec![]
    );
}

#[test]
fn hot_alloc_fires_per_site() {
    assert_eq!(
        hits("crates/bgp/src/rib.rs", "hot_alloc_bad.rs"),
        vec![
            ("hot-alloc".into(), 4),
            ("hot-alloc".into(), 5),
            ("hot-alloc".into(), 17),
        ]
    );
}

#[test]
fn hot_alloc_scoped_to_hot_paths() {
    // Same naive source in a cold module: silent.
    assert_eq!(
        hits("crates/bgp/src/speaker.rs", "hot_alloc_bad.rs"),
        vec![]
    );
}

#[test]
fn hot_alloc_allow_and_cold_clones_are_silent() {
    assert_eq!(
        hits("crates/bgmp/src/router.rs", "hot_alloc_allowed.rs"),
        vec![]
    );
}

#[test]
fn allow_without_justification_is_a_finding_and_suppresses_nothing() {
    assert_eq!(
        hits("crates/simnet/src/fixture.rs", "allow_no_justification.rs"),
        vec![("bad-allow".into(), 4), ("wall-clock".into(), 5)]
    );
}

#[test]
fn tokens_in_comments_and_strings_never_fire() {
    // Deterministic crate + decode path scoping at once: strongest
    // rule set, still silent.
    assert_eq!(hits("crates/bgp/src/msg.rs", "lexer_negative.rs"), vec![]);
}

#[test]
fn snapshot_codec_is_covered_by_decode_and_determinism_lints() {
    // A naive encoder iterating a HashMap breaks the "same state,
    // same bytes" snapshot contract; a panicking decoder turns a
    // damaged checkpoint into a crash. The codec module is both a
    // deterministic-crate member and a decode path, so every site
    // fires.
    assert_eq!(
        hits("crates/snapshot/src/codec.rs", "snapshot_encoder_bad.rs"),
        vec![
            ("panicky-decode".into(), 20),
            ("panicky-decode".into(), 20),
            ("panicky-decode".into(), 21),
            ("panicky-decode".into(), 21),
            ("unordered-iter".into(), 13),
        ]
    );
}

#[test]
fn snapshot_crate_is_deterministic_outside_the_codec_too() {
    // Same source elsewhere in the snapshot crate: the determinism
    // lint still applies, the decode-path lint does not.
    assert_eq!(
        hits("crates/snapshot/src/bisect.rs", "snapshot_encoder_bad.rs"),
        vec![("unordered-iter".into(), 13)]
    );
}

#[test]
fn snapshot_field_coverage_fires_at_the_field_line() {
    assert_eq!(
        hits("crates/simnet/src/fixture.rs", "snapshot_field_bad.rs"),
        vec![("snapshot-field-coverage".into(), 3)]
    );
}

#[test]
fn snapshot_field_coverage_justified_allow_is_silent() {
    assert_eq!(
        hits("crates/simnet/src/fixture.rs", "snapshot_field_allowed.rs"),
        vec![]
    );
}

#[test]
fn snapshot_field_coverage_catches_a_deleted_encode_line() {
    // The seeded mutation: a FaultStats-style impl whose
    // `enc.u64(self.jittered)` line was deleted while decode still
    // reads the field. The finding lands on the field definition.
    assert_eq!(
        hits("crates/simnet/src/fixture.rs", "snapshot_field_mutation.rs"),
        vec![("snapshot-field-coverage".into(), 8)]
    );
}

#[test]
fn wire_variant_coverage_fires_in_a_future_crate() {
    // The fixture lives at a `bier` crate path that does not exist
    // yet: scope is shape-driven (`*/src/msg.rs` + any Snapshot impl),
    // so a new crate is covered the day its first codec lands. Four
    // findings: variant `Refresh` missing from decode (line 4), the
    // codec-less `BierAction` enum (line 7), `SNAP_KIND_BIER` never
    // checked by a dec.header (line 11), and written tag 2 matched by
    // no decode arm (anchored at the decode fn, line 30).
    assert_eq!(
        hits("crates/bier/src/msg.rs", "wire_variant_bad.rs"),
        vec![
            ("wire-variant-coverage".into(), 4),
            ("wire-variant-coverage".into(), 7),
            ("wire-variant-coverage".into(), 11),
            ("wire-variant-coverage".into(), 30),
        ]
    );
}

#[test]
fn wire_variant_coverage_symmetric_codec_and_allow_are_silent() {
    assert_eq!(
        hits("crates/bier/src/msg.rs", "wire_variant_allowed.rs"),
        vec![]
    );
}

#[test]
fn stale_allow_fires_at_the_dead_comment() {
    assert_eq!(
        hits("crates/simnet/src/fixture.rs", "stale_allow_bad.rs"),
        vec![("stale-allow".into(), 2)]
    );
}

#[test]
fn coverage_pairs_items_across_files_of_a_crate() {
    // The struct lives in one file, its impl in another — the pairing
    // is crate-wide, mirroring simnet (types in engine.rs/fault.rs,
    // impls in snap.rs).
    let def = "pub struct Counters {\n    pub sent: u64,\n    pub lost: u64,\n}\n";
    let imp = fixture("snapshot_field_bad.rs");
    let imp_only: String = imp.lines().skip(5).map(|l| format!("{l}\n")).collect();
    let findings = repolint::lint_files(&[
        ("crates/simnet/src/types.rs".to_string(), def.to_string()),
        ("crates/simnet/src/snap.rs".to_string(), imp_only),
    ]);
    let v: Vec<(String, String, usize)> = findings
        .into_iter()
        .map(|f| (f.rule.to_string(), f.path, f.line))
        .collect();
    assert_eq!(
        v,
        vec![(
            "snapshot-field-coverage".into(),
            "crates/simnet/src/types.rs".into(),
            3
        )]
    );
}
