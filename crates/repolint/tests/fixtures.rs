//! Per-rule fixture tests: every rule proves it fires on known-bad
//! input (exact rule + line assertions) and stays silent on the
//! allowed/negative twin.

use repolint::lint_source;

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

/// (rule, line) pairs of the findings, sorted.
fn hits(rel_path: &str, name: &str) -> Vec<(String, usize)> {
    let mut v: Vec<(String, usize)> = lint_source(rel_path, &fixture(name))
        .into_iter()
        .map(|f| (f.rule.to_string(), f.line))
        .collect();
    v.sort();
    v
}

#[test]
fn wall_clock_fires_per_site() {
    assert_eq!(
        hits("crates/simnet/src/fixture.rs", "wall_clock_bad.rs"),
        vec![("wall-clock".into(), 3), ("wall-clock".into(), 4)]
    );
}

#[test]
fn wall_clock_justified_allow_is_silent() {
    assert_eq!(
        hits("crates/simnet/src/fixture.rs", "wall_clock_allowed.rs"),
        vec![]
    );
}

#[test]
fn unordered_iter_fires_on_iteration_only() {
    assert_eq!(
        hits("crates/simnet/src/fixture.rs", "unordered_iter_bad.rs"),
        vec![
            ("unordered-iter".into(), 10),
            ("unordered-iter".into(), 13),
            ("unordered-iter".into(), 16),
        ]
    );
}

#[test]
fn unordered_iter_keyed_lookup_is_legal() {
    assert_eq!(
        hits("crates/simnet/src/fixture.rs", "unordered_iter_allowed.rs"),
        vec![]
    );
}

#[test]
fn unordered_iter_scoped_to_deterministic_crates() {
    // Same bad source, non-deterministic crate: no findings.
    assert_eq!(
        hits("crates/repolint/src/fixture.rs", "unordered_iter_bad.rs"),
        vec![]
    );
}

#[test]
fn ambient_rng_fires_per_site() {
    assert_eq!(
        hits("crates/masc/src/fixture.rs", "ambient_rng_bad.rs"),
        vec![("ambient-rng".into(), 3), ("ambient-rng".into(), 4)]
    );
}

#[test]
fn fault_plane_code_is_covered_by_determinism_lints() {
    // The fault layer is the highest-risk spot for determinism rot: a
    // naive implementation (ambient RNG, hash-ordered link models)
    // would silently break byte-replayable chaos runs. Both lints
    // must fire on such code when it sits in the fault module.
    assert_eq!(
        hits("crates/simnet/src/fault.rs", "fault_plane_bad.rs"),
        vec![
            ("ambient-rng".into(), 13),
            ("ambient-rng".into(), 14),
            ("unordered-iter".into(), 15),
        ]
    );
}

#[test]
fn raw_spawn_fires_outside_bench_par() {
    assert_eq!(
        hits("crates/core/src/fixture.rs", "raw_spawn_bad.rs"),
        vec![("raw-spawn".into(), 3)]
    );
}

#[test]
fn raw_spawn_exempt_in_bench_par() {
    assert_eq!(hits("crates/bench/src/par.rs", "raw_spawn_bad.rs"), vec![]);
}

#[test]
fn panicky_decode_fires_per_site() {
    assert_eq!(
        hits("crates/bgp/src/msg.rs", "panicky_decode_bad.rs"),
        vec![
            ("panicky-decode".into(), 3),
            ("panicky-decode".into(), 5),
            ("panicky-decode".into(), 8),
        ]
    );
}

#[test]
fn panicky_decode_scoped_to_decode_paths() {
    // Same source outside a decode module: silent.
    assert_eq!(
        hits("crates/bgp/src/speaker.rs", "panicky_decode_bad.rs"),
        vec![]
    );
}

#[test]
fn panicky_decode_allow_and_cfg_test_are_silent() {
    assert_eq!(
        hits("crates/bgp/src/msg.rs", "panicky_decode_allowed.rs"),
        vec![]
    );
}

#[test]
fn hot_alloc_fires_per_site() {
    assert_eq!(
        hits("crates/bgp/src/rib.rs", "hot_alloc_bad.rs"),
        vec![
            ("hot-alloc".into(), 4),
            ("hot-alloc".into(), 5),
            ("hot-alloc".into(), 17),
        ]
    );
}

#[test]
fn hot_alloc_scoped_to_hot_paths() {
    // Same naive source in a cold module: silent.
    assert_eq!(
        hits("crates/bgp/src/speaker.rs", "hot_alloc_bad.rs"),
        vec![]
    );
}

#[test]
fn hot_alloc_allow_and_cold_clones_are_silent() {
    assert_eq!(
        hits("crates/bgmp/src/router.rs", "hot_alloc_allowed.rs"),
        vec![]
    );
}

#[test]
fn allow_without_justification_is_a_finding_and_suppresses_nothing() {
    assert_eq!(
        hits("crates/simnet/src/fixture.rs", "allow_no_justification.rs"),
        vec![("bad-allow".into(), 4), ("wall-clock".into(), 5)]
    );
}

#[test]
fn tokens_in_comments_and_strings_never_fire() {
    // Deterministic crate + decode path scoping at once: strongest
    // rule set, still silent.
    assert_eq!(hits("crates/bgp/src/msg.rs", "lexer_negative.rs"), vec![]);
}

#[test]
fn snapshot_codec_is_covered_by_decode_and_determinism_lints() {
    // A naive encoder iterating a HashMap breaks the "same state,
    // same bytes" snapshot contract; a panicking decoder turns a
    // damaged checkpoint into a crash. The codec module is both a
    // deterministic-crate member and a decode path, so every site
    // fires.
    assert_eq!(
        hits("crates/snapshot/src/codec.rs", "snapshot_encoder_bad.rs"),
        vec![
            ("panicky-decode".into(), 20),
            ("panicky-decode".into(), 20),
            ("panicky-decode".into(), 21),
            ("panicky-decode".into(), 21),
            ("unordered-iter".into(), 13),
        ]
    );
}

#[test]
fn snapshot_crate_is_deterministic_outside_the_codec_too() {
    // Same source elsewhere in the snapshot crate: the determinism
    // lint still applies, the decode-path lint does not.
    assert_eq!(
        hits("crates/snapshot/src/bisect.rs", "snapshot_encoder_bad.rs"),
        vec![("unordered-iter".into(), 13)]
    );
}
