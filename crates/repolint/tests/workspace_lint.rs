//! The linter's own tier-1 hook: `cargo test -p repolint` lints every
//! crate in the workspace and fails on any unsuppressed finding.

use std::path::Path;

#[test]
fn workspace_has_zero_unsuppressed_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("repolint lives at <workspace>/crates/repolint");
    let findings = repolint::lint_workspace(root).expect("workspace walk");
    assert!(
        findings.is_empty(),
        "repolint findings (fix them or add `// lint:allow(rule) — justification`):\n{}",
        repolint::render_human(&findings)
    );
}
