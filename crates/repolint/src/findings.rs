//! Finding type plus human and JSON renderings.

/// Rule identifiers, in severity-agnostic registry order.
pub const RULES: &[&str] = &[
    "wall-clock",
    "unordered-iter",
    "ambient-rng",
    "raw-spawn",
    "panicky-decode",
    "hot-alloc",
    "snapshot-field-coverage",
    "wire-variant-coverage",
];

/// Pseudo-rule reported for malformed `lint:allow` comments; never
/// itself suppressible.
pub const BAD_ALLOW: &str = "bad-allow";

/// Pseudo-rule reported for a valid `lint:allow` that suppressed zero
/// findings in the run — a suppression that has rotted. Like
/// [`BAD_ALLOW`] it is not itself suppressible (it is absent from
/// [`RULES`]): the fix is deleting the dead comment, not allowing it.
pub const STALE_ALLOW: &str = "stale-allow";

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// Rule id (one of [`RULES`] or [`BAD_ALLOW`]).
    pub rule: &'static str,
    /// Explanation with remedy hint.
    pub message: String,
}

impl Finding {
    /// `path:line: [rule] message` — one line, terminal-clickable.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Renders findings for humans, one per line, stable order.
pub fn render_human(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&f.render());
        out.push('\n');
    }
    out
}

/// Output format version. v1 was a bare findings array; v2 wraps it in
/// an object with an explicit `schema` field so CI can assert it is
/// consuming the format it expects.
pub const JSON_SCHEMA_VERSION: u32 = 2;

/// Renders findings as a JSON object `{"schema":2,"findings":[...]}`
/// (std-only writer; escapes per RFC 8259 minimal rules).
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = format!("{{\"schema\":{JSON_SCHEMA_VERSION},\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {\"rule\":");
        json_string(&mut out, f.rule);
        out.push_str(",\"path\":");
        json_string(&mut out, &f.path);
        out.push_str(&format!(",\"line\":{}", f.line));
        out.push_str(",\"message\":");
        json_string(&mut out, &f.message);
        out.push('}');
    }
    out.push_str(if findings.is_empty() {
        "]}\n"
    } else {
        "\n]}\n"
    });
    out
}

fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes() {
        let f = vec![Finding {
            path: "a\"b.rs".into(),
            line: 3,
            rule: "wall-clock",
            message: "tab\there".into(),
        }];
        let j = render_json(&f);
        assert!(j.contains("a\\\"b.rs"));
        assert!(j.contains("tab\\there"));
    }

    #[test]
    fn empty_json_is_versioned_object() {
        assert_eq!(render_json(&[]), "{\"schema\":2,\"findings\":[]}\n");
    }
}
