//! repolint — workspace determinism & robustness lints.
//!
//! The experiment harness promises byte-identical CSV/JSON at any
//! `--threads`, the protocol decode paths promise never to panic on
//! peer-controlled input, and the snapshot layer promises lossless
//! checkpoint/resume. All three contracts are conventions the compiler
//! cannot check, so this crate checks them: a small Rust source lexer
//! ([`lexer`]) plus a token-level rule engine ([`rules`]) and an
//! item-level coverage analysis ([`parser`] + [`coverage`]) walk
//! `crates/**/*.rs` and report violations with `file:line` spans,
//! suppressible only via `// lint:allow(rule) — justification` comments
//! ([`allow`]). An allow that suppresses nothing is itself reported
//! (`stale-allow`), so suppressions cannot rot.
//!
//! Wired in twice: as a tier-1 integration test (the root package and
//! `cargo test -p repolint` both lint the whole workspace) and as a CI
//! job (`cargo run -p repolint`, deny-by-default, JSON artifact on
//! failure). See DESIGN.md §"Determinism & robustness contract".

pub mod allow;
pub mod coverage;
pub mod findings;
pub mod lexer;
pub mod parser;
pub mod rules;

use std::path::{Path, PathBuf};

pub use findings::{
    render_human, render_json, Finding, BAD_ALLOW, JSON_SCHEMA_VERSION, RULES, STALE_ALLOW,
};

/// Lints a set of files as one unit. `path`s are workspace-relative and
/// `/`-separated (they select which rules apply). Linting is
/// whole-set because the coverage rules pair items across files of a
/// crate (a `Snapshot` impl in `snap.rs` covers a struct defined in
/// `engine.rs`), and because `stale-allow` needs the full finding set
/// before it can call an allow dead.
pub fn lint_files(files: &[(String, String)]) -> Vec<Finding> {
    let lexed: Vec<lexer::Lexed> = files.iter().map(|(_, src)| lexer::lex(src)).collect();
    let items: Vec<parser::Items> = lexed.iter().map(|l| parser::parse_items(&l.code)).collect();

    // Per-file token rules, then cross-file coverage rules, pooled.
    let mut pool: Vec<Finding> = Vec::new();
    for ((path, _), lx) in files.iter().zip(&lexed) {
        pool.extend(rules::lint_code(path, lx));
    }
    let ctxs: Vec<coverage::FileCtx<'_>> = files
        .iter()
        .zip(lexed.iter().zip(items.iter()))
        .map(|((path, _), (lx, it))| coverage::FileCtx {
            path,
            lexed: lx,
            items: it,
        })
        .collect();
    pool.extend(coverage::lint_coverage(&ctxs));

    // Apply allows file by file, tracking which allows earned their
    // keep; a valid allow that suppressed nothing becomes a finding.
    let mut out = Vec::new();
    for ((path, _), lx) in files.iter().zip(&lexed) {
        let (allows, mut bad) = allow::collect_allows(path, lx);
        bad.retain(|f| !lx.is_test_line(f.line));
        let mine: Vec<Finding> = pool.iter().filter(|f| &f.path == path).cloned().collect();
        let (kept, used) = allow::apply_allows(mine, &allows);
        out.extend(kept);
        out.append(&mut bad);
        for (a, n) in allows.iter().zip(used) {
            if n == 0 && !lx.is_test_line(a.comment_line) {
                out.push(Finding {
                    path: path.clone(),
                    line: a.comment_line,
                    rule: STALE_ALLOW,
                    message: format!(
                        "lint:allow({}) suppressed no findings in this run — delete the \
                         dead suppression (or fix the rule name/placement if it was \
                         meant to catch something)",
                        a.rules.join(", ")
                    ),
                });
            }
        }
    }
    out.sort();
    out
}

/// Lints one file's source text (single-file view of [`lint_files`]).
pub fn lint_source(path: &str, src: &str) -> Vec<Finding> {
    lint_files(&[(path.to_string(), src.to_string())])
}

/// Lints every non-test Rust source under `<root>/crates`. Skips
/// `tests/`, `benches/`, `examples/`, `fixtures/`, and `target/`
/// directories (unit-test modules inside linted files are excluded by
/// `#[cfg(test)]` detection instead). Findings are sorted by path then
/// line; the walk itself is sorted, so output is deterministic.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let crates_dir = root.join("crates");
    let mut paths = Vec::new();
    collect_rs_files(&crates_dir, &mut paths)?;
    paths.sort();
    let mut files = Vec::new();
    for f in paths {
        let src = std::fs::read_to_string(&f)?;
        let rel = f
            .strip_prefix(root)
            .unwrap_or(&f)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        files.push((rel, src));
    }
    Ok(lint_files(&files))
}

const SKIP_DIRS: &[&str] = &["tests", "benches", "examples", "fixtures", "target"];

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            if SKIP_DIRS.contains(&name.as_str()) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_with_justification_suppresses() {
        let src = "fn f() {\n    let t = std::time::Instant::now(); // lint:allow(wall-clock) — test scaffolding outside the sim\n}\n";
        assert!(lint_source("crates/masc/src/x.rs", src).is_empty());
    }

    #[test]
    fn allow_without_justification_suppresses_nothing() {
        let src = "// lint:allow(wall-clock)\nlet t = std::time::Instant::now();\n";
        let f = lint_source("crates/masc/src/x.rs", src);
        let rules: Vec<&str> = f.iter().map(|f| f.rule).collect();
        assert!(rules.contains(&"bad-allow"), "{f:?}");
        assert!(rules.contains(&"wall-clock"), "{f:?}");
    }

    #[test]
    fn allow_for_wrong_rule_does_not_suppress() {
        let src =
            "let t = std::time::Instant::now(); // lint:allow(ambient-rng) — wrong rule named\n";
        let f = lint_source("crates/masc/src/x.rs", src);
        // The wall-clock finding survives, and the useless allow is
        // itself reported as stale.
        let rules: Vec<&str> = f.iter().map(|f| f.rule).collect();
        assert_eq!(rules, vec![STALE_ALLOW, "wall-clock"], "{f:?}");
    }

    #[test]
    fn stale_allow_is_reported_at_the_comment_line() {
        let src = "// lint:allow(wall-clock) — leftover from a deleted call\nlet t = 1;\n";
        let f = lint_source("crates/masc/src/x.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, STALE_ALLOW);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn live_allow_is_not_stale() {
        let src = "fn f() {\n    let t = std::time::Instant::now(); // lint:allow(wall-clock) — scaffolding\n}\n";
        assert!(lint_source("crates/masc/src/x.rs", src).is_empty());
    }

    #[test]
    fn stale_allow_in_cfg_test_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    // lint:allow(wall-clock) — harmless here\n    fn f() {}\n}\n";
        assert!(lint_source("crates/masc/src/x.rs", src).is_empty());
    }

    #[test]
    fn stale_allow_is_not_suppressible() {
        // An allow cannot name `stale-allow`: it is not in RULES, so
        // this is a bad-allow.
        let src = "// lint:allow(stale-allow) — trying to allow the auditor\nlet t = 1;\n";
        let f = lint_source("crates/masc/src/x.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, BAD_ALLOW);
    }
}
