//! repolint — workspace determinism & robustness lints.
//!
//! The experiment harness promises byte-identical CSV/JSON at any
//! `--threads`, and the protocol decode paths promise never to panic on
//! peer-controlled input. Both contracts are conventions the compiler
//! cannot check, so this crate checks them: a small Rust source lexer
//! ([`lexer`]) plus a rule engine ([`rules`]) walk `crates/**/*.rs` and
//! report violations with `file:line` spans, suppressible only via
//! `// lint:allow(rule) — justification` comments ([`allow`]).
//!
//! Wired in twice: as a tier-1 integration test (the root package and
//! `cargo test -p repolint` both lint the whole workspace) and as a CI
//! job (`cargo run -p repolint`, deny-by-default, JSON artifact on
//! failure). See DESIGN.md §"Determinism & robustness contract".

pub mod allow;
pub mod findings;
pub mod lexer;
pub mod rules;

use std::path::{Path, PathBuf};

pub use findings::{render_human, render_json, Finding, BAD_ALLOW, RULES};

/// Lints one file's source text. `path` is the workspace-relative,
/// `/`-separated path (it selects which rules apply).
pub fn lint_source(path: &str, src: &str) -> Vec<Finding> {
    let lexed = lexer::lex(src);
    let raw = rules::lint_code(path, &lexed);
    let (allows, mut bad) = allow::collect_allows(path, &lexed);
    bad.retain(|f| !lexed.is_test_line(f.line));
    let mut out = allow::apply_allows(raw, &allows);
    out.append(&mut bad);
    out.sort();
    out
}

/// Lints every non-test Rust source under `<root>/crates`. Skips
/// `tests/`, `benches/`, `examples/`, `fixtures/`, and `target/`
/// directories (unit-test modules inside linted files are excluded by
/// `#[cfg(test)]` detection instead). Findings are sorted by path then
/// line; the walk itself is sorted, so output is deterministic.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let crates_dir = root.join("crates");
    let mut files = Vec::new();
    collect_rs_files(&crates_dir, &mut files)?;
    files.sort();
    let mut out = Vec::new();
    for f in files {
        let src = std::fs::read_to_string(&f)?;
        let rel = f
            .strip_prefix(root)
            .unwrap_or(&f)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        out.extend(lint_source(&rel, &src));
    }
    out.sort();
    Ok(out)
}

const SKIP_DIRS: &[&str] = &["tests", "benches", "examples", "fixtures", "target"];

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            if SKIP_DIRS.contains(&name.as_str()) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_with_justification_suppresses() {
        let src = "fn f() {\n    let t = std::time::Instant::now(); // lint:allow(wall-clock) — test scaffolding outside the sim\n}\n";
        assert!(lint_source("crates/masc/src/x.rs", src).is_empty());
    }

    #[test]
    fn allow_without_justification_suppresses_nothing() {
        let src = "// lint:allow(wall-clock)\nlet t = std::time::Instant::now();\n";
        let f = lint_source("crates/masc/src/x.rs", src);
        let rules: Vec<&str> = f.iter().map(|f| f.rule).collect();
        assert!(rules.contains(&"bad-allow"), "{f:?}");
        assert!(rules.contains(&"wall-clock"), "{f:?}");
    }

    #[test]
    fn allow_for_wrong_rule_does_not_suppress() {
        let src =
            "let t = std::time::Instant::now(); // lint:allow(ambient-rng) — wrong rule named\n";
        let f = lint_source("crates/masc/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "wall-clock");
    }
}
