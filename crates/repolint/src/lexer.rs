//! A minimal Rust source lexer: just enough to know, for every byte of
//! a source file, whether it is code, comment, or literal content.
//!
//! The rule engine ([`crate::rules`]) scans the *code view* — the
//! original source with comment bodies and string/char literal contents
//! blanked to spaces — so a forbidden token inside a doc comment or a
//! string literal never fires. Newlines are preserved everywhere, so
//! byte offsets and line numbers in the code view match the source
//! exactly. Comments are collected separately (with line and
//! trailing/own-line position) for `lint:allow` processing.
//!
//! Handled syntax: line comments (`//`, `///`, `//!`), nested block
//! comments, string literals with escapes, byte strings, raw strings
//! (`r"…"`, `r#"…"#`, any hash count, plus `br`/`cr` prefixes), raw
//! identifiers (`r#match`), char and byte-char literals, and the
//! char-literal/lifetime ambiguity (`'a'` vs `<'a>`).

/// One comment from the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line of the comment's first character.
    pub line: usize,
    /// Comment text *without* the `//` / `/*` markers, trimmed.
    pub text: String,
    /// True if non-whitespace source precedes it on the same line
    /// (a trailing comment annotates its own line; an own-line comment
    /// annotates the next code line).
    pub trailing: bool,
}

/// Lexed view of one source file.
#[derive(Debug)]
pub struct Lexed {
    /// Source with comments and literal contents blanked to spaces.
    /// Always the same byte length as the input, with identical
    /// newline positions; always valid ASCII-compatible UTF-8.
    pub code: String,
    /// All comments, in source order.
    pub comments: Vec<Comment>,
    /// For each 1-based line, true if the line is inside a
    /// `#[cfg(test)]` item (unit tests compiled out of real builds).
    pub test_lines: Vec<bool>,
}

impl Lexed {
    /// 1-based line containing byte offset `pos` of the code view.
    pub fn line_of(&self, pos: usize) -> usize {
        self.code.as_bytes()[..pos]
            .iter()
            .filter(|&&b| b == b'\n')
            .count()
            + 1
    }

    /// True if the (1-based) line is inside `#[cfg(test)]` code.
    pub fn is_test_line(&self, line: usize) -> bool {
        self.test_lines.get(line).copied().unwrap_or(false)
    }
}

fn is_ident_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

/// Lexes `src` into a code view plus comment list.
pub fn lex(src: &str) -> Lexed {
    let bytes = src.as_bytes();
    let mut code = bytes.to_vec();
    let mut comments = Vec::new();
    let mut line = 1usize;
    let mut line_has_code = false;
    let mut i = 0usize;

    // Blanks `code[from..to]`, preserving newlines.
    let blank = |code: &mut [u8], from: usize, to: usize| {
        for b in &mut code[from..to] {
            if *b != b'\n' {
                *b = b' ';
            }
        }
    };

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                line_has_code = false;
                i += 1;
            }
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                comments.push(Comment {
                    line,
                    text: src[start + 2..i].trim().to_string(),
                    trailing: line_has_code,
                });
                blank(&mut code, start, i);
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = i;
                let start_line = line;
                let trailing = line_has_code;
                let mut depth = 1usize;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                let end_text = i.saturating_sub(2).max(start + 2);
                comments.push(Comment {
                    line: start_line,
                    text: src[start + 2..end_text].trim().to_string(),
                    trailing,
                });
                blank(&mut code, start, i);
                line_has_code = false;
            }
            b'"' => {
                i = consume_string(bytes, i, &mut line, &mut code, &blank);
                line_has_code = true;
            }
            b'\'' => {
                i = consume_quote_or_lifetime(bytes, i, &mut code, &blank);
                line_has_code = true;
            }
            _ if is_ident_start(b) => {
                let start = i;
                while i < bytes.len() && is_ident_char(bytes[i]) {
                    i += 1;
                }
                let ident = &bytes[start..i];
                // Raw / byte / C string prefixes, raw identifiers, and
                // byte-char literals.
                match ident {
                    b"r" | b"br" | b"cr" => {
                        if let Some(end) = raw_string_end(bytes, i) {
                            let from = i;
                            i = end;
                            line += bytes[from..i].iter().filter(|&&c| c == b'\n').count();
                            blank(&mut code, from, i);
                        } else if ident == b"r" && bytes.get(i) == Some(&b'#') {
                            // Raw identifier `r#name`.
                            i += 1;
                            while i < bytes.len() && is_ident_char(bytes[i]) {
                                i += 1;
                            }
                        }
                    }
                    b"b" | b"c" => {
                        if bytes.get(i) == Some(&b'"') {
                            i = consume_string(bytes, i, &mut line, &mut code, &blank);
                        } else if ident == b"b" && bytes.get(i) == Some(&b'\'') {
                            i = consume_quote_or_lifetime(bytes, i, &mut code, &blank);
                        }
                    }
                    _ => {}
                }
                line_has_code = true;
            }
            _ => {
                if !b.is_ascii_whitespace() {
                    line_has_code = true;
                }
                i += 1;
            }
        }
    }

    // SAFETY of from_utf8: blanking replaces bytes with ASCII spaces
    // only inside comment/literal spans, each of which starts and ends
    // on ASCII delimiters; any multi-byte sequence is replaced wholly.
    let code = String::from_utf8(code)
        .unwrap_or_else(|e| String::from_utf8_lossy(e.as_bytes()).into_owned());
    let test_lines = mark_test_lines(&code);
    Lexed {
        code,
        comments,
        test_lines,
    }
}

/// Consumes a `"…"` string starting at the opening quote; returns the
/// index just past the closing quote. Blanks the contents (quotes kept).
fn consume_string(
    bytes: &[u8],
    open: usize,
    line: &mut usize,
    code: &mut [u8],
    blank: &impl Fn(&mut [u8], usize, usize),
) -> usize {
    let mut i = open + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            b'"' => {
                i += 1;
                break;
            }
            _ => i += 1,
        }
    }
    blank(code, open + 1, (i.max(open + 2)) - 1);
    i
}

/// At a `'`: either a char literal (blank its contents) or a lifetime
/// (leave as code). Returns the index just past what was consumed.
fn consume_quote_or_lifetime(
    bytes: &[u8],
    open: usize,
    code: &mut [u8],
    blank: &impl Fn(&mut [u8], usize, usize),
) -> usize {
    let next = match bytes.get(open + 1) {
        Some(&n) => n,
        None => return open + 1,
    };
    if next == b'\\' {
        // Escaped char literal: '\n', '\'', '\u{..}'.
        let mut i = open + 2;
        while i < bytes.len() && bytes[i] != b'\'' {
            i += 1;
        }
        let end = (i + 1).min(bytes.len());
        blank(code, open + 1, end.saturating_sub(1));
        return end;
    }
    if is_ident_char(next) || next == b' ' {
        // 'a' is a char literal iff a closing quote follows the single
        // char; otherwise it's a lifetime ('a, 'static).
        let mut j = open + 2;
        // Multi-byte UTF-8 scalar in a char literal.
        while j < bytes.len() && (bytes[j] & 0xC0) == 0x80 {
            j += 1;
        }
        if bytes.get(j) == Some(&b'\'') {
            blank(code, open + 1, j);
            return j + 1;
        }
        return open + 1; // lifetime: leave the ident as code
    }
    // Non-ident single char: '(' , '[' etc. — a char literal.
    let mut j = open + 2;
    while j < bytes.len() && (bytes[j] & 0xC0) == 0x80 {
        j += 1;
    }
    if bytes.get(j) == Some(&b'\'') {
        blank(code, open + 1, j);
        return j + 1;
    }
    open + 1
}

/// If `bytes[from..]` opens a raw string (`#`* then `"`), returns the
/// index just past its closing delimiter.
fn raw_string_end(bytes: &[u8], from: usize) -> Option<usize> {
    let mut i = from;
    let mut hashes = 0usize;
    while bytes.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    if bytes.get(i) != Some(&b'"') {
        return None;
    }
    i += 1;
    while i < bytes.len() {
        if bytes[i] == b'"' {
            let mut h = 0usize;
            while h < hashes && bytes.get(i + 1 + h) == Some(&b'#') {
                h += 1;
            }
            if h == hashes {
                return Some(i + 1 + hashes);
            }
        }
        i += 1;
    }
    Some(bytes.len())
}

/// Marks lines covered by `#[cfg(test)]` items (attribute through the
/// item's closing brace or semicolon).
fn mark_test_lines(code: &str) -> Vec<bool> {
    let bytes = code.as_bytes();
    let total_lines = code.lines().count() + 2;
    let mut marks = vec![false; total_lines + 1];
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i] != b'#' {
            i += 1;
            continue;
        }
        let (content, after) = match attr_content(bytes, i) {
            Some(x) => x,
            None => {
                i += 1;
                continue;
            }
        };
        let compact: String = content.chars().filter(|c| !c.is_whitespace()).collect();
        if compact != "cfg(test)" {
            i = after;
            continue;
        }
        let start_line = line_at(bytes, i);
        // Skip any further attributes, then find the item's extent.
        let mut j = after;
        loop {
            while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                j += 1;
            }
            if bytes.get(j) == Some(&b'#') {
                match attr_content(bytes, j) {
                    Some((_, a)) => j = a,
                    None => break,
                }
            } else {
                break;
            }
        }
        let mut depth = 0usize;
        let mut end = j;
        while end < bytes.len() {
            match bytes[end] {
                b'{' => depth += 1,
                b'}' => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        break;
                    }
                }
                b';' if depth == 0 => break,
                _ => {}
            }
            end += 1;
        }
        let end_line = line_at(bytes, end.min(bytes.len().saturating_sub(1)));
        for mark in marks
            .iter_mut()
            .take(end_line.min(total_lines) + 1)
            .skip(start_line)
        {
            *mark = true;
        }
        i = end.max(after);
    }
    marks
}

/// Parses `#[ … ]` at `at`; returns (content, index past `]`).
fn attr_content(bytes: &[u8], at: usize) -> Option<(&str, usize)> {
    if bytes.get(at) != Some(&b'#') {
        return None;
    }
    let mut i = at + 1;
    while i < bytes.len() && bytes[i].is_ascii_whitespace() {
        i += 1;
    }
    // `#![…]` inner attributes gate the whole file; we only handle the
    // outer form (the repo uses outer `#[cfg(test)]` exclusively).
    if bytes.get(i) != Some(&b'[') {
        return None;
    }
    let open = i;
    let mut depth = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'[' => depth += 1,
            b']' => {
                depth -= 1;
                if depth == 0 {
                    let content = std::str::from_utf8(&bytes[open + 1..i]).ok()?;
                    return Some((content, i + 1));
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

fn line_at(bytes: &[u8], pos: usize) -> usize {
    bytes[..pos.min(bytes.len())]
        .iter()
        .filter(|&&b| b == b'\n')
        .count()
        + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let src = "let a = \"Instant::now\"; // Instant::now\nlet b = 1;\n";
        let l = lex(src);
        assert!(!l.code.contains("Instant"));
        assert!(l.code.contains("let a ="));
        assert!(l.code.contains("let b = 1;"));
        assert_eq!(l.comments.len(), 1);
        assert!(l.comments[0].trailing);
        assert_eq!(l.comments[0].text, "Instant::now");
    }

    #[test]
    fn raw_strings_and_chars() {
        let src = "let r = r#\"SystemTime::now \"# ; let c = 'x'; let lt: &'static str = \"\";\n";
        let l = lex(src);
        assert!(!l.code.contains("SystemTime"));
        assert!(!l.code.contains('x'), "char literal content blanked");
        assert!(l.code.contains("'static"), "lifetime preserved");
    }

    #[test]
    fn nested_block_comment() {
        let src = "a /* outer /* inner */ still comment */ b\n";
        let l = lex(src);
        assert!(l.code.contains('a'));
        assert!(l.code.contains('b'));
        assert!(!l.code.contains("inner"));
    }

    #[test]
    fn cfg_test_mod_lines_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let l = lex(src);
        assert!(!l.is_test_line(1));
        assert!(l.is_test_line(2));
        assert!(l.is_test_line(4));
        assert!(l.is_test_line(5));
        assert!(!l.is_test_line(6));
    }

    #[test]
    fn own_line_comment_not_trailing() {
        let src = "// own line\nlet x = 1; // trailing\n";
        let l = lex(src);
        assert!(!l.comments[0].trailing);
        assert!(l.comments[1].trailing);
    }
}
