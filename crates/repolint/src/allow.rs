//! `lint:allow` suppression comments.
//!
//! A finding may be suppressed only by an adjacent comment of the form
//!
//! ```text
//! // lint:allow(rule-name) — justification text
//! ```
//!
//! The justification is mandatory: an allow without one (or naming an
//! unknown rule) is itself a finding (`bad-allow`) and suppresses
//! nothing. A trailing allow applies to its own line; an own-line allow
//! applies to the next line containing code. Several rules may be
//! listed, comma-separated.

use crate::findings::{Finding, BAD_ALLOW, RULES};
use crate::lexer::Lexed;

/// A parsed, *valid* allow: `rules` on `target_line` are suppressed.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Rules this allow suppresses.
    pub rules: Vec<String>,
    /// 1-based line the allow applies to.
    pub target_line: usize,
    /// 1-based line of the allow comment itself (where a `stale-allow`
    /// finding is anchored).
    pub comment_line: usize,
}

/// Extracts allows from a lexed file. Malformed allows are returned as
/// `bad-allow` findings instead.
pub fn collect_allows(path: &str, lexed: &Lexed) -> (Vec<Allow>, Vec<Finding>) {
    let mut allows = Vec::new();
    let mut bad = Vec::new();
    for c in &lexed.comments {
        let Some(rest) = c.text.strip_prefix("lint:allow") else {
            continue;
        };
        let mut fail = |why: &str| {
            bad.push(Finding {
                path: path.to_string(),
                line: c.line,
                rule: BAD_ALLOW,
                message: why.to_string(),
            });
        };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix('(') else {
            fail("malformed lint:allow — expected `lint:allow(rule) — justification`");
            continue;
        };
        let Some(close) = rest.find(')') else {
            fail("malformed lint:allow — missing `)`");
            continue;
        };
        let rules: Vec<String> = rest[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        if rules.is_empty() {
            fail("lint:allow names no rule");
            continue;
        }
        if let Some(unknown) = rules.iter().find(|r| !RULES.contains(&r.as_str())) {
            fail(&format!(
                "lint:allow names unknown rule `{unknown}` (known: {})",
                RULES.join(", ")
            ));
            continue;
        }
        // Mandatory justification: whatever follows the `)`, minus
        // leading separator punctuation, must be non-empty prose.
        let justification = rest[close + 1..]
            .trim_start_matches([' ', '\t', '—', '–', '-', ':'])
            .trim();
        if justification.is_empty() {
            fail("lint:allow without justification — explain why the exception is sound");
            continue;
        }
        let target_line = if c.trailing {
            c.line
        } else {
            next_code_line(lexed, c.line)
        };
        allows.push(Allow {
            rules,
            target_line,
            comment_line: c.line,
        });
    }
    (allows, bad)
}

/// First line after `line` that contains any code (comment bodies are
/// blank in the code view, so stacked allow comments are skipped
/// naturally).
fn next_code_line(lexed: &Lexed, line: usize) -> usize {
    for (idx, text) in lexed.code.lines().enumerate() {
        let n = idx + 1;
        if n > line && !text.trim().is_empty() {
            return n;
        }
    }
    line
}

/// Drops findings covered by a valid allow. Returns the surviving
/// findings plus, per allow (same order as `allows`), how many findings
/// it suppressed — the input to the `stale-allow` audit.
pub fn apply_allows(findings: Vec<Finding>, allows: &[Allow]) -> (Vec<Finding>, Vec<usize>) {
    let mut used = vec![0usize; allows.len()];
    let kept = findings
        .into_iter()
        .filter(|f| {
            let mut suppressed = false;
            for (i, a) in allows.iter().enumerate() {
                if a.target_line == f.line && a.rules.iter().any(|r| r == f.rule) {
                    used[i] += 1;
                    suppressed = true;
                }
            }
            !suppressed
        })
        .collect();
    (kept, used)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn trailing_allow_targets_own_line() {
        let l = lex("let t = now(); // lint:allow(wall-clock) — test fixture\n");
        let (allows, bad) = collect_allows("x.rs", &l);
        assert!(bad.is_empty());
        assert_eq!(allows.len(), 1);
        assert_eq!(allows[0].target_line, 1);
    }

    #[test]
    fn own_line_allow_targets_next_code_line() {
        let l = lex("// lint:allow(wall-clock, raw-spawn) -- both fine here\n// another comment\nlet t = 1;\n");
        let (allows, bad) = collect_allows("x.rs", &l);
        assert!(bad.is_empty());
        assert_eq!(allows[0].target_line, 3);
        assert_eq!(allows[0].rules, vec!["wall-clock", "raw-spawn"]);
    }

    #[test]
    fn missing_justification_is_bad_allow() {
        let l = lex("// lint:allow(wall-clock)\nlet t = 1;\n");
        let (allows, bad) = collect_allows("x.rs", &l);
        assert!(allows.is_empty());
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].rule, "bad-allow");
    }

    #[test]
    fn unknown_rule_is_bad_allow() {
        let l = lex("// lint:allow(no-such-rule) — because\nlet t = 1;\n");
        let (allows, bad) = collect_allows("x.rs", &l);
        assert!(allows.is_empty());
        assert_eq!(bad.len(), 1);
    }

    #[test]
    fn dashes_only_is_not_a_justification() {
        let l = lex("// lint:allow(wall-clock) —\nlet t = 1;\n");
        let (allows, bad) = collect_allows("x.rs", &l);
        assert!(allows.is_empty());
        assert_eq!(bad.len(), 1);
    }
}
