//! CLI: `repolint [--root PATH] [--json] [--json-out PATH]`
//!
//! Lints `<root>/crates/**/*.rs` and prints findings. Exit status 0
//! when clean, 1 when findings exist, 2 on usage/IO errors.
//! Deny-by-default: there is no way to downgrade a finding from the
//! command line — only an in-source `lint:allow` with justification.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json_stdout = false;
    let mut json_out: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => return usage("--root needs a path"),
            },
            "--json" => json_stdout = true,
            "--json-out" => match args.next() {
                Some(p) => json_out = Some(PathBuf::from(p)),
                None => return usage("--json-out needs a path"),
            },
            "--help" | "-h" => {
                eprintln!("usage: repolint [--root PATH] [--json] [--json-out PATH]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let findings = match repolint::lint_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("repolint: cannot lint {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &json_out {
        if let Err(e) = std::fs::write(path, repolint::render_json(&findings)) {
            eprintln!("repolint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if json_stdout {
        print!("{}", repolint::render_json(&findings));
    } else {
        print!("{}", repolint::render_human(&findings));
        eprintln!(
            "repolint: {} finding(s) across {} rule(s)",
            findings.len(),
            repolint::RULES.len()
        );
    }

    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("repolint: {msg}");
    eprintln!("usage: repolint [--root PATH] [--json] [--json-out PATH]");
    ExitCode::from(2)
}
