//! Coverage rules over parsed items ([`crate::parser`]).
//!
//! The checkpoint/resume contract (DESIGN.md §11) and the wire codecs
//! fail *silently* when they fall out of sync with the types they
//! serialize: a new struct field that `Snapshot::encode` never writes
//! simply vanishes across a resume; an enum variant missing from a
//! decode `match` turns into `SnapError::Invalid` only on the day that
//! variant first crosses a checkpoint. These rules make both contracts
//! structural:
//!
//! * **`snapshot-field-coverage`** — for every manual `impl Snapshot` /
//!   `impl SnapshotState`, every named field of the self struct must be
//!   referenced in both the encode and decode bodies. Intentionally
//!   unserialized fields (derived caches, wiring rebuilt from
//!   topology) carry a justified `lint:allow` on the field line.
//! * **`wire-variant-coverage`** — three structural checks: (a) every
//!   variant of an enum with a manual `Snapshot` impl appears in both
//!   encode and decode bodies; (b) the integer tags written by encode
//!   (`enc.u8(N)`) equal the tags matched by decode (`N =>`); (c) in
//!   wire modules (`*/src/msg.rs`, `actors::wire`, `snapshot::codec`),
//!   every enum must have *some* total codec (manual impl or
//!   `Serialize`+`Deserialize` derives), and every `SNAP_KIND_*`
//!   constant must be written via `Enc::with_header` and checked via
//!   `dec.header` somewhere in its crate.
//!
//! Scope is impl-driven: any crate defining a `Snapshot`/`SnapshotState`
//! impl is covered, so future crates (`bier`, shard crates) are scanned
//! the day their first impl lands — no registry to update.

use std::collections::{BTreeMap, BTreeSet};

use crate::findings::Finding;
use crate::lexer::Lexed;
use crate::parser::{ident_in_span, EnumDef, FnDef, ImplDef, Items, StructDef};

/// One file's parsed view, as assembled by [`crate::lint_files`].
pub struct FileCtx<'a> {
    /// Workspace-relative, `/`-separated path.
    pub path: &'a str,
    /// Lexed view (code + test-line map).
    pub lexed: &'a Lexed,
    /// Parsed items.
    pub items: &'a Items,
}

/// Crate name from a workspace-relative path (`crates/<name>/…`).
fn crate_of(path: &str) -> Option<&str> {
    let mut seg = path.split('/');
    if seg.next() == Some("crates") {
        seg.next()
    } else {
        None
    }
}

/// True for modules that define wire-format enums: per-crate `msg.rs` /
/// `wire.rs` and the snapshot codec. Glob-shaped on purpose — a future
/// `crates/bier/src/msg.rs` is in scope the day it exists.
fn is_wire_module(path: &str) -> bool {
    path.starts_with("crates/")
        && (path.ends_with("/src/msg.rs")
            || path.ends_with("/src/wire.rs")
            || path == "crates/snapshot/src/codec.rs")
}

/// The encode/decode fn pair of a capture impl, for either trait
/// spelling.
fn codec_fns(im: &ImplDef) -> Option<(&FnDef, &FnDef)> {
    match im.trait_name.as_deref() {
        Some("Snapshot") => Some((im.find_fn("encode")?, im.find_fn("decode")?)),
        Some("SnapshotState") => Some((im.find_fn("encode_state")?, im.find_fn("restore_state")?)),
        _ => None,
    }
}

fn push(out: &mut Vec<Finding>, path: &str, line: usize, rule: &'static str, msg: String) {
    out.push(Finding {
        path: path.to_string(),
        line,
        rule,
        message: msg,
    });
}

/// Runs the coverage rules over every file of a workspace scan.
/// Findings on `#[cfg(test)]` lines are dropped here (test scaffolding
/// may serialize however it likes), and items *defined* on test lines
/// never participate in pairing, so a test-local type cannot shadow a
/// live one.
pub fn lint_coverage(files: &[FileCtx<'_>]) -> Vec<Finding> {
    let mut out = Vec::new();

    // Group files per crate; coverage pairing never crosses a crate
    // boundary (the orphan rule pins an impl to its type's crate).
    let mut crates: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, f) in files.iter().enumerate() {
        let key = crate_of(f.path).unwrap_or("");
        crates.entry(key).or_default().push(i);
    }

    for file_idxs in crates.values() {
        lint_crate(files, file_idxs, &mut out);
    }

    // Drop findings that landed on test lines.
    let by_path: BTreeMap<&str, usize> =
        files.iter().enumerate().map(|(i, f)| (f.path, i)).collect();
    out.retain(|f| {
        by_path
            .get(f.path.as_str())
            .is_none_or(|&i| !files[i].lexed.is_test_line(f.line))
    });
    out.sort();
    out
}

fn lint_crate(files: &[FileCtx<'_>], idxs: &[usize], out: &mut Vec<Finding>) {
    // Index live (non-test) structs and enums by name.
    let mut structs: BTreeMap<&str, Vec<(usize, &StructDef)>> = BTreeMap::new();
    let mut enums: BTreeMap<&str, Vec<(usize, &EnumDef)>> = BTreeMap::new();
    for &i in idxs {
        let f = &files[i];
        for s in &f.items.structs {
            if !f.lexed.is_test_line(s.line) {
                structs.entry(&s.name).or_default().push((i, s));
            }
        }
        for e in &f.items.enums {
            if !f.lexed.is_test_line(e.line) {
                enums.entry(&e.name).or_default().push((i, e));
            }
        }
    }

    // Names of enums with a live manual capture impl (for the
    // wire-module "has any codec" check).
    let mut manual_impl: BTreeSet<&str> = BTreeSet::new();

    for &i in idxs {
        let f = &files[i];
        for im in &f.items.impls {
            if f.lexed.is_test_line(im.line) {
                continue;
            }
            let Some((enc_fn, dec_fn)) = codec_fns(im) else {
                continue;
            };
            let code = &f.lexed.code;

            // snapshot-field-coverage: every named field of the self
            // struct referenced in both bodies.
            for &(si, sd) in structs.get(im.self_name.as_str()).map_or(&[][..], |v| v) {
                for field in &sd.fields {
                    let in_enc = ident_in_span(code, enc_fn.body, &field.name);
                    let in_dec = ident_in_span(code, dec_fn.body, &field.name);
                    if in_enc && in_dec {
                        continue;
                    }
                    let missing = match (in_enc, in_dec) {
                        (false, false) => "either body",
                        (false, true) => "the encode body",
                        (true, false) => "the decode body",
                        _ => unreachable!(),
                    };
                    push(
                        out,
                        files[si].path,
                        field.line,
                        "snapshot-field-coverage",
                        format!(
                            "field `{}` of `{}` is not referenced in {missing} of its \
                             `{}` impl ({}:{}) — unserialized state silently diverges on \
                             resume; encode+decode it, or mark it derived with a justified \
                             `lint:allow`",
                            field.name,
                            sd.name,
                            im.trait_name.as_deref().unwrap_or("?"),
                            f.path,
                            im.line,
                        ),
                    );
                }
            }

            // wire-variant-coverage (a): every variant of the self enum
            // referenced in both bodies.
            for &(ei, ed) in enums.get(im.self_name.as_str()).map_or(&[][..], |v| v) {
                manual_impl.insert(&ed.name);
                for v in &ed.variants {
                    let in_enc = ident_in_span(code, enc_fn.body, &v.name);
                    let in_dec = ident_in_span(code, dec_fn.body, &v.name);
                    if in_enc && in_dec {
                        continue;
                    }
                    let missing = match (in_enc, in_dec) {
                        (false, false) => "either match",
                        (false, true) => "the encode match",
                        (true, false) => "the decode match",
                        _ => unreachable!(),
                    };
                    push(
                        out,
                        files[ei].path,
                        v.line,
                        "wire-variant-coverage",
                        format!(
                            "variant `{}::{}` does not appear in {missing} of its `{}` \
                             impl ({}:{}) — an unencodable/undecodable variant surfaces \
                             only when it first crosses the wire",
                            ed.name,
                            v.name,
                            im.trait_name.as_deref().unwrap_or("?"),
                            f.path,
                            im.line,
                        ),
                    );
                }
            }

            // wire-variant-coverage (b): tag symmetry between the
            // `enc.u8(N)` literals written and the `N =>` arms matched.
            let enc_tags = u8_literal_tags(code, enc_fn.body);
            let dec_tags = int_match_arms(code, dec_fn.body);
            // Compare only when both sides use the literal-tag idiom;
            // a cast-based encode or helper-based decode yields an
            // empty set and proves nothing either way.
            if !enc_tags.is_empty() && !dec_tags.is_empty() {
                let only_enc: Vec<u64> = enc_tags.difference(&dec_tags).copied().collect();
                let only_dec: Vec<u64> = dec_tags.difference(&enc_tags).copied().collect();
                if !only_enc.is_empty() {
                    push(
                        out,
                        f.path,
                        dec_fn.line,
                        "wire-variant-coverage",
                        format!(
                            "tag(s) {only_enc:?} are written by encode but matched by no \
                             decode arm in `impl {} for {}` — decoding that tag fails",
                            im.trait_name.as_deref().unwrap_or("?"),
                            im.self_name,
                        ),
                    );
                }
                if !only_dec.is_empty() {
                    push(
                        out,
                        f.path,
                        enc_fn.line,
                        "wire-variant-coverage",
                        format!(
                            "decode arm tag(s) {only_dec:?} are never written by encode in \
                             `impl {} for {}` — dead arm or a missing encode line",
                            im.trait_name.as_deref().unwrap_or("?"),
                            im.self_name,
                        ),
                    );
                }
            }
        }
    }

    // wire-variant-coverage (c): enums defined in wire modules need
    // *some* total codec.
    for (name, defs) in &enums {
        for &(ei, ed) in defs {
            if !is_wire_module(files[ei].path) {
                continue;
            }
            if manual_impl.contains(name) {
                continue;
            }
            let ser = ed.derives.iter().any(|d| d == "Serialize");
            let de = ed.derives.iter().any(|d| d == "Deserialize");
            if ser && de {
                continue;
            }
            let lack = if ser {
                "derives `Serialize` but not `Deserialize`"
            } else if de {
                "derives `Deserialize` but not `Serialize`"
            } else {
                "has neither a manual `Snapshot` impl nor `Serialize`+`Deserialize` derives"
            };
            push(
                out,
                files[ei].path,
                ed.line,
                "wire-variant-coverage",
                format!(
                    "wire enum `{name}` {lack} — every message/codec enum needs a total \
                     encode/decode pair"
                ),
            );
        }
    }

    // wire-variant-coverage (d): every SNAP_KIND_* constant is written
    // (Enc::with_header) and checked (dec.header) somewhere in the
    // crate.
    lint_kind_tags(files, idxs, out);
}

/// Integer tags written by a `.u8(…)` call inside `span`. Two idioms
/// count: a bare literal argument (`enc.u8(0)`) and the arm results of
/// an inline match (`enc.u8(match self { A => 0, B => 1 })`).
/// Arithmetic and casts (`enc.u8(*self as u8)`) yield nothing — the
/// tag set is then empty and symmetry is not checked.
fn u8_literal_tags(code: &str, span: (usize, usize)) -> BTreeSet<u64> {
    let bytes = &code.as_bytes()[span.0..span.1];
    let mut tags = BTreeSet::new();
    let mut i = 0usize;
    while i + 3 < bytes.len() {
        if !(bytes[i] == b'.' && bytes[i + 1] == b'u' && bytes[i + 2] == b'8') {
            i += 1;
            continue;
        }
        let mut j = i + 3;
        while j < bytes.len() && bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        if bytes.get(j) != Some(&b'(') {
            i += 1;
            continue;
        }
        j += 1;
        while j < bytes.len() && bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        if bytes[j..].starts_with(b"match")
            && bytes
                .get(j + 5)
                .is_some_and(|b| !b.is_ascii_alphanumeric() && *b != b'_')
        {
            // `.u8(match … { arm => N, … })` — collect the arm-result
            // literals between the match braces.
            if let Some(open) = bytes[j..].iter().position(|&b| b == b'{').map(|o| j + o) {
                let mut depth = 0usize;
                let mut k = open;
                let mut close = bytes.len();
                while k < bytes.len() {
                    match bytes[k] {
                        b'{' => depth += 1,
                        b'}' => {
                            depth -= 1;
                            if depth == 0 {
                                close = k;
                                break;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
                let mut k = open;
                while k + 1 < close {
                    if bytes[k] == b'=' && bytes[k + 1] == b'>' {
                        let mut d = k + 2;
                        while d < close && bytes[d].is_ascii_whitespace() {
                            d += 1;
                        }
                        let d0 = d;
                        let mut v = 0u64;
                        while d < close && bytes[d].is_ascii_digit() {
                            v = v * 10 + u64::from(bytes[d] - b'0');
                            d += 1;
                        }
                        let ends_ok = d >= close
                            || matches!(bytes[d], b',' | b'}' | b' ' | b'\n' | b'\t' | b'\r');
                        if d > d0 && ends_ok {
                            tags.insert(v);
                        }
                        k = d;
                    } else {
                        k += 1;
                    }
                }
            }
        } else {
            let d0 = j;
            let mut v = 0u64;
            while j < bytes.len() && bytes[j].is_ascii_digit() {
                v = v * 10 + u64::from(bytes[j] - b'0');
                j += 1;
            }
            if j > d0 {
                let mut k = j;
                while k < bytes.len() && bytes[k].is_ascii_whitespace() {
                    k += 1;
                }
                if bytes.get(k) == Some(&b')') {
                    tags.insert(v);
                }
            }
        }
        i += 1;
    }
    tags
}

/// Integer literals used as match-arm patterns (`N =>`) inside `span`.
fn int_match_arms(code: &str, span: (usize, usize)) -> BTreeSet<u64> {
    let bytes = &code.as_bytes()[span.0..span.1];
    let mut arms = BTreeSet::new();
    let mut i = 0usize;
    while i < bytes.len() {
        if !bytes[i].is_ascii_digit() {
            i += 1;
            continue;
        }
        // A literal starting here must not continue an identifier or a
        // float/range (`x1`, `1.5`, `0..3`).
        if i > 0
            && (bytes[i - 1].is_ascii_alphanumeric()
                || bytes[i - 1] == b'_'
                || bytes[i - 1] == b'.')
        {
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
            continue;
        }
        let mut v = 0u64;
        let mut j = i;
        while j < bytes.len() && bytes[j].is_ascii_digit() {
            v = v * 10 + u64::from(bytes[j] - b'0');
            j += 1;
        }
        let mut k = j;
        while k < bytes.len() && bytes[k].is_ascii_whitespace() {
            k += 1;
        }
        if bytes.get(k) == Some(&b'=') && bytes.get(k + 1) == Some(&b'>') {
            arms.insert(v);
        }
        i = j;
    }
    arms
}

/// Kind-tag pairing: each `const SNAP_KIND_*` must appear inside an
/// `Enc::with_header(...)` (or `enc.header(...)`) call and inside a
/// `dec.header(...)` call somewhere in its crate.
fn lint_kind_tags(files: &[FileCtx<'_>], idxs: &[usize], out: &mut Vec<Finding>) {
    struct KindUse {
        encoded: bool,
        decoded: bool,
        def: Option<(usize, usize)>, // (file index, line)
    }
    let mut kinds: BTreeMap<String, KindUse> = BTreeMap::new();

    for &i in idxs {
        let f = &files[i];
        let bytes = f.lexed.code.as_bytes();
        let mut pos = 0usize;
        while let Some(off) = find_ident(bytes, pos, b"SNAP_KIND_") {
            let start = off;
            let mut end = start;
            while end < bytes.len() && (bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_') {
                end += 1;
            }
            pos = end;
            let name = String::from_utf8_lossy(&bytes[start..end]).into_owned();
            let line = bytes[..start].iter().filter(|&&b| b == b'\n').count() + 1;
            if f.lexed.is_test_line(line) {
                continue;
            }
            let entry = kinds.entry(name).or_insert(KindUse {
                encoded: false,
                decoded: false,
                def: None,
            });
            match usage_context(bytes, start) {
                KindContext::Def => entry.def = Some((i, line)),
                KindContext::Encode => entry.encoded = true,
                KindContext::Decode => entry.decoded = true,
                KindContext::Other => {}
            }
        }
    }

    for (name, u) in kinds {
        let Some((fi, line)) = u.def else { continue };
        if !u.encoded {
            push(
                out,
                files[fi].path,
                line,
                "wire-variant-coverage",
                format!(
                    "kind tag `{name}` is never written via `Enc::with_header({name})` — \
                     a kind no encoder emits is dead, or its encoder forgot the header"
                ),
            );
        }
        if !u.decoded {
            push(
                out,
                files[fi].path,
                line,
                "wire-variant-coverage",
                format!(
                    "kind tag `{name}` is never checked via `dec.header({name})` — \
                     resuming the wrong snapshot kind would misdecode instead of \
                     failing with `BadKind`"
                ),
            );
        }
    }
}

enum KindContext {
    /// `const SNAP_KIND_X…` definition.
    Def,
    /// Inside `Enc::with_header(…)` / `enc*.header(…)`.
    Encode,
    /// Inside `dec*.header(…)`.
    Decode,
    /// Re-export, doc link, anything else.
    Other,
}

/// Classifies the occurrence of a SNAP_KIND ident starting at `start`.
fn usage_context(bytes: &[u8], start: usize) -> KindContext {
    // Walk left over whitespace.
    let mut i = start;
    while i > 0 && bytes[i - 1].is_ascii_whitespace() {
        i -= 1;
    }
    if i == 0 {
        return KindContext::Other;
    }
    // `const SNAP_KIND_X` — preceded by the `const` keyword.
    if is_word_before(bytes, i, b"const") {
        return KindContext::Def;
    }
    // `fnname(SNAP_KIND_X…` — classify by the call we're inside. Walk
    // left past an opening paren (possibly with other arguments — the
    // kind is always the first argument in this codebase).
    if bytes[i - 1] == b'(' {
        let call_end = i - 1;
        let mut j = call_end;
        while j > 0 && bytes[j - 1].is_ascii_whitespace() {
            j -= 1;
        }
        let mut s = j;
        while s > 0 && (bytes[s - 1].is_ascii_alphanumeric() || bytes[s - 1] == b'_') {
            s -= 1;
        }
        let callee = &bytes[s..j];
        if callee == b"with_header" {
            return KindContext::Encode;
        }
        if callee == b"header" {
            // Receiver before the `.`: enc-ish writes, dec-ish checks.
            let mut r = s;
            while r > 0 && bytes[r - 1].is_ascii_whitespace() {
                r -= 1;
            }
            if r > 0 && bytes[r - 1] == b'.' {
                let mut rs = r - 1;
                while rs > 0 && (bytes[rs - 1].is_ascii_alphanumeric() || bytes[rs - 1] == b'_') {
                    rs -= 1;
                }
                let recv = &bytes[rs..r - 1];
                if recv.starts_with(b"dec") {
                    return KindContext::Decode;
                }
                if recv.starts_with(b"enc") {
                    return KindContext::Encode;
                }
            }
        }
    }
    KindContext::Other
}

/// True if the word ending (exclusive) at `end` is exactly `word`.
fn is_word_before(bytes: &[u8], end: usize, word: &[u8]) -> bool {
    if end < word.len() {
        return false;
    }
    let s = end - word.len();
    if &bytes[s..end] != word {
        return false;
    }
    s == 0 || !(bytes[s - 1].is_ascii_alphanumeric() || bytes[s - 1] == b'_')
}

/// Finds the next occurrence of an identifier starting with `prefix`
/// at or after `from`, returning its start offset.
fn find_ident(bytes: &[u8], from: usize, prefix: &[u8]) -> Option<usize> {
    let mut i = from;
    while i + prefix.len() <= bytes.len() {
        if &bytes[i..i + prefix.len()] == prefix {
            let boundary =
                i == 0 || !(bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_');
            if boundary {
                return Some(i);
            }
        }
        i += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse_items;

    fn run(files: &[(&str, &str)]) -> Vec<(String, String, usize)> {
        let lexed: Vec<_> = files.iter().map(|(_, s)| lex(s)).collect();
        let items: Vec<_> = lexed.iter().map(|l| parse_items(&l.code)).collect();
        let ctxs: Vec<FileCtx> = files
            .iter()
            .zip(lexed.iter().zip(items.iter()))
            .map(|(&(p, _), (l, it))| FileCtx {
                path: p,
                lexed: l,
                items: it,
            })
            .collect();
        lint_coverage(&ctxs)
            .into_iter()
            .map(|f| (f.rule.to_string(), f.path, f.line))
            .collect()
    }

    const GOOD_IMPL: &str = "pub struct Stats {\n    pub a: u64,\n    pub b: u64,\n}\nimpl snapshot::Snapshot for Stats {\n    fn encode(&self, enc: &mut Enc) {\n        enc.u64(self.a);\n        enc.u64(self.b);\n    }\n    fn decode(dec: &mut Dec<'_>) -> Result<Self, SnapError> {\n        Ok(Stats { a: dec.u64()?, b: dec.u64()? })\n    }\n}\n";

    #[test]
    fn full_coverage_is_silent() {
        assert_eq!(run(&[("crates/x/src/snap.rs", GOOD_IMPL)]), vec![]);
    }

    #[test]
    fn missing_encode_field_flagged_at_field_line() {
        let src = "pub struct Stats {\n    pub a: u64,\n    pub b: u64,\n}\nimpl snapshot::Snapshot for Stats {\n    fn encode(&self, enc: &mut Enc) {\n        enc.u64(self.a);\n    }\n    fn decode(dec: &mut Dec<'_>) -> Result<Self, SnapError> {\n        Ok(Stats { a: dec.u64()?, b: 0 })\n    }\n}\n";
        assert_eq!(
            run(&[("crates/x/src/snap.rs", src)]),
            vec![(
                "snapshot-field-coverage".into(),
                "crates/x/src/snap.rs".into(),
                3
            )]
        );
    }

    #[test]
    fn cross_file_impl_is_paired_within_the_crate() {
        let def = "pub struct Stats {\n    pub a: u64,\n    pub missing: u64,\n}\n";
        let im = "impl snapshot::Snapshot for Stats {\n    fn encode(&self, enc: &mut Enc) { enc.u64(self.a); }\n    fn decode(dec: &mut Dec<'_>) -> Result<Self, SnapError> { Ok(Stats { a: dec.u64()?, missing: 0 }) }\n}\n";
        let hits = run(&[("crates/x/src/types.rs", def), ("crates/x/src/snap.rs", im)]);
        assert_eq!(
            hits,
            vec![(
                "snapshot-field-coverage".into(),
                "crates/x/src/types.rs".into(),
                3
            )]
        );
        // Different crate: no pairing, no finding.
        assert_eq!(
            run(&[("crates/x/src/types.rs", def), ("crates/y/src/snap.rs", im),]),
            vec![]
        );
    }

    #[test]
    fn snapshot_state_impl_checks_both_bodies() {
        let src = "pub struct Router {\n    table: u64,\n    memo: u64,\n}\nimpl snapshot::SnapshotState for Router {\n    fn encode_state(&self, enc: &mut Enc) { self.table.encode(enc); }\n    fn restore_state(&mut self, dec: &mut Dec<'_>) -> Result<(), SnapError> {\n        self.table = u64::decode(dec)?;\n        Ok(())\n    }\n}\n";
        assert_eq!(
            run(&[("crates/x/src/r.rs", src)]),
            vec![(
                "snapshot-field-coverage".into(),
                "crates/x/src/r.rs".into(),
                3
            )]
        );
    }

    #[test]
    fn enum_variant_missing_from_decode_flagged() {
        let src = "pub enum Msg {\n    Join(u32),\n    Prune(u32),\n}\nimpl snapshot::Snapshot for Msg {\n    fn encode(&self, enc: &mut Enc) {\n        match self {\n            Msg::Join(g) => { enc.u8(0); enc.u32(*g); }\n            Msg::Prune(g) => { enc.u8(1); enc.u32(*g); }\n        }\n    }\n    fn decode(dec: &mut Dec<'_>) -> Result<Self, SnapError> {\n        match dec.u8()? {\n            0 => Ok(Msg::Join(dec.u32()?)),\n            _ => Err(SnapError::Invalid(\"tag\")),\n        }\n    }\n}\n";
        let hits = run(&[("crates/x/src/msg.rs", src)]);
        // Variant `Prune` missing from decode, and tag 1 has no arm.
        assert!(hits.contains(&(
            "wire-variant-coverage".into(),
            "crates/x/src/msg.rs".into(),
            3
        )));
        assert_eq!(
            hits.iter()
                .filter(|(r, _, _)| r == "wire-variant-coverage")
                .count(),
            2
        );
    }

    #[test]
    fn tag_written_but_unmatched_is_flagged() {
        let src = "impl snapshot::Snapshot for Thing {\n    fn encode(&self, enc: &mut Enc) {\n        enc.u8(0);\n        enc.u8(1);\n    }\n    fn decode(dec: &mut Dec<'_>) -> Result<Self, SnapError> {\n        match dec.u8()? {\n            0 => Ok(Thing),\n            _ => Err(SnapError::Invalid(\"tag\")),\n        }\n    }\n}\n";
        let hits = run(&[("crates/x/src/a.rs", src)]);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, "wire-variant-coverage");
    }

    #[test]
    fn inline_match_tag_idiom_is_symmetric() {
        // `enc.u8(match self { … => N })` — the arm results are the
        // written tags; symmetric with decode's arms, so silent.
        let src = "impl snapshot::Snapshot for Kind {\n    fn encode(&self, enc: &mut Enc) {\n        enc.u8(match self {\n            Kind::A => 0,\n            Kind::B => 1,\n        });\n    }\n    fn decode(dec: &mut Dec<'_>) -> Result<Self, SnapError> {\n        match dec.u8()? {\n            0 => Ok(Kind::A),\n            1 => Ok(Kind::B),\n            _ => Err(SnapError::Invalid(\"tag\")),\n        }\n    }\n}\n";
        assert_eq!(run(&[("crates/x/src/a.rs", src)]), vec![]);
        // Drop arm `Kind::B => 1` from encode: decode arm 1 goes dead.
        let broken = src.replace("            Kind::B => 1,\n", "");
        let hits = run(&[("crates/x/src/a.rs", broken.as_str())]);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].0, "wire-variant-coverage");
    }

    #[test]
    fn cast_based_encode_skips_tag_symmetry() {
        let src = "impl snapshot::Snapshot for Kind {\n    fn encode(&self, enc: &mut Enc) { enc.u8(*self as u8); }\n    fn decode(dec: &mut Dec<'_>) -> Result<Self, SnapError> {\n        match dec.u8()? {\n            0 => Ok(Kind::A),\n            _ => Err(SnapError::Invalid(\"tag\")),\n        }\n    }\n}\n";
        assert_eq!(run(&[("crates/x/src/a.rs", src)]), vec![]);
    }

    #[test]
    fn wire_module_enum_without_codec_flagged() {
        let src = "pub enum Action {\n    Go,\n    Stop,\n}\n";
        let hits = run(&[("crates/x/src/msg.rs", src)]);
        assert_eq!(
            hits,
            vec![(
                "wire-variant-coverage".into(),
                "crates/x/src/msg.rs".into(),
                1
            )]
        );
        // Same enum outside a wire module: silent.
        assert_eq!(run(&[("crates/x/src/other.rs", src)]), vec![]);
        // With both serde derives: silent.
        let serde_src =
            "#[derive(Serialize, Deserialize)]\npub enum Action {\n    Go,\n    Stop,\n}\n";
        assert_eq!(run(&[("crates/x/src/msg.rs", serde_src)]), vec![]);
    }

    #[test]
    fn kind_tag_without_decode_check_flagged() {
        let src = "pub const SNAP_KIND_FOO: u16 = 9;\nimpl T {\n    fn checkpoint(&self) {\n        let mut enc = snapshot::Enc::with_header(SNAP_KIND_FOO);\n    }\n}\n";
        let hits = run(&[("crates/x/src/a.rs", src)]);
        assert_eq!(
            hits,
            vec![(
                "wire-variant-coverage".into(),
                "crates/x/src/a.rs".into(),
                1
            )]
        );
        // Paired in another file of the same crate: silent.
        let dec_side = "fn resume(dec: &mut Dec<'_>) {\n    dec.header(SNAP_KIND_FOO);\n}\n";
        assert_eq!(
            run(&[("crates/x/src/a.rs", src), ("crates/x/src/b.rs", dec_side)]),
            vec![]
        );
    }

    #[test]
    fn cfg_test_impls_and_types_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    struct Probe {\n        uncovered: u64,\n    }\n    impl snapshot::Snapshot for Probe {\n        fn encode(&self, enc: &mut Enc) {}\n        fn decode(dec: &mut Dec<'_>) -> Result<Self, SnapError> { Ok(Probe { uncovered: 0 }) }\n    }\n}\n";
        assert_eq!(run(&[("crates/x/src/a.rs", src)]), vec![]);
    }
}
