//! The lint rules.
//!
//! All rules scan the lexed *code view* (comments and literal contents
//! blanked), so tokens inside strings or docs never fire. Findings on
//! `#[cfg(test)]` lines are dropped before allow processing — panicking
//! and ad-hoc containers are idiomatic in unit tests.
//!
//! | rule            | scope                                   | forbids |
//! |-----------------|-----------------------------------------|---------|
//! | `wall-clock`    | every crate                             | `Instant::now`, `SystemTime::now` |
//! | `unordered-iter`| deterministic crates                    | iterating `HashMap`/`HashSet` |
//! | `ambient-rng`   | every crate                             | `thread_rng`, `rand::random`, `OsRng`, `from_entropy` |
//! | `raw-spawn`     | all but `bench::par`, `simnet::shard`   | `thread::spawn`, `thread::scope` |
//! | `panicky-decode`| wire/message decode modules             | `unwrap`/`expect`/panicking macros/indexing |
//! | `hot-alloc`     | per-event hot paths (RIB, BGMP table)   | `clone()` of `AsPath`/`Route`/tree entries |

use std::collections::BTreeSet;

use crate::findings::Finding;
use crate::lexer::Lexed;

/// Crates whose state must iterate in a deterministic order: they feed
/// the reproducible experiment pipeline (byte-identical CSV/JSON at any
/// `--threads`).
pub const DETERMINISTIC_CRATES: &[&str] = &[
    "snapshot",
    "simnet",
    "masc",
    "bgmp",
    "bgp",
    "bier",
    "core",
    "topology",
    "mcast-addr",
    "bench",
    "migp",
    "metrics",
];

/// Modules that decode peer-controlled input: a malformed frame must
/// surface as a typed error, never a panic.
pub const DECODE_PATHS: &[&str] = &[
    "crates/snapshot/src/codec.rs",
    "crates/bgp/src/msg.rs",
    "crates/bgmp/src/msg.rs",
    "crates/bier/src/msg.rs",
    "crates/masc/src/msg.rs",
    "crates/actors/src/codec.rs",
    "crates/actors/src/wire.rs",
];

/// The blessed homes for raw OS threads: the deterministic fork/join
/// harness, and the sharded engine's scoped per-window fan-out (whose
/// serial fallback is byte-identical).
pub const SPAWN_OK_PATHS: &[&str] = &["crates/bench/src/par.rs", "crates/simnet/src/shard.rs"];

/// Per-event hot paths with an allocation budget: the BGP decision
/// process and the BGMP tree table run once per simulated event, and
/// their entry types are deliberately slab-stored and interned.
/// Cloning one re-allocates what the arena exists to share.
pub const HOT_PATHS: &[&str] = &[
    "crates/bgp/src/rib.rs",
    "crates/bgmp/src/router.rs",
    "crates/bgmp/src/entry.rs",
];

/// Types whose `clone()` allocates in a hot path: `AsPath` is interned
/// (clone the handle, not a rebuilt vector), the rest are slab-resident
/// tree-table state (pass the slab key instead).
const HOT_TYPES: &[&str] = &[
    "AsPath",
    "Route",
    "GroupEntry",
    "SgEntry",
    "ForwardingTable",
];

const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Keywords that may directly precede `[` without forming an index
/// expression (`return [a, b]`, `break [..]`, …).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "return", "break", "in", "if", "else", "match", "while", "loop", "as", "mut", "ref", "move",
    "dyn", "impl", "let", "const", "static", "use", "pub", "where", "yield",
];

/// Crate name from a workspace-relative path (`crates/<name>/…`).
fn crate_of(path: &str) -> Option<&str> {
    let mut seg = path.split('/');
    if seg.next() == Some("crates") {
        seg.next()
    } else {
        None
    }
}

/// Runs every applicable rule; returns raw findings (allows not yet
/// applied, test lines already dropped).
pub fn lint_code(path: &str, lexed: &Lexed) -> Vec<Finding> {
    let code = lexed.code.as_bytes();
    let toks = Tokens::new(code);
    let mut out = Vec::new();

    rule_wall_clock(path, &toks, &mut out);
    rule_ambient_rng(path, &toks, &mut out);
    rule_raw_spawn(path, &toks, &mut out);
    if crate_of(path).is_some_and(|c| DETERMINISTIC_CRATES.contains(&c)) {
        rule_unordered_iter(path, &toks, &mut out);
    }
    if DECODE_PATHS.contains(&path) {
        rule_panicky_decode(path, &toks, &mut out);
    }
    if HOT_PATHS.contains(&path) {
        rule_hot_alloc(path, &toks, &mut out);
    }

    out.retain(|f| !lexed.is_test_line(f.line));
    out.sort();
    out
}

// ---------------------------------------------------------------------
// Token scaffolding
// ---------------------------------------------------------------------

/// Identifier tokens of the code view, with byte spans.
struct Tokens<'a> {
    code: &'a [u8],
    /// (start, end) byte spans of every identifier, in order.
    idents: Vec<(usize, usize)>,
}

fn is_ident_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

impl<'a> Tokens<'a> {
    fn new(code: &'a [u8]) -> Self {
        let mut idents = Vec::new();
        let mut i = 0usize;
        while i < code.len() {
            if is_ident_char(code[i]) {
                let s = i;
                while i < code.len() && is_ident_char(code[i]) {
                    i += 1;
                }
                idents.push((s, i));
            } else {
                i += 1;
            }
        }
        Tokens { code, idents }
    }

    fn text(&self, span: (usize, usize)) -> &str {
        std::str::from_utf8(&self.code[span.0..span.1]).unwrap_or("")
    }

    fn line_of(&self, pos: usize) -> usize {
        self.code[..pos].iter().filter(|&&b| b == b'\n').count() + 1
    }

    /// Index of the previous non-whitespace byte before `pos`.
    fn prev_ns(&self, pos: usize) -> Option<usize> {
        let mut i = pos;
        while i > 0 {
            i -= 1;
            if !self.code[i].is_ascii_whitespace() {
                return Some(i);
            }
        }
        None
    }

    /// Index of the next non-whitespace byte at or after `pos`.
    fn next_ns(&self, pos: usize) -> Option<usize> {
        (pos..self.code.len()).find(|&i| !self.code[i].is_ascii_whitespace())
    }

    /// The identifier whose final byte sits at `end` (inclusive).
    fn ident_ending_at(&self, end: usize) -> Option<(usize, usize)> {
        if !is_ident_char(self.code[end]) {
            return None;
        }
        let mut s = end;
        while s > 0 && is_ident_char(self.code[s - 1]) {
            s -= 1;
        }
        Some((s, end + 1))
    }

    /// True if the token just before `pos` (skipping whitespace) is
    /// `::` immediately preceded by the identifier `name`.
    fn preceded_by_path(&self, pos: usize, name: &str) -> bool {
        let Some(c2) = self.prev_ns(pos) else {
            return false;
        };
        if self.code[c2] != b':' || c2 == 0 || self.code[c2 - 1] != b':' {
            return false;
        }
        let Some(ie) = self.prev_ns(c2 - 1) else {
            return false;
        };
        self.ident_ending_at(ie)
            .is_some_and(|sp| self.text(sp) == name)
    }
}

fn push(out: &mut Vec<Finding>, path: &str, line: usize, rule: &'static str, msg: String) {
    out.push(Finding {
        path: path.to_string(),
        line,
        rule,
        message: msg,
    });
}

// ---------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------

fn rule_wall_clock(path: &str, t: &Tokens, out: &mut Vec<Finding>) {
    for &(s, e) in &t.idents {
        let name = t.text((s, e));
        if name == "now"
            && (t.preceded_by_path(s, "Instant") || t.preceded_by_path(s, "SystemTime"))
        {
            push(
                out,
                path,
                t.line_of(s),
                "wall-clock",
                "wall-clock read — all time must flow from the simulation/harness clock \
                 (`simnet::Engine` in sims, the tick counter in actors)"
                    .to_string(),
            );
        }
    }
}

fn rule_ambient_rng(path: &str, t: &Tokens, out: &mut Vec<Finding>) {
    for &(s, e) in &t.idents {
        let name = t.text((s, e));
        let hit = match name {
            "thread_rng" | "OsRng" | "from_entropy" => true,
            "random" => t.preceded_by_path(s, "rand"),
            _ => false,
        };
        if hit {
            push(
                out,
                path,
                t.line_of(s),
                "ambient-rng",
                format!(
                    "ambient randomness (`{name}`) — all randomness must derive from the \
                     per-task seed (`seed ^ splitmix64(task_index)`)"
                ),
            );
        }
    }
}

fn rule_raw_spawn(path: &str, t: &Tokens, out: &mut Vec<Finding>) {
    if SPAWN_OK_PATHS.contains(&path) {
        return;
    }
    for &(s, e) in &t.idents {
        let name = t.text((s, e));
        if (name == "spawn" || name == "scope") && t.preceded_by_path(s, "thread") {
            push(
                out,
                path,
                t.line_of(s),
                "raw-spawn",
                format!(
                    "raw `thread::{name}` — OS-thread fan-out lives in `bench::par::run_tasks` \
                     (deterministic task-order merge); use it or `tokio::spawn`"
                ),
            );
        }
    }
}

fn rule_unordered_iter(path: &str, t: &Tokens, out: &mut Vec<Finding>) {
    // Pass 1: names bound to HashMap/HashSet in this file (let
    // bindings, struct fields — `name: HashMap<…>` or `name = HashMap::…`).
    let mut hash_names: BTreeSet<String> = BTreeSet::new();
    for &(s, e) in &t.idents {
        let name = t.text((s, e));
        if name != "HashMap" && name != "HashSet" {
            continue;
        }
        if let Some(owner) = binding_name(t, s) {
            hash_names.insert(owner);
        }
    }

    let flag = |out: &mut Vec<Finding>, line: usize, name: &str, how: &str| {
        push(
            out,
            path,
            line,
            "unordered-iter",
            format!(
                "iteration over hash container `{name}` ({how}) — hash order is \
                 nondeterministic; use BTreeMap/BTreeSet/Vec, or keep the container and \
                 restrict it to keyed lookups"
            ),
        );
    };

    // Pass 2: iteration methods on a tracked name.
    for &(s, e) in &t.idents {
        let name = t.text((s, e));
        if !ITER_METHODS.contains(&name) {
            continue;
        }
        // Must be a method call: `.name(`.
        let Some(dot) = t.prev_ns(s) else { continue };
        if t.code[dot] != b'.' {
            continue;
        }
        if t.next_ns(e).map(|i| t.code[i]) != Some(b'(') {
            continue;
        }
        let Some(recv_end) = t.prev_ns(dot) else {
            continue;
        };
        let Some(recv) = t.ident_ending_at(recv_end) else {
            continue;
        };
        let recv_name = t.text(recv);
        if hash_names.contains(recv_name) {
            flag(out, t.line_of(s), recv_name, &format!(".{name}()"));
        }
    }

    // Pass 3: `for pat in [&[mut]] name { …` / `for pat in self.name {`.
    for (k, &(s, e)) in t.idents.iter().enumerate() {
        if t.text((s, e)) != "for" {
            continue;
        }
        // Find the `in` among upcoming idents (patterns are short).
        let Some(&(ins, ine)) = t.idents[k + 1..]
            .iter()
            .take(8)
            .find(|&&sp| t.text(sp) == "in")
        else {
            continue;
        };
        let _ = ine;
        // Expression runs to the loop body brace.
        let Some(brace) = (ins..t.code.len()).find(|&i| t.code[i] == b'{') else {
            continue;
        };
        let expr = std::str::from_utf8(&t.code[ins + 2..brace]).unwrap_or("");
        let expr = expr.trim().trim_start_matches('&').trim();
        let expr = expr.strip_prefix("mut ").unwrap_or(expr).trim();
        // Only simple ident chains (`name`, `self.name`); calls are
        // covered by pass 2.
        if !expr
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
            || expr.is_empty()
        {
            continue;
        }
        let base = expr.rsplit('.').next().unwrap_or(expr);
        if hash_names.contains(base) {
            flag(out, t.line_of(s), base, "for-loop");
        }
    }
}

/// For a `HashMap`/`HashSet` type token starting at `s`, walks left to
/// the identifier the container is bound to, if any: handles
/// `name: HashMap<…>`, `name: std::collections::HashMap<…>`, and
/// `name = HashMap::new()`.
fn binding_name(t: &Tokens, s: usize) -> Option<String> {
    let mut at = s;
    // Strip a leading `path::` chain.
    loop {
        let p = t.prev_ns(at)?;
        if t.code[p] == b':' && p > 0 && t.code[p - 1] == b':' {
            let ie = t.prev_ns(p - 1)?;
            let sp = t.ident_ending_at(ie)?;
            at = sp.0;
        } else {
            break;
        }
    }
    let p = t.prev_ns(at)?;
    match t.code[p] {
        // `name : HashMap<…>` — single colon only.
        b':' if p > 0 && t.code[p - 1] != b':' => {
            let ie = t.prev_ns(p)?;
            let sp = t.ident_ending_at(ie)?;
            let name = t.text(sp);
            (!name.is_empty()).then(|| name.to_string())
        }
        // `name = HashMap::…` — plain assignment only.
        b'=' if p > 0 && !matches!(t.code[p - 1], b'=' | b'<' | b'>' | b'!' | b'+') => {
            let ie = t.prev_ns(p)?;
            let sp = t.ident_ending_at(ie)?;
            let name = t.text(sp);
            (name != "let" && !name.is_empty()).then(|| name.to_string())
        }
        _ => None,
    }
}

fn rule_panicky_decode(path: &str, t: &Tokens, out: &mut Vec<Finding>) {
    for &(s, e) in &t.idents {
        let name = t.text((s, e));
        // `.unwrap()` / `.expect(…)`.
        if name == "unwrap" || name == "expect" {
            let is_method = t.prev_ns(s).map(|i| t.code[i]) == Some(b'.')
                && t.next_ns(e).map(|i| t.code[i]) == Some(b'(');
            if is_method {
                push(
                    out,
                    path,
                    t.line_of(s),
                    "panicky-decode",
                    format!(
                        "`.{name}()` in a decode path — malformed peer input must return a \
                         typed error (`CodecError`-style), never panic"
                    ),
                );
            }
            continue;
        }
        // Panicking macros.
        if PANIC_MACROS.contains(&name) && t.next_ns(e).map(|i| t.code[i]) == Some(b'!') {
            push(
                out,
                path,
                t.line_of(s),
                "panicky-decode",
                format!(
                    "`{name}!` in a decode path — malformed peer input must return a typed \
                     error, never panic"
                ),
            );
        }
    }
    // Index expressions: `expr[…]` can panic on out-of-range input.
    for (i, &b) in t.code.iter().enumerate() {
        if b != b'[' || i == 0 {
            continue;
        }
        let prev = t.code[i - 1];
        let indexes = if prev == b')' || prev == b']' {
            true
        } else if is_ident_char(prev) {
            // Not a keyword (`return [` …) and not a macro (`vec![` has
            // `!` before `[`, already excluded by is_ident_char).
            t.ident_ending_at(i - 1)
                .map(|sp| t.text(sp))
                .is_some_and(|id| !NON_INDEX_KEYWORDS.contains(&id))
        } else {
            false
        };
        if indexes {
            push(
                out,
                path,
                t.line_of(i),
                "panicky-decode",
                "index expression in a decode path — slicing panics on short input; use \
                 `.get(..)` and return a typed error"
                    .to_string(),
            );
        }
    }
}

/// `hot-alloc`: no `clone()` of interned/slab-backed state in the
/// per-event hot paths. Detection is lexical, like `unordered-iter`:
/// pass 1 collects names bound to a hot type (`x: AsPath`,
/// `e = GroupEntry::…`); pass 2 flags `.clone()` whose receiver is a
/// tracked name, the conventional `as_path` field, or a
/// `Type::clone(…)` UFCS call on a hot type. Untyped closure
/// parameters are deliberately not chased — the rule aims at the easy
/// regression (reintroducing an owned copy of arena state), not at
/// whole-program type inference.
fn rule_hot_alloc(path: &str, t: &Tokens, out: &mut Vec<Finding>) {
    let mut hot_names: BTreeSet<String> = BTreeSet::new();
    for &(s, e) in &t.idents {
        if !HOT_TYPES.contains(&t.text((s, e))) {
            continue;
        }
        if let Some(owner) = binding_name(t, s) {
            hot_names.insert(owner);
        }
    }

    let flag = |out: &mut Vec<Finding>, line: usize, what: &str| {
        push(
            out,
            path,
            line,
            "hot-alloc",
            format!(
                "`clone()` of `{what}` in a per-event hot path — AS paths are interned and \
                 tree entries slab-resident; clone the Arc handle / pass the slab key, or \
                 borrow"
            ),
        );
    };

    for &(s, e) in &t.idents {
        if t.text((s, e)) != "clone" {
            continue;
        }
        if t.next_ns(e).map(|i| t.code[i]) != Some(b'(') {
            continue;
        }
        // UFCS: `AsPath::clone(&x)` and friends.
        if let Some(ty) = HOT_TYPES.iter().find(|ty| t.preceded_by_path(s, ty)) {
            flag(out, t.line_of(s), ty);
            continue;
        }
        // Method call: `.clone()` on a tracked receiver.
        let Some(dot) = t.prev_ns(s) else { continue };
        if t.code[dot] != b'.' {
            continue;
        }
        let Some(recv_end) = t.prev_ns(dot) else {
            continue;
        };
        let Some(recv) = t.ident_ending_at(recv_end) else {
            continue;
        };
        let recv_name = t.text(recv);
        if hot_names.contains(recv_name) || recv_name == "as_path" {
            flag(out, t.line_of(s), recv_name);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(path: &str, src: &str) -> Vec<Finding> {
        lint_code(path, &lex(src))
    }

    #[test]
    fn wall_clock_fires_anywhere() {
        let f = run(
            "crates/migp/src/x.rs",
            "fn f() { let t = std::time::Instant::now(); }\n",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "wall-clock");
    }

    #[test]
    fn keyed_lookup_is_legal() {
        let src = "use std::collections::HashMap;\nstruct S { m: HashMap<u32, u32> }\nimpl S { fn g(&self) -> Option<&u32> { self.m.get(&1) } }\n";
        assert!(run("crates/simnet/src/x.rs", src).is_empty());
    }

    #[test]
    fn hash_iteration_flagged_in_deterministic_crate_only() {
        let src = "fn f(m: HashMap<u32, u32>) { for k in m.keys() { let _ = k; } }\n";
        assert_eq!(run("crates/simnet/src/x.rs", src).len(), 1);
        assert!(run("crates/repolint/src/x.rs", src).is_empty());
    }

    #[test]
    fn for_loop_over_hash_field_flagged() {
        let src = "struct S { m: HashSet<u32> }\nimpl S { fn f(&self) { for k in &self.m { let _ = k; } } }\n";
        let f = run("crates/bgp/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("for-loop"));
    }

    #[test]
    fn indexing_in_decode_path() {
        let f = run("crates/bgp/src/msg.rs", "fn d(b: &[u8]) -> u8 { b[0] }\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "panicky-decode");
    }

    #[test]
    fn vec_macro_and_array_literal_not_indexing() {
        let src = "fn d() { let v = vec![0u8; 4]; let a = [1, 2]; let _ = (v, a); }\n";
        assert!(run("crates/bgp/src/msg.rs", src).is_empty());
    }

    #[test]
    fn cfg_test_code_is_exempt() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { let x: Option<u8> = None; x.unwrap(); }\n}\n";
        assert!(run("crates/bgp/src/msg.rs", src).is_empty());
    }

    #[test]
    fn raw_spawn_allowed_only_in_bench_par_and_shard() {
        let src = "fn f() { std::thread::spawn(|| {}); }\n";
        assert_eq!(run("crates/core/src/x.rs", src).len(), 1);
        assert!(run("crates/bench/src/par.rs", src).is_empty());
        assert!(run("crates/simnet/src/shard.rs", src).is_empty());
    }

    #[test]
    fn hot_alloc_flags_typed_clones_in_hot_paths_only() {
        let src = "fn f(route: Route) -> Route { route.clone() }\n";
        let f = run("crates/bgp/src/rib.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "hot-alloc");
        // Same source outside the hot-path list: silent.
        assert!(run("crates/bgp/src/speaker.rs", src).is_empty());
    }

    #[test]
    fn hot_alloc_ignores_untyped_and_cold_clones() {
        // Closure param (no type ascription) and a non-hot type: both
        // out of scope by design.
        let src = "fn f(v: Vec<u32>) { let _ = v.clone(); let g = |r| r; let _ = g(1); }\n";
        assert!(run("crates/bgmp/src/router.rs", src).is_empty());
    }

    #[test]
    fn ambient_rng_flagged() {
        let f = run(
            "crates/masc/src/x.rs",
            "fn f() { let r = rand::random::<u64>(); }\n",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "ambient-rng");
    }
}
