//! A lightweight item-level parser over the lexed code view.
//!
//! The token rules in [`crate::rules`] need no structure, but the
//! coverage rules ([`crate::coverage`]) do: "every field of `FaultStats`
//! is referenced in its `Snapshot::encode` body" is a statement about
//! *items* — a struct definition here, an `impl` block there, a fn body
//! inside it. This module extracts exactly that much structure:
//!
//! * `struct` definitions with their named fields (name + line each) and
//!   leading `#[derive(...)]` list;
//! * `enum` definitions with their variants and derives;
//! * `impl` blocks with trait + self-type resolution (`impl
//!   snapshot::Snapshot for BgmpMsg` → trait `Snapshot`, self `BgmpMsg`)
//!   and the byte span of every fn body inside them.
//!
//! It is *not* a Rust parser: no expressions, no types beyond base-name
//! resolution, no name resolution. It works on the code view (comments
//! and literal contents blanked by [`crate::lexer`]), so every `{`/`}`
//! it sees is structural and brace matching is exact. Items nested in
//! `mod` blocks are found (the scan is positional, not recursive);
//! fn-local items are deliberately out of scope.

/// One named field of a struct.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// 1-based line of the field name.
    pub line: usize,
}

/// A `struct` definition. Tuple and unit structs parse with an empty
/// field list (they have no *named* fields to cover).
#[derive(Debug, Clone)]
pub struct StructDef {
    /// Type name.
    pub name: String,
    /// 1-based line of the `struct` keyword.
    pub line: usize,
    /// Named fields, in declaration order.
    pub fields: Vec<Field>,
    /// Traits listed in leading `#[derive(...)]` attributes.
    pub derives: Vec<String>,
}

/// One variant of an enum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Variant {
    /// Variant name.
    pub name: String,
    /// 1-based line of the variant name.
    pub line: usize,
}

/// An `enum` definition.
#[derive(Debug, Clone)]
pub struct EnumDef {
    /// Type name.
    pub name: String,
    /// 1-based line of the `enum` keyword.
    pub line: usize,
    /// Variants, in declaration order.
    pub variants: Vec<Variant>,
    /// Traits listed in leading `#[derive(...)]` attributes.
    pub derives: Vec<String>,
}

/// A fn inside an `impl` block.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Fn name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Byte span of the body in the code view, including both braces.
    pub body: (usize, usize),
}

/// An `impl` block.
#[derive(Debug, Clone)]
pub struct ImplDef {
    /// Base name of the implemented trait (`snapshot::Snapshot` →
    /// `Snapshot`); `None` for inherent impls.
    pub trait_name: Option<String>,
    /// Base name of the self type (`Option<T>` → `Option`; empty for
    /// tuples/arrays/macro metavariables).
    pub self_name: String,
    /// 1-based line of the `impl` keyword.
    pub line: usize,
    /// Fns directly inside the impl body.
    pub fns: Vec<FnDef>,
}

/// Every item extracted from one file.
#[derive(Debug, Default)]
pub struct Items {
    /// `struct` definitions.
    pub structs: Vec<StructDef>,
    /// `enum` definitions.
    pub enums: Vec<EnumDef>,
    /// `impl` blocks.
    pub impls: Vec<ImplDef>,
}

impl ImplDef {
    /// The fn with this name, if present.
    pub fn find_fn(&self, name: &str) -> Option<&FnDef> {
        self.fns.iter().find(|f| f.name == name)
    }
}

fn is_ident_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn line_of(code: &[u8], pos: usize) -> usize {
    code[..pos.min(code.len())]
        .iter()
        .filter(|&&b| b == b'\n')
        .count()
        + 1
}

/// Parses the code view of one file into its items.
pub fn parse_items(code: &str) -> Items {
    let bytes = code.as_bytes();
    let mut items = Items::default();
    let mut i = 0usize;
    while i < bytes.len() {
        if !is_ident_char(bytes[i]) {
            i += 1;
            continue;
        }
        let s = i;
        while i < bytes.len() && is_ident_char(bytes[i]) {
            i += 1;
        }
        // Not an ident start (mid-ident was impossible: we always
        // consume whole idents).
        if s > 0 && is_ident_char(bytes[s - 1]) {
            continue;
        }
        match &bytes[s..i] {
            b"struct" if at_item_position(bytes, s) => {
                if let Some((def, after)) = parse_struct(bytes, s, i) {
                    items.structs.push(def);
                    i = after;
                }
            }
            b"enum" if at_item_position(bytes, s) => {
                if let Some((def, after)) = parse_enum(bytes, s, i) {
                    items.enums.push(def);
                    i = after;
                }
            }
            b"impl" if at_item_position(bytes, s) => {
                if let Some((def, after)) = parse_impl(bytes, s, i) {
                    items.impls.push(def);
                    i = after;
                }
            }
            _ => {}
        }
    }
    items
}

/// True if the keyword starting at `s` sits at item position: start of
/// file or preceded (ignoring whitespace) by `;`, `{`, `}`, `]` (end of
/// an attribute), `)` (end of `pub(crate)`), or the `pub` keyword. This
/// rejects `-> impl Trait`, `&impl Trait`, `dyn Fn` arguments and other
/// expression/type positions.
fn at_item_position(bytes: &[u8], s: usize) -> bool {
    let mut i = s;
    while i > 0 && bytes[i - 1].is_ascii_whitespace() {
        i -= 1;
    }
    if i == 0 {
        return true;
    }
    match bytes[i - 1] {
        b';' | b'{' | b'}' | b']' | b')' => true,
        c if is_ident_char(c) => {
            let mut b = i;
            while b > 0 && is_ident_char(bytes[b - 1]) {
                b -= 1;
            }
            matches!(&bytes[b..i], b"pub" | b"unsafe" | b"default")
        }
        _ => false,
    }
}

/// Next non-whitespace byte index at or after `i`.
fn next_ns(bytes: &[u8], i: usize) -> Option<usize> {
    (i..bytes.len()).find(|&j| !bytes[j].is_ascii_whitespace())
}

/// Reads the ident starting at `i`, returning (text, end).
fn read_ident(bytes: &[u8], i: usize) -> Option<(String, usize)> {
    if i >= bytes.len() || !is_ident_char(bytes[i]) || bytes[i].is_ascii_digit() {
        return None;
    }
    let mut e = i;
    while e < bytes.len() && is_ident_char(bytes[e]) {
        e += 1;
    }
    Some((String::from_utf8_lossy(&bytes[i..e]).into_owned(), e))
}

/// Skips a balanced `<...>` generics group starting at `open` (which
/// must be `<`). `>` preceded by `-` (a `->` arrow inside an `Fn`
/// bound) does not close. Returns the index past the closing `>`.
fn skip_generics(bytes: &[u8], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < bytes.len() {
        match bytes[i] {
            b'<' => depth += 1,
            b'>' if i > 0 && bytes[i - 1] == b'-' => {}
            b'>' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    i
}

/// Finds the matching close brace for the `{` at `open`; returns the
/// index *past* it. Brace characters in strings/comments were blanked
/// by the lexer, so counting is exact.
fn match_brace(bytes: &[u8], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < bytes.len() {
        match bytes[i] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    i
}

/// Collects the derive list from `#[derive(...)]` attributes
/// immediately preceding the item keyword at `kw` (skipping `pub`,
/// `pub(...)`, and non-derive attributes).
fn leading_derives(bytes: &[u8], kw: usize) -> Vec<String> {
    let mut derives = Vec::new();
    let mut i = kw;
    loop {
        while i > 0 && bytes[i - 1].is_ascii_whitespace() {
            i -= 1;
        }
        if i == 0 {
            break;
        }
        match bytes[i - 1] {
            b')' => {
                // `pub(crate)` / `pub(super)` — skip the group and the
                // `pub` before it.
                let mut depth = 0usize;
                let mut j = i;
                while j > 0 {
                    j -= 1;
                    match bytes[j] {
                        b')' => depth += 1,
                        b'(' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                i = j;
            }
            c if is_ident_char(c) => {
                let mut b = i;
                while b > 0 && is_ident_char(bytes[b - 1]) {
                    b -= 1;
                }
                if !matches!(&bytes[b..i], b"pub" | b"unsafe" | b"default") {
                    break;
                }
                i = b;
            }
            b']' => {
                // An attribute `#[ ... ]` ending here; match back to
                // its `[`.
                let mut depth = 0usize;
                let mut j = i;
                while j > 0 {
                    j -= 1;
                    match bytes[j] {
                        b']' => depth += 1,
                        b'[' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                let content = String::from_utf8_lossy(&bytes[j + 1..i - 1]).into_owned();
                let compact = content.trim();
                if let Some(rest) = compact.strip_prefix("derive") {
                    let inner = rest.trim().trim_start_matches('(');
                    let inner = inner.strip_suffix(')').unwrap_or(inner);
                    for t in inner.split(',') {
                        let t = t.trim();
                        if !t.is_empty() {
                            // `serde::Serialize` → `Serialize`.
                            derives.push(t.rsplit("::").next().unwrap_or(t).to_string());
                        }
                    }
                }
                // Step past the `#` before the `[`.
                while j > 0 && (bytes[j - 1] == b'#' || bytes[j - 1].is_ascii_whitespace()) {
                    j -= 1;
                    if bytes[j] == b'#' {
                        break;
                    }
                }
                i = j;
            }
            _ => break,
        }
    }
    derives
}

/// Parses a struct whose `struct` keyword spans `kw..kw_end`. Returns
/// the def and the index to resume scanning from.
fn parse_struct(bytes: &[u8], kw: usize, kw_end: usize) -> Option<(StructDef, usize)> {
    let name_at = next_ns(bytes, kw_end)?;
    let (name, mut i) = read_ident(bytes, name_at)?;
    let derives = leading_derives(bytes, kw);
    // Generics, then `;` (unit), `(` (tuple), `where`, or `{`.
    loop {
        let n = next_ns(bytes, i)?;
        match bytes[n] {
            b'<' => i = skip_generics(bytes, n),
            b';' => {
                return Some((
                    StructDef {
                        name,
                        line: line_of(bytes, kw),
                        fields: Vec::new(),
                        derives,
                    },
                    n + 1,
                ));
            }
            b'(' => {
                // Tuple struct: skip the paren group and the trailing
                // `;` (possibly after a where clause).
                let mut depth = 0usize;
                let mut j = n;
                while j < bytes.len() {
                    match bytes[j] {
                        b'(' => depth += 1,
                        b')' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                return Some((
                    StructDef {
                        name,
                        line: line_of(bytes, kw),
                        fields: Vec::new(),
                        derives,
                    },
                    j + 1,
                ));
            }
            b'{' => {
                let end = match_brace(bytes, n);
                let fields = parse_fields(bytes, n + 1, end.saturating_sub(1));
                return Some((
                    StructDef {
                        name,
                        line: line_of(bytes, kw),
                        fields,
                        derives,
                    },
                    end,
                ));
            }
            _ => {
                // A where clause or anything else: skip one token.
                i = if is_ident_char(bytes[n]) {
                    read_ident(bytes, n).map(|(_, e)| e).unwrap_or(n + 1)
                } else {
                    n + 1
                };
            }
        }
    }
}

/// Parses the named fields between `from..to` (the struct body without
/// its braces). A field is `[attrs] [pub[(..)]] name : type`, separated
/// by top-level commas.
fn parse_fields(bytes: &[u8], from: usize, to: usize) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut i = from;
    while i < to {
        // Skip whitespace and attributes.
        let Some(n) = next_ns(bytes, i) else { break };
        if n >= to {
            break;
        }
        if bytes[n] == b'#' {
            // Skip `#[...]`.
            let Some(open) = next_ns(bytes, n + 1) else {
                break;
            };
            if bytes[open] == b'[' {
                let mut depth = 0usize;
                let mut j = open;
                while j < to {
                    match bytes[j] {
                        b'[' => depth += 1,
                        b']' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                i = j + 1;
                continue;
            }
            i = n + 1;
            continue;
        }
        // Visibility.
        if let Some((id, e)) = read_ident(bytes, n) {
            if id == "pub" {
                let Some(after) = next_ns(bytes, e) else {
                    break;
                };
                if bytes[after] == b'(' {
                    let mut depth = 0usize;
                    let mut j = after;
                    while j < to {
                        match bytes[j] {
                            b'(' => depth += 1,
                            b')' => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    i = j + 1;
                } else {
                    i = e;
                }
                continue;
            }
            // Field name: must be followed by `:` (not `::`).
            let Some(after) = next_ns(bytes, e) else {
                break;
            };
            if bytes[after] == b':' && bytes.get(after + 1) != Some(&b':') {
                fields.push(Field {
                    name: id,
                    line: line_of(bytes, n),
                });
            }
            // Skip to the next top-level comma.
            i = skip_to_comma(bytes, after, to);
            continue;
        }
        i = n + 1;
    }
    fields
}

/// Advances past the type expression to just after the next comma at
/// paren/bracket/brace/angle depth zero (or `to`).
fn skip_to_comma(bytes: &[u8], from: usize, to: usize) -> usize {
    let mut depth = 0isize;
    let mut angle = 0isize;
    let mut i = from;
    while i < to {
        match bytes[i] {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => depth -= 1,
            b'<' => angle += 1,
            b'>' if i > 0 && bytes[i - 1] == b'-' => {}
            b'>' => angle -= 1,
            b',' if depth == 0 && angle <= 0 => return i + 1,
            _ => {}
        }
        i += 1;
    }
    to
}

/// Parses an enum whose `enum` keyword spans `kw..kw_end`.
fn parse_enum(bytes: &[u8], kw: usize, kw_end: usize) -> Option<(EnumDef, usize)> {
    let name_at = next_ns(bytes, kw_end)?;
    let (name, mut i) = read_ident(bytes, name_at)?;
    let derives = leading_derives(bytes, kw);
    loop {
        let n = next_ns(bytes, i)?;
        match bytes[n] {
            b'<' => i = skip_generics(bytes, n),
            b'{' => {
                let end = match_brace(bytes, n);
                let variants = parse_variants(bytes, n + 1, end.saturating_sub(1));
                return Some((
                    EnumDef {
                        name,
                        line: line_of(bytes, kw),
                        variants,
                        derives,
                    },
                    end,
                ));
            }
            b';' => return None, // `enum Foo;` is not Rust; bail
            _ => {
                i = if is_ident_char(bytes[n]) {
                    read_ident(bytes, n).map(|(_, e)| e).unwrap_or(n + 1)
                } else {
                    n + 1
                };
            }
        }
    }
}

/// Parses variants between `from..to`: `[attrs] Name [(..) | {..} | =
/// expr]`, comma-separated at top level.
fn parse_variants(bytes: &[u8], from: usize, to: usize) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut i = from;
    while i < to {
        let Some(n) = next_ns(bytes, i) else { break };
        if n >= to {
            break;
        }
        if bytes[n] == b'#' {
            let Some(open) = next_ns(bytes, n + 1) else {
                break;
            };
            if bytes[open] == b'[' {
                let mut depth = 0usize;
                let mut j = open;
                while j < to {
                    match bytes[j] {
                        b'[' => depth += 1,
                        b']' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                i = j + 1;
                continue;
            }
            i = n + 1;
            continue;
        }
        if let Some((id, e)) = read_ident(bytes, n) {
            variants.push(Variant {
                name: id,
                line: line_of(bytes, n),
            });
            i = skip_to_comma(bytes, e, to);
            continue;
        }
        i = n + 1;
    }
    variants
}

/// Parses an impl block whose `impl` keyword spans `kw..kw_end`.
fn parse_impl(bytes: &[u8], kw: usize, kw_end: usize) -> Option<(ImplDef, usize)> {
    let mut i = kw_end;
    // Optional generics directly after `impl`.
    if let Some(n) = next_ns(bytes, i) {
        if bytes[n] == b'<' {
            i = skip_generics(bytes, n);
        }
    }
    // Header tokens up to the body `{` (or `where`), split on `for`.
    let mut before_for: Vec<String> = Vec::new();
    let mut after_for: Vec<String> = Vec::new();
    let mut saw_for = false;
    let open;
    loop {
        let n = next_ns(bytes, i)?;
        match bytes[n] {
            b'{' => {
                open = n;
                break;
            }
            b'<' => i = skip_generics(bytes, n),
            b'(' | b'[' => {
                // Tuple/array self type: skip the group; base name
                // stays empty.
                let (o, c) = if bytes[n] == b'(' {
                    (b'(', b')')
                } else {
                    (b'[', b']')
                };
                let mut depth = 0usize;
                let mut j = n;
                while j < bytes.len() {
                    if bytes[j] == o {
                        depth += 1;
                    } else if bytes[j] == c {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    j += 1;
                }
                i = j + 1;
            }
            _ if is_ident_char(bytes[n]) => {
                let (id, e) = read_ident(bytes, n)?;
                i = e;
                match id.as_str() {
                    "for" => saw_for = true,
                    "where" => {
                        // Skip the where clause to the body brace.
                        let mut j = i;
                        while j < bytes.len() && bytes[j] != b'{' {
                            if bytes[j] == b'<' {
                                j = skip_generics(bytes, j);
                            } else {
                                j += 1;
                            }
                        }
                        i = j;
                    }
                    _ => {
                        if saw_for {
                            after_for.push(id);
                        } else {
                            before_for.push(id);
                        }
                    }
                }
            }
            _ => i = n + 1,
        }
    }
    let end = match_brace(bytes, open);
    let (trait_name, self_name) = if saw_for {
        (
            before_for.last().cloned(),
            after_for.last().cloned().unwrap_or_default(),
        )
    } else {
        (None, before_for.last().cloned().unwrap_or_default())
    };
    let fns = parse_fns(bytes, open + 1, end.saturating_sub(1));
    Some((
        ImplDef {
            trait_name,
            self_name,
            line: line_of(bytes, kw),
            fns,
        },
        end,
    ))
}

/// Extracts fns directly inside an impl body span.
fn parse_fns(bytes: &[u8], from: usize, to: usize) -> Vec<FnDef> {
    let mut fns = Vec::new();
    let mut i = from;
    while i < to {
        if !is_ident_char(bytes[i]) {
            i += 1;
            continue;
        }
        let s = i;
        while i < to && is_ident_char(bytes[i]) {
            i += 1;
        }
        if &bytes[s..i] != b"fn" || (s > 0 && is_ident_char(bytes[s - 1])) {
            continue;
        }
        let Some(name_at) = next_ns(bytes, i) else {
            break;
        };
        let Some((name, e)) = read_ident(bytes, name_at) else {
            continue;
        };
        // Find the body `{`, skipping the signature (parens, generics,
        // return type, where clause). A `;` first means a trait-method
        // declaration without a body.
        let mut j = e;
        let mut body = None;
        while j < to {
            match bytes[j] {
                b'{' => {
                    body = Some(j);
                    break;
                }
                b';' => break,
                b'<' => j = skip_generics(bytes, j),
                b'(' => {
                    let mut depth = 0usize;
                    while j < to {
                        match bytes[j] {
                            b'(' => depth += 1,
                            b')' => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    j += 1;
                }
                _ => j += 1,
            }
        }
        if let Some(open) = body {
            let end = match_brace(bytes, open);
            fns.push(FnDef {
                name,
                line: line_of(bytes, s),
                body: (open, end),
            });
            i = end;
        } else {
            i = j;
        }
    }
    fns
}

/// True if `name` occurs as a whole identifier anywhere in
/// `code[span.0..span.1]`.
pub fn ident_in_span(code: &str, span: (usize, usize), name: &str) -> bool {
    let hay = &code.as_bytes()[span.0.min(code.len())..span.1.min(code.len())];
    let needle = name.as_bytes();
    if needle.is_empty() {
        return false;
    }
    let mut i = 0usize;
    while i + needle.len() <= hay.len() {
        if &hay[i..i + needle.len()] == needle {
            let before_ok = i == 0 || !is_ident_char(hay[i - 1]);
            let after_ok = i + needle.len() == hay.len() || !is_ident_char(hay[i + needle.len()]);
            if before_ok && after_ok {
                return true;
            }
        }
        i += 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> Items {
        parse_items(&lex(src).code)
    }

    #[test]
    fn struct_fields_and_derives() {
        let src = "#[derive(Debug, Clone, Serialize, Deserialize)]\npub struct FaultModel {\n    /// Loss probability.\n    pub loss: f64,\n    pub dup: f64,\n    jitter_ms: u64,\n}\n";
        let items = parse(src);
        assert_eq!(items.structs.len(), 1);
        let s = &items.structs[0];
        assert_eq!(s.name, "FaultModel");
        assert_eq!(
            s.fields.iter().map(|f| f.name.as_str()).collect::<Vec<_>>(),
            vec!["loss", "dup", "jitter_ms"]
        );
        assert_eq!(s.fields[0].line, 4);
        assert!(s.derives.iter().any(|d| d == "Serialize"));
        assert!(s.derives.iter().any(|d| d == "Deserialize"));
    }

    #[test]
    fn tuple_and_unit_structs_have_no_named_fields() {
        let items = parse("pub struct SimTime(pub u64);\nstruct Marker;\n");
        assert_eq!(items.structs.len(), 2);
        assert!(items.structs[0].fields.is_empty());
        assert!(items.structs[1].fields.is_empty());
    }

    #[test]
    fn generic_fields_do_not_split_on_inner_commas() {
        let src = "struct S {\n    map: BTreeMap<u32, Vec<(u8, u8)>>,\n    next: Option<fn(u32) -> bool>,\n}\n";
        let s = &parse(src).structs[0];
        assert_eq!(
            s.fields.iter().map(|f| f.name.as_str()).collect::<Vec<_>>(),
            vec!["map", "next"]
        );
    }

    #[test]
    fn enum_variants_with_payloads() {
        let src = "pub enum Msg {\n    Hello { router: u32 },\n    Data(u64, u32),\n    Quit,\n}\n";
        let e = &parse(src).enums[0];
        assert_eq!(e.name, "Msg");
        assert_eq!(
            e.variants
                .iter()
                .map(|v| v.name.as_str())
                .collect::<Vec<_>>(),
            vec!["Hello", "Data", "Quit"]
        );
        assert_eq!(e.variants[1].line, 3);
    }

    #[test]
    fn impl_trait_and_self_resolution() {
        let src = "impl snapshot::Snapshot for BgmpMsg {\n    fn encode(&self, enc: &mut Enc) { self.x; }\n    fn decode(dec: &mut Dec<'_>) -> Result<Self, SnapError> { Ok(Self::X) }\n}\n";
        let im = &parse(src).impls[0];
        assert_eq!(im.trait_name.as_deref(), Some("Snapshot"));
        assert_eq!(im.self_name, "BgmpMsg");
        assert_eq!(im.fns.len(), 2);
        assert!(im.find_fn("encode").is_some());
        assert!(im.find_fn("decode").is_some());
    }

    #[test]
    fn generic_impl_resolves_base_names() {
        let src = "impl<T: Snapshot + Ord> Snapshot for BTreeSet<T> {\n    fn encode(&self, enc: &mut Enc) {}\n}\n";
        let im = &parse(src).impls[0];
        assert_eq!(im.trait_name.as_deref(), Some("Snapshot"));
        assert_eq!(im.self_name, "BTreeSet");
    }

    #[test]
    fn inherent_impl_has_no_trait() {
        let src = "impl Engine {\n    pub fn checkpoint(&self) -> Vec<u8> { Vec::new() }\n}\n";
        let im = &parse(src).impls[0];
        assert_eq!(im.trait_name, None);
        assert_eq!(im.self_name, "Engine");
    }

    #[test]
    fn return_position_impl_is_not_an_item() {
        let src = "fn f() -> impl Iterator<Item = u32> {\n    (0..3).map(|x| x)\n}\nstruct After { a: u8 }\n";
        let items = parse(src);
        assert!(items.impls.is_empty());
        assert_eq!(items.structs.len(), 1);
    }

    #[test]
    fn fn_bodies_span_and_nested_braces() {
        let src = "impl S {\n    fn a(&self) { if x { y } else { z } }\n    fn b(&self) { w }\n}\n";
        let im = &parse(src).impls[0];
        let a = im.find_fn("a").unwrap();
        let body = &src[a.body.0..a.body.1];
        assert!(body.contains("else { z }"));
        assert!(!body.contains("fn b"));
        assert!(im.find_fn("b").is_some());
    }

    #[test]
    fn where_clause_impl_parses() {
        let src = "impl<T> Snapshot for Wrapper<T> where T: Clone {\n    fn encode(&self) {}\n}\n";
        let im = &parse(src).impls[0];
        assert_eq!(im.self_name, "Wrapper");
        assert_eq!(im.fns.len(), 1);
    }

    #[test]
    fn ident_in_span_is_boundary_exact() {
        let code = "self.loss_total + loss";
        assert!(ident_in_span(code, (0, code.len()), "loss"));
        assert!(ident_in_span(code, (0, code.len()), "loss_total"));
        assert!(!ident_in_span(code, (0, 14), "loss"));
    }

    #[test]
    fn trait_method_declaration_without_body_is_skipped() {
        let src = "impl Probe for P {\n    fn id(&self) -> u32;\n    fn run(&self) { go() }\n}\n";
        let im = &parse(src).impls[0];
        assert_eq!(im.fns.len(), 1);
        assert_eq!(im.fns[0].name, "run");
    }
}
