//! Differential property tests for [`SpaceTracker`]'s incrementally
//! maintained free-list: after an arbitrary interleaving of inserts
//! and removes (overlapping entries included), the maintained maximal
//! free decomposition must equal an independent recomputation from the
//! surviving entry set.

use mcast_addr::{Prefix, SpaceTracker};
use proptest::prelude::*;

/// Independent reference: maximal free decomposition of `node` minus
/// the union of `in_use`, via plain recursion over the prefix tree.
fn reference_free(node: Prefix, in_use: &[Prefix], out: &mut Vec<Prefix>) {
    let overlapping: Vec<Prefix> = in_use
        .iter()
        .filter(|u| u.overlaps(&node))
        .copied()
        .collect();
    if overlapping.is_empty() {
        out.push(node);
        return;
    }
    if overlapping.iter().any(|u| u.covers(&node)) {
        return;
    }
    let (l, r) = node.split().expect("covered /32 is caught above");
    reference_free(l, &overlapping, out);
    reference_free(r, &overlapping, out);
}

/// Decodes raw values into a prefix inside `root` (root is 224.0.0.0/8
/// so depth stays bounded and overlaps are common).
fn decode_prefix(raw_base: u32, raw_len: u8) -> Prefix {
    let root = "224.0.0.0/8".parse::<Prefix>().unwrap();
    let len = root.len() + 1 + raw_len % 12; // /9 ..= /20
    let base = root.base_u32() | ((raw_base << 12) & !root.mask() & Prefix::MULTICAST.mask());
    Prefix::containing(mcast_addr::McastAddr(base), len).expect("len <= 32")
}

fn check_against_reference(t: &SpaceTracker) {
    let entries: Vec<Prefix> = t.in_use().copied().collect();
    let mut want = Vec::new();
    reference_free(t.root(), &entries, &mut want);
    assert_eq!(t.free_prefixes(), want, "free decomposition diverged");
    let want_free: u64 = want.iter().map(|p| p.size()).sum();
    assert_eq!(t.used_size(), t.root().size() - want_free);
    // Size-class index agrees with the decomposition.
    let want_min = want.iter().map(|p| p.len()).min();
    assert_eq!(t.shortest_free_len(), want_min);
    if let Some(min) = want_min {
        let want_largest: Vec<Prefix> = want.iter().filter(|p| p.len() == min).copied().collect();
        assert_eq!(t.largest_free(), want_largest);
    } else {
        assert!(t.largest_free().is_empty());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Incremental free-list ≡ recompute-from-scratch after every op.
    #[test]
    fn incremental_matches_reference(
        ops in prop::collection::vec((any::<u32>(), any::<u8>(), any::<bool>()), 1..60),
    ) {
        let root = "224.0.0.0/8".parse::<Prefix>().unwrap();
        let mut t = SpaceTracker::new(root);
        let mut live: Vec<Prefix> = Vec::new();
        for (raw_base, raw_len, is_insert) in &ops {
            let p = decode_prefix(*raw_base, *raw_len);
            if *is_insert {
                if t.insert(p) {
                    live.push(p);
                }
            } else {
                // Remove an existing entry when one decodes close, else
                // exercise the not-present path.
                let target = live
                    .iter()
                    .position(|q| q.base_u32() <= p.base_u32())
                    .map(|i| live[i]);
                match target {
                    Some(q) => {
                        assert!(t.remove(&q));
                        live.retain(|x| *x != q);
                    }
                    None => assert!(!t.remove(&p) || live.contains(&p)),
                }
            }
            check_against_reference(&t);
        }
    }

    /// `claim_candidates` equals the paper rule computed from the
    /// reference decomposition, and every candidate is actually free.
    #[test]
    fn candidates_match_reference(
        entries in prop::collection::vec((any::<u32>(), any::<u8>()), 0..40),
        want_len in 9u8..24,
    ) {
        let root = "224.0.0.0/8".parse::<Prefix>().unwrap();
        let mut t = SpaceTracker::new(root);
        for (b, l) in &entries {
            t.insert(decode_prefix(*b, *l));
        }
        let live: Vec<Prefix> = t.in_use().copied().collect();
        let mut free = Vec::new();
        reference_free(root, &live, &mut free);
        let min = free.iter().map(|p| p.len()).min();
        let want: Vec<Prefix> = match min {
            Some(m) => free
                .iter()
                .filter(|p| p.len() == m)
                .filter_map(|p| p.first_subprefix(want_len))
                .collect(),
            None => Vec::new(),
        };
        prop_assert_eq!(t.claim_candidates(want_len), want.clone());
        for c in &want {
            prop_assert!(t.is_free(c), "candidate {} not free", c);
        }
    }

    /// `drain_covered_by` frees exactly the drained entries' space.
    #[test]
    fn drain_matches_reference(
        entries in prop::collection::vec((any::<u32>(), any::<u8>()), 1..30),
        cover in (any::<u32>(), any::<u8>()),
    ) {
        let root = "224.0.0.0/8".parse::<Prefix>().unwrap();
        let mut t = SpaceTracker::new(root);
        for (b, l) in &entries {
            t.insert(decode_prefix(*b, *l));
        }
        let covering = decode_prefix(cover.0, cover.1)
            .parent()
            .unwrap_or(root);
        let drained = t.drain_covered_by(&covering);
        for d in &drained {
            prop_assert!(covering.covers(d));
        }
        for q in t.in_use() {
            prop_assert!(!covering.covers(q), "survivor {} still covered", q);
        }
        check_against_reference(&t);
    }
}
