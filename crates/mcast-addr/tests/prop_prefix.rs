//! Property tests for prefix algebra and the space/block allocators.

use mcast_addr::prefix::{McastAddr, Prefix};
use mcast_addr::space::SpaceTracker;
use mcast_addr::BlockAllocator;
use proptest::prelude::*;

/// An arbitrary valid multicast prefix of mask length 4..=32.
fn arb_prefix() -> impl Strategy<Value = Prefix> {
    (4u8..=32, any::<u32>()).prop_map(|(len, bits)| {
        let addr = 0xE000_0000 | (bits & 0x0FFF_FFFF);
        Prefix::containing(McastAddr(addr), len).unwrap()
    })
}

/// A prefix strictly inside a small root, for allocator tests.
fn arb_sub(rootlen: u8) -> impl Strategy<Value = Prefix> {
    (rootlen..=32, any::<u32>()).prop_map(move |(len, bits)| {
        let root = Prefix::new(0xE000_0000, rootlen).unwrap();
        let host = bits & !root.mask();
        Prefix::containing(McastAddr(root.base_u32() | host), len).unwrap()
    })
}

proptest! {
    #[test]
    fn display_parse_roundtrip(p in arb_prefix()) {
        let s = p.to_string();
        let q: Prefix = s.parse().unwrap();
        prop_assert_eq!(p, q);
    }

    #[test]
    fn parent_covers_child(p in arb_prefix()) {
        if let Some(parent) = p.parent() {
            prop_assert!(parent.covers(&p));
            prop_assert_eq!(parent.size(), p.size() * 2);
        }
    }

    #[test]
    fn buddy_is_disjoint_and_shares_parent(p in arb_prefix()) {
        if let Some(b) = p.buddy() {
            prop_assert!(!p.overlaps(&b));
            prop_assert_eq!(p.parent().unwrap(), b.parent().unwrap());
            prop_assert_eq!(b.buddy().unwrap(), p);
        }
    }

    #[test]
    fn split_partitions(p in arb_prefix()) {
        if let Some((l, r)) = p.split() {
            prop_assert!(!l.overlaps(&r));
            prop_assert!(p.covers(&l) && p.covers(&r));
            prop_assert_eq!(l.size() + r.size(), p.size());
        }
    }

    #[test]
    fn covers_iff_base_and_last_contained(a in arb_prefix(), b in arb_prefix()) {
        let covers = a.covers(&b);
        let by_range = a.contains(b.base()) && a.contains(b.last());
        prop_assert_eq!(covers, by_range);
    }

    #[test]
    fn overlap_is_symmetric_and_means_shared_addr(a in arb_prefix(), b in arb_prefix()) {
        prop_assert_eq!(a.overlaps(&b), b.overlaps(&a));
        // Prefix overlap is exactly base-containment one way or the other.
        let shared = a.contains(b.base()) || b.contains(a.base());
        prop_assert_eq!(a.overlaps(&b), shared);
    }

    #[test]
    fn len_for_size_is_tight(n in 1u64..=(1u64 << 28)) {
        let len = Prefix::len_for_size(n);
        let size = 1u64 << (32 - len as u32);
        prop_assert!(size >= n);
        if len < 32 {
            prop_assert!(size / 2 < n, "len {} not tight for {}", len, n);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Free space computed by the tracker is disjoint from entries,
    /// internally disjoint, and together with entries covers the root.
    #[test]
    fn tracker_free_space_partition(subs in prop::collection::vec(arb_sub(16), 0..12)) {
        let root = Prefix::new(0xE000_0000, 16).unwrap();
        let mut t = SpaceTracker::new(root);
        for s in &subs {
            t.insert(*s);
        }
        let free = t.free_prefixes();
        for (i, f) in free.iter().enumerate() {
            for g in free.iter().skip(i + 1) {
                prop_assert!(!f.overlaps(g));
            }
            for u in t.in_use() {
                prop_assert!(!f.overlaps(u));
            }
            prop_assert!(root.covers(f));
        }
        let free_sz: u64 = free.iter().map(|f| f.size()).sum();
        prop_assert_eq!(free_sz + t.used_size(), root.size());
    }

    /// Claim candidates are free, correctly sized, and within the root.
    #[test]
    fn claim_candidates_are_valid(
        subs in prop::collection::vec(arb_sub(16), 0..10),
        want in 16u8..=32,
    ) {
        let root = Prefix::new(0xE000_0000, 16).unwrap();
        let mut t = SpaceTracker::new(root);
        for s in &subs {
            t.insert(*s);
        }
        for c in t.claim_candidates(want) {
            prop_assert_eq!(c.len(), want);
            prop_assert!(t.is_free(&c));
        }
    }

    /// Allocated blocks never overlap, stay within owned prefixes, and
    /// freeing makes the space reusable.
    #[test]
    fn block_allocator_invariants(ops in prop::collection::vec((24u8..=30, any::<bool>()), 1..60)) {
        let mut a = BlockAllocator::new();
        a.add_prefix(Prefix::new(0xE000_0000, 22).unwrap());
        let mut live: Vec<Prefix> = Vec::new();
        for (len, is_alloc) in ops {
            if is_alloc || live.is_empty() {
                if let Some(b) = a.alloc_block(len) {
                    for other in &live {
                        prop_assert!(!b.overlaps(other), "{} overlaps {}", b, other);
                    }
                    prop_assert!(Prefix::new(0xE000_0000, 22).unwrap().covers(&b));
                    live.push(b);
                }
            } else {
                let b = live.swap_remove(0);
                prop_assert!(a.free_block(&b));
            }
            let used: u64 = live.iter().map(|b| b.size()).sum();
            prop_assert_eq!(a.used(), used);
        }
    }
}
