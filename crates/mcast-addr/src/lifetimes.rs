//! Lifetime (lease) bookkeeping for claimed address ranges.
//!
//! Every MASC claim carries a lifetime (§4.3.1): once it expires without
//! renewal the range reverts to the parent's free pool. [`LeaseTable`]
//! is a small expiry-ordered table shared by the MASC node (ranges
//! claimed from the parent) and the MAAS (blocks leased to clients).

use std::collections::BTreeMap;

/// Seconds since simulation start; the whole workspace uses the same
/// convention (see `simnet::time`). Kept as a bare `u64` here so this
/// substrate does not depend on the simulator.
pub type Secs = u64;

/// A table of leased items ordered by expiry time.
///
/// Items are compared by equality for renewal/cancellation; an item may
/// appear only once (renewing moves it to the new expiry).
#[derive(Debug, Clone)]
pub struct LeaseTable<T: Ord + Clone> {
    by_expiry: BTreeMap<Secs, Vec<T>>,
    // lint:allow(snapshot-field-coverage) — derived reverse index, rebuilt from by_expiry on decode
    expiry_of: BTreeMap<T, Secs>,
}

impl<T: Ord + Clone> Default for LeaseTable<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Ord + Clone> LeaseTable<T> {
    /// Creates an empty table.
    pub fn new() -> Self {
        LeaseTable {
            by_expiry: BTreeMap::new(),
            expiry_of: BTreeMap::new(),
        }
    }

    /// Inserts `item` expiring at `expires`, replacing any previous
    /// lease for the same item (renewal). Returns the previous expiry.
    pub fn insert(&mut self, item: T, expires: Secs) -> Option<Secs> {
        let prev = self.cancel(&item);
        self.by_expiry
            .entry(expires)
            .or_default()
            .push(item.clone());
        self.expiry_of.insert(item, expires);
        prev
    }

    /// Removes the lease for `item`, returning its expiry if present.
    pub fn cancel(&mut self, item: &T) -> Option<Secs> {
        let expires = self.expiry_of.remove(item)?;
        if let Some(bucket) = self.by_expiry.get_mut(&expires) {
            bucket.retain(|i| i != item);
            if bucket.is_empty() {
                self.by_expiry.remove(&expires);
            }
        }
        Some(expires)
    }

    /// Expiry time of `item`, if leased.
    pub fn expiry_of(&self, item: &T) -> Option<Secs> {
        self.expiry_of.get(item).copied()
    }

    /// Earliest expiry in the table.
    pub fn next_expiry(&self) -> Option<Secs> {
        self.by_expiry.keys().next().copied()
    }

    /// Removes and returns every item whose expiry is `<= now`, in
    /// expiry order.
    pub fn expire(&mut self, now: Secs) -> Vec<T> {
        let mut out = Vec::new();
        let expired: Vec<Secs> = self.by_expiry.range(..=now).map(|(t, _)| *t).collect();
        for t in expired {
            if let Some(bucket) = self.by_expiry.remove(&t) {
                for item in bucket {
                    self.expiry_of.remove(&item);
                    out.push(item);
                }
            }
        }
        out
    }

    /// Number of live leases.
    pub fn len(&self) -> usize {
        self.expiry_of.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.expiry_of.is_empty()
    }

    /// Iterates live leases as `(item, expiry)` in item order.
    pub fn iter(&self) -> impl Iterator<Item = (&T, Secs)> {
        self.expiry_of.iter().map(|(i, t)| (i, *t))
    }
}

/// Common lifetime pools suggested by the paper (§4.3.1): a long pool
/// "on the order of months" for steady-state demand and a short pool
/// "on the order of days" for bursts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifetimePool {
    /// Months-scale leases for steady-state demand.
    Long,
    /// Days-scale leases for short-term spikes.
    Short,
}

impl LifetimePool {
    /// Default lease duration for the pool, in seconds.
    pub fn default_duration(self) -> Secs {
        match self {
            LifetimePool::Long => 90 * 86_400,
            LifetimePool::Short => 3 * 86_400,
        }
    }
}

impl<T: Ord + Clone + snapshot::Snapshot> snapshot::Snapshot for LeaseTable<T> {
    /// Encodes the expiry-ordered buckets verbatim — within-bucket
    /// `Vec` order feeds [`LeaseTable::expire`]'s output order, which
    /// downstream protocol code turns into message order, so it must
    /// survive a round-trip exactly. The reverse index is recomputed.
    fn encode(&self, enc: &mut snapshot::Enc) {
        self.by_expiry.encode(enc);
    }

    fn decode(dec: &mut snapshot::Dec<'_>) -> Result<Self, snapshot::SnapError> {
        let by_expiry: BTreeMap<Secs, Vec<T>> = snapshot::Snapshot::decode(dec)?;
        let mut expiry_of = BTreeMap::new();
        for (t, bucket) in &by_expiry {
            if bucket.is_empty() {
                return Err(snapshot::SnapError::Invalid("empty lease bucket"));
            }
            for item in bucket {
                if expiry_of.insert(item.clone(), *t).is_some() {
                    return Err(snapshot::SnapError::Invalid("duplicate lease item"));
                }
            }
        }
        Ok(LeaseTable {
            by_expiry,
            expiry_of,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_expire_order() {
        let mut t = LeaseTable::new();
        t.insert("b", 20);
        t.insert("a", 10);
        t.insert("c", 30);
        assert_eq!(t.next_expiry(), Some(10));
        assert_eq!(t.expire(20), vec!["a", "b"]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.expire(100), vec!["c"]);
        assert!(t.is_empty());
    }

    #[test]
    fn renewal_moves_expiry() {
        let mut t = LeaseTable::new();
        t.insert("x", 10);
        assert_eq!(t.insert("x", 50), Some(10));
        assert!(t.expire(10).is_empty());
        assert_eq!(t.expiry_of(&"x"), Some(50));
        assert_eq!(t.expire(50), vec!["x"]);
    }

    #[test]
    fn cancel_removes() {
        let mut t = LeaseTable::new();
        t.insert(1u32, 10);
        t.insert(2u32, 10);
        assert_eq!(t.cancel(&1), Some(10));
        assert_eq!(t.cancel(&1), None);
        assert_eq!(t.expire(10), vec![2]);
    }

    #[test]
    fn same_expiry_bucket() {
        let mut t = LeaseTable::new();
        for i in 0..5u32 {
            t.insert(i, 42);
        }
        assert_eq!(t.len(), 5);
        let mut e = t.expire(42);
        e.sort();
        assert_eq!(e, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn pools() {
        assert!(LifetimePool::Long.default_duration() > LifetimePool::Short.default_duration());
    }
}
