//! Free-space tracking over an address prefix.
//!
//! [`SpaceTracker`] records which sub-prefixes of a root prefix are known
//! to be in use (own claims plus claims heard from siblings) and answers
//! the questions the MASC claim algorithm (§4.3.3) needs:
//!
//! * what are the *maximal free* sub-prefixes, and which of them have the
//!   shortest mask length (the largest free blocks);
//! * given a desired size, what claim candidates exist (the *first*
//!   sub-prefix of the desired size within each largest free block);
//! * can an existing claim be doubled (is its buddy free)?
//!
//! Entries may overlap: while a claim is in its waiting period, two
//! siblings may both believe they hold the same range; the tracker
//! reflects knowledge, not ownership. Free space is the root minus the
//! union of all entries.
//!
//! # Representation
//!
//! The maximal free decomposition is maintained **incrementally**, as
//! sorted vectors of disjoint maximal free blocks and of in-use
//! entries (address order). Inserting an entry carves the covering
//! free block into the buddy chain along the path (or, when the entry
//! only overlaps other entries, discards the free blocks it covers);
//! removing an entry re-frees the decomposition of the entry minus
//! its surviving overlaps and buddy-coalesces upward. Queries —
//! candidates, largest blocks, `is_free`, used size — are binary
//! searches or short scans over the maintained vectors.
//!
//! At the scale a MASC domain sees (tens to a few hundred sibling
//! claims), sorted vectors beat tree sets on both lookups and
//! mutations: every operation touches one or two cache lines around
//! the search point and never allocates, where `BTreeSet` churn on
//! the per-message insert path dominated the figure-2 profile. The
//! decomposition itself is *canonical* — a function of `(root, in-use
//! set)` only, independent of operation order (see
//! `decomposition_is_canonical`) — and the snapshot encoding of the
//! sorted vectors is byte-identical to the earlier tree-set layout.

use crate::prefix::Prefix;

/// Tracks in-use sub-prefixes of a root prefix; see module docs.
#[derive(Debug, Clone)]
pub struct SpaceTracker {
    root: Prefix,
    /// Recorded entries, sorted ascending, no duplicates.
    in_use: Vec<Prefix>,
    /// Disjoint maximal free blocks, sorted (= address order).
    free: Vec<Prefix>,
    /// Total addresses in `free` (kept so `used_size` is O(1)).
    // lint:allow(snapshot-field-coverage) — derived counter, recomputed from free on decode
    free_size: u64,
    /// Free-block count per mask length (index = len). Makes
    /// `shortest_free_len` a fixed 33-slot scan; callers probe it far
    /// more often than the free set changes shape at the top class.
    // lint:allow(snapshot-field-coverage) — derived histogram, recomputed from free on decode
    len_counts: [u32; 33],
}

impl SpaceTracker {
    /// Creates an empty tracker over `root`.
    pub fn new(root: Prefix) -> Self {
        let mut t = SpaceTracker {
            root,
            in_use: Vec::new(),
            free: Vec::new(),
            free_size: 0,
            len_counts: [0; 33],
        };
        t.add_free(root);
        t
    }

    /// The root prefix this tracker covers.
    pub fn root(&self) -> Prefix {
        self.root
    }

    /// Adds `p` to the free set, coalescing with its buddy upward as
    /// far as possible (classic buddy-allocator merge).
    fn add_free(&mut self, p: Prefix) {
        // First find how far the merge reaches (cheap binary probes),
        // then mutate the vector once.
        let mut top = p;
        while let (Some(buddy), Some(parent)) = (top.buddy(), top.parent()) {
            if !self.root.covers(&parent) || self.free.binary_search(&buddy).is_err() {
                break;
            }
            top = parent;
        }
        self.free_size += p.size();
        self.len_counts[top.len() as usize] += 1;
        if top.len() == p.len() {
            let at = self.free.binary_search(&p).unwrap_err();
            self.free.insert(at, p);
            return;
        }
        // Coalesced: the buddies merged away are exactly the free
        // blocks inside `top` (their union plus `p` is `top`), a
        // contiguous run in sort order; replace it with one splice.
        let start = self.free.partition_point(|b| *b < top);
        let last = top.last().0;
        let count = self.free[start..]
            .iter()
            .take_while(|b| b.base_u32() <= last)
            .count();
        debug_assert_eq!(count as u8, p.len() - top.len());
        for b in &self.free[start..start + count] {
            self.len_counts[b.len() as usize] -= 1;
        }
        self.free.splice(start..start + count, std::iter::once(top));
    }

    /// Removes an exact block from the free set.
    fn remove_free(&mut self, p: &Prefix) {
        match self.free.binary_search(p) {
            Ok(at) => {
                self.free.remove(at);
                self.free_size -= p.size();
                self.len_counts[p.len() as usize] -= 1;
            }
            Err(_) => debug_assert!(false, "free block {p} missing"),
        }
    }

    /// The free block covering `p` (free blocks are disjoint, so there
    /// is at most one).
    fn free_block_covering(&self, p: &Prefix) -> Option<Prefix> {
        // A covering block sorts <= p under (base, len) order, and no
        // other free block can sit between them (disjointness), so the
        // predecessor-or-equal is the only candidate.
        let at = self.free.partition_point(|b| b <= p);
        self.free[..at].last().filter(|b| b.covers(p)).copied()
    }

    /// Records `p` as in use. Returns `false` (and records nothing) if
    /// `p` is not within the root or was already recorded.
    pub fn insert(&mut self, p: Prefix) -> bool {
        if !self.root.covers(&p) {
            return false;
        }
        let at = match self.in_use.binary_search(&p) {
            Ok(_) => return false,
            Err(at) => at,
        };
        self.in_use.insert(at, p);
        if let Some(blk) = self.free_block_covering(&p) {
            // `p` was entirely free: carve it out of `blk`, freeing the
            // buddies along the path from `blk` down to `p`. None of
            // those buddies can coalesce (each one's buddy is on the
            // carve path), and together they fill the gap `blk` leaves
            // in sort order, so one splice replaces the per-level
            // insertions.
            self.remove_free(&blk);
            if p.len() > blk.len() {
                let mut buddies = [p; 32];
                let mut n = 0;
                let mut cur = p;
                while cur.len() > blk.len() {
                    buddies[n] = cur.buddy().expect("len > 0 on path");
                    n += 1;
                    cur = cur.parent().expect("len > 0 on path");
                }
                let buddies = &mut buddies[..n];
                buddies.sort_unstable();
                for b in buddies.iter() {
                    self.free_size += b.size();
                    self.len_counts[b.len() as usize] += 1;
                }
                let at = self.free.partition_point(|x| x < &buddies[0]);
                self.free.splice(at..at, buddies.iter().copied());
            }
        } else {
            // `p` overlaps existing entries; any free blocks inside it
            // disappear (blocks covering it were handled above, and
            // prefixes cannot partially overlap).
            let last = p.last().0;
            let start = self.free.partition_point(|b| *b < p);
            let end = start
                + self.free[start..]
                    .iter()
                    .take_while(|b| b.base_u32() <= last)
                    .count();
            let SpaceTracker {
                free,
                free_size,
                len_counts,
                ..
            } = self;
            for v in free.drain(start..end) {
                *free_size -= v.size();
                len_counts[v.len() as usize] -= 1;
            }
        }
        true
    }

    /// Forgets `p`. Returns whether it was present.
    pub fn remove(&mut self, p: &Prefix) -> bool {
        match self.in_use.binary_search(p) {
            Ok(at) => {
                self.in_use.remove(at);
            }
            Err(_) => return false,
        }
        // Covered by a surviving broader entry? Then nothing frees.
        let mut anc = *p;
        while anc.len() > self.root.len() {
            anc = anc.parent().expect("len > root len");
            if self.in_use.binary_search(&anc).is_ok() {
                return true;
            }
        }
        // Newly free space = `p` minus the surviving entries inside it.
        let last = p.last().0;
        let start = self.in_use.partition_point(|q| q < p);
        if self.in_use.get(start).is_none_or(|q| q.base_u32() > last) {
            // Nothing survives inside `p` (the common leaf case): the
            // whole block frees without the recursive decomposition.
            self.add_free(*p);
            return true;
        }
        let inside: Vec<Prefix> = self.in_use[start..]
            .iter()
            .take_while(|q| q.base_u32() <= last)
            .copied()
            .collect();
        let mut freed = Vec::new();
        Self::collect_free(*p, &inside, &mut freed);
        for f in freed {
            self.add_free(f);
        }
        true
    }

    /// All recorded in-use prefixes, in address order.
    pub fn in_use(&self) -> impl Iterator<Item = &Prefix> {
        self.in_use.iter()
    }

    /// Number of recorded in-use prefixes.
    pub fn count(&self) -> usize {
        self.in_use.len()
    }

    /// Is the whole of `p` free (within the root, overlapping no entry)?
    pub fn is_free(&self, p: &Prefix) -> bool {
        self.root.covers(p) && self.free_block_covering(p).is_some()
    }

    /// Maximal free sub-prefixes of the root, in address order. The
    /// union of the result plus the union of entries equals the root,
    /// and no two results are mergeable into a larger free prefix.
    pub fn free_prefixes(&self) -> Vec<Prefix> {
        // Disjoint blocks have distinct bases, so sort order (base,
        // len) is address order.
        self.free.clone()
    }

    fn collect_free(node: Prefix, in_use: &[Prefix], out: &mut Vec<Prefix>) {
        if in_use.is_empty() {
            out.push(node);
            return;
        }
        // Any entry covering this node means nothing here is free.
        if in_use.iter().any(|u| u.covers(&node)) {
            return;
        }
        let Some((l, r)) = node.split() else {
            return; // /32 overlapped by an entry
        };
        let lv: Vec<Prefix> = in_use.iter().filter(|u| u.overlaps(&l)).copied().collect();
        let rv: Vec<Prefix> = in_use.iter().filter(|u| u.overlaps(&r)).copied().collect();
        Self::collect_free(l, &lv, out);
        Self::collect_free(r, &rv, out);
    }

    /// The shortest mask length among free blocks (the size class of
    /// the largest free blocks), if any space is free.
    pub fn shortest_free_len(&self) -> Option<u8> {
        let len = self.len_counts.iter().position(|c| *c > 0).map(|l| l as u8);
        debug_assert_eq!(len, self.free.iter().map(|p| p.len()).min());
        len
    }

    /// The free blocks of exactly the given mask length, address order.
    pub fn free_of_len(&self, len: u8) -> impl Iterator<Item = &Prefix> {
        self.free.iter().filter(move |p| p.len() == len)
    }

    /// The maximal free prefixes with the shortest mask length (i.e. the
    /// largest free blocks), in address order.
    pub fn largest_free(&self) -> Vec<Prefix> {
        match self.shortest_free_len() {
            Some(len) => self.free_of_len(len).copied().collect(),
            None => Vec::new(),
        }
    }

    /// Claim candidates for a desired mask length, per §4.3.3: for each
    /// largest free block that can hold a `/want_len`, the *first*
    /// sub-prefix of that size. Empty when no free block is big enough.
    pub fn claim_candidates(&self, want_len: u8) -> Vec<Prefix> {
        // The largest blocks share one mask length, so either every one
        // can hold a /want_len or none can; checking the cached class
        // first makes the (common) empty answer allocation-free.
        match self.shortest_free_len() {
            Some(len) if len <= want_len => self
                .free_of_len(len)
                .filter_map(|blk| blk.first_subprefix(want_len))
                .collect(),
            _ => Vec::new(),
        }
    }

    /// If `p` can be doubled (its buddy is entirely free and the parent
    /// stays within the root), returns the doubled (parent) prefix.
    pub fn expansion_of(&self, p: &Prefix) -> Option<Prefix> {
        let buddy = p.buddy()?;
        let parent = p.parent()?;
        if !self.root.covers(&parent) {
            return None;
        }
        if self.is_free(&buddy) {
            Some(parent)
        } else {
            None
        }
    }

    /// Total number of addresses covered by the union of entries.
    /// Overlapping entries are not double-counted.
    pub fn used_size(&self) -> u64 {
        self.root.size() - self.free_size
    }

    /// Removes every entry covered by `covering` and returns them.
    pub fn drain_covered_by(&mut self, covering: &Prefix) -> Vec<Prefix> {
        let last = covering.last().0;
        let start = self.in_use.partition_point(|q| q < covering);
        let mut victims: Vec<Prefix> = self.in_use[start..]
            .iter()
            .take_while(|q| q.base_u32() <= last)
            .copied()
            .collect();
        // An entry covering `covering` from above is not drained, but a
        // shorter entry at the same base within it is; the scan from
        // `covering` already excludes broader same-base entries (they
        // sort before it).
        victims.retain(|v| covering.covers(v));
        for v in &victims {
            self.remove(v);
        }
        victims
    }
}

impl snapshot::Snapshot for SpaceTracker {
    /// Encodes root, entries, and the maximal-free decomposition
    /// verbatim; the free-size counter is recomputed on decode
    /// (derived state). The sorted vectors serialize byte-identically
    /// to the tree sets earlier revisions stored.
    fn encode(&self, enc: &mut snapshot::Enc) {
        self.root.encode(enc);
        self.in_use.encode(enc);
        self.free.encode(enc);
    }

    fn decode(dec: &mut snapshot::Dec<'_>) -> Result<Self, snapshot::SnapError> {
        let root = Prefix::decode(dec)?;
        let in_use: Vec<Prefix> = snapshot::Snapshot::decode(dec)?;
        let free: Vec<Prefix> = snapshot::Snapshot::decode(dec)?;
        if in_use.windows(2).any(|w| w[0] >= w[1]) {
            return Err(snapshot::SnapError::Invalid("in-use entries out of order"));
        }
        if free.windows(2).any(|w| w[0] >= w[1]) {
            return Err(snapshot::SnapError::Invalid("free blocks out of order"));
        }
        let mut free_size = 0u64;
        for f in &free {
            if !root.covers(f) {
                return Err(snapshot::SnapError::Invalid("free block outside root"));
            }
            free_size += f.size();
        }
        let mut len_counts = [0u32; 33];
        for f in &free {
            len_counts[f.len() as usize] += 1;
        }
        Ok(SpaceTracker {
            root,
            in_use,
            free,
            free_size,
            len_counts,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn empty_tracker_is_all_free() {
        let t = SpaceTracker::new(p("224.0.0.0/16"));
        assert_eq!(t.free_prefixes(), vec![p("224.0.0.0/16")]);
        assert_eq!(t.largest_free(), vec![p("224.0.0.0/16")]);
        assert_eq!(t.used_size(), 0);
    }

    #[test]
    fn insert_rejects_outside_root() {
        let mut t = SpaceTracker::new(p("224.0.0.0/16"));
        assert!(!t.insert(p("225.0.0.0/24")));
        assert!(t.insert(p("224.0.1.0/24")));
        assert!(!t.insert(p("224.0.1.0/24"))); // duplicate
    }

    #[test]
    fn paper_free_space_example() {
        // §4.3.3 worked example, claims 224.0.1/24 and 239/8 from 224/4:
        // the largest free blocks are 228/6 and 232/6.
        let mut t = SpaceTracker::new(Prefix::MULTICAST);
        t.insert(p("224.0.1.0/24"));
        t.insert(p("239.0.0.0/8"));
        assert_eq!(t.largest_free(), vec![p("228.0.0.0/6"), p("232.0.0.0/6")]);
        // A 1024-address (/22) claim has exactly the two candidates the
        // paper names.
        assert_eq!(
            t.claim_candidates(22),
            vec![p("228.0.0.0/22"), p("232.0.0.0/22")]
        );
    }

    #[test]
    fn free_prefixes_partition_the_root() {
        let mut t = SpaceTracker::new(p("224.0.0.0/8"));
        for s in [
            "224.1.0.0/16",
            "224.2.0.0/15",
            "224.128.0.0/9",
            "224.0.0.0/24",
        ] {
            assert!(t.insert(p(s)));
        }
        let free = t.free_prefixes();
        let used: u64 = [
            p("224.1.0.0/16"),
            p("224.2.0.0/15"),
            p("224.128.0.0/9"),
            p("224.0.0.0/24"),
        ]
        .iter()
        .map(|q| q.size())
        .sum();
        let free_total: u64 = free.iter().map(|q| q.size()).sum();
        assert_eq!(free_total + used, p("224.0.0.0/8").size());
        assert_eq!(t.used_size(), used);
        // Disjointness of free blocks from entries and from each other.
        for (i, a) in free.iter().enumerate() {
            for b in free.iter().skip(i + 1) {
                assert!(!a.overlaps(b), "{a} overlaps {b}");
            }
            for u in t.in_use() {
                assert!(!a.overlaps(u), "{a} overlaps in-use {u}");
            }
        }
    }

    #[test]
    fn overlapping_entries_not_double_counted() {
        let mut t = SpaceTracker::new(p("224.0.0.0/8"));
        t.insert(p("224.0.0.0/16"));
        t.insert(p("224.0.0.0/24")); // inside the /16
        assert_eq!(t.used_size(), p("224.0.0.0/16").size());
    }

    #[test]
    fn overlapping_entry_removal_keeps_space_used() {
        let mut t = SpaceTracker::new(p("224.0.0.0/8"));
        t.insert(p("224.0.0.0/16"));
        t.insert(p("224.0.0.0/24"));
        // Removing the nested /24 frees nothing (the /16 still covers
        // it); removing the /16 then frees everything but the /24.
        assert!(t.remove(&p("224.0.0.0/24")));
        assert_eq!(t.used_size(), p("224.0.0.0/16").size());
        t.insert(p("224.0.0.0/24"));
        assert!(t.remove(&p("224.0.0.0/16")));
        assert_eq!(t.used_size(), p("224.0.0.0/24").size());
        assert!(!t.is_free(&p("224.0.0.0/24")));
        assert!(t.is_free(&p("224.0.1.0/24")));
    }

    #[test]
    fn remove_coalesces_buddies() {
        let mut t = SpaceTracker::new(p("224.0.0.0/16"));
        t.insert(p("224.0.0.0/24"));
        t.insert(p("224.0.1.0/24"));
        assert_eq!(t.largest_free(), vec![p("224.0.128.0/17")]);
        t.remove(&p("224.0.0.0/24"));
        // /24 frees but cannot merge past its used buddy.
        assert!(t.free_prefixes().contains(&p("224.0.0.0/24")));
        t.remove(&p("224.0.1.0/24"));
        // Both halves free: everything coalesces back to the root.
        assert_eq!(t.free_prefixes(), vec![p("224.0.0.0/16")]);
        assert_eq!(t.used_size(), 0);
    }

    #[test]
    fn size_class_index_tracks_shortest() {
        let mut t = SpaceTracker::new(p("224.0.0.0/8"));
        assert_eq!(t.shortest_free_len(), Some(8));
        t.insert(p("224.0.0.0/10"));
        assert_eq!(t.shortest_free_len(), Some(9));
        assert_eq!(t.free_of_len(9).count(), 1);
        assert_eq!(t.free_of_len(10).count(), 1);
        assert_eq!(t.free_of_len(11).count(), 0);
    }

    #[test]
    fn expansion_requires_free_buddy_within_root() {
        let mut t = SpaceTracker::new(p("224.0.0.0/16"));
        t.insert(p("224.0.0.0/24"));
        // Buddy 224.0.1/24 free -> can double to /23.
        assert_eq!(t.expansion_of(&p("224.0.0.0/24")), Some(p("224.0.0.0/23")));
        t.insert(p("224.0.1.0/24"));
        assert_eq!(t.expansion_of(&p("224.0.0.0/24")), None);
        // Whole root cannot expand beyond the root.
        let t2 = SpaceTracker::new(p("224.0.0.0/16"));
        assert_eq!(t2.expansion_of(&p("224.0.0.0/16")), None);
    }

    #[test]
    fn claim_candidates_when_blocks_too_small() {
        let mut t = SpaceTracker::new(p("224.0.0.0/24"));
        t.insert(p("224.0.0.0/25"));
        // Largest free block is a /25; a /24 claim cannot fit.
        assert!(t.claim_candidates(24).is_empty());
        assert_eq!(t.claim_candidates(25), vec![p("224.0.0.128/25")]);
    }

    #[test]
    fn drain_covered_by() {
        let mut t = SpaceTracker::new(p("224.0.0.0/8"));
        t.insert(p("224.1.0.0/24"));
        t.insert(p("224.1.1.0/24"));
        t.insert(p("224.2.0.0/24"));
        let drained = t.drain_covered_by(&p("224.1.0.0/16"));
        assert_eq!(drained, vec![p("224.1.0.0/24"), p("224.1.1.0/24")]);
        assert_eq!(t.count(), 1);
        // The drained space is free again, the survivor's is not.
        assert!(t.is_free(&p("224.1.0.0/16")));
        assert!(!t.is_free(&p("224.2.0.0/24")));
    }

    /// The maximal-free decomposition must be *canonical*: a function
    /// of `(root, in-use set)` alone, independent of the insert/remove
    /// order that produced it. This is what lets a decomposition be
    /// rebuilt from any claim history (e.g. on snapshot resume) with
    /// byte-identical results.
    #[test]
    fn decomposition_is_canonical() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let root = p("224.0.0.0/8");
        for seed in 0..20u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut t = SpaceTracker::new(root);
            let mut live: Vec<Prefix> = Vec::new();
            for _ in 0..200 {
                if live.is_empty() || rng.gen_bool(0.6) {
                    let len = rng.gen_range(10..=24u8);
                    let step = root.size() >> (len - root.len());
                    let off = rng.gen_range(0..(1u64 << (len - root.len())));
                    let base = root.base_u32() + (off * step) as u32;
                    let q = Prefix::new(base, len).unwrap();
                    if t.insert(q) {
                        live.push(q);
                    }
                } else {
                    let i = rng.gen_range(0..live.len());
                    let q = live.swap_remove(i);
                    assert!(t.remove(&q));
                }
            }
            // Rebuild from the final set, inserting in a different
            // (sorted) order than the random history above.
            let mut fresh = SpaceTracker::new(root);
            let mut sorted = live.clone();
            sorted.sort();
            for q in &sorted {
                fresh.insert(*q);
            }
            assert_eq!(
                t.free_prefixes(),
                fresh.free_prefixes(),
                "seed {seed}: decomposition depends on operation order"
            );
            let enc = |tr: &SpaceTracker| {
                use snapshot::Snapshot as _;
                let mut e = snapshot::Enc::with_header(0);
                tr.encode(&mut e);
                e.finish()
            };
            assert_eq!(enc(&t), enc(&fresh), "seed {seed}: snapshot bytes differ");
        }
    }

    #[test]
    fn full_root_has_no_free_space() {
        let mut t = SpaceTracker::new(p("224.0.0.0/30"));
        t.insert(p("224.0.0.0/31"));
        t.insert(p("224.0.0.2/31"));
        assert!(t.free_prefixes().is_empty());
        assert!(t.largest_free().is_empty());
        assert_eq!(t.used_size(), 4);
    }
}
