//! Multicast addresses and CIDR-style address prefixes.
//!
//! The paper's address arithmetic (§4.3.3) operates on contiguous-mask
//! prefixes within the IPv4 class-D space `224.0.0.0/4`. A prefix is
//! written `base/len`, e.g. `224.0.1/24` is the 256 addresses
//! `224.0.1.0 ..= 224.0.1.255`.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// A single IPv4 multicast address (class D, `224.0.0.0/4`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct McastAddr(pub u32);

impl McastAddr {
    /// Lowest class-D address, `224.0.0.0`.
    pub const MIN: McastAddr = McastAddr(0xE000_0000);
    /// Highest class-D address, `239.255.255.255`.
    pub const MAX: McastAddr = McastAddr(0xEFFF_FFFF);

    /// Returns true if this is a valid class-D (multicast) address.
    pub fn is_multicast(self) -> bool {
        (self.0 >> 28) == 0xE
    }

    /// Builds an address from dotted-quad octets.
    pub fn from_octets(a: u8, b: u8, c: u8, d: u8) -> Self {
        McastAddr(u32::from_be_bytes([a, b, c, d]))
    }

    /// The four dotted-quad octets of this address.
    pub fn octets(self) -> [u8; 4] {
        self.0.to_be_bytes()
    }
}

impl fmt::Display for McastAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.octets();
        write!(f, "{a}.{b}.{c}.{d}")
    }
}

impl fmt::Debug for McastAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// Error returned when parsing or constructing an invalid prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrefixError {
    /// The mask length is outside `0..=32`.
    BadMaskLen(u8),
    /// The base address has bits set below the mask.
    Unaligned { base: u32, len: u8 },
    /// A textual prefix failed to parse.
    Parse(String),
    /// The prefix lies (partly) outside the class-D multicast space
    /// `224.0.0.0/4`.
    NotMulticast { base: u32, len: u8 },
}

impl fmt::Display for PrefixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrefixError::BadMaskLen(l) => write!(f, "mask length {l} out of range 0..=32"),
            PrefixError::Unaligned { base, len } => {
                write!(f, "base {} not aligned to /{len}", McastAddr(*base))
            }
            PrefixError::Parse(s) => write!(f, "cannot parse prefix from {s:?}"),
            PrefixError::NotMulticast { base, len } => {
                write!(
                    f,
                    "{}/{len} is outside the multicast space 224.0.0.0/4",
                    McastAddr(*base)
                )
            }
        }
    }
}

impl std::error::Error for PrefixError {}

/// A contiguous-mask address prefix `base/len`.
///
/// Invariants (enforced by [`Prefix::new`]): `len <= 32` and all bits of
/// `base` below the mask are zero. A `/32` prefix is a single address.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Prefix {
    base: u32,
    len: u8,
}

impl Prefix {
    /// The whole IPv4 multicast address space, `224.0.0.0/4`.
    pub const MULTICAST: Prefix = Prefix {
        base: 0xE000_0000,
        len: 4,
    };

    /// Creates a prefix, checking alignment.
    pub fn new(base: u32, len: u8) -> Result<Self, PrefixError> {
        if len > 32 {
            return Err(PrefixError::BadMaskLen(len));
        }
        let mask = Self::mask_of(len);
        if base & !mask != 0 {
            return Err(PrefixError::Unaligned { base, len });
        }
        Ok(Prefix { base, len })
    }

    /// Creates a prefix, additionally checking that it lies entirely
    /// inside the class-D multicast space `224.0.0.0/4`. MASC claim
    /// handling uses this so a malformed or unicast range can never
    /// enter a domain's claimed address set.
    pub fn new_multicast(base: u32, len: u8) -> Result<Self, PrefixError> {
        let p = Self::new(base, len)?;
        if !Self::MULTICAST.covers(&p) {
            return Err(PrefixError::NotMulticast { base, len });
        }
        Ok(p)
    }

    /// Creates the prefix of length `len` containing `addr` (truncating
    /// the host bits).
    pub fn containing(addr: McastAddr, len: u8) -> Result<Self, PrefixError> {
        if len > 32 {
            return Err(PrefixError::BadMaskLen(len));
        }
        Ok(Prefix {
            base: addr.0 & Self::mask_of(len),
            len,
        })
    }

    fn mask_of(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len as u32)
        }
    }

    /// The network mask of this prefix as a u32.
    pub fn mask(&self) -> u32 {
        Self::mask_of(self.len)
    }

    /// The base (lowest) address of the prefix.
    pub fn base(&self) -> McastAddr {
        McastAddr(self.base)
    }

    /// The base address as a raw u32.
    pub fn base_u32(&self) -> u32 {
        self.base
    }

    /// The mask length. (A prefix always covers at least one address,
    /// so there is no `is_empty` counterpart.)
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> u8 {
        self.len
    }

    /// Number of addresses covered; saturates at `u64` width (a `/0`
    /// covers 2^32).
    pub fn size(&self) -> u64 {
        1u64 << (32 - self.len as u32)
    }

    /// The highest address in the prefix.
    pub fn last(&self) -> McastAddr {
        McastAddr(self.base | !self.mask())
    }

    /// Does this prefix contain the address?
    pub fn contains(&self, addr: McastAddr) -> bool {
        addr.0 & self.mask() == self.base
    }

    /// Does this prefix contain (or equal) the other prefix?
    pub fn covers(&self, other: &Prefix) -> bool {
        self.len <= other.len && other.base & self.mask() == self.base
    }

    /// Do the two prefixes share any address?
    pub fn overlaps(&self, other: &Prefix) -> bool {
        self.covers(other) || other.covers(self)
    }

    /// The enclosing prefix one bit shorter, or `None` for `/0`.
    pub fn parent(&self) -> Option<Prefix> {
        if self.len == 0 {
            return None;
        }
        let len = self.len - 1;
        Some(Prefix {
            base: self.base & Self::mask_of(len),
            len,
        })
    }

    /// The sibling prefix differing only in the last masked bit
    /// ("buddy"), or `None` for `/0`. Doubling a prefix (paper §4.3.3)
    /// is possible exactly when its buddy is free: the union of a
    /// prefix and its buddy is their common parent.
    pub fn buddy(&self) -> Option<Prefix> {
        if self.len == 0 {
            return None;
        }
        let bit = 1u32 << (32 - self.len as u32);
        Some(Prefix {
            base: self.base ^ bit,
            len: self.len,
        })
    }

    /// Splits into the two half-size children, or `None` for `/32`.
    pub fn split(&self) -> Option<(Prefix, Prefix)> {
        if self.len == 32 {
            return None;
        }
        let len = self.len + 1;
        let bit = 1u32 << (32 - len as u32);
        Some((
            Prefix {
                base: self.base,
                len,
            },
            Prefix {
                base: self.base | bit,
                len,
            },
        ))
    }

    /// The first (lowest) sub-prefix of the given length, per the claim
    /// rule of §4.3.3 ("the prefix it then claims is the first
    /// sub-prefix of the desired size within the chosen space").
    pub fn first_subprefix(&self, len: u8) -> Option<Prefix> {
        if len < self.len || len > 32 {
            return None;
        }
        Some(Prefix {
            base: self.base,
            len,
        })
    }

    /// Iterates the `2^(len - self.len)` sub-prefixes of length `len`
    /// in address order. Returns an empty iterator when `len` is
    /// shorter than this prefix.
    pub fn subprefixes(&self, len: u8) -> SubPrefixes {
        if len < self.len || len > 32 {
            return SubPrefixes {
                next: 0,
                remaining: 0,
                len,
            };
        }
        let count = 1u64 << (len - self.len);
        SubPrefixes {
            next: self.base,
            remaining: count,
            len,
        }
    }

    /// The address at `offset` within the prefix, or `None` if out of
    /// range.
    pub fn addr_at(&self, offset: u64) -> Option<McastAddr> {
        if offset >= self.size() {
            return None;
        }
        Some(McastAddr(self.base + offset as u32))
    }

    /// The mask length needed for a prefix covering at least `n`
    /// addresses (e.g. 1024 addresses need a /22, 1025 need a /21).
    pub fn len_for_size(n: u64) -> u8 {
        let n = n.max(1);
        let bits = 64 - (n - 1).leading_zeros().min(63);
        let bits = if n == 1 { 0 } else { bits };
        32u8.saturating_sub(bits as u8)
    }
}

/// Iterator over sub-prefixes of fixed length; see
/// [`Prefix::subprefixes`].
pub struct SubPrefixes {
    next: u32,
    remaining: u64,
    len: u8,
}

impl Iterator for SubPrefixes {
    type Item = Prefix;

    fn next(&mut self) -> Option<Prefix> {
        if self.remaining == 0 {
            return None;
        }
        let p = Prefix {
            base: self.next,
            len: self.len,
        };
        self.remaining -= 1;
        if self.remaining > 0 {
            self.next = self.next.wrapping_add(1u32 << (32 - self.len as u32));
        }
        Some(p)
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", McastAddr(self.base), self.len)
    }
}

impl fmt::Debug for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl FromStr for Prefix {
    type Err = PrefixError;

    /// Parses `a.b.c.d/len`; trailing octets may be omitted as in the
    /// paper's notation (`224.0.1/24`, `239/8`).
    fn from_str(s: &str) -> Result<Self, PrefixError> {
        let (addr_part, len_part) = s
            .split_once('/')
            .ok_or_else(|| PrefixError::Parse(s.into()))?;
        let len: u8 = len_part.parse().map_err(|_| PrefixError::Parse(s.into()))?;
        let mut octets = [0u8; 4];
        let mut n = 0;
        for part in addr_part.split('.') {
            if n >= 4 {
                return Err(PrefixError::Parse(s.into()));
            }
            octets[n] = part.parse().map_err(|_| PrefixError::Parse(s.into()))?;
            n += 1;
        }
        if n == 0 {
            return Err(PrefixError::Parse(s.into()));
        }
        let base = u32::from_be_bytes(octets);
        Prefix::new(base, len)
    }
}

impl snapshot::Snapshot for McastAddr {
    fn encode(&self, enc: &mut snapshot::Enc) {
        enc.u32(self.0);
    }
    fn decode(dec: &mut snapshot::Dec<'_>) -> Result<Self, snapshot::SnapError> {
        Ok(McastAddr(dec.u32()?))
    }
}

impl snapshot::Snapshot for Prefix {
    fn encode(&self, enc: &mut snapshot::Enc) {
        enc.u32(self.base);
        enc.u8(self.len);
    }
    fn decode(dec: &mut snapshot::Dec<'_>) -> Result<Self, snapshot::SnapError> {
        let base = dec.u32()?;
        let len = dec.u8()?;
        // Re-validate through the constructor so a corrupt snapshot
        // cannot smuggle an unaligned prefix past the invariant.
        Prefix::new(base, len).map_err(|_| snapshot::SnapError::Invalid("prefix"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn parse_and_display_roundtrip() {
        for s in [
            "224.0.1.0/24",
            "224.0.0.0/4",
            "239.255.255.255/32",
            "232.0.0.0/6",
        ] {
            let pre = p(s);
            assert_eq!(pre.to_string(), s);
        }
    }

    #[test]
    fn parse_short_forms_from_paper() {
        assert_eq!(p("224.0.1/24"), p("224.0.1.0/24"));
        assert_eq!(p("239/8"), p("239.0.0.0/8"));
        assert_eq!(p("224/4"), Prefix::MULTICAST);
        assert_eq!(p("228/6"), p("228.0.0.0/6"));
    }

    #[test]
    fn rejects_unaligned() {
        assert!("224.0.1.1/24".parse::<Prefix>().is_err());
        assert!("224.0.0.0/33".parse::<Prefix>().is_err());
        assert!(Prefix::new(0xE000_0001, 24).is_err());
    }

    #[test]
    fn containing_truncates() {
        let a = McastAddr::from_octets(224, 0, 1, 77);
        assert_eq!(Prefix::containing(a, 24).unwrap(), p("224.0.1.0/24"));
        assert_eq!(Prefix::containing(a, 32).unwrap().base(), a);
    }

    #[test]
    fn size_and_last() {
        assert_eq!(p("224.0.1.0/24").size(), 256);
        assert_eq!(
            p("224.0.1.0/24").last(),
            McastAddr::from_octets(224, 0, 1, 255)
        );
        assert_eq!(Prefix::MULTICAST.size(), 1u64 << 28);
        assert_eq!(Prefix::MULTICAST.last(), McastAddr::MAX);
    }

    #[test]
    fn covers_and_overlaps() {
        let parent = p("224.0.0.0/16");
        let child = p("224.0.128.0/24");
        let other = p("224.1.0.0/16");
        assert!(parent.covers(&child));
        assert!(!child.covers(&parent));
        assert!(parent.overlaps(&child));
        assert!(child.overlaps(&parent));
        assert!(!parent.overlaps(&other));
        assert!(parent.covers(&parent));
    }

    #[test]
    fn paper_cidr_example() {
        // 128.8/16 and 128.9/16 aggregate to 128.8/15 — same arithmetic,
        // applied here to the multicast space: 224.8/16 + 224.9/16 = 224.8/15.
        let a = p("224.8.0.0/16");
        let b = p("224.9.0.0/16");
        assert_eq!(a.buddy().unwrap(), b);
        assert_eq!(a.parent().unwrap(), p("224.8.0.0/15"));
        assert_eq!(b.parent().unwrap(), p("224.8.0.0/15"));
    }

    #[test]
    fn split_and_buddy_are_inverse_of_parent() {
        let pre = p("228.0.0.0/6");
        let (l, r) = pre.split().unwrap();
        assert_eq!(l.parent().unwrap(), pre);
        assert_eq!(r.parent().unwrap(), pre);
        assert_eq!(l.buddy().unwrap(), r);
        assert_eq!(r.buddy().unwrap(), l);
    }

    #[test]
    fn paper_claim_example_nonoverlapping_slash6() {
        // §4.3.3: with 224.0.1/24 and 239/8 allocated from 224/4, the
        // largest non-overlapping sub-prefixes are 228/6 and 232/6.
        let allocated = [p("224.0.1.0/24"), p("239.0.0.0/8")];
        let free6: Vec<Prefix> = Prefix::MULTICAST
            .subprefixes(6)
            .filter(|c| !allocated.iter().any(|a| a.overlaps(c)))
            .collect();
        assert_eq!(free6, vec![p("228.0.0.0/6"), p("232.0.0.0/6")]);
        // No non-overlapping /5 exists.
        let free5: Vec<Prefix> = Prefix::MULTICAST
            .subprefixes(5)
            .filter(|c| !allocated.iter().any(|a| a.overlaps(c)))
            .collect();
        assert!(free5.is_empty());
        // First /22 inside each free /6 is what a 1024-address claim takes.
        assert_eq!(free6[0].first_subprefix(22).unwrap(), p("228.0.0.0/22"));
        assert_eq!(free6[1].first_subprefix(22).unwrap(), p("232.0.0.0/22"));
    }

    #[test]
    fn len_for_size() {
        assert_eq!(Prefix::len_for_size(1024), 22);
        assert_eq!(Prefix::len_for_size(1025), 21);
        assert_eq!(Prefix::len_for_size(256), 24);
        assert_eq!(Prefix::len_for_size(1), 32);
        assert_eq!(Prefix::len_for_size(2), 31);
        assert_eq!(Prefix::len_for_size(3), 30);
    }

    #[test]
    fn subprefix_iteration() {
        let pre = p("224.0.0.0/22");
        let subs: Vec<Prefix> = pre.subprefixes(24).collect();
        assert_eq!(subs.len(), 4);
        assert_eq!(subs[0], p("224.0.0.0/24"));
        assert_eq!(subs[3], p("224.0.3.0/24"));
        // Degenerate: asking for shorter sub-prefixes yields nothing.
        assert_eq!(pre.subprefixes(20).count(), 0);
        // Same length yields self.
        assert_eq!(pre.subprefixes(22).collect::<Vec<_>>(), vec![pre]);
    }

    #[test]
    fn addr_at_bounds() {
        let pre = p("224.0.1.0/24");
        assert_eq!(
            pre.addr_at(0).unwrap(),
            McastAddr::from_octets(224, 0, 1, 0)
        );
        assert_eq!(
            pre.addr_at(255).unwrap(),
            McastAddr::from_octets(224, 0, 1, 255)
        );
        assert!(pre.addr_at(256).is_none());
    }

    #[test]
    fn multicast_check() {
        assert!(McastAddr::MIN.is_multicast());
        assert!(McastAddr::MAX.is_multicast());
        assert!(!McastAddr(0x0A00_0001).is_multicast());
    }

    #[test]
    fn new_multicast_accepts_class_d_only() {
        // Anything inside 224.0.0.0/4 is fine, including the whole
        // space and a single address.
        assert_eq!(
            Prefix::new_multicast(0xE000_0000, 4).unwrap(),
            Prefix::MULTICAST
        );
        assert_eq!(
            Prefix::new_multicast(0xE001_0200, 24).unwrap(),
            p("224.1.2.0/24")
        );
        assert!(Prefix::new_multicast(0xEFFF_FFFF, 32).is_ok());
        // Unicast space is refused with the dedicated error.
        assert_eq!(
            Prefix::new_multicast(0x0A00_0000, 24),
            Err(PrefixError::NotMulticast {
                base: 0x0A00_0000,
                len: 24
            })
        );
        // A short prefix straddling the class-D boundary is refused
        // even though it contains multicast addresses.
        assert!(matches!(
            Prefix::new_multicast(0xC000_0000, 2),
            Err(PrefixError::NotMulticast { .. })
        ));
        assert!(matches!(
            Prefix::new_multicast(0, 0),
            Err(PrefixError::NotMulticast { .. })
        ));
        // Alignment is still enforced, and reported first.
        assert_eq!(
            Prefix::new_multicast(0xE000_0001, 24),
            Err(PrefixError::Unaligned {
                base: 0xE000_0001,
                len: 24
            })
        );
    }
}
