//! Block allocation within a domain's claimed ranges.
//!
//! A domain's MAAS hands out individual group addresses and fixed-size
//! blocks to clients *from the ranges MASC claimed for the domain*
//! (§4, §4.3.1). [`BlockAllocator`] is that intra-domain allocator: it
//! holds the domain's owned prefixes (each *active* — eligible for new
//! assignments — or *inactive* — draining until its leases expire, per
//! §4.3.3) and serves aligned sub-prefix blocks first-fit.

use crate::prefix::Prefix;
use crate::space::SpaceTracker;

/// One prefix owned by the domain, with its allocation state.
#[derive(Debug, Clone)]
pub struct OwnedPrefix {
    /// The claimed range.
    pub prefix: Prefix,
    /// Whether new assignments may come from this range (§4.3.3:
    /// "a domain's prefix is *active* if addresses from the prefix's
    /// range will be assigned to new groups").
    pub active: bool,
    blocks: SpaceTracker,
}

impl OwnedPrefix {
    fn new(prefix: Prefix) -> Self {
        OwnedPrefix {
            prefix,
            active: true,
            blocks: SpaceTracker::new(prefix),
        }
    }

    /// Addresses currently assigned out of this prefix.
    pub fn used(&self) -> u64 {
        self.blocks.used_size()
    }

    /// Whether no blocks remain assigned from this prefix.
    pub fn is_drained(&self) -> bool {
        self.blocks.count() == 0
    }
}

/// First-fit block allocator over a domain's owned prefixes.
#[derive(Debug, Clone, Default)]
pub struct BlockAllocator {
    owned: Vec<OwnedPrefix>,
}

impl BlockAllocator {
    /// Creates an allocator owning no prefixes.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a newly claimed prefix (active). Returns `false` if it
    /// overlaps an already-owned prefix.
    pub fn add_prefix(&mut self, p: Prefix) -> bool {
        if self.owned.iter().any(|o| o.prefix.overlaps(&p)) {
            return false;
        }
        self.owned.push(OwnedPrefix::new(p));
        self.owned
            .sort_by_key(|o| (o.prefix.base_u32(), o.prefix.len()));
        true
    }

    /// Replaces an owned prefix with a larger covering one (doubling,
    /// §4.3.3), keeping all existing block assignments. Returns `false`
    /// unless `new` covers exactly one owned prefix.
    pub fn grow_prefix(&mut self, old: Prefix, new: Prefix) -> bool {
        if !new.covers(&old) {
            return false;
        }
        let Some(idx) = self.owned.iter().position(|o| o.prefix == old) else {
            return false;
        };
        if self
            .owned
            .iter()
            .enumerate()
            .any(|(i, o)| i != idx && o.prefix.overlaps(&new))
        {
            return false;
        }
        let mut grown = OwnedPrefix::new(new);
        grown.active = self.owned[idx].active;
        for b in self.owned[idx].blocks.in_use() {
            grown.blocks.insert(*b);
        }
        self.owned[idx] = grown;
        true
    }

    /// Removes an owned prefix entirely (lifetime expiry). Any blocks
    /// still assigned from it are lost with it; returns them so the
    /// caller can notify clients (applications "should be prepared to
    /// cope" with early expiry, §4.3.1).
    pub fn remove_prefix(&mut self, p: &Prefix) -> Option<Vec<Prefix>> {
        let idx = self.owned.iter().position(|o| o.prefix == *p)?;
        let o = self.owned.remove(idx);
        Some(o.blocks.in_use().copied().collect())
    }

    /// Marks a prefix inactive: no new assignments, existing blocks
    /// drain as their leases expire.
    pub fn deactivate(&mut self, p: &Prefix) -> bool {
        match self.owned.iter_mut().find(|o| o.prefix == *p) {
            Some(o) => {
                o.active = false;
                true
            }
            None => false,
        }
    }

    /// Allocates a block of `2^(32-len)` addresses from the first
    /// active prefix with room, lowest address first.
    pub fn alloc_block(&mut self, len: u8) -> Option<Prefix> {
        for o in self.owned.iter_mut().filter(|o| o.active) {
            if len < o.prefix.len() {
                continue;
            }
            let free = o.blocks.free_prefixes();
            if let Some(block) = free
                .iter()
                .find(|f| f.len() <= len)
                .and_then(|f| f.first_subprefix(len))
            {
                o.blocks.insert(block);
                return Some(block);
            }
        }
        None
    }

    /// Allocates a single address (a `/32` block).
    pub fn alloc_addr(&mut self) -> Option<Prefix> {
        self.alloc_block(32)
    }

    /// Reserves a *specific* block (e.g. a child domain's claim within
    /// a parent's range, §4.1). Fails if it is not entirely free or
    /// not covered by an owned prefix. Reservation ignores the
    /// active/inactive flag: child claims land wherever they land.
    pub fn reserve_block(&mut self, block: Prefix) -> bool {
        for o in &mut self.owned {
            if o.prefix.covers(&block) {
                if o.blocks.is_free(&block) {
                    return o.blocks.insert(block);
                }
                return false;
            }
        }
        false
    }

    /// Does `p` overlap any currently allocated or reserved block?
    pub fn overlaps_allocation(&self, p: &Prefix) -> bool {
        self.owned
            .iter()
            .any(|o| o.prefix.overlaps(p) && o.blocks.in_use().any(|b| b.overlaps(p)))
    }

    /// Addresses allocated within the owned prefix exactly equal to
    /// `prefix` (0 if not owned).
    pub fn used_within(&self, prefix: &Prefix) -> u64 {
        self.owned
            .iter()
            .find(|o| o.prefix == *prefix)
            .map_or(0, |o| o.used())
    }

    /// Frees a previously allocated block.
    pub fn free_block(&mut self, block: &Prefix) -> bool {
        for o in &mut self.owned {
            if o.prefix.covers(block) {
                return o.blocks.remove(block);
            }
        }
        false
    }

    /// Could a `/len` block be allocated right now, without allocating?
    pub fn can_alloc(&self, len: u8) -> bool {
        self.owned.iter().filter(|o| o.active).any(|o| {
            len >= o.prefix.len() && o.blocks.free_prefixes().iter().any(|f| f.len() <= len)
        })
    }

    /// Owned prefixes in address order.
    pub fn owned(&self) -> &[OwnedPrefix] {
        &self.owned
    }

    /// The owned prefix covering `p`, if any.
    pub fn owner_of(&self, p: &Prefix) -> Option<&OwnedPrefix> {
        self.owned.iter().find(|o| o.prefix.covers(p))
    }

    /// Addresses assigned to clients across all owned prefixes.
    pub fn used(&self) -> u64 {
        self.owned.iter().map(|o| o.used()).sum()
    }

    /// Total addresses across owned prefixes (active and inactive).
    pub fn capacity(&self) -> u64 {
        self.owned.iter().map(|o| o.prefix.size()).sum()
    }

    /// Total addresses across *active* prefixes only.
    pub fn active_capacity(&self) -> u64 {
        self.owned
            .iter()
            .filter(|o| o.active)
            .map(|o| o.prefix.size())
            .sum()
    }

    /// Number of active prefixes.
    pub fn active_count(&self) -> usize {
        self.owned.iter().filter(|o| o.active).count()
    }

    /// Fraction of owned space currently assigned (0 when nothing is
    /// owned).
    pub fn occupancy(&self) -> f64 {
        let cap = self.capacity();
        if cap == 0 {
            0.0
        } else {
            self.used() as f64 / cap as f64
        }
    }
}

impl snapshot::Snapshot for OwnedPrefix {
    fn encode(&self, enc: &mut snapshot::Enc) {
        self.prefix.encode(enc);
        enc.bool(self.active);
        self.blocks.encode(enc);
    }
    fn decode(dec: &mut snapshot::Dec<'_>) -> Result<Self, snapshot::SnapError> {
        Ok(OwnedPrefix {
            prefix: Prefix::decode(dec)?,
            active: dec.bool()?,
            blocks: SpaceTracker::decode(dec)?,
        })
    }
}

impl snapshot::Snapshot for BlockAllocator {
    fn encode(&self, enc: &mut snapshot::Enc) {
        self.owned.encode(enc);
    }
    fn decode(dec: &mut snapshot::Dec<'_>) -> Result<Self, snapshot::SnapError> {
        Ok(BlockAllocator {
            owned: snapshot::Snapshot::decode(dec)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn alloc_first_fit() {
        let mut a = BlockAllocator::new();
        a.add_prefix(p("224.0.0.0/22"));
        let b1 = a.alloc_block(24).unwrap();
        let b2 = a.alloc_block(24).unwrap();
        assert_eq!(b1, p("224.0.0.0/24"));
        assert_eq!(b2, p("224.0.1.0/24"));
        assert_eq!(a.used(), 512);
        assert!(a.free_block(&b1));
        // Freed space is reused first-fit.
        assert_eq!(a.alloc_block(24).unwrap(), b1);
    }

    #[test]
    fn alloc_exhaustion() {
        let mut a = BlockAllocator::new();
        a.add_prefix(p("224.0.0.0/23"));
        assert!(a.alloc_block(24).is_some());
        assert!(a.alloc_block(24).is_some());
        assert!(a.alloc_block(24).is_none());
        assert!(!a.can_alloc(24));
        assert!(!a.can_alloc(22)); // bigger than the owned prefix
    }

    #[test]
    fn overlapping_prefixes_rejected() {
        let mut a = BlockAllocator::new();
        assert!(a.add_prefix(p("224.0.0.0/22")));
        assert!(!a.add_prefix(p("224.0.1.0/24")));
        assert!(a.add_prefix(p("224.0.4.0/22")));
    }

    #[test]
    fn inactive_prefix_not_used_for_new_blocks() {
        let mut a = BlockAllocator::new();
        a.add_prefix(p("224.0.0.0/24"));
        a.add_prefix(p("224.0.4.0/24"));
        a.deactivate(&p("224.0.0.0/24"));
        assert_eq!(a.alloc_block(25).unwrap(), p("224.0.4.0/25"));
        assert_eq!(a.active_capacity(), 256);
        assert_eq!(a.capacity(), 512);
        assert_eq!(a.active_count(), 1);
    }

    #[test]
    fn grow_preserves_blocks() {
        let mut a = BlockAllocator::new();
        a.add_prefix(p("224.0.0.0/24"));
        let b = a.alloc_block(25).unwrap();
        assert!(a.grow_prefix(p("224.0.0.0/24"), p("224.0.0.0/23")));
        assert_eq!(a.capacity(), 512);
        assert_eq!(a.used(), 128);
        assert!(!a.free_block(&p("224.0.1.0/25"))); // never allocated
        assert!(a.free_block(&b));
        // Growing to a non-covering prefix fails.
        assert!(!a.grow_prefix(p("224.0.0.0/23"), p("224.0.4.0/22")));
    }

    #[test]
    fn remove_returns_lost_blocks() {
        let mut a = BlockAllocator::new();
        a.add_prefix(p("224.0.0.0/24"));
        let b = a.alloc_block(26).unwrap();
        let lost = a.remove_prefix(&p("224.0.0.0/24")).unwrap();
        assert_eq!(lost, vec![b]);
        assert_eq!(a.capacity(), 0);
        assert!(a.remove_prefix(&p("224.0.0.0/24")).is_none());
    }

    #[test]
    fn single_addr_alloc() {
        let mut a = BlockAllocator::new();
        a.add_prefix(p("224.0.0.0/30"));
        let mut got = Vec::new();
        while let Some(addr) = a.alloc_addr() {
            got.push(addr);
        }
        assert_eq!(got.len(), 4);
        assert_eq!(a.occupancy(), 1.0);
    }

    #[test]
    fn reserve_specific_block() {
        let mut a = BlockAllocator::new();
        a.add_prefix(p("224.0.0.0/22"));
        assert!(a.reserve_block(p("224.0.2.0/24")));
        assert!(!a.reserve_block(p("224.0.2.0/25"))); // overlaps reservation
        assert!(!a.reserve_block(p("225.0.0.0/24"))); // not owned
        assert!(a.overlaps_allocation(&p("224.0.2.0/26")));
        assert!(!a.overlaps_allocation(&p("224.0.1.0/24")));
        // First-fit allocation skips the reserved space.
        assert_eq!(a.alloc_block(24).unwrap(), p("224.0.0.0/24"));
        assert_eq!(a.alloc_block(24).unwrap(), p("224.0.1.0/24"));
        assert_eq!(a.alloc_block(24).unwrap(), p("224.0.3.0/24"));
        assert!(a.alloc_block(24).is_none());
        assert_eq!(a.used_within(&p("224.0.0.0/22")), 1024);
        // Reservations work on inactive prefixes too.
        let mut b = BlockAllocator::new();
        b.add_prefix(p("224.0.0.0/24"));
        b.deactivate(&p("224.0.0.0/24"));
        assert!(b.reserve_block(p("224.0.0.0/25")));
    }

    #[test]
    fn occupancy_math() {
        let mut a = BlockAllocator::new();
        assert_eq!(a.occupancy(), 0.0);
        a.add_prefix(p("224.0.0.0/24"));
        a.alloc_block(26); // 64 of 256
        assert!((a.occupancy() - 0.25).abs() < 1e-9);
    }
}
